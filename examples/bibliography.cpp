// A document-retrieval flavored example, after Schek & Pistor's
// integrated database/IR motivation (the paper's reference [8]): papers
// with sets of authors and sets of keywords, stored as one NFR instead
// of three joined 1NF tables. Uses the core library API directly (no
// engine) to show the algebra layer.
//
//   $ ./bibliography

#include <cstdio>

#include "algebra/nest_unnest.h"
#include "algebra/operators.h"
#include "core/fixedness.h"
#include "core/format.h"
#include "core/update.h"
#include "dependency/design.h"
#include "util/logging.h"

using namespace nf2;  // Example code; the library itself never does this.

int main() {
  std::printf("== Bibliography: nested documents via the core API ==\n\n");

  // Universal 1NF design: one row per (paper, author, keyword).
  Schema schema = Schema::OfStrings({"Paper", "Author", "Keyword"});
  FlatRelation flat(schema);
  auto add = [&](const char* p, std::initializer_list<const char*> authors,
                 std::initializer_list<const char*> keywords) {
    for (const char* a : authors) {
      for (const char* k : keywords) {
        flat.Insert(FlatTuple{V(p), V(a), V(k)});
      }
    }
  };
  add("nfr83", {"arisawa", "moriya", "miura"},
      {"nested", "algebra", "updates"});
  add("nest82", {"jaeschke", "schek"}, {"nested", "algebra"});
  add("mvd77", {"fagin"}, {"dependencies", "4nf"});
  add("ir82", {"schek", "pistor"}, {"retrieval", "nested"});

  std::printf("1NF design: %zu rows\n", flat.size());

  // Papers determine nothing functionally, but authors and keywords are
  // independent per paper: Paper ->-> Author | Keyword.
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  NF2_CHECK(Satisfies(flat, Mvd{AttrSet{0}, AttrSet{1}}));

  // Let the §3.4 advisor choose the nest order, then build the
  // maintained canonical relation.
  DesignReport report = AnalyzeDesign(flat, FdSet(3), mvds);
  std::printf("\ndesign report:\n%s\n\n",
              report.ToString(schema).c_str());
  Result<CanonicalRelation> docs =
      CanonicalRelation::FromFlat(flat, report.advised);
  NF2_CHECK(docs.ok());
  std::printf("%s\n",
              RenderTable(docs->relation(), "documents (NFR)").c_str());
  NF2_CHECK(IsFixedOn(docs->relation(), {0}))
      << "one tuple per paper expected";

  // Keyword search: tuple-level select keeps whole documents.
  Predicate about_nested = Predicate::Eq(2, V("nested"));
  NfrRelation hits = SelectNfrTuples(docs->relation(), about_nested);
  std::printf("%s\n",
              RenderTable(hits, "documents tagged 'nested'").c_str());

  // Exact select + projection: which authors write about algebra?
  NfrRelation exact =
      SelectNfrExact(docs->relation(), Predicate::Eq(2, V("algebra")));
  Result<FlatRelation> authors =
      ProjectByName(exact.Expand(), {"Author"});
  NF2_CHECK(authors.ok());
  std::printf("%s\n",
              RenderTable(*authors, "authors on 'algebra'").c_str());

  // Restructure on the fly: group papers per keyword instead.
  Result<NfrRelation> by_keyword = CanonicalFormByName(
      flat, {"Paper", "Author", "Keyword"});
  NF2_CHECK(by_keyword.ok());
  std::printf("%s\n",
              RenderTable(*by_keyword, "nested by keyword-first order")
                  .c_str());

  // Updates: a new author joins nfr83; one keyword is retagged.
  NF2_CHECK(
      docs->Insert(FlatTuple{V("nfr83"), V("kambayashi"), V("nested")})
          .ok());
  NF2_CHECK(
      docs->Insert(FlatTuple{V("nfr83"), V("kambayashi"), V("algebra")})
          .ok());
  NF2_CHECK(
      docs->Insert(FlatTuple{V("nfr83"), V("kambayashi"), V("updates")})
          .ok());
  NF2_CHECK(docs->Delete(FlatTuple{V("mvd77"), V("fagin"), V("4nf")}).ok());
  std::printf("%s\n",
              RenderTable(docs->relation(), "after updates").c_str());
  std::printf("update counters: %s\n",
              docs->stats().ToString().c_str());

  std::printf("\nbibliography example OK\n");
  return 0;
}
