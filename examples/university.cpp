// The paper's running example, end to end through the NFRQL language:
// the registrar database of §2 with R1[Student, Course, Club] (entity
// relation, MVD) and R2[Student, Course, Semester] (relationship
// relation, no MVD), including the Fig. 1 -> Fig. 2 update.
//
//   $ ./university [db_dir]

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/database.h"
#include "nfrql/executor.h"
#include "util/logging.h"

namespace {

void Run(nf2::Executor* executor, const std::string& query) {
  std::printf("nfrql> %s\n", query.c_str());
  nf2::Result<std::string> out = executor->Execute(query);
  NF2_CHECK(out.ok()) << out.status();
  std::printf("%s\n\n", out->c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/nf2_university";
  std::filesystem::remove_all(dir);
  auto db = nf2::Database::Open(dir);
  NF2_CHECK(db.ok()) << db.status();
  nf2::Executor executor(db->get());

  std::printf("== The paper's university registrar, via NFRQL ==\n\n");

  // R1: an entity relation — each student has independent course and
  // club sets. Declaring the MVD drives the nest-order advisor.
  Run(&executor,
      "CREATE RELATION r1 (Student STRING, Course STRING, Club STRING) "
      "MVD Student ->-> Course");
  // R2: a relationship relation; no MVD, explicit nest order.
  Run(&executor,
      "CREATE RELATION r2 (Student STRING, Course STRING, Semester STRING) "
      "NEST Student, Course, Semester");

  // Fig. 1 data.
  for (const char* s : {"s1", "s2", "s3"}) {
    const char* club = std::string(s) == "s2" ? "b2" : "b1";
    for (const char* c : {"c1", "c2", "c3"}) {
      std::string q = std::string("INSERT INTO r1 VALUES (") + s + ", " +
                      c + ", " + club + ")";
      NF2_CHECK(executor.Execute(q).ok());
    }
  }
  Run(&executor,
      "INSERT INTO r2 VALUES (s1, c1, t1), (s2, c1, t1), (s3, c1, t1), "
      "(s1, c2, t1), (s2, c2, t1), (s3, c2, t1), (s1, c3, t1), "
      "(s3, c3, t1), (s2, c3, t2)");

  std::printf("---- Fig. 1: the stored NFRs ----\n\n");
  Run(&executor, "SHOW r1");
  Run(&executor, "SHOW r2");

  std::printf(
      "---- The update: student s1 stops taking course c1 (sec. 2) ----\n\n");
  Run(&executor, "DELETE FROM r1 WHERE Student = s1 AND Course = c1");
  Run(&executor, "DELETE FROM r2 WHERE Student = s1 AND Course = c1");

  std::printf("---- Fig. 2: after the update ----\n\n");
  Run(&executor, "SHOW r1");
  Run(&executor, "SHOW r2");

  std::printf("---- Queries ----\n\n");
  Run(&executor, "SELECT Course FROM r1 WHERE Student = s1");
  Run(&executor, "SELECT * FROM r2 WHERE Semester = t2");
  Run(&executor, "NEST r2 ON Student");
  Run(&executor, "STATS r1");
  Run(&executor, "STATS r2");
  Run(&executor, "CHECKPOINT");

  std::printf("university example OK (database in %s)\n", dir.c_str());
  return 0;
}
