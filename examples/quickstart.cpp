// Quickstart: open a database, create an NFR-backed relation, insert
// and delete tuples (maintained in canonical form by the paper's §4
// algorithms), and query it.
//
//   $ ./quickstart [db_dir]

#include <cstdio>
#include <filesystem>

#include "core/format.h"
#include "engine/database.h"
#include "util/logging.h"

using nf2::AttrSet;
using nf2::Database;
using nf2::FlatTuple;
using nf2::Mvd;
using nf2::Predicate;
using nf2::Schema;
using nf2::V;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : "/tmp/nf2_quickstart";
  std::filesystem::remove_all(dir);

  // 1. Open (or create) a database directory.
  auto db = Database::Open(dir);
  NF2_CHECK(db.ok()) << db.status();

  // 2. Create a relation. Declaring the MVD Student ->-> Course | Club
  //    lets the engine pick a nest order whose canonical form keeps one
  //    tuple per student (§3.4, Theorems 4-5).
  nf2::Status created = (*db)->CreateRelation(
      "takes", Schema::OfStrings({"Student", "Course", "Club"}),
      /*nest_order=*/{}, /*fds=*/{},
      /*mvds=*/{Mvd{AttrSet{0}, AttrSet{1}}});
  NF2_CHECK(created.ok()) << created;

  // 3. Insert plain 1NF tuples; the engine composes them into NFR
  //    tuples incrementally.
  for (const char* course : {"algebra", "calculus", "databases"}) {
    NF2_CHECK((*db)->Insert("takes", FlatTuple{V("ada"), V(course),
                                               V("chess")})
                  .ok());
  }
  NF2_CHECK(
      (*db)->Insert("takes", FlatTuple{V("bob"), V("databases"), V("go")})
          .ok());

  // 4. Look at the stored nested relation: ada is ONE tuple.
  auto rel = (*db)->Relation("takes");
  NF2_CHECK(rel.ok());
  std::printf("%s\n", nf2::RenderTable(**rel, "takes (stored NFR)").c_str());

  // 5. Query with ordinary predicates; results come back flat.
  auto q = (*db)->Query("takes", Predicate::Eq(1, V("databases")));
  NF2_CHECK(q.ok());
  std::printf("%s\n",
              nf2::RenderTable(*q, "who takes databases?").c_str());

  // 6. Delete one course enrollment; the canonical form is maintained
  //    with O(f(n)) compositions, independent of relation size.
  NF2_CHECK(
      (*db)->Delete("takes", FlatTuple{V("ada"), V("calculus"), V("chess")})
          .ok());
  rel = (*db)->Relation("takes");
  std::printf("%s\n",
              nf2::RenderTable(**rel, "takes (after delete)").c_str());

  // 7. Statistics: how much the nested representation saves.
  auto stats = (*db)->Stats("takes");
  NF2_CHECK(stats.ok());
  std::printf("stats: %s\n", stats->ToString().c_str());

  // 8. Everything is durable: the WAL + checkpoint machinery replays on
  //    the next Open.
  NF2_CHECK((*db)->Checkpoint().ok());
  std::printf("\nquickstart OK (database in %s)\n", dir.c_str());
  return 0;
}
