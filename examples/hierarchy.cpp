// Hierarchical (relation-valued) nesting — the Jaeschke–Schek algebra
// of the paper's reference [7], alongside the paper's simple-domain
// NFRs. Shows the two models on the same data: a university organized
// as departments -> students -> courses.
//
//   $ ./hierarchy

#include <cstdio>

#include "core/format.h"
#include "core/nest.h"
#include "nested/nested_relation.h"
#include "util/logging.h"

using namespace nf2;  // Example code; the library itself never does this.

int main() {
  std::printf("== Two nesting models on one dataset ==\n\n");

  FlatRelation flat = MakeStringRelation(
      {"Dept", "Student", "Course"},
      {{"math", "ada", "algebra"},
       {"math", "ada", "calculus"},
       {"math", "bob", "algebra"},
       {"cs", "eve", "crypto"},
       {"cs", "eve", "databases"},
       {"cs", "dan", "databases"}});
  std::printf("%s\n", RenderTable(flat, "1NF (6 rows)").c_str());

  // Model 1: the paper's simple-domain NFR — components are SETS of
  // atoms, tuples denote cross products.
  NfrRelation simple = CanonicalForm(flat, Permutation{2, 1, 0});
  std::printf("%s\n",
              RenderTable(simple, "paper-style NFR (set components)")
                  .c_str());
  std::printf(
      "  note: [ada | algebra,calculus] is a CROSS PRODUCT — fine here,\n"
      "  but it cannot say \"bob takes algebra only in dept math\" when\n"
      "  value combinations are not rectangular.\n\n");

  // Model 2: [7]'s hierarchical nesting — subrelations keep arbitrary
  // (non-rectangular) groupings.
  NestedRelation lifted = NestedRelation::FromFlat(flat);
  Result<NestedRelation> by_course = NestAttrs(lifted, {"Course"}, "Courses");
  NF2_CHECK(by_course.ok());
  Result<NestedRelation> by_student =
      NestAttrs(*by_course, {"Student", "Courses"}, "Students");
  NF2_CHECK(by_student.ok());
  std::printf("hierarchical NF² (one tuple per department):\n%s\n",
              by_student->ToString().c_str());

  // Unnesting recovers every original fact.
  Result<NestedRelation> level1 = UnnestAttr(*by_student, "Students");
  NF2_CHECK(level1.ok());
  Result<NestedRelation> level0 = UnnestAttr(*level1, "Courses");
  NF2_CHECK(level0.ok());
  Result<FlatRelation> back = level0->ToFlat();
  NF2_CHECK(back.ok());
  NF2_CHECK(back->size() == flat.size());
  std::printf("unnest x2 recovers all %zu rows — mu(nu(R)) = R.\n\n",
              back->size());

  // Where the simple model shines instead: same course sets collapse
  // ACROSS grouping values, which subrelations also expose as equal
  // values.
  Result<NestedRelation> regroup =
      NestAttrs(*by_course, {"Student"}, "WhoTakesThem");
  NF2_CHECK(regroup.ok());
  std::printf("grouping students by identical course sets:\n%s",
              regroup->ToString().c_str());

  std::printf("\nhierarchy example OK\n");
  return 0;
}
