// The §2 "power set" discussion, executable: CP[Course, Prerequisite]
// where Prerequisite is a SET-valued domain. Unlike SC[Student,
// Course] — where (a, {c1,c2}) just abbreviates two tuples — a
// prerequisite set is one atomic condition and must never be split.
// nf2db models this with the atomic kSet value type: NFR machinery
// (composition, nesting, the §4 updates) treats each set as a single
// element.
//
//   $ ./prerequisites

#include <cstdio>

#include "core/compose.h"
#include "core/format.h"
#include "core/nest.h"
#include "core/update.h"
#include "util/logging.h"

using namespace nf2;  // Example code; the library itself never does this.

namespace {
Value Prereq(std::initializer_list<const char*> courses) {
  std::vector<Value> elements;
  for (const char* c : courses) elements.push_back(V(c));
  return Value::SetOf(std::move(elements));
}
}  // namespace

int main() {
  std::printf("== Power-set domains: the paper's CP example (sec. 2) ==\n\n");

  // SC[Student, Course]: (a, {c1,c2}) just means two simple tuples.
  FlatRelation sc(Schema::OfStrings({"Student", "Course"}));
  sc.Insert(FlatTuple{V("a"), V("c1")});
  sc.Insert(FlatTuple{V("a"), V("c2")});
  NfrRelation sc_nested = NestOn(NfrRelation::FromFlat(sc), 1);
  std::printf("%s", RenderTable(sc_nested, "SC (splittable sets)").c_str());
  std::printf("  -> [a | c1,c2] abbreviates (a,c1) and (a,c2): %zu simple "
              "tuples\n\n",
              static_cast<size_t>(sc_nested.ExpandedSize()));

  // CP[Course, Prerequisite]: {c1,c2} is ONE condition. CP may also
  // contain (c0, {c1,c3}) as an alternative — and the two sets must
  // not merge into {c1,c2,c3}.
  Schema cp_schema({{"Course", ValueType::kString},
                    {"Prerequisite", ValueType::kSet}});
  CanonicalRelation cp(cp_schema, {1, 0});
  NF2_CHECK(cp.Insert(FlatTuple{V("c0"), Prereq({"c1", "c2"})}).ok());
  NF2_CHECK(cp.Insert(FlatTuple{V("c0"), Prereq({"c1", "c3"})}).ok());
  NF2_CHECK(cp.Insert(FlatTuple{V("c8"), Prereq({"c1", "c2"})}).ok());
  std::printf("%s",
              RenderTable(cp.relation(), "CP (atomic prerequisite sets)")
                  .c_str());
  std::printf(
      "  -> c0 has TWO alternative conditions; the sets stayed whole.\n\n");

  // Even the paper's (c0, {{c1,c2},{c1,c3}}) — a set of sets — works,
  // since set values nest.
  Value alternatives =
      Value::SetOf({Prereq({"c1", "c2"}), Prereq({"c1", "c3"})});
  FlatRelation cp2(Schema({{"Course", ValueType::kString},
                           {"Conditions", ValueType::kSet}}));
  cp2.Insert(FlatTuple{V("c0"), alternatives});
  std::printf("%s",
              RenderTable(cp2, "CP' (set-of-sets condition)").c_str());

  // Updates respect atomicity: dropping one alternative of c0.
  NF2_CHECK(cp.Delete(FlatTuple{V("c0"), Prereq({"c1", "c3"})}).ok());
  std::printf("\nafter deleting c0's {c1,c3} alternative:\n%s",
              RenderTable(cp.relation(), "CP").c_str());
  std::printf(
      "  -> c0 and c8 now share {c1,c2} and were composed over Course.\n");
  NF2_CHECK(cp.size() == 1);

  std::printf("\nprerequisites example OK\n");
  return 0;
}
