// Schema-design walkthrough: from declared FDs/MVDs to a "good" NFR.
// Follows §3.4: synthesize 3NF schemes from the FDs (Bernstein [13] —
// the paper assumes its inputs are "mechanically obtained" 3NF), check
// BCNF/4NF, and derive the nest permutation whose canonical form is
// fixed on the dependency left-hand sides.
//
//   $ ./schema_designer

#include <cstdio>

#include "core/fixedness.h"
#include "core/format.h"
#include "core/nest.h"
#include "dependency/chase.h"
#include "dependency/design.h"
#include "dependency/normalize.h"
#include "util/logging.h"

using namespace nf2;  // Example code; the library itself never does this.

int main() {
  std::printf("== Designing an NFR schema from dependencies ==\n\n");

  // A registrar universal schema.
  Schema schema = Schema::OfStrings(
      {"Student", "Course", "Club", "Advisor"});
  const size_t kStudent = 0, kCourse = 1, kClub = 2, kAdvisor = 3;

  // Declared dependencies: each student has one advisor (FD), and
  // courses/clubs vary independently per student (MVD).
  FdSet fds(schema.degree());
  fds.Add(AttrSet{kStudent}, AttrSet{kAdvisor});
  MvdSet mvds(schema.degree());
  mvds.Add(AttrSet{kStudent}, AttrSet{kCourse});

  std::printf("universal schema: %s\n", schema.ToString().c_str());
  std::printf("FDs:  %s\n", fds.ToString(schema).c_str());
  std::printf("MVDs: %s\n\n", mvds.ToString(schema).c_str());

  // Classic pipeline: keys, normal forms, 3NF synthesis.
  std::printf("candidate keys:");
  for (const AttrSet& key : fds.CandidateKeys()) {
    std::printf(" %s", key.ToString(schema).c_str());
  }
  std::printf("\nBCNF: %s   4NF: %s\n", IsBcnf(fds) ? "yes" : "no",
              Is4NF(fds, mvds) ? "yes" : "no");
  std::printf("\nBernstein 3NF synthesis (what a 1NF design would do):\n");
  for (const SubScheme& scheme : Synthesize3NF(fds)) {
    std::printf("  scheme %s\n", scheme.ToString(schema).c_str());
  }

  // What do the declared dependencies imply? The chase answers both
  // implication queries and the dependency basis of the would-be key.
  Chase chase(fds, mvds);
  std::printf("\nchase-derived facts:\n");
  std::printf("  Student ->-> Club implied: %s (complementation)\n",
              chase.Implies(Mvd{AttrSet{kStudent}, AttrSet{kClub}})
                  ? "yes"
                  : "no");
  std::printf("  Student -> Course implied: %s (courses vary freely)\n",
              chase.Implies(Fd{AttrSet{kStudent}, AttrSet{kCourse}})
                  ? "yes"
                  : "no");
  std::printf("  dependency basis of {Student}:");
  for (const AttrSet& block : chase.DependencyBasis(AttrSet{kStudent})) {
    std::printf(" %s", block.ToString(schema).c_str());
  }
  std::printf("\n");

  // Sample data respecting the dependencies.
  FlatRelation data(schema);
  struct Row {
    const char *s, *advisor;
    std::vector<const char*> courses, clubs;
  };
  std::vector<Row> rows = {
      {"ada", "prof_x", {"algebra", "calculus"}, {"chess", "karate"}},
      {"bob", "prof_y", {"algebra"}, {"chess"}},
      {"eve", "prof_x", {"crypto", "calculus"}, {"go"}},
  };
  for (const Row& row : rows) {
    for (const char* c : row.courses) {
      for (const char* b : row.clubs) {
        data.Insert(FlatTuple{V(row.s), V(c), V(b), V(row.advisor)});
      }
    }
  }
  NF2_CHECK(fds.SatisfiedBy(data));
  NF2_CHECK(mvds.SatisfiedBy(data));
  std::printf("\nsample data: %zu 1NF rows\n\n", data.size());

  // The §3.4 move: keep ONE relation, nest dependents first.
  DesignReport report = AnalyzeDesign(data, fds, mvds);
  std::printf("NFR design report:\n%s\n\n",
              report.ToString(schema).c_str());
  NfrRelation nfr = CanonicalForm(data, report.advised);
  std::printf("%s\n", RenderTable(nfr, "the single NFR").c_str());

  // The payoff promised by Theorems 3-5.
  NF2_CHECK(IsFixedOn(nfr, {kStudent}))
      << "canonical form should be fixed on the dependency LHS";
  std::printf("fixed on {Student}: yes — one tuple per student entity.\n");
  std::printf(
      "Advisor cardinality class: %s (an FD-dependent attribute),\n"
      "Course  cardinality class: %s (an MVD-dependent attribute).\n",
      CardinalityClassToString(ClassifyAttribute(nfr, kAdvisor)),
      CardinalityClassToString(ClassifyAttribute(nfr, kCourse)));

  // Compare against the best and worst data-aware orders.
  Permutation best = BestPermutationBySize(data);
  std::printf(
      "\ntuple counts: advised=%zu, exhaustive-best=%zu, 1NF=%zu\n",
      nfr.size(), CanonicalForm(data, best).size(), data.size());

  std::printf("\nschema_designer example OK\n");
  return 0;
}
