// Perf-trajectory harness: times the dictionary-encoded hot paths
// against the retained Value-keyed legacy paths on the same workloads
// and emits a machine-readable JSON file (default BENCH_PR1.json, or
// argv[1]) so successive PRs leave a comparable throughput record.
//
// Measured sections (keyed workload, see bench/workload.h):
//   canonical_form — CanonicalFormLegacy vs CanonicalForm over a 10k-row
//                    keyed relation (rows/sec).
//   insert_delete  — CanonicalRelation Encoding::kValue vs kInterned,
//                    both SearchMode::kIndexed, over an insert+delete
//                    stream (ops/sec), with the §4 algebra counters
//                    asserted bit-identical across encodings.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "bench/workload.h"
#include "core/nest.h"
#include "core/update.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace bench {
namespace {

double SecondsOf(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Best-of-N wall time — robust to scheduler noise without averaging in
/// warm-up effects.
double BestSeconds(int repetitions, const std::function<void()>& fn) {
  double best = SecondsOf(fn);
  for (int i = 1; i < repetitions; ++i) {
    best = std::min(best, SecondsOf(fn));
  }
  return best;
}

struct Section {
  std::string name;
  size_t operations = 0;      // Units the throughput is measured in.
  double baseline_sec = 0.0;  // Legacy Value path.
  double optimized_sec = 0.0; // Interned path.
  uint64_t baseline_compositions = 0;
  uint64_t optimized_compositions = 0;
  uint64_t baseline_decompositions = 0;
  uint64_t optimized_decompositions = 0;
  bool counters_identical = true;

  double BaselineOps() const { return operations / baseline_sec; }
  double OptimizedOps() const { return operations / optimized_sec; }
  double Speedup() const { return baseline_sec / optimized_sec; }
};

Section BenchCanonicalForm(const FlatRelation& flat,
                           const Permutation& perm, int reps) {
  Section out;
  out.name = "canonical_form";
  out.operations = flat.size();
  NfrRelation legacy(flat.schema());
  NfrRelation interned(flat.schema());
  out.baseline_sec =
      BestSeconds(reps, [&] { legacy = CanonicalFormLegacy(flat, perm); });
  out.optimized_sec =
      BestSeconds(reps, [&] { interned = CanonicalForm(flat, perm); });
  // Nesting performs no §4 algebra, so the comparable "count" here is
  // the result itself: both paths must produce the same canonical form
  // (Theorem 2 uniqueness makes set equality the right check).
  NF2_CHECK(legacy.EqualsAsSet(interned))
      << "interned canonical form diverged from legacy";
  return out;
}

Section BenchInsertDelete(const FlatRelation& flat, const Permutation& perm,
                          size_t stream_rows) {
  Section out;
  out.name = "insert_delete";
  // Split: bulk-load everything but the tail, then run the tail as an
  // insert stream followed by a delete stream of the same tuples.
  std::vector<FlatTuple> base_rows(flat.tuples().begin(),
                                   flat.tuples().end() - stream_rows);
  std::vector<FlatTuple> stream(flat.tuples().end() - stream_rows,
                                flat.tuples().end());
  out.operations = 2 * stream.size();

  auto run = [&](CanonicalRelation::Encoding encoding, double* seconds,
                 UpdateStats* stats) {
    FlatRelation base(flat.schema(), std::vector<FlatTuple>(base_rows));
    Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(
        base, perm, CanonicalRelation::SearchMode::kIndexed, encoding);
    NF2_CHECK(rel.ok()) << rel.status().ToString();
    rel->mutable_stats()->Reset();
    *seconds = SecondsOf([&] {
      for (const FlatTuple& t : stream) {
        Status s = rel->Insert(t);
        NF2_CHECK(s.ok()) << s.ToString();
      }
      for (const FlatTuple& t : stream) {
        Status s = rel->Delete(t);
        NF2_CHECK(s.ok()) << s.ToString();
      }
    });
    *stats = rel->stats();
  };

  UpdateStats value_stats;
  UpdateStats interned_stats;
  run(CanonicalRelation::Encoding::kValue, &out.baseline_sec, &value_stats);
  run(CanonicalRelation::Encoding::kInterned, &out.optimized_sec,
      &interned_stats);

  out.baseline_compositions = value_stats.compositions;
  out.optimized_compositions = interned_stats.compositions;
  out.baseline_decompositions = value_stats.decompositions;
  out.optimized_decompositions = interned_stats.decompositions;
  out.counters_identical =
      value_stats.compositions == interned_stats.compositions &&
      value_stats.decompositions == interned_stats.decompositions &&
      value_stats.recons_calls == interned_stats.recons_calls &&
      value_stats.candidate_scans == interned_stats.candidate_scans;
  NF2_CHECK(out.counters_identical)
      << "encoding changed the §4 algebra: value="
      << value_stats.ToString()
      << " interned=" << interned_stats.ToString();
  return out;
}

void WriteJson(const std::string& path, const KeyedConfig& config,
               const std::vector<Section>& sections) {
  std::ofstream file(path, std::ios::trunc);
  NF2_CHECK(file.is_open()) << "cannot write " << path;
  file << "{\n";
  file << "  \"pr\": 1,\n";
  file << "  \"title\": \"dictionary-encoded atoms\",\n";
  file << "  \"workload\": {\"generator\": \"keyed\", \"rows\": "
       << config.rows << ", \"degree\": " << config.degree
       << ", \"value_pool\": " << config.value_pool
       << ", \"seed\": " << config.seed << "},\n";
  file << "  \"sections\": [\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    const Section& s = sections[i];
    file << "    {\n";
    file << "      \"name\": \"" << s.name << "\",\n";
    file << "      \"operations\": " << s.operations << ",\n";
    file << "      \"baseline_ops_per_sec\": " << Fmt(s.BaselineOps(), 1)
         << ",\n";
    file << "      \"optimized_ops_per_sec\": " << Fmt(s.OptimizedOps(), 1)
         << ",\n";
    file << "      \"speedup\": " << Fmt(s.Speedup(), 3) << ",\n";
    file << "      \"baseline_compositions\": " << s.baseline_compositions
         << ",\n";
    file << "      \"optimized_compositions\": " << s.optimized_compositions
         << ",\n";
    file << "      \"baseline_decompositions\": "
         << s.baseline_decompositions << ",\n";
    file << "      \"optimized_decompositions\": "
         << s.optimized_decompositions << ",\n";
    file << "      \"counters_identical\": "
         << (s.counters_identical ? "true" : "false") << "\n";
    file << "    }" << (i + 1 < sections.size() ? "," : "") << "\n";
  }
  file << "  ]\n";
  file << "}\n";
}

int Main(int argc, char** argv) {
  std::string out_path = argc > 1 ? argv[1] : "BENCH_PR1.json";
  KeyedConfig config;
  config.rows = 10000;
  config.degree = 4;
  config.value_pool = 8;
  config.seed = 44;
  FlatRelation flat = GenerateKeyed(config);
  Permutation perm;
  // Nest the dependent attributes first, key last — the grouping-heavy
  // order for the keyed workload.
  for (size_t i = 1; i < config.degree; ++i) perm.push_back(i);
  perm.push_back(0);

  std::vector<Section> sections;
  sections.push_back(BenchCanonicalForm(flat, perm, /*reps=*/3));
  sections.push_back(BenchInsertDelete(flat, perm, /*stream_rows=*/1000));
  WriteJson(out_path, config, sections);

  std::vector<std::vector<std::string>> rows;
  for (const Section& s : sections) {
    rows.push_back({s.name, StrCat(s.operations),
                    Fmt(s.BaselineOps(), 0), Fmt(s.OptimizedOps(), 0),
                    StrCat("x", Fmt(s.Speedup(), 2)),
                    s.counters_identical ? "yes" : "NO"});
  }
  PrintReportTable(
      StrCat("PERF TRAJECTORY (written to ", out_path, ")"),
      {"section", "ops", "baseline/s", "interned/s", "speedup",
       "counts equal"},
      rows);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nf2

int main(int argc, char** argv) { return nf2::bench::Main(argc, argv); }
