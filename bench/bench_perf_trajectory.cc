// Perf-trajectory harness: times the dictionary-encoded hot paths
// against the retained Value-keyed legacy paths on the same workloads
// and emits a machine-readable JSON file (default BENCH_PR9.json, or
// argv[1]) so successive PRs leave a comparable throughput record.
// argv[2] overrides the workload row count (CI runs a small smoke
// workload; section names and per-op rates stay comparable).
//
// The wal_durability section also snapshots the engine's
// MetricsRegistry (Database::MetricsSnapshot) after the durable run and
// embeds the WAL / buffer-pool / §4 counters in the JSON.
//
// Measured sections (keyed workload, see bench/workload.h):
//   canonical_form — CanonicalFormLegacy vs CanonicalForm over a 10k-row
//                    keyed relation (rows/sec).
//   insert_delete  — CanonicalRelation Encoding::kValue vs kInterned,
//                    both SearchMode::kIndexed, over an insert+delete
//                    stream (ops/sec), with the §4 algebra counters
//                    asserted bit-identical across encodings.
//   wal_durability — the full Database insert+delete path with the WAL
//                    fdatasync'd at every commit point (sync_wal=true,
//                    the default) vs unsynced (sync_wal=false), ops
//                    batched in transactions so group commit amortizes
//                    the sync. Reports the durability overhead, which
//                    must stay under 10%.
//   server_read_scaling — SELECT COUNT(*) round-trips through a live
//                    nf2d server from 1 vs 4 concurrent clients (2 also
//                    recorded); Speedup() is the 1->4 read-scaling
//                    factor of the shared-reader gate.
//   pipelining     — the same read workload shipped as 64 v0 kQuery
//                    round-trips (baseline) vs one v1 kBatch frame of
//                    64 statements (optimized) on a single connection;
//                    Speedup() is the batch-over-singles factor, and the
//                    section embeds the parsed-statement-cache hit rate
//                    observed during the runs.
//   indexed_selection — point selection (attr = value) over the keyed
//                    workload: full-scan-and-filter (baseline) vs the
//                    planner's index-backed access path (optimized),
//                    both through the exec/ operators; per-query row
//                    sets asserted identical.
//   factorized_aggregation — COUNT(*) by expand-then-scan over R*
//                    (baseline) vs the factorized aggregate straight
//                    over the NFR components (optimized), at nesting
//                    depths 1..3; per-depth speedups are embedded and
//                    must grow with depth (the expansion is
//                    exponential in depth, the factorized cost linear).
//   sharded_scatter_gather — 4 concurrent writers issuing point-routed
//                    autocommit INSERTs through a ShardRouter with 1
//                    shard (baseline: every write serializes through
//                    one engine gate + WAL lane) vs 4 shards
//                    (optimized: keys hash across 4 independent
//                    engines); Speedup() is shard_write_speedup_4_vs_1.
//                    After each load a scattered SELECT COUNT(*) must
//                    equal the exact row total on both sides — the
//                    correctness half of the gate. bench_check.py
//                    --shard-floor enforces the speedup only when
//                    host_cores >= 4 (mirroring the scaling-floor
//                    rule); the skip is logged into the section JSON.
//   replica_catchup — primary ingest of N autocommit inserts
//                    (baseline) vs a cold follower replaying the
//                    shipped WAL to the primary's head through a live
//                    hub + Replicator (optimized); Speedup() is the
//                    apply-over-ingest rate ratio, gated by
//                    bench_check.py --replica-lag-floor (below 1.0 a
//                    replica falls behind under sustained load), and
//                    the follower's canonical form must render
//                    bit-identical to the primary's.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/workload.h"
#include "core/format.h"
#include "core/nest.h"
#include "core/update.h"
#include "engine/database.h"
#include "exec/plan.h"
#include "server/client.h"
#include "server/replication.h"
#include "server/server.h"
#include "shard/router.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace bench {
namespace {

double SecondsOf(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Best-of-N wall time — robust to scheduler noise without averaging in
/// warm-up effects.
double BestSeconds(int repetitions, const std::function<void()>& fn) {
  double best = SecondsOf(fn);
  for (int i = 1; i < repetitions; ++i) {
    best = std::min(best, SecondsOf(fn));
  }
  return best;
}

struct Section {
  std::string name;
  size_t operations = 0;      // Units the throughput is measured in.
  double baseline_sec = 0.0;  // Legacy Value path.
  double optimized_sec = 0.0; // Interned path.
  uint64_t baseline_compositions = 0;
  uint64_t optimized_compositions = 0;
  uint64_t baseline_decompositions = 0;
  uint64_t optimized_decompositions = 0;
  uint64_t baseline_syncs = 0;   // wal_durability only.
  uint64_t optimized_syncs = 0;  // wal_durability only.
  int baseline_clients = 0;   // server_read_scaling only.
  int optimized_clients = 0;  // server_read_scaling only.
  double mid_sec = 0.0;       // server_read_scaling only: 2-client run.
  size_t batch_size = 0;           // pipelining only.
  uint64_t stmtcache_hits = 0;     // pipelining only.
  uint64_t stmtcache_misses = 0;   // pipelining only.
  std::vector<size_t> depths;          // factorized_aggregation only.
  std::vector<double> depth_speedups;  // factorized_aggregation only.
  size_t shards_baseline = 0;          // sharded_scatter_gather only.
  size_t shards_optimized = 0;         // sharded_scatter_gather only.
  int shard_writers = 0;               // sharded_scatter_gather only.
  size_t ckpt_small_rows = 0;          // checkpoint_latency only.
  size_t ckpt_large_rows = 0;          // checkpoint_latency only.
  double ckpt_full_small_sec = 0.0;    // checkpoint_latency only.
  double ckpt_full_large_sec = 0.0;    // checkpoint_latency only.
  uint64_t ckpt_pages_written = 0;     // checkpoint_latency only.
  uint64_t ckpt_pages_skipped = 0;     // checkpoint_latency only.
  bool counters_identical = true;

  double StmtCacheHitRate() const {
    const uint64_t total = stmtcache_hits + stmtcache_misses;
    return total == 0 ? 0.0 : static_cast<double>(stmtcache_hits) / total;
  }

  double BaselineOps() const { return operations / baseline_sec; }
  double OptimizedOps() const { return operations / optimized_sec; }
  double Speedup() const { return baseline_sec / optimized_sec; }
  /// How much slower the optimized (for wal_durability: durable) run is
  /// than the baseline; negative when it is faster.
  double OverheadFrac() const { return optimized_sec / baseline_sec - 1.0; }
};

Section BenchCanonicalForm(const FlatRelation& flat,
                           const Permutation& perm, int reps) {
  Section out;
  out.name = "canonical_form";
  out.operations = flat.size();
  NfrRelation legacy(flat.schema());
  NfrRelation interned(flat.schema());
  out.baseline_sec =
      BestSeconds(reps, [&] { legacy = CanonicalFormLegacy(flat, perm); });
  out.optimized_sec =
      BestSeconds(reps, [&] { interned = CanonicalForm(flat, perm); });
  // Nesting performs no §4 algebra, so the comparable "count" here is
  // the result itself: both paths must produce the same canonical form
  // (Theorem 2 uniqueness makes set equality the right check).
  NF2_CHECK(legacy.EqualsAsSet(interned))
      << "interned canonical form diverged from legacy";
  return out;
}

Section BenchInsertDelete(const FlatRelation& flat, const Permutation& perm,
                          size_t stream_rows) {
  Section out;
  out.name = "insert_delete";
  // Split: bulk-load everything but the tail, then run the tail as an
  // insert stream followed by a delete stream of the same tuples.
  std::vector<FlatTuple> base_rows(flat.tuples().begin(),
                                   flat.tuples().end() - stream_rows);
  std::vector<FlatTuple> stream(flat.tuples().end() - stream_rows,
                                flat.tuples().end());
  out.operations = 2 * stream.size();

  auto run = [&](CanonicalRelation::Encoding encoding, double* seconds,
                 UpdateStats* stats) {
    FlatRelation base(flat.schema(), std::vector<FlatTuple>(base_rows));
    Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(
        base, perm, CanonicalRelation::SearchMode::kIndexed, encoding);
    NF2_CHECK(rel.ok()) << rel.status().ToString();
    rel->mutable_stats()->Reset();
    *seconds = SecondsOf([&] {
      for (const FlatTuple& t : stream) {
        Status s = rel->Insert(t);
        NF2_CHECK(s.ok()) << s.ToString();
      }
      for (const FlatTuple& t : stream) {
        Status s = rel->Delete(t);
        NF2_CHECK(s.ok()) << s.ToString();
      }
    });
    *stats = rel->stats();
  };

  UpdateStats value_stats;
  UpdateStats interned_stats;
  run(CanonicalRelation::Encoding::kValue, &out.baseline_sec, &value_stats);
  run(CanonicalRelation::Encoding::kInterned, &out.optimized_sec,
      &interned_stats);

  out.baseline_compositions = value_stats.compositions;
  out.optimized_compositions = interned_stats.compositions;
  out.baseline_decompositions = value_stats.decompositions;
  out.optimized_decompositions = interned_stats.decompositions;
  out.counters_identical =
      value_stats.compositions == interned_stats.compositions &&
      value_stats.decompositions == interned_stats.decompositions &&
      value_stats.recons_calls == interned_stats.recons_calls &&
      value_stats.candidate_scans == interned_stats.candidate_scans;
  NF2_CHECK(out.counters_identical)
      << "encoding changed the §4 algebra: value="
      << value_stats.ToString()
      << " interned=" << interned_stats.ToString();
  return out;
}

/// The full engine path: WAL append + §4 algebra per op, with ops
/// batched in transactions of `batch` so the sync_wal=true run pays one
/// fdatasync per batch (group commit). Baseline = sync_wal=false,
/// "optimized" = the durable default; Speedup() < 1 by construction and
/// 1 - Speedup() is the durability overhead the PR bounds at 10%.
Section BenchWalDurability(const FlatRelation& flat, const Permutation& perm,
                           size_t stream_rows, size_t batch, int cycles,
                           int reps, MetricsSnapshot* durable_metrics) {
  Section out;
  out.name = "wal_durability";
  std::vector<FlatTuple> stream(flat.tuples().end() - stream_rows,
                                flat.tuples().end());
  // Each cycle inserts the whole stream then deletes it again; the last
  // cycle deletes only half so the final Scan comparison is nontrivial.
  // Several cycles per timed run keep the run long enough (seconds) that
  // millisecond-scale scheduler noise cannot mask the sync cost.
  const size_t last_deletes = stream.size() / 2;
  out.operations =
      cycles * stream.size() + (cycles - 1) * stream.size() + last_deletes;

  auto run_once = [&](bool sync, uint64_t* syncs,
                      FlatRelation* final_scan) -> double {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         (sync ? "nf2_bench_wal_sync" : "nf2_bench_wal_nosync"))
            .string();
    std::filesystem::remove_all(dir);
    // Default engine configuration: FD enforcement on, with the keyed
    // workload's key FD declared — per-op cost is the real engine path,
    // not an artificially WAL-dominated one.
    Database::Options options;
    options.sync_wal = sync;
    Result<std::unique_ptr<Database>> db = Database::Open(dir, options);
    NF2_CHECK(db.ok()) << db.status().ToString();
    AttrSet dependents;
    for (size_t i = 1; i < flat.schema().degree(); ++i) dependents.Add(i);
    Status created = (*db)->CreateRelation(
        "bench", flat.schema(), perm, {Fd{AttrSet{0}, dependents}});
    NF2_CHECK(created.ok()) << created.ToString();
    const uint64_t syncs_before = (*db)->wal_sync_count();
    double sec = SecondsOf([&] {
      size_t in_batch = 0;
      NF2_CHECK((*db)->Begin().ok());
      auto step = [&](Status s) {
        NF2_CHECK(s.ok()) << s.ToString();
        if (++in_batch == batch) {
          NF2_CHECK((*db)->Commit().ok());
          NF2_CHECK((*db)->Begin().ok());
          in_batch = 0;
        }
      };
      for (int cycle = 0; cycle < cycles; ++cycle) {
        for (const FlatTuple& t : stream) step((*db)->Insert("bench", t));
        const size_t n_del =
            cycle + 1 < cycles ? stream.size() : last_deletes;
        for (size_t i = 0; i < n_del; ++i) {
          step((*db)->Delete("bench", stream[i]));
        }
      }
      NF2_CHECK((*db)->Commit().ok());
    });
    *syncs = (*db)->wal_sync_count() - syncs_before;
    Result<FlatRelation> scan = (*db)->Scan("bench");
    NF2_CHECK(scan.ok()) << scan.status().ToString();
    *final_scan = *std::move(scan);
    if (sync && durable_metrics != nullptr) {
      *durable_metrics = (*db)->MetricsSnapshot();
    }
    db->reset();  // Checkpoint + close outside the timed region.
    std::filesystem::remove_all(dir);
    return sec;
  };

  // Drain writeback of unrelated dirty pages (e.g. a build that just
  // finished) so background flushing doesn't pollute the timed runs.
  ::sync();

  // Interleaved pairs, median per side: on a single-CPU box, periodic
  // journal commits and writeback bursts add tens of ms to the odd run;
  // the median absorbs those spikes where min-of-N is skewed by one
  // unusually clean run on either side.
  FlatRelation nosync_scan(flat.schema());
  FlatRelation sync_scan(flat.schema());
  std::vector<double> base_secs, opt_secs;
  for (int i = 0; i < reps; ++i) {
    base_secs.push_back(run_once(false, &out.baseline_syncs, &nosync_scan));
    opt_secs.push_back(run_once(true, &out.optimized_syncs, &sync_scan));
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  out.baseline_sec = median(base_secs);
  out.optimized_sec = median(opt_secs);
  out.counters_identical = nosync_scan == sync_scan &&
                           out.baseline_syncs == 0 && out.optimized_syncs > 0;
  NF2_CHECK(out.counters_identical)
      << "sync_wal changed the engine result (or sync counts are off): "
      << "baseline_syncs=" << out.baseline_syncs
      << " durable_syncs=" << out.optimized_syncs;
  return out;
}

/// Multi-client read throughput through the full nf2d stack: TCP frame
/// protocol -> worker pool -> snapshot read path -> executor. The same
/// total query count is issued by 1, 2, and 4 concurrent clients
/// (baseline = 1 client, optimized = 4), so Speedup() is directly the
/// 1->4 read-scaling factor. Every run races a write trickle: a
/// background client committing autocommit inserts into a separate
/// "trickle" relation, so readers contend with real publishes while
/// the benched COUNT stays constant. Under the old shared gate the
/// trickle would serialize against every read; under MVCC snapshots
/// readers never block on it. bench_check.py enforces the floor only
/// when host_cores >= 4, since concurrency cannot beat 1x on a single
/// core.
Section BenchServerReadScaling(const FlatRelation& flat,
                               const Permutation& perm,
                               size_t total_queries) {
  Section out;
  out.name = "server_read_scaling";
  out.operations = total_queries;
  out.baseline_clients = 1;
  out.optimized_clients = 4;

  const std::string dir = (std::filesystem::temp_directory_path() /
                           "nf2_bench_server_scaling")
                              .string();
  std::filesystem::remove_all(dir);
  Result<std::unique_ptr<Database>> db = Database::Open(dir);
  NF2_CHECK(db.ok()) << db.status().ToString();
  NF2_CHECK((*db)->CreateRelation("bench", flat.schema(), perm, {}).ok());
  for (const FlatTuple& t : flat.tuples()) {
    NF2_CHECK((*db)->Insert("bench", t).ok());
  }
  NF2_CHECK((*db)
                ->CreateRelation("trickle", Schema::OfStrings({"K", "V"}),
                                 {0, 1}, {})
                .ok())
      << "trickle relation";
  const std::string expected = StrCat(flat.size());

  server::ServerOptions options;
  options.port = 0;
  options.workers = 5;  // 4 read clients + the write trickle.
  server::Server srv(db->get(), options);
  NF2_CHECK(srv.Start().ok());

  std::atomic<bool> all_correct{true};
  // Monotone across runs so the trickle never re-inserts a tuple it
  // already committed in an earlier run (kAlreadyExists).
  uint64_t trickle_seq = 0;
  auto run_clients = [&](int clients) -> double {
    std::vector<server::Client> conns;
    conns.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      auto conn = server::Client::Connect("127.0.0.1", srv.port());
      NF2_CHECK(conn.ok()) << conn.status().ToString();
      conns.push_back(*std::move(conn));
    }
    auto trickler = server::Client::Connect("127.0.0.1", srv.port());
    NF2_CHECK(trickler.ok()) << trickler.status().ToString();
    std::atomic<bool> stop_trickle{false};
    const size_t per_client = total_queries / clients;
    double sec = SecondsOf([&] {
      // The trickle: steady autocommit writes (each one a WAL append,
      // a §4 insert, and a snapshot publish) into a relation the
      // readers never touch, paced so it contends without dominating a
      // small host.
      std::thread trickle([&] {
        while (!stop_trickle.load(std::memory_order_acquire)) {
          const uint64_t i = trickle_seq++;
          auto r = trickler->Execute(
              StrCat("INSERT INTO trickle VALUES (k", i % 97, ", v", i, ")"));
          if (!r.ok()) all_correct = false;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (size_t q = 0; q < per_client; ++q) {
            auto r = conns[c].Execute("SELECT COUNT(*) FROM bench");
            if (!r.ok() || *r != expected) all_correct = false;
          }
        });
      }
      for (std::thread& t : threads) t.join();
      stop_trickle.store(true, std::memory_order_release);
      trickle.join();
    });
    for (server::Client& conn : conns) NF2_CHECK(conn.Quit().ok());
    NF2_CHECK(trickler->Quit().ok());
    return sec;
  };

  // Warm-up, then one timed run per client count (each run already
  // aggregates thousands of round-trips, so per-run noise is small).
  (void)run_clients(1);
  out.baseline_sec = run_clients(1);
  out.mid_sec = run_clients(2);
  out.optimized_sec = run_clients(4);
  out.counters_identical = all_correct.load();
  NF2_CHECK(out.counters_identical)
      << "a concurrent read returned the wrong count (or a trickle "
         "write failed)";

  srv.Stop();
  db->reset();
  std::filesystem::remove_all(dir);
  return out;
}

/// Protocol-v1 pipelining through the full nf2d stack on ONE
/// connection: the same `rounds * batch_size` read-only statements are
/// issued as individual v0 kQuery round-trips (baseline) and as v1
/// kBatch frames of `batch_size` statements (optimized). The batch path
/// saves per-statement frame turnarounds AND per-statement gate
/// acquisitions (a read run shares one LockShared), so the acceptance
/// floor is 2x. The parsed-statement cache serves every repeat of the
/// statement text; its hit rate over the bench is embedded in the JSON
/// (the workload repeats one statement, so it must be well above 90%).
Section BenchPipelining(const FlatRelation& flat, const Permutation& perm,
                        size_t batch_size, int rounds, int reps) {
  Section out;
  out.name = "pipelining";
  out.batch_size = batch_size;
  out.operations = batch_size * rounds;

  const std::string dir = (std::filesystem::temp_directory_path() /
                           "nf2_bench_pipelining")
                              .string();
  std::filesystem::remove_all(dir);
  Result<std::unique_ptr<Database>> db = Database::Open(dir);
  NF2_CHECK(db.ok()) << db.status().ToString();
  NF2_CHECK((*db)->CreateRelation("bench", flat.schema(), perm, {}).ok());
  for (const FlatTuple& t : flat.tuples()) {
    NF2_CHECK((*db)->Insert("bench", t).ok());
  }
  const std::string expected = StrCat(flat.size());

  server::ServerOptions options;
  options.port = 0;
  options.workers = 4;
  server::Server srv(db->get(), options);
  NF2_CHECK(srv.Start().ok());
  auto conn = server::Client::Connect("127.0.0.1", srv.port());
  NF2_CHECK(conn.ok()) << conn.status().ToString();

  const std::vector<std::string> batch(batch_size,
                                       "SELECT COUNT(*) FROM bench");
  bool all_correct = true;
  auto run_singles = [&] {
    for (int r = 0; r < rounds; ++r) {
      for (size_t q = 0; q < batch_size; ++q) {
        auto reply = conn->Execute(batch[q]);
        if (!reply.ok() || *reply != expected) all_correct = false;
      }
    }
  };
  auto run_batches = [&] {
    for (int r = 0; r < rounds; ++r) {
      auto replies = conn->ExecuteBatch(batch);
      NF2_CHECK(replies.ok()) << replies.status().ToString();
      if (replies->size() != batch_size) all_correct = false;
      for (const auto& reply : *replies) {
        if (!reply.ok() || *reply != expected) all_correct = false;
      }
    }
  };

  // One warm-up pass each: populates the statement cache (the first
  // parse is the only expected miss) and faults in the relation pages.
  run_singles();
  run_batches();
  const MetricsSnapshot warm = (*db)->MetricsSnapshot();
  const uint64_t hits_before = warm.counter("nf2_stmtcache_hits_total");
  const uint64_t misses_before = warm.counter("nf2_stmtcache_misses_total");

  out.baseline_sec = BestSeconds(reps, run_singles);
  out.optimized_sec = BestSeconds(reps, run_batches);

  const MetricsSnapshot after = (*db)->MetricsSnapshot();
  out.stmtcache_hits = after.counter("nf2_stmtcache_hits_total") - hits_before;
  out.stmtcache_misses =
      after.counter("nf2_stmtcache_misses_total") - misses_before;
  out.counters_identical = all_correct;
  NF2_CHECK(out.counters_identical)
      << "a pipelined read returned the wrong count";

  NF2_CHECK(conn->Quit().ok());
  srv.Stop();
  db->reset();
  std::filesystem::remove_all(dir);
  return out;
}

/// Drains `op` (Open -> Next* -> Close) and returns the emitted rows.
std::vector<FlatTuple> DrainOp(PlanOp* op) {
  std::vector<FlatTuple> rows;
  op->Open();
  FlatTuple row;
  while (op->Next(&row)) rows.push_back(row);
  op->Close();
  return rows;
}

/// Point selection through the exec/ operators: for each probed key,
/// the baseline expands the whole stored NFR and filters (seq scan +
/// filter), the optimized path asks the inverted index for the
/// containing tuples and expands only the restricted fragment
/// (IndexScanOp). Both paths must return identical row sets per query.
Section BenchIndexedSelection(const FlatRelation& flat,
                              const Permutation& perm, size_t queries,
                              int reps) {
  Section out;
  out.name = "indexed_selection";
  out.operations = queries;

  Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(
      flat, perm, CanonicalRelation::SearchMode::kIndexed,
      CanonicalRelation::Encoding::kInterned);
  NF2_CHECK(rel.ok()) << rel.status().ToString();

  // Probe keys cycle over the key domain (attr 0 of the keyed
  // workload), so every query selects exactly one underlying row.
  std::vector<Value> keys;
  keys.reserve(queries);
  for (size_t q = 0; q < queries; ++q) {
    keys.push_back(Value::String(StrCat("k", q % flat.size())));
  }

  bool rows_identical = true;
  auto run_scan = [&] {
    for (const Value& key : keys) {
      auto scan = std::make_unique<SeqScanOp>("scan", &rel->relation());
      FilterOp filter("filter", std::move(scan),
                      Predicate::Compare(0, CompareOp::kEq, key));
      if (DrainOp(&filter).size() != 1) rows_identical = false;
    }
  };
  auto run_index = [&] {
    for (const Value& key : keys) {
      IndexScanOp index_scan("index_scan", &*rel, /*frozen_dict=*/nullptr,
                             {EqRestriction{0, key}});
      if (DrainOp(&index_scan).size() != 1) rows_identical = false;
    }
  };

  out.baseline_sec = BestSeconds(reps, run_scan);
  out.optimized_sec = BestSeconds(reps, run_index);
  out.counters_identical = rows_identical;
  NF2_CHECK(out.counters_identical)
      << "a point selection returned the wrong row count";
  return out;
}

/// Builds a depth-`d` nested relation: `groups` NFR tuples, each with a
/// singleton group key and `d` independent set components of `fanout`
/// values — so every tuple expands to fanout^d simple tuples.
NfrRelation MakeDeepRelation(size_t groups, size_t depth, size_t fanout) {
  std::vector<std::string> names;
  names.push_back("G");
  for (size_t j = 0; j < depth; ++j) names.push_back(StrCat("E", j + 1));
  NfrRelation rel{Schema::OfStrings(names)};
  for (size_t g = 0; g < groups; ++g) {
    std::vector<ValueSet> components;
    components.push_back(ValueSet(Value::String(StrCat("g", g))));
    for (size_t j = 0; j < depth; ++j) {
      std::vector<Value> values;
      for (size_t v = 0; v < fanout; ++v) {
        values.push_back(Value::String(StrCat("e", j, "_", v)));
      }
      components.push_back(ValueSet(std::move(values)));
    }
    rel.Add(NfrTuple(std::move(components)));
  }
  return rel;
}

/// COUNT(*) at nesting depths 1..3: expand-then-scan (AggregateOp over
/// a SeqScanOp, which materializes every simple tuple) vs the
/// factorized aggregate (component-cardinality products over the NFR,
/// zero expansion). The per-depth speedups are recorded and must grow:
/// the expansion is fanout^depth while the factorized cost is linear in
/// depth.
Section BenchFactorizedAggregation(size_t groups, size_t fanout, int reps) {
  Section out;
  out.name = "factorized_aggregation";

  std::vector<AggCompute> count_star{AggCompute{}};  // COUNT(*).
  Schema count_schema({{"COUNT(*)", ValueType::kInt}});

  for (size_t depth = 1; depth <= 3; ++depth) {
    NfrRelation rel = MakeDeepRelation(groups, depth, fanout);
    size_t expanded = groups;
    for (size_t j = 0; j < depth; ++j) expanded *= fanout;
    out.operations += expanded;

    int64_t scan_count = -1, factorized_count = -1;
    double scan_sec = BestSeconds(reps, [&] {
      auto scan = std::make_unique<SeqScanOp>("scan", &rel);
      AggregateOp agg("aggregate", std::move(scan), std::nullopt,
                      count_star, count_schema);
      scan_count = DrainOp(&agg).at(0).at(0).AsInt();
    });
    double fact_sec = BestSeconds(reps, [&] {
      auto source = std::make_unique<NfrSourceOp>("nfr_scan", &rel);
      FactorizedAggregateOp agg("nfr_aggregate", std::move(source),
                                std::nullopt, count_star, count_schema);
      factorized_count = DrainOp(&agg).at(0).at(0).AsInt();
    });
    NF2_CHECK(scan_count == factorized_count &&
              scan_count == static_cast<int64_t>(expanded))
        << "COUNT(*) diverged at depth " << depth << ": scan="
        << scan_count << " factorized=" << factorized_count
        << " expected=" << expanded;
    out.baseline_sec += scan_sec;
    out.optimized_sec += fact_sec;
    out.depths.push_back(depth);
    out.depth_speedups.push_back(scan_sec / fact_sec);
  }
  out.counters_identical = true;
  return out;
}

/// Incremental checkpoint latency vs database size: load `rows` rows
/// (distinct payloads, so the canonical form cannot collapse them and
/// the table file genuinely grows with `rows`), pay the first (full)
/// checkpoint, then repeatedly dirty ONE row and time the incremental
/// checkpoint. Run at a small and a large size: with page-level deltas
/// the incremental latency is dominated by the fixed fsync cost of the
/// few changed pages + manifest, so it must stay nearly flat while the
/// database grows 8x — the old full-rewrite checkpoint scaled linearly.
/// baseline_sec = incremental checkpoint at the small size,
/// optimized_sec = at the large size; bench_check.py --checkpoint-flat
/// bounds optimized_sec / baseline_sec.
Section BenchCheckpointLatency(size_t small_rows, size_t large_rows,
                               int reps) {
  Section out;
  out.name = "checkpoint_latency";
  out.operations = 1;  // One-row write-set per timed checkpoint.
  out.ckpt_small_rows = small_rows;
  out.ckpt_large_rows = large_rows;

  Schema schema = Schema::OfStrings({"K", "P"});
  bool ok = true;
  auto run = [&](size_t rows, double* full_sec, double* incr_sec,
                 uint64_t* written, uint64_t* skipped) {
    const std::string dir = (std::filesystem::temp_directory_path() /
                             "nf2_bench_ckpt_latency")
                                .string();
    std::filesystem::remove_all(dir);
    Database::Options options;
    options.sync_wal = false;  // The load phase is not what's timed.
    Result<std::unique_ptr<Database>> db = Database::Open(dir, options);
    NF2_CHECK(db.ok()) << db.status().ToString();
    NF2_CHECK((*db)->CreateRelation("bench", schema, {0, 1}, {}).ok());
    for (size_t i = 0; i < rows; ++i) {
      Status s = (*db)->Insert(
          "bench", FlatTuple{Value::String(StrCat("k", i)),
                             Value::String(StrCat("p", i, "_",
                                                  std::string(96, 'x')))});
      NF2_CHECK(s.ok()) << s.ToString();
    }
    *full_sec = SecondsOf([&] { NF2_CHECK((*db)->Checkpoint().ok()); });
    const MetricsSnapshot before = (*db)->MetricsSnapshot();
    double best = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
      // Dirty exactly one row, then pay an incremental checkpoint.
      Status s = (*db)->Insert(
          "bench", FlatTuple{Value::String(StrCat("extra", rep)),
                             Value::String(StrCat("q", rep, "_",
                                                  std::string(96, 'x')))});
      NF2_CHECK(s.ok()) << s.ToString();
      double sec = SecondsOf([&] { NF2_CHECK((*db)->Checkpoint().ok()); });
      best = best < 0 ? sec : std::min(best, sec);
    }
    *incr_sec = best;
    const MetricsSnapshot after = (*db)->MetricsSnapshot();
    *written = after.counter("nf2_checkpoint_pages_written_total") -
               before.counter("nf2_checkpoint_pages_written_total");
    *skipped = after.counter("nf2_checkpoint_pages_skipped_total") -
               before.counter("nf2_checkpoint_pages_skipped_total");
    auto scan = (*db)->Scan("bench");
    if (!scan.ok() || scan->size() != rows + reps) ok = false;
    db->reset();
    std::filesystem::remove_all(dir);
  };

  uint64_t small_written = 0, small_skipped = 0;
  run(small_rows, &out.ckpt_full_small_sec, &out.baseline_sec,
      &small_written, &small_skipped);
  run(large_rows, &out.ckpt_full_large_sec, &out.optimized_sec,
      &out.ckpt_pages_written, &out.ckpt_pages_skipped);
  // The incremental checkpoints must actually have skipped pages (else
  // they are silently full rewrites and "flat" means nothing).
  out.counters_identical = ok && small_skipped > 0 &&
                           out.ckpt_pages_skipped > out.ckpt_pages_written;
  NF2_CHECK(out.counters_identical)
      << "incremental checkpoints rewrote the world: small skipped="
      << small_skipped << " large written=" << out.ckpt_pages_written
      << " skipped=" << out.ckpt_pages_skipped;
  return out;
}

/// Point-routed write throughput through the shard subsystem: `writers`
/// concurrent RouterSessions each issue `rows_per_writer` autocommit
/// INSERTs whose keys hash across the shards. With 1 shard every write
/// serializes through the single engine gate + WAL lane (this is the
/// verbatim single-engine forward path); with 4 shards the same
/// statements spread over 4 independent engines and commit in
/// parallel. The WAL stays unsynced on both sides so the section
/// measures gate/lane parallelism, not fsync amortization (that is
/// wal_durability's job). After each load, one scattered
/// SELECT COUNT(*) must return the exact row total — the merge
/// correctness half of the gate.
Section BenchShardedScatterGather(size_t rows_per_writer, int writers) {
  Section out;
  out.name = "sharded_scatter_gather";
  out.operations = static_cast<size_t>(writers) * rows_per_writer;
  out.shards_baseline = 1;
  out.shards_optimized = 4;
  out.shard_writers = writers;
  const std::string expected = StrCat(out.operations);

  std::atomic<bool> all_ok{true};
  auto run = [&](size_t shards) -> double {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         StrCat("nf2_bench_shards_", shards))
            .string();
    std::filesystem::remove_all(dir);
    shard::ShardRouter::Options ropts;
    ropts.shards = shards;
    ropts.db.sync_wal = false;
    Result<std::unique_ptr<shard::ShardRouter>> router =
        shard::ShardRouter::Open(dir, ropts);
    NF2_CHECK(router.ok()) << router.status().ToString();
    auto admin = (*router)->NewClientSession();
    // FD K -> V makes K key-like (Def. 7), so K is the partition
    // attribute and every single-row INSERT routes to exactly one
    // shard.
    auto created = admin->Execute(
        "CREATE RELATION bench (K STRING, V STRING) FD K -> V");
    NF2_CHECK(created.ok()) << created.status().ToString();
    std::vector<std::unique_ptr<server::ClientSession>> sessions;
    sessions.reserve(writers);
    for (int w = 0; w < writers; ++w) {
      sessions.push_back((*router)->NewClientSession());
    }
    double sec = SecondsOf([&] {
      std::vector<std::thread> threads;
      threads.reserve(writers);
      for (int w = 0; w < writers; ++w) {
        threads.emplace_back([&, w] {
          for (size_t i = 0; i < rows_per_writer; ++i) {
            auto r = sessions[w]->Execute(
                StrCat("INSERT INTO bench VALUES (w", w, "k", i, ", v", i,
                       ")"));
            if (!r.ok()) all_ok = false;
          }
        });
      }
      for (std::thread& t : threads) t.join();
    });
    auto count = admin->Execute("SELECT COUNT(*) FROM bench");
    if (!count.ok() || *count != expected) all_ok = false;
    sessions.clear();
    admin.reset();
    router->reset();  // Checkpoint + close outside the timed region.
    std::filesystem::remove_all(dir);
    return sec;
  };

  out.baseline_sec = run(1);
  out.optimized_sec = run(4);
  out.counters_identical = all_ok.load();
  NF2_CHECK(out.counters_identical)
      << "a sharded write failed or a scattered COUNT(*) diverged from "
      << expected;
  return out;
}

/// Replica catch-up throughput (DESIGN.md §14): load a primary with
/// `stream_rows` autocommit inserts (baseline_sec = primary ingest
/// time), then point a cold follower at the primary's streaming hub
/// and time the Replicator from Start() to the primary's WAL head
/// (optimized_sec = apply time, network + decode + replay + position
/// persistence). Speedup() is the apply-over-ingest rate ratio: below
/// 1.0 a replica under sustained full-rate load falls behind without
/// bound. bench_check.py --replica-lag-floor gates the ratio; the
/// run-batched follower apply path (one local transaction per
/// streamed segment) typically clears 1.0. The correctness half:
/// the follower's rendered canonical form must be bit-identical to
/// the primary's — replication is replay, and replay lands on the
/// unique canonical form (Theorem 2).
Section BenchReplicaCatchup(const FlatRelation& flat, const Permutation& perm,
                            size_t stream_rows) {
  Section out;
  out.name = "replica_catchup";
  out.operations = stream_rows;
  std::vector<FlatTuple> stream(flat.tuples().end() - stream_rows,
                                flat.tuples().end());

  const std::string primary_dir =
      (std::filesystem::temp_directory_path() / "nf2_bench_repl_primary")
          .string();
  const std::string follower_dir =
      (std::filesystem::temp_directory_path() / "nf2_bench_repl_follower")
          .string();
  std::filesystem::remove_all(primary_dir);
  std::filesystem::remove_all(follower_dir);

  Database::Options options;
  options.sync_wal = false;  // Both sides; apply path, not fsync, is timed.
  Result<std::unique_ptr<Database>> primary =
      Database::Open(primary_dir, options);
  NF2_CHECK(primary.ok()) << primary.status().ToString();
  AttrSet dependents;
  for (size_t i = 1; i < flat.schema().degree(); ++i) dependents.Add(i);
  Status created = (*primary)->CreateRelation(
      "bench", flat.schema(), perm, {Fd{AttrSet{0}, dependents}});
  NF2_CHECK(created.ok()) << created.ToString();
  out.baseline_sec = SecondsOf([&] {
    for (const FlatTuple& t : stream) {
      Status s = (*primary)->Insert("bench", t);
      NF2_CHECK(s.ok()) << s.ToString();
    }
  });

  server::ReplicationHub hub({primary->get()}, (*primary)->metrics());
  server::ServerOptions server_options;
  server_options.port = 0;
  server_options.replication = &hub;
  server::Server server(primary->get(), server_options);
  NF2_CHECK(server.Start().ok());

  Result<std::unique_ptr<Database>> follower =
      Database::Open(follower_dir, options);
  NF2_CHECK(follower.ok()) << follower.status().ToString();
  server::Replicator::Options repl_options;
  repl_options.host = "127.0.0.1";
  repl_options.port = server.port();
  repl_options.dir = follower_dir;
  server::Replicator replicator(repl_options, {follower->get()},
                                (*follower)->metrics(), Env::Default());
  const uint64_t head = (*primary)->wal()->position().lsn;
  out.optimized_sec = SecondsOf([&] {
    NF2_CHECK(replicator.Start().ok());
    while (replicator.AppliedPositions()[0].lsn < head) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  replicator.Stop();
  server.Stop();

  Result<const NfrRelation*> p_rel = (*primary)->Relation("bench");
  Result<const NfrRelation*> f_rel = (*follower)->Relation("bench");
  out.counters_identical =
      p_rel.ok() && f_rel.ok() &&
      RenderTable(**p_rel, "bench") == RenderTable(**f_rel, "bench");
  NF2_CHECK(out.counters_identical)
      << "follower canonical form diverged from the primary's";
  follower->reset();
  primary->reset();
  std::filesystem::remove_all(primary_dir);
  std::filesystem::remove_all(follower_dir);
  return out;
}

/// Embeds whether a concurrency floor (read scaling, shard writes) is
/// enforceable on this host, and — when it is not — why, so a skipped
/// gate is recorded in the JSON instead of being silent about the
/// reason.
void WriteFloorStatus(std::ofstream& file, const char* prefix) {
  const unsigned cores = std::thread::hardware_concurrency();
  const bool enforced = cores >= 4;
  file << "      \"" << prefix << "_enforced\": "
       << (enforced ? "true" : "false") << ",\n";
  if (!enforced) {
    file << "      \"" << prefix << "_skip_reason\": \"host has " << cores
         << " core(s); the floor requires >= 4\",\n";
  }
}

void WriteJson(const std::string& path, const KeyedConfig& config,
               const std::vector<Section>& sections,
               const MetricsSnapshot& metrics) {
  std::ofstream file(path, std::ios::trunc);
  NF2_CHECK(file.is_open()) << "cannot write " << path;
  file << "{\n";
  file << "  \"pr\": 10,\n";
  file << "  \"title\": \"WAL-shipped read replicas with monotone "
          "epoch:lsn stream positions\",\n";
  // Scaling sections are only meaningful relative to the host's core
  // count; the checker reads this to decide whether to enforce floors.
  file << "  \"host_cores\": " << std::thread::hardware_concurrency()
       << ",\n";
  file << "  \"workload\": {\"generator\": \"keyed\", \"rows\": "
       << config.rows << ", \"degree\": " << config.degree
       << ", \"value_pool\": " << config.value_pool
       << ", \"seed\": " << config.seed << "},\n";
  // Engine counters from the durable wal_durability run — the registry
  // view of the same work the sections time.
  const auto* batch = metrics.histogram("nf2_wal_group_commit_batch");
  file << "  \"engine_metrics\": {\n";
  file << "    \"wal_appends\": " << metrics.counter("nf2_wal_appends_total")
       << ",\n";
  file << "    \"wal_fsyncs\": " << metrics.counter("nf2_wal_fsyncs_total")
       << ",\n";
  file << "    \"wal_append_bytes\": "
       << metrics.counter("nf2_wal_append_bytes_total") << ",\n";
  file << "    \"group_commit_batch_mean\": "
       << Fmt(batch == nullptr ? 0.0 : batch->Mean(), 1) << ",\n";
  file << "    \"pool_hits\": " << metrics.counter("nf2_pool_hits_total")
       << ",\n";
  file << "    \"pool_misses\": " << metrics.counter("nf2_pool_misses_total")
       << ",\n";
  file << "    \"compositions\": " << metrics.counter("nf2_compo_total")
       << ",\n";
  file << "    \"decompositions\": " << metrics.counter("nf2_unnest_total")
       << ",\n";
  file << "    \"recons_calls\": " << metrics.counter("nf2_recons_total")
       << ",\n";
  file << "    \"candidate_scans\": "
       << metrics.counter("nf2_candt_scans_total") << ",\n";
  file << "    \"dict_values\": " << metrics.gauge("nf2_dict_values")
       << "\n";
  file << "  },\n";
  file << "  \"sections\": [\n";
  for (size_t i = 0; i < sections.size(); ++i) {
    const Section& s = sections[i];
    file << "    {\n";
    file << "      \"name\": \"" << s.name << "\",\n";
    file << "      \"operations\": " << s.operations << ",\n";
    file << "      \"baseline_ops_per_sec\": " << Fmt(s.BaselineOps(), 1)
         << ",\n";
    file << "      \"optimized_ops_per_sec\": " << Fmt(s.OptimizedOps(), 1)
         << ",\n";
    file << "      \"speedup\": " << Fmt(s.Speedup(), 3) << ",\n";
    file << "      \"baseline_compositions\": " << s.baseline_compositions
         << ",\n";
    file << "      \"optimized_compositions\": " << s.optimized_compositions
         << ",\n";
    file << "      \"baseline_decompositions\": "
         << s.baseline_decompositions << ",\n";
    file << "      \"optimized_decompositions\": "
         << s.optimized_decompositions << ",\n";
    if (s.name == "wal_durability") {
      file << "      \"unsynced_syncs\": " << s.baseline_syncs << ",\n";
      file << "      \"durable_syncs\": " << s.optimized_syncs << ",\n";
      file << "      \"durability_overhead_frac\": "
           << Fmt(s.OverheadFrac(), 4) << ",\n";
    }
    if (s.name == "server_read_scaling") {
      file << "      \"baseline_clients\": " << s.baseline_clients << ",\n";
      file << "      \"optimized_clients\": " << s.optimized_clients << ",\n";
      file << "      \"mid_clients_ops_per_sec\": "
           << Fmt(s.operations / s.mid_sec, 1) << ",\n";
      file << "      \"read_scaling_1_to_4\": " << Fmt(s.Speedup(), 3)
           << ",\n";
      WriteFloorStatus(file, "scaling_floor");
    }
    if (s.name == "sharded_scatter_gather") {
      file << "      \"shards_baseline\": " << s.shards_baseline << ",\n";
      file << "      \"shards_optimized\": " << s.shards_optimized << ",\n";
      file << "      \"writers\": " << s.shard_writers << ",\n";
      file << "      \"shard_write_speedup_4_vs_1\": " << Fmt(s.Speedup(), 3)
           << ",\n";
      WriteFloorStatus(file, "shard_floor");
    }
    if (s.name == "pipelining") {
      file << "      \"batch_size\": " << s.batch_size << ",\n";
      file << "      \"batch_speedup\": " << Fmt(s.Speedup(), 3) << ",\n";
      file << "      \"stmtcache_hits\": " << s.stmtcache_hits << ",\n";
      file << "      \"stmtcache_misses\": " << s.stmtcache_misses << ",\n";
      file << "      \"stmtcache_hit_rate\": "
           << Fmt(s.StmtCacheHitRate(), 4) << ",\n";
    }
    if (s.name == "indexed_selection") {
      file << "      \"indexed_selection_speedup\": " << Fmt(s.Speedup(), 3)
           << ",\n";
    }
    if (s.name == "replica_catchup") {
      file << "      \"catchup_apply_ratio\": " << Fmt(s.Speedup(), 3)
           << ",\n";
    }
    if (s.name == "checkpoint_latency") {
      file << "      \"small_rows\": " << s.ckpt_small_rows << ",\n";
      file << "      \"large_rows\": " << s.ckpt_large_rows << ",\n";
      file << "      \"size_ratio\": "
           << Fmt(static_cast<double>(s.ckpt_large_rows) /
                      s.ckpt_small_rows, 2)
           << ",\n";
      file << "      \"full_checkpoint_small_sec\": "
           << Fmt(s.ckpt_full_small_sec, 6) << ",\n";
      file << "      \"full_checkpoint_large_sec\": "
           << Fmt(s.ckpt_full_large_sec, 6) << ",\n";
      file << "      \"incremental_checkpoint_small_sec\": "
           << Fmt(s.baseline_sec, 6) << ",\n";
      file << "      \"incremental_checkpoint_large_sec\": "
           << Fmt(s.optimized_sec, 6) << ",\n";
      file << "      \"latency_ratio_large_over_small\": "
           << Fmt(s.optimized_sec / s.baseline_sec, 3) << ",\n";
      file << "      \"incremental_pages_written\": " << s.ckpt_pages_written
           << ",\n";
      file << "      \"incremental_pages_skipped\": " << s.ckpt_pages_skipped
           << ",\n";
    }
    if (s.name == "factorized_aggregation") {
      file << "      \"depths\": [";
      for (size_t d = 0; d < s.depths.size(); ++d) {
        file << (d > 0 ? ", " : "") << s.depths[d];
      }
      file << "],\n";
      file << "      \"depth_speedups\": [";
      for (size_t d = 0; d < s.depth_speedups.size(); ++d) {
        file << (d > 0 ? ", " : "") << Fmt(s.depth_speedups[d], 3);
      }
      file << "],\n";
    }
    file << "      \"counters_identical\": "
         << (s.counters_identical ? "true" : "false") << "\n";
    file << "    }" << (i + 1 < sections.size() ? "," : "") << "\n";
  }
  file << "  ]\n";
  file << "}\n";
}

int Main(int argc, char** argv) {
  std::string out_path = argc > 1 ? argv[1] : "BENCH_PR10.json";
  const size_t workload_rows =
      argc > 2 ? static_cast<size_t>(std::stoul(argv[2])) : 10000;
  NF2_CHECK(workload_rows >= 100) << "workload needs at least 100 rows";
  KeyedConfig config;
  config.rows = workload_rows;
  config.degree = 4;
  config.value_pool = 8;
  config.seed = 44;
  FlatRelation flat = GenerateKeyed(config);
  Permutation perm;
  // Nest the dependent attributes first, key last — the grouping-heavy
  // order for the keyed workload.
  for (size_t i = 1; i < config.degree; ++i) perm.push_back(i);
  perm.push_back(0);

  // Scale the streams with the workload so the smoke run (small rows)
  // keeps the same shape per section.
  const size_t flat_rows = flat.size();
  const int wal_reps = flat_rows >= 10000 ? 5 : 3;
  MetricsSnapshot durable_metrics;
  std::vector<Section> sections;
  sections.push_back(BenchCanonicalForm(flat, perm, /*reps=*/3));
  sections.push_back(
      BenchInsertDelete(flat, perm, /*stream_rows=*/flat_rows / 10));
  sections.push_back(BenchWalDurability(
      flat, perm, /*stream_rows=*/flat_rows,
      /*batch=*/std::max<size_t>(1, flat_rows / 2), /*cycles=*/3,
      wal_reps, &durable_metrics));
  // Server scaling uses a smaller relation (cheap per-query render) and
  // a query count that keeps each timed run in the seconds range.
  KeyedConfig server_config = config;
  server_config.rows = std::min<size_t>(flat_rows, 1000);
  FlatRelation server_flat = GenerateKeyed(server_config);
  sections.push_back(BenchServerReadScaling(
      server_flat, perm, /*total_queries=*/flat_rows >= 10000 ? 8000 : 2000));
  // Pipelining measures fixed per-statement protocol overhead (frame
  // turnaround + queue hop + gate acquisition), so the per-query work
  // must be near-zero — a 100-row relation — or execution time masks
  // the thing being measured. Batch size matches the acceptance
  // workload: 64 statements per kBatch frame.
  KeyedConfig pipe_config = config;
  pipe_config.rows = 10;
  FlatRelation pipe_flat = GenerateKeyed(pipe_config);
  sections.push_back(BenchPipelining(pipe_flat, perm, /*batch_size=*/64,
                                     /*rounds=*/flat_rows >= 10000 ? 20 : 5,
                                     /*reps=*/3));
  // Point selections over the full keyed workload: each query touches
  // one row, so the full-scan baseline pays the whole expansion per
  // query and the index path only the matching fragment.
  sections.push_back(BenchIndexedSelection(
      flat, perm, /*queries=*/flat_rows >= 10000 ? 200 : 50, /*reps=*/3));
  // Depth sweep: enough groups that even depth 1 takes measurable time,
  // scaled down for the smoke run.
  sections.push_back(BenchFactorizedAggregation(
      /*groups=*/flat_rows >= 10000 ? 400 : 50, /*fanout=*/6, /*reps=*/3));
  // Point-routed writes through the shard router: 4 concurrent writers
  // against 1 shard (single gate) vs 4 shards (independent engines),
  // plus the scattered COUNT(*) correctness check.
  sections.push_back(BenchShardedScatterGather(
      /*rows_per_writer=*/flat_rows >= 10000 ? 1000 : 250, /*writers=*/4));
  // WAL-shipping catch-up: a cold follower must replay the primary's
  // log at no less than --replica-lag-floor times the ingest rate,
  // landing on a bit-identical canonical form.
  sections.push_back(BenchReplicaCatchup(
      flat, perm, /*stream_rows=*/std::min<size_t>(flat_rows, 4000)));
  // Checkpoint latency at an 8x size spread with a fixed one-row
  // write-set per timed checkpoint; the incremental latency must stay
  // nearly flat across the spread.
  sections.push_back(BenchCheckpointLatency(
      /*small_rows=*/std::max<size_t>(200, flat_rows / 8),
      /*large_rows=*/std::max<size_t>(1600, flat_rows), /*reps=*/5));
  WriteJson(out_path, config, sections, durable_metrics);

  std::vector<std::vector<std::string>> rows;
  for (const Section& s : sections) {
    rows.push_back({s.name, StrCat(s.operations),
                    Fmt(s.BaselineOps(), 0), Fmt(s.OptimizedOps(), 0),
                    StrCat("x", Fmt(s.Speedup(), 2)),
                    s.counters_identical ? "yes" : "NO"});
  }
  PrintReportTable(
      StrCat("PERF TRAJECTORY (written to ", out_path, ")"),
      {"section", "ops", "baseline/s", "interned/s", "speedup",
       "counts equal"},
      rows);
  auto by_name = [&](const char* name) -> const Section& {
    for (const Section& s : sections) {
      if (s.name == name) return s;
    }
    NF2_CHECK(false) << "missing section " << name;
    return sections.front();
  };
  const Section& wal = by_name("wal_durability");
  NF2_LOG(Info) << "wal_durability: fsync'd commit path is "
                << Fmt(100.0 * wal.OverheadFrac(), 1)
                << "% slower than unsynced (" << wal.optimized_syncs
                << " syncs over " << wal.operations << " ops; bound: 10%)";
  const Section& scaling = by_name("server_read_scaling");
  NF2_LOG(Info) << "server_read_scaling: 1->4 clients scaled read "
                << "throughput x" << Fmt(scaling.Speedup(), 2) << " on "
                << std::thread::hardware_concurrency()
                << " core(s) (floor of x2 enforced at >= 4 cores)";
  const Section& pipelining = by_name("pipelining");
  NF2_LOG(Info) << "pipelining: one kBatch of " << pipelining.batch_size
                << " beat " << pipelining.batch_size
                << " kQuery round-trips x" << Fmt(pipelining.Speedup(), 2)
                << " (floor: x2); statement cache hit rate "
                << Fmt(100.0 * pipelining.StmtCacheHitRate(), 1) << "%";
  const Section& indexed = by_name("indexed_selection");
  NF2_LOG(Info) << "indexed_selection: index-backed point selection beat "
                << "scan-and-filter x" << Fmt(indexed.Speedup(), 2)
                << " over " << indexed.operations << " queries";
  const Section& fact = by_name("factorized_aggregation");
  std::string per_depth;
  for (size_t d = 0; d < fact.depths.size(); ++d) {
    per_depth += StrCat(d > 0 ? ", " : "", "d", fact.depths[d], "=x",
                        Fmt(fact.depth_speedups[d], 1));
  }
  NF2_LOG(Info) << "factorized_aggregation: COUNT(*) over components vs "
                << "expand-then-scan: " << per_depth
                << " (speedup must grow with depth)";
  const Section& sharded = by_name("sharded_scatter_gather");
  NF2_LOG(Info) << "sharded_scatter_gather: " << sharded.shard_writers
                << " writers' point-routed inserts over "
                << sharded.shards_optimized << " shards vs "
                << sharded.shards_baseline << " scaled x"
                << Fmt(sharded.Speedup(), 2) << " on "
                << std::thread::hardware_concurrency()
                << " core(s); scattered COUNT(*) exact "
                << "(floor of x2 enforced at >= 4 cores)";
  const Section& repl = by_name("replica_catchup");
  NF2_LOG(Info) << "replica_catchup: cold follower replayed "
                << repl.operations << " records at x"
                << Fmt(repl.Speedup(), 2)
                << " the primary's ingest rate (floor: "
                << "--replica-lag-floor); canonical form bit-identical";
  const Section& ckpt = by_name("checkpoint_latency");
  NF2_LOG(Info) << "checkpoint_latency: one-row incremental checkpoint "
                << Fmt(ckpt.baseline_sec * 1e3, 2) << "ms at "
                << ckpt.ckpt_small_rows << " rows vs "
                << Fmt(ckpt.optimized_sec * 1e3, 2) << "ms at "
                << ckpt.ckpt_large_rows << " rows (ratio x"
                << Fmt(ckpt.optimized_sec / ckpt.baseline_sec, 2)
                << " over a x"
                << Fmt(static_cast<double>(ckpt.ckpt_large_rows) /
                           ckpt.ckpt_small_rows, 1)
                << " size spread; " << ckpt.ckpt_pages_written
                << " pages written, " << ckpt.ckpt_pages_skipped
                << " skipped)";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nf2

int main(int argc, char** argv) { return nf2::bench::Main(argc, argv); }
