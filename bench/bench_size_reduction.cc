// SIZE experiment (§2 / §5 claims): "NFR may have much less tuples than
// 1NF by putting a group of tuples into one by means of composition",
// and the NFR schema also avoids the 4NF decomposition's fragments.
//
// Sweeps the per-student fan-out (courses x clubs) on the university
// workload and reports stored tuples and serialized bytes for:
//   - the flat 1NF universal relation,
//   - the 4NF decomposition (fragments),
//   - the canonical NFR (this paper).

#include <cstdio>

#include "baseline/flat_engine.h"
#include "bench/workload.h"
#include "core/update.h"
#include "engine/statistics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

void Run() {
  std::printf("SIZE: tuple/byte reduction, NFR vs 1NF vs 4NF fragments\n");
  std::printf("=======================================================\n");

  std::vector<std::vector<std::string>> rows;
  for (size_t fanout : {1u, 2u, 4u, 8u, 16u}) {
    bench::UniversityConfig config;
    config.students = 200;
    config.courses_per_student = fanout;
    config.clubs_per_student = (fanout + 1) / 2;
    config.course_pool = 40;
    config.club_pool = 12;
    config.share_course_set = 0.4;
    config.seed = 100 + fanout;
    FlatRelation flat = bench::GenerateUniversity(config);

    // 1NF single table.
    FlatBaseline single(flat.schema(), FdSet(3), MvdSet(3),
                        FlatBaseline::Mode::kSingleTable);
    // 4NF decomposition under Student ->-> Course | Club.
    MvdSet mvds(3);
    mvds.Add(AttrSet{0}, AttrSet{1});
    FlatBaseline decomposed(flat.schema(), FdSet(3), mvds,
                            FlatBaseline::Mode::kDecomposed4NF);
    NF2_CHECK(single.BulkLoad(flat).ok());
    NF2_CHECK(decomposed.BulkLoad(flat).ok());
    // Canonical NFR, dependents nested first (§3.4 advice).
    NfrRelation nfr = CanonicalForm(flat, Permutation{1, 2, 0});
    RelationStats nfr_stats = ComputeRelationStats(nfr);

    rows.push_back(
        {std::to_string(fanout), std::to_string(flat.size()),
         std::to_string(single.TotalTuples()),
         std::to_string(decomposed.TotalTuples()),
         std::to_string(nfr.size()),
         bench::Fmt(static_cast<double>(single.TotalTuples()) /
                    static_cast<double>(nfr.size())),
         std::to_string(single.TotalBytes()),
         std::to_string(nfr_stats.nfr_bytes),
         bench::Fmt(static_cast<double>(single.TotalBytes()) /
                    static_cast<double>(nfr_stats.nfr_bytes))});

    // Shape checks: the NFR never stores more tuples than either
    // baseline, and the reduction grows with the fan-out.
    NF2_CHECK(nfr.size() <= single.TotalTuples());
    NF2_CHECK(nfr.size() <= decomposed.TotalTuples());
    NF2_CHECK(nfr.Expand() == flat);
  }
  bench::PrintReportTable(
      "stored size vs fan-out (200 students)",
      {"fanout", "|R*|", "1NF tuples", "4NF tuples", "NFR tuples",
       "tuple x", "1NF bytes", "NFR bytes", "byte x"},
      rows);
  std::printf(
      "\nShape: NFR tuple count tracks #students (entity view), while 1NF\n"
      "grows with the full course x club fan-out — the paper's reduction\n"
      "of the \"logical search space\".\n");
}

}  // namespace
}  // namespace nf2

int main() {
  nf2::Run();
  return 0;
}
