// Construction costs: the paper's §3 transformations from 1NF to NFR.
//
//   - CanonicalForm (V_P): the always-possible syntactic reduction;
//     O(|R*|) per nest with hashing — measured over sizes and degrees.
//   - ReduceGreedy: composition-at-a-time reduction (quadratic scans).
//   - MinimalIrreducible: the exhaustive minimal-partition search of
//     Example 2 — exponential, usable only for tiny relations (which is
//     exactly why canonical forms are the practical choice, the
//     "better" of §3.3).

#include <benchmark/benchmark.h>

#include "bench/workload.h"
#include "core/irreducible.h"
#include "core/nest.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

void BM_CanonicalFormBySize(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  bench::UniversityConfig config;
  config.students = rows / 8;
  config.courses_per_student = 4;
  config.clubs_per_student = 2;
  config.seed = 3;
  FlatRelation flat = bench::GenerateUniversity(config);
  Permutation perm{1, 2, 0};
  for (auto _ : state) {
    NfrRelation canonical = CanonicalForm(flat, perm);
    benchmark::DoNotOptimize(canonical);
  }
  state.counters["flat_tuples"] = static_cast<double>(flat.size());
}
BENCHMARK(BM_CanonicalFormBySize)->Arg(256)->Arg(2048)->Arg(16384);

void BM_CanonicalFormByDegree(benchmark::State& state) {
  size_t degree = static_cast<size_t>(state.range(0));
  FlatRelation flat = bench::GenerateRandom(degree, 3, 2000, 5);
  Permutation perm = IdentityPermutation(degree);
  for (auto _ : state) {
    NfrRelation canonical = CanonicalForm(flat, perm);
    benchmark::DoNotOptimize(canonical);
  }
}
BENCHMARK(BM_CanonicalFormByDegree)->Arg(2)->Arg(4)->Arg(6);

void BM_ReduceGreedy(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  FlatRelation flat = bench::GenerateRandom(3, 4, rows, 7);
  for (auto _ : state) {
    NfrRelation reduced = ReduceGreedy(NfrRelation::FromFlat(flat));
    benchmark::DoNotOptimize(reduced);
  }
}
BENCHMARK(BM_ReduceGreedy)->Arg(16)->Arg(64)->Arg(256);

void BM_MinimalIrreducible(benchmark::State& state) {
  // Exactly `rows` distinct tuples: a shuffled prefix of the 2x2x2
  // universe (random draws collide at these sizes).
  size_t rows = static_cast<size_t>(state.range(0));
  Rng rng(9);
  std::vector<FlatTuple> universe;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        universe.push_back(FlatTuple{Value::Int(a), Value::Int(b),
                                     Value::Int(c)});
      }
    }
  }
  rng.Shuffle(&universe);
  universe.resize(std::min(rows, universe.size()));
  FlatRelation flat(Schema({{"A", ValueType::kInt},
                            {"B", ValueType::kInt},
                            {"C", ValueType::kInt}}),
                    universe);
  for (auto _ : state) {
    Result<NfrRelation> minimal = MinimalIrreducible(flat, 16);
    NF2_CHECK(minimal.ok());
    benchmark::DoNotOptimize(minimal);
  }
  state.counters["flat_tuples"] = static_cast<double>(flat.size());
}
BENCHMARK(BM_MinimalIrreducible)->Arg(6)->Arg(7)->Arg(8);

}  // namespace
}  // namespace nf2

BENCHMARK_MAIN();
