#include "bench/workload.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/string_util.h"

namespace nf2 {
namespace bench {

namespace {
std::vector<std::string> DrawDistinct(Rng* rng, const char* prefix,
                                      size_t pool, size_t count) {
  count = std::min(count, pool);
  std::vector<size_t> ids(pool);
  for (size_t i = 0; i < pool; ++i) ids[i] = i;
  rng->Shuffle(&ids);
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(StrCat(prefix, ids[i]));
  }
  return out;
}
}  // namespace

FlatRelation GenerateUniversity(const UniversityConfig& config) {
  Rng rng(config.seed);
  FlatRelation rel(Schema::OfStrings({"Student", "Course", "Club"}));
  std::vector<std::string> previous_courses;
  for (size_t s = 0; s < config.students; ++s) {
    std::string student = StrCat("s", s);
    std::vector<std::string> courses;
    if (!previous_courses.empty() && rng.NextBool(config.share_course_set)) {
      courses = previous_courses;
    } else {
      courses = DrawDistinct(&rng, "c", config.course_pool,
                             config.courses_per_student);
    }
    previous_courses = courses;
    std::vector<std::string> clubs =
        DrawDistinct(&rng, "b", config.club_pool, config.clubs_per_student);
    for (const std::string& course : courses) {
      for (const std::string& club : clubs) {
        rel.Insert(FlatTuple{Value::String(student), Value::String(course),
                             Value::String(club)});
      }
    }
  }
  return rel;
}

FlatRelation GenerateEnrollment(const EnrollmentConfig& config) {
  Rng rng(config.seed);
  FlatRelation rel(Schema::OfStrings({"Student", "Course", "Semester"}));
  for (size_t s = 0; s < config.students; ++s) {
    std::string student = StrCat("s", s);
    std::vector<std::string> courses = DrawDistinct(
        &rng, "c", config.course_pool, config.courses_per_student);
    for (const std::string& course : courses) {
      std::string semester =
          StrCat("t", rng.NextBelow(config.semester_pool));
      rel.Insert(FlatTuple{Value::String(student), Value::String(course),
                           Value::String(semester)});
    }
  }
  return rel;
}

FlatRelation GenerateKeyed(const KeyedConfig& config) {
  Rng rng(config.seed);
  std::vector<std::string> names;
  names.push_back("K");
  for (size_t i = 1; i < config.degree; ++i) {
    names.push_back(StrCat("X", i));
  }
  FlatRelation rel(Schema::OfStrings(names));
  for (size_t r = 0; r < config.rows; ++r) {
    std::vector<Value> values;
    values.push_back(Value::String(StrCat("k", r)));
    for (size_t i = 1; i < config.degree; ++i) {
      values.push_back(
          Value::String(StrCat("x", i, "_", rng.NextBelow(config.value_pool))));
    }
    rel.Insert(FlatTuple(std::move(values)));
  }
  return rel;
}

FlatRelation GenerateRandom(size_t degree, size_t domain, size_t rows,
                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  for (size_t i = 0; i < degree; ++i) {
    names.push_back(StrCat("E", i + 1));
  }
  FlatRelation rel(Schema::OfStrings(names));
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> values;
    values.reserve(degree);
    for (size_t i = 0; i < degree; ++i) {
      values.push_back(
          Value::String(StrCat("v", i, "_", rng.NextBelow(domain))));
    }
    rel.Insert(FlatTuple(std::move(values)));
  }
  return rel;
}

void PrintReportTable(const std::string& title,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> width(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    width[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("  ");
    for (size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      std::printf("%-*s  ", static_cast<int>(width[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  std::vector<std::string> rule;
  for (size_t c = 0; c < width.size(); ++c) {
    rule.push_back(std::string(width[c], '-'));
  }
  print_row(rule);
  for (const auto& row : rows) {
    print_row(row);
  }
}

std::string Fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

}  // namespace bench
}  // namespace nf2
