// Theorem A-4 reproduction: the §4 insert/delete algorithms cost a
// number of compositions that depends on the degree n only — NOT on the
// number of tuples in the relation. Two sweeps:
//
//   TA4-N: composition count per operation vs |R*| (must be flat), plus
//          wall-clock comparison against the rebuild-from-scratch
//          baseline (which grows with |R*|).
//   TA4-D: composition count vs degree n (allowed to grow).
//
// The binary prints the report tables, then runs google-benchmark
// timings for the incremental vs rebuild ablation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/workload.h"
#include "core/update.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

/// Builds a canonical NFR over [K, X1..X_{degree-1}] with `rows` keys,
/// dependents drawn from small pools.
CanonicalRelation BuildKeyed(size_t rows, size_t degree, uint64_t seed) {
  bench::KeyedConfig config;
  config.rows = rows;
  config.degree = degree;
  config.value_pool = 6;
  config.seed = seed;
  FlatRelation flat = bench::GenerateKeyed(config);
  // Nest dependents first, key last (the §3.4 advice).
  Permutation perm;
  for (size_t i = degree; i-- > 1;) perm.push_back(i);
  perm.push_back(0);
  Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(flat, perm);
  NF2_CHECK(rel.ok());
  return *std::move(rel);
}

/// Applies a fixed probe workload (insert 32 new keys, delete them
/// again) and returns the per-operation composition average. Anchor
/// rows are planted first so every probe's dependent-value combination
/// exists at every relation size — the workload shape is then identical
/// across sizes and Theorem A-4 predicts identical counts.
double ProbeCompositions(CanonicalRelation* rel, size_t degree) {
  for (size_t j = 0; j < 6; ++j) {
    std::vector<Value> values;
    values.push_back(Value::String(StrCat("anchor", j)));
    for (size_t d = 1; d < degree; ++d) {
      values.push_back(Value::String(StrCat("x", d, "_", j)));
    }
    Status s = rel->Insert(FlatTuple(std::move(values)));
    NF2_CHECK(s.ok()) << s;
  }
  UpdateStats before = rel->stats();
  const size_t kOps = 32;
  std::vector<FlatTuple> probes;
  for (size_t i = 0; i < kOps; ++i) {
    std::vector<Value> values;
    values.push_back(Value::String(StrCat("probe", i)));
    for (size_t d = 1; d < degree; ++d) {
      values.push_back(Value::String(StrCat("x", d, "_", i % 6)));
    }
    probes.emplace_back(std::move(values));
  }
  for (const FlatTuple& t : probes) {
    Status s = rel->Insert(t);
    NF2_CHECK(s.ok()) << s;
  }
  for (const FlatTuple& t : probes) {
    Status s = rel->Delete(t);
    NF2_CHECK(s.ok()) << s;
  }
  UpdateStats delta = rel->stats() - before;
  return static_cast<double>(delta.compositions) /
         static_cast<double>(2 * kOps);
}

void ReportScalingWithSize() {
  std::vector<std::vector<std::string>> rows;
  double first = -1;
  bool flat_curve = true;
  for (size_t n : {100u, 1000u, 10000u, 100000u}) {
    CanonicalRelation rel = BuildKeyed(n, 4, 7);
    double per_op = ProbeCompositions(&rel, 4);
    if (first < 0) first = per_op;
    if (per_op != first) flat_curve = false;
    rows.push_back({std::to_string(n), std::to_string(rel.size()),
                    bench::Fmt(per_op)});
  }
  bench::PrintReportTable(
      "TA4-N: compositions per op vs |R*| (degree 4; paper: independent "
      "of |R|)",
      {"|R*|", "NFR tuples", "compositions/op"}, rows);
  std::printf("  -> curve is %s\n",
              flat_curve ? "FLAT (matches Theorem A-4)"
                         : "NOT flat (MISMATCH)");
  NF2_CHECK(flat_curve) << "Theorem A-4 size-independence violated";
}

void ReportScalingWithDegree() {
  // The degree-dependent cost shows when updates hit tuples that are
  // compound on MANY attributes: build a dense block (one key, the full
  // {0,1}^(n-1) cross product of dependents) and repeatedly delete and
  // re-insert one of its corners. Each delete unnests the block along
  // every compound attribute; each insert re-composes it level by
  // level — the recursion Theorem A-4 bounds by a function of n.
  std::vector<std::vector<std::string>> rows;
  for (size_t degree : {2u, 3u, 4u, 5u, 6u, 8u, 10u}) {
    CanonicalRelation rel = BuildKeyed(500, degree, 11);
    // Dense block under key "blk".
    std::vector<FlatTuple> block;
    for (uint64_t bits = 0; bits < (1ULL << (degree - 1)); ++bits) {
      std::vector<Value> values;
      values.push_back(Value::String("blk"));
      for (size_t d = 1; d < degree; ++d) {
        values.push_back(
            Value::String(StrCat("blk", d, "_", (bits >> (d - 1)) & 1)));
      }
      block.emplace_back(std::move(values));
    }
    for (const FlatTuple& t : block) {
      NF2_CHECK(rel.Insert(t).ok());
    }
    const FlatTuple& corner = block.front();
    UpdateStats before = rel.stats();
    const size_t kCycles = 16;
    for (size_t i = 0; i < kCycles; ++i) {
      NF2_CHECK(rel.Delete(corner).ok());
      NF2_CHECK(rel.Insert(corner).ok());
    }
    UpdateStats delta = rel.stats() - before;
    double ops = static_cast<double>(2 * kCycles);
    rows.push_back(
        {std::to_string(degree),
         bench::Fmt(static_cast<double>(delta.compositions) / ops),
         bench::Fmt(static_cast<double>(delta.decompositions) / ops),
         bench::Fmt(static_cast<double>(delta.recons_calls) / ops)});
  }
  bench::PrintReportTable(
      "TA4-D: work per op vs degree n (paper: grows with n only, "
      "never with |R|)",
      {"degree", "compositions/op", "decompositions/op", "recons/op"},
      rows);
}

// ---- google-benchmark timings: incremental vs rebuild ----------------

/// Canonical relation whose NFR group sizes stay ~constant as `rows`
/// grows (value pools scale with sqrt(rows)), so per-operation costs
/// reflect the algorithm, not ever-fatter tuples.
CanonicalRelation BuildKeyedConstantGroups(size_t rows, uint64_t seed) {
  bench::KeyedConfig config;
  config.rows = rows;
  config.degree = 3;
  size_t pool = 3;
  while (pool * pool * 8 < rows) ++pool;  // group size ~ rows/pool^2 <= 8.
  config.value_pool = pool;
  config.seed = seed;
  FlatRelation flat = bench::GenerateKeyed(config);
  Result<CanonicalRelation> rel =
      CanonicalRelation::FromFlat(flat, {2, 1, 0});
  NF2_CHECK(rel.ok());
  return *std::move(rel);
}

void BM_InsertIncremental(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  CanonicalRelation rel = BuildKeyedConstantGroups(rows, 21);
  size_t i = 0;
  for (auto _ : state) {
    // Fresh keys with fresh dependent values: the no-merge insert path.
    FlatTuple t{Value::String(StrCat("new", i)),
                Value::String(StrCat("nx1_", i)),
                Value::String(StrCat("nx2_", i))};
    Status s = rel.Insert(t);
    benchmark::DoNotOptimize(s);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertIncremental)->Arg(100)->Arg(1000)->Arg(10000);

void BM_InsertByRebuild(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  CanonicalRelation rel = BuildKeyedConstantGroups(rows, 22);
  Permutation perm = rel.order();
  NfrRelation current = rel.relation();
  size_t i = 0;
  for (auto _ : state) {
    FlatTuple t{Value::String(StrCat("new", i)),
                Value::String(StrCat("nx1_", i)),
                Value::String(StrCat("nx2_", i))};
    NfrRelation rebuilt = RebuildCanonicalAfterInsert(current, t, perm);
    benchmark::DoNotOptimize(rebuilt);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertByRebuild)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DeleteIncremental(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  CanonicalRelation rel = BuildKeyedConstantGroups(rows, 23);
  size_t i = 0;
  for (auto _ : state) {
    // Insert-then-delete cycles against an existing small group keep
    // the relation stable while exercising both §4 algorithms.
    FlatTuple t{Value::String(StrCat("cycle", i)),
                Value::String("x1_1"), Value::String("x2_1")};
    NF2_CHECK(rel.Insert(t).ok());
    Status s = rel.Delete(t);
    benchmark::DoNotOptimize(s);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_DeleteIncremental)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace nf2

int main(int argc, char** argv) {
  std::printf("Theorem A-4 reproduction (update complexity)\n");
  std::printf("============================================\n");
  nf2::ReportScalingWithSize();
  nf2::ReportScalingWithDegree();
  std::printf(
      "\nTimed ablation (incremental section-4 algorithms vs full "
      "re-nest):\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
