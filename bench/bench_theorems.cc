// Empirical verification of Theorems 1-5 over randomized relations.
// The paper proves these; the harness demonstrates each on thousands of
// generated instances and prints a pass census (0 violations expected).

#include <cstdio>

#include "bench/workload.h"
#include "core/fixedness.h"
#include "core/irreducible.h"
#include "core/nest.h"
#include "dependency/design.h"
#include "dependency/fd.h"
#include "dependency/mvd.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

struct Census {
  uint64_t trials = 0;
  uint64_t violations = 0;
};

// Theorem 1: R* is unique — any two forms of the same relation expand
// identically; expansion of a reduced form recovers the original 1NF.
Census Theorem1(uint64_t seeds) {
  Census census;
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    FlatRelation flat = bench::GenerateRandom(3, 3, 14, seed);
    Rng rng(seed * 7 + 1);
    NfrRelation a = ReduceRandomized(NfrRelation::FromFlat(flat), &rng);
    NfrRelation b = ReduceGreedy(NfrRelation::FromFlat(flat));
    ++census.trials;
    if (a.Expand() != flat || b.Expand() != flat) ++census.violations;
  }
  return census;
}

// Theorem 2: the canonical form is unique per permutation, regardless
// of the pairwise composition order inside each nest.
Census Theorem2(uint64_t seeds) {
  Census census;
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    FlatRelation flat = bench::GenerateRandom(3, 3, 12, seed + 10000);
    for (const Permutation& perm : AllPermutations(3)) {
      NfrRelation direct = CanonicalForm(flat, perm);
      NfrRelation randomized = NfrRelation::FromFlat(flat);
      Rng rng(seed * 31 + perm[0]);
      for (size_t attr : perm) {
        randomized = RandomizedNestOn(randomized, attr, &rng);
      }
      ++census.trials;
      if (!direct.EqualsAsSet(randomized)) ++census.violations;
    }
  }
  return census;
}

// Theorem 3: under FD F -> E, EVERY irreducible form is fixed on F.
Census Theorem3(uint64_t seeds) {
  Census census;
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    bench::KeyedConfig config;
    config.rows = 24;
    config.degree = 3;
    config.value_pool = 4;
    config.seed = seed + 20000;
    FlatRelation flat = bench::GenerateKeyed(config);
    FdSet fds(3);
    fds.Add(AttrSet{0}, AttrSet{1, 2});
    NF2_CHECK(fds.SatisfiedBy(flat));
    Rng rng(seed * 13 + 5);
    NfrRelation irreducible =
        ReduceRandomized(NfrRelation::FromFlat(flat), &rng);
    ++census.trials;
    if (!IsFixedOn(irreducible, {0})) ++census.violations;
  }
  return census;
}

// Theorem 4: under MVD F ->-> E, THERE EXISTS an irreducible form fixed
// on F (the nest-dependents-first canonical form is one).
Census Theorem4(uint64_t seeds) {
  Census census;
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    bench::UniversityConfig config;
    config.students = 8;
    config.courses_per_student = 3;
    config.clubs_per_student = 2;
    config.course_pool = 6;
    config.club_pool = 4;
    config.seed = seed + 30000;
    FlatRelation flat = bench::GenerateUniversity(config);
    NF2_CHECK(Satisfies(flat, Mvd{AttrSet{0}, AttrSet{1}}));
    NfrRelation canonical = CanonicalForm(flat, Permutation{1, 2, 0});
    ++census.trials;
    if (!IsIrreducible(canonical) || !IsFixedOn(canonical, {0})) {
      ++census.violations;
    }
  }
  return census;
}

// Theorem 5: every canonical form is fixed on the complement of the
// first-nested attribute — fixedness on n-1 domains.
Census Theorem5(uint64_t seeds) {
  Census census;
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    FlatRelation flat = bench::GenerateRandom(3, 3, 12, seed + 40000);
    for (const Permutation& perm : AllPermutations(3)) {
      NfrRelation canonical = CanonicalForm(flat, perm);
      ++census.trials;
      if (!IsFixedOnAllButOne(canonical, perm.front())) {
        ++census.violations;
      }
    }
  }
  return census;
}

}  // namespace nf2

int main() {
  using nf2::bench::PrintReportTable;
  std::printf("Empirical verification of Theorems 1-5\n");
  std::printf("======================================\n");
  const uint64_t kSeeds = 300;
  nf2::Census t1 = nf2::Theorem1(kSeeds);
  nf2::Census t2 = nf2::Theorem2(kSeeds);
  nf2::Census t3 = nf2::Theorem3(kSeeds);
  nf2::Census t4 = nf2::Theorem4(kSeeds);
  nf2::Census t5 = nf2::Theorem5(kSeeds);
  auto row = [](const char* name, const char* claim, const nf2::Census& c) {
    return std::vector<std::string>{
        name, claim, std::to_string(c.trials),
        std::to_string(c.violations)};
  };
  PrintReportTable(
      "Theorem census (violations must be 0)",
      {"theorem", "claim", "trials", "violations"},
      {row("Thm 1", "R* unique for every NFR of R", t1),
       row("Thm 2", "canonical form independent of composition order", t2),
       row("Thm 3", "FD => every irreducible form fixed on LHS", t3),
       row("Thm 4", "MVD => a fixed irreducible form exists", t4),
       row("Thm 5", "canonical fixed on n-1 domains", t5)});
  uint64_t total_violations = t1.violations + t2.violations +
                              t3.violations + t4.violations + t5.violations;
  if (total_violations != 0) {
    std::printf("\nVIOLATIONS FOUND: %llu\n",
                static_cast<unsigned long long>(total_violations));
    return 1;
  }
  std::printf("\nAll theorem checks passed.\n");
  return 0;
}
