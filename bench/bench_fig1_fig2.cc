// Reproduces Figures 1 and 2 of the paper: the motivating NFRs
// R1[Student, Course, Club] and R2[Student, Course, Semester], and the
// update "student s1 stops taking course c1". In R1 (which satisfies
// Student ->-> Course | Club) the deletion is a value drop inside one
// tuple; in R2 (no MVD) the same logical deletion splits a tuple and
// re-composes others — the "complicated operations" of §2, executed
// here by the §4 deletion algorithm.

#include <cstdio>

#include "bench/workload.h"
#include "core/fixedness.h"
#include "core/format.h"
#include "core/update.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

FlatRelation Fig1R1Flat() {
  // R1 as drawn: s1,s3 take {c1,c2,c3} in club b1; s2 takes {c1,c2,c3}
  // in club b2.
  FlatRelation rel(Schema::OfStrings({"Student", "Course", "Club"}));
  for (const char* s : {"s1", "s2", "s3"}) {
    const char* club = (s[1] == '2') ? "b2" : "b1";
    for (const char* c : {"c1", "c2", "c3"}) {
      rel.Insert(FlatTuple{V(s), V(c), V(club)});
    }
  }
  return rel;
}

FlatRelation Fig1R2Flat() {
  // R2 as drawn: [s1,s2,s3 | c1,c2 | t1], [s1,s3 | c3 | t1],
  // [s2 | c3 | t2].
  FlatRelation rel(Schema::OfStrings({"Student", "Course", "Semester"}));
  for (const char* s : {"s1", "s2", "s3"}) {
    for (const char* c : {"c1", "c2"}) {
      rel.Insert(FlatTuple{V(s), V(c), V("t1")});
    }
  }
  rel.Insert(FlatTuple{V("s1"), V("c3"), V("t1")});
  rel.Insert(FlatTuple{V("s3"), V("c3"), V("t1")});
  rel.Insert(FlatTuple{V("s2"), V("c3"), V("t2")});
  return rel;
}

void Run() {
  std::printf("Reproduction of Fig. 1 / Fig. 2 (paper section 2)\n");
  std::printf("=================================================\n");

  // ---- Fig. 1 ----
  FlatRelation r1_flat = Fig1R1Flat();
  FlatRelation r2_flat = Fig1R2Flat();
  Permutation p1 = *PermutationFromNames(
      r1_flat.schema(), {"Course", "Club", "Student"});
  Permutation p2 = *PermutationFromNames(
      r2_flat.schema(), {"Student", "Course", "Semester"});
  CanonicalRelation r1 = *CanonicalRelation::FromFlat(r1_flat, p1);
  CanonicalRelation r2 = *CanonicalRelation::FromFlat(r2_flat, p2);

  std::printf("\nFig. 1 (paper): R1 = {[s1,s3|c1,c2,c3|b1], [s2|c1,c2,c3|b2]}\n");
  std::printf("Fig. 1 (ours):\n%s",
              RenderTable(r1.relation(), "R1").c_str());
  std::printf(
      "\nFig. 1 (paper): R2 = {[s1,s2,s3|c1,c2|t1], [s1,s3|c3|t1], "
      "[s2|c3|t2]}\n");
  std::printf("Fig. 1 (ours):\n%s",
              RenderTable(r2.relation(), "R2").c_str());

  // ---- The update: drop (s1, c1, *) ----
  UpdateStats before_r1 = r1.stats();
  Status s1 = r1.Delete(FlatTuple{V("s1"), V("c1"), V("b1")});
  NF2_CHECK(s1.ok()) << s1;
  UpdateStats delta_r1 = r1.stats() - before_r1;

  UpdateStats before_r2 = r2.stats();
  Status s2 = r2.Delete(FlatTuple{V("s1"), V("c1"), V("t1")});
  NF2_CHECK(s2.ok()) << s2;
  UpdateStats delta_r2 = r2.stats() - before_r2;

  std::printf(
      "\nFig. 2 (paper): R1 = {[s1|c2,c3|b1], [s2|c1,c2,c3|b2], "
      "[s3|c1,c2,c3|b1]}\n");
  std::printf("Fig. 2 (ours):\n%s",
              RenderTable(r1.relation(), "R1 after delete").c_str());
  std::printf(
      "\nFig. 2 (paper): R2 = {[s2,s3|c1,c2|t1], [s1|c2|t1], "
      "[s1,s3|c3|t1], [s2|c3|t2]}\n");
  std::printf("Fig. 2 (ours):\n%s",
              RenderTable(r2.relation(), "R2 after delete").c_str());
  std::printf(
      "\n(Note: the paper prints one specific irreducible form of R2; the\n"
      " engine maintains the *canonical* form for its fixed nest order —\n"
      " both denote the same R*, verified below.)\n");

  // Verify equivalence with the paper's stated outcomes.
  FlatRelation expected_r1 = Fig1R1Flat();
  expected_r1.Erase(FlatTuple{V("s1"), V("c1"), V("b1")});
  FlatRelation expected_r2 = Fig1R2Flat();
  expected_r2.Erase(FlatTuple{V("s1"), V("c1"), V("t1")});
  bool ok_r1 = r1.relation().Expand() == expected_r1;
  bool ok_r2 = r2.relation().Expand() == expected_r2;

  bench::PrintReportTable(
      "Fig.1 -> Fig.2 deletion, measured",
      {"relation", "MVD?", "R* ok", "tuples before", "tuples after",
       "compositions", "decompositions", "fixed on Student"},
      {{"R1", "Student->->Course|Club", ok_r1 ? "yes" : "NO", "2",
        std::to_string(r1.size()), std::to_string(delta_r1.compositions),
        std::to_string(delta_r1.decompositions),
        IsFixedOn(r1.relation(), {0}) ? "yes" : "no"},
       {"R2", "none", ok_r2 ? "yes" : "NO", "3",
        std::to_string(r2.size()), std::to_string(delta_r2.compositions),
        std::to_string(delta_r2.decompositions),
        IsFixedOn(r2.relation(), {0}) ? "yes" : "no"}});

  std::printf(
      "\nShape check: R1 (with the MVD) stays one-tuple-per-student (fixed\n"
      "on Student), so the delete was a value drop inside the student's\n"
      "tuple. R2 (no MVD) ends with students scattered across tuples and a\n"
      "grown tuple count (3 -> %zu) — the §2 \"complicated operations\".\n",
      r2.size());
  NF2_CHECK(ok_r1 && ok_r2) << "Fig.2 reproduction mismatch";
}

}  // namespace
}  // namespace nf2

int main() {
  nf2::Run();
  return 0;
}
