// Reproduces the paper's worked Examples 1, 2 and 3:
//   Example 1 — two distinct irreducible forms of one 1NF relation.
//   Example 2 — a 3-tuple irreducible form that beats every canonical
//               form (all of which have 4 tuples).
//   Example 3 — under MVD A->->B|C, one irreducible form fixed on A and
//               one not (Theorem 4's "may exist" caveat).

#include <cstdio>
#include <set>

#include "bench/workload.h"
#include "core/fixedness.h"
#include "core/format.h"
#include "core/irreducible.h"
#include "core/nest.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

void Example1() {
  std::printf("\n--- Example 1: irreducible forms are not unique ---\n");
  FlatRelation flat = MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                                      {"a2", "b1"},
                                                      {"a2", "b2"},
                                                      {"a3", "b2"}});
  std::printf("%s", RenderTable(flat, "R (1NF, 4 tuples)").c_str());

  // The paper's two forms, reached by randomized reduction.
  std::set<size_t> sizes_seen;
  NfrRelation two_tuple_form(flat.schema());
  NfrRelation three_tuple_form(flat.schema());
  for (uint64_t seed = 0; seed < 64; ++seed) {
    Rng rng(seed);
    NfrRelation reduced =
        ReduceRandomized(NfrRelation::FromFlat(flat), &rng);
    NF2_CHECK(IsIrreducible(reduced));
    NF2_CHECK(reduced.Expand() == flat);
    sizes_seen.insert(reduced.size());
    if (reduced.size() == 2) two_tuple_form = reduced;
    if (reduced.size() == 3) three_tuple_form = reduced;
  }
  std::printf(
      "\npaper R1 = {[A(a1,a2) B(b1)], [A(a2,a3) B(b2)]}  (2 tuples)\n");
  std::printf("%s", RenderTable(two_tuple_form, "ours (seed sweep)").c_str());
  std::printf(
      "\npaper R2 = {[A(a1) B(b1)], [A(a2) B(b1,b2)], [A(a3) B(b2)]}  "
      "(3 tuples)\n");
  std::printf("%s",
              RenderTable(three_tuple_form, "ours (seed sweep)").c_str());
  bench::PrintReportTable(
      "Example 1 summary",
      {"quantity", "paper", "measured"},
      {{"irreducible sizes reachable", "2 and 3",
        bench::Fmt(*sizes_seen.begin(), 0) + " and " +
            bench::Fmt(*sizes_seen.rbegin(), 0)},
       {"all forms expand to R", "yes", "yes"}});
  NF2_CHECK(sizes_seen.count(2) && sizes_seen.count(3));
}

void Example2() {
  std::printf(
      "\n--- Example 2: minimal irreducible beats every canonical ---\n");
  FlatRelation flat = MakeStringRelation({"A", "B", "C"},
                                         {{"a1", "b1", "c2"},
                                          {"a1", "b2", "c1"},
                                          {"a1", "b2", "c2"},
                                          {"a2", "b1", "c1"},
                                          {"a2", "b1", "c2"},
                                          {"a2", "b2", "c1"}});
  std::printf("%s", RenderTable(flat, "R3 (1NF, 6 tuples)").c_str());

  Result<NfrRelation> minimal = MinimalIrreducible(flat);
  NF2_CHECK(minimal.ok());
  std::printf(
      "\npaper R4 = {[A(a1) B(b1,b2) C(c2)], [A(a2) B(b1) C(c1,c2)], "
      "[A(a1,a2) B(b2) C(c1)]}\n");
  std::printf("%s",
              RenderTable(*minimal, "ours (exhaustive search)").c_str());

  std::vector<std::vector<std::string>> rows;
  for (const Permutation& perm : AllPermutations(3)) {
    NfrRelation canonical = CanonicalForm(flat, perm);
    std::string name;
    for (size_t p : perm) name += flat.schema().attribute(p).name;
    rows.push_back({name, std::to_string(canonical.size())});
    NF2_CHECK(canonical.size() == 4)
        << "paper says every canonical form of R3 has 4 tuples";
  }
  rows.push_back({"minimal irreducible", std::to_string(minimal->size())});
  bench::PrintReportTable("Example 2: tuples per form (paper: 4,4,4,4,4,4,3)",
                          {"form (nest order)", "tuples"}, rows);
  NF2_CHECK(minimal->size() == 3);
}

void Example3() {
  std::printf("\n--- Example 3: MVD fixedness is form-dependent ---\n");
  FlatRelation r9 = MakeStringRelation({"A", "B", "C"},
                                       {{"a1", "b1", "c1"},
                                        {"a1", "b2", "c1"},
                                        {"a2", "b1", "c1"},
                                        {"a2", "b1", "c2"}});
  std::printf("%s", RenderTable(r9, "R9 (MVD A->->B|C holds)").c_str());

  NfrRelation r7(r9.schema());
  r7.Add(NfrTuple{ValueSet(V("a1")), ValueSet{V("b1"), V("b2")},
                  ValueSet(V("c1"))});
  r7.Add(NfrTuple{ValueSet(V("a2")), ValueSet(V("b1")),
                  ValueSet{V("c1"), V("c2")}});
  NfrRelation r8(r9.schema());
  r8.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1")),
                  ValueSet(V("c1"))});
  r8.Add(NfrTuple{ValueSet(V("a1")), ValueSet(V("b2")), ValueSet(V("c1"))});
  r8.Add(NfrTuple{ValueSet(V("a2")), ValueSet(V("b1")), ValueSet(V("c2"))});
  NF2_CHECK(r7.Expand() == r9 && r8.Expand() == r9);
  NF2_CHECK(IsIrreducible(r7) && IsIrreducible(r8));

  std::printf("%s", RenderTable(r7, "R7 (paper)").c_str());
  std::printf("%s", RenderTable(r8, "R8 (paper)").c_str());
  bench::PrintReportTable(
      "Example 3 fixedness (paper: R7 fixed on A, R8 not)",
      {"form", "irreducible", "fixed on A"},
      {{"R7", "yes", IsFixedOn(r7, {0}) ? "yes" : "no"},
       {"R8", "yes", IsFixedOn(r8, {0}) ? "yes" : "no"}});
  NF2_CHECK(IsFixedOn(r7, {0}) && !IsFixedOn(r8, {0}));
}

}  // namespace
}  // namespace nf2

int main() {
  std::printf("Reproduction of Examples 1-3 (paper section 3)\n");
  std::printf("==============================================\n");
  nf2::Example1();
  nf2::Example2();
  nf2::Example3();
  std::printf("\nAll example reproductions verified.\n");
  return 0;
}
