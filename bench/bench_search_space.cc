// SEARCH experiment (§2 / §5 claims): "the reduction of the number of
// tuples will contribute to the reduction of logical search space" and
// NFRs "discard join operations which originate from the decomposition".
//
// google-benchmark timings over the university workload:
//   - point lookup (student's full record): NFR scan vs 1NF scan vs
//     4NF fragments + join,
//   - full reconstruction of the universal relation: NFR expand vs 4NF
//     join,
//   - tuple membership probe.

#include <benchmark/benchmark.h>

#include <map>
#include <set>

#include "algebra/operators.h"
#include "baseline/flat_engine.h"
#include "bench/workload.h"
#include "core/update.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

FlatRelation MakeWorkload(size_t students) {
  bench::UniversityConfig config;
  config.students = students;
  config.courses_per_student = 6;
  config.clubs_per_student = 3;
  config.course_pool = 50;
  config.club_pool = 15;
  config.share_course_set = 0.4;
  config.seed = 999;
  return bench::GenerateUniversity(config);
}

NfrRelation MakeNfr(const FlatRelation& flat) {
  return CanonicalForm(flat, Permutation{1, 2, 0});
}

FlatBaseline MakeSingle(const FlatRelation& flat) {
  FlatBaseline engine(flat.schema(), FdSet(3), MvdSet(3),
                      FlatBaseline::Mode::kSingleTable);
  NF2_CHECK(engine.BulkLoad(flat).ok());
  return engine;
}

FlatBaseline MakeDecomposed(const FlatRelation& flat) {
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  FlatBaseline engine(flat.schema(), FdSet(3), mvds,
                      FlatBaseline::Mode::kDecomposed4NF);
  NF2_CHECK(engine.BulkLoad(flat).ok());
  return engine;
}

Value ProbeStudent(size_t students, size_t i) {
  return Value::String(StrCat("s", i % students));
}

// ---- Point lookup: all (course, club) rows of one student ------------

void BM_PointLookupNfr(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  NfrRelation nfr = MakeNfr(flat);
  size_t i = 0;
  for (auto _ : state) {
    Predicate pred = Predicate::Eq(0, ProbeStudent(students, i++));
    // Tuple-level select: scans nfr.size() tuples, no expansion of
    // non-matching tuples.
    NfrRelation hit = SelectNfrTuples(nfr, pred);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_PointLookupNfr)->Arg(100)->Arg(1000)->Arg(5000);

void BM_PointLookupFlat(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  FlatBaseline single = MakeSingle(flat);
  size_t i = 0;
  for (auto _ : state) {
    Predicate pred = Predicate::Eq(0, ProbeStudent(students, i++));
    FlatRelation hit = single.Query(pred);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_PointLookupFlat)->Arg(100)->Arg(1000)->Arg(5000);

void BM_PointLookupDecomposedJoin(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  FlatBaseline decomposed = MakeDecomposed(flat);
  size_t i = 0;
  for (auto _ : state) {
    Predicate pred = Predicate::Eq(0, ProbeStudent(students, i++));
    FlatRelation hit = decomposed.Query(pred);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_PointLookupDecomposedJoin)->Arg(100)->Arg(1000);

// ---- Membership probe -------------------------------------------------

void BM_ContainsNfr(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  NfrRelation nfr = MakeNfr(flat);
  size_t i = 0;
  for (auto _ : state) {
    FlatTuple probe = flat.tuple(i % flat.size());
    benchmark::DoNotOptimize(nfr.ExpansionContains(probe));
    ++i;
  }
}
BENCHMARK(BM_ContainsNfr)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ContainsFlat(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  size_t i = 0;
  for (auto _ : state) {
    FlatTuple probe = flat.tuple(i % flat.size());
    benchmark::DoNotOptimize(flat.Contains(probe));
    ++i;
  }
}
BENCHMARK(BM_ContainsFlat)->Arg(100)->Arg(1000)->Arg(5000);

// ---- Full reconstruction ----------------------------------------------

void BM_ReconstructNfrExpand(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  NfrRelation nfr = MakeNfr(flat);
  for (auto _ : state) {
    FlatRelation whole = nfr.Expand();
    benchmark::DoNotOptimize(whole);
  }
}
BENCHMARK(BM_ReconstructNfrExpand)->Arg(100)->Arg(1000);

void BM_ReconstructDecomposedJoin(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  FlatBaseline decomposed = MakeDecomposed(flat);
  for (auto _ : state) {
    FlatRelation whole = decomposed.Scan();
    benchmark::DoNotOptimize(whole);
  }
}
BENCHMARK(BM_ReconstructDecomposedJoin)->Arg(100)->Arg(1000);

// ---- Aggregation: counts straight off NFR components ------------------

void BM_GroupCountNfr(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  NfrRelation nfr = MakeNfr(flat);
  for (auto _ : state) {
    // courses-per-student: component sizes, no expansion.
    auto counts = GroupedDistinctCounts(nfr, 0, 1);
    NF2_CHECK(counts.ok());
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_GroupCountNfr)->Arg(100)->Arg(1000)->Arg(5000);

void BM_GroupCountFlatScan(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  for (auto _ : state) {
    // The 1NF equivalent: hash-aggregate over every row.
    std::map<Value, std::set<Value>> groups;
    for (const FlatTuple& t : flat.tuples()) {
      groups[t.at(0)].insert(t.at(1));
    }
    benchmark::DoNotOptimize(groups);
  }
}
BENCHMARK(BM_GroupCountFlatScan)->Arg(100)->Arg(1000)->Arg(5000);

// ---- Logical search space: tuples examined ----------------------------

void BM_TuplesScannedReport(benchmark::State& state) {
  // Not a timing benchmark: records the scan lengths as counters so the
  // "logical search space" claim has explicit numbers.
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = MakeWorkload(students);
  NfrRelation nfr = MakeNfr(flat);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nfr.size());
  }
  state.counters["nfr_tuples"] = static_cast<double>(nfr.size());
  state.counters["flat_tuples"] = static_cast<double>(flat.size());
  state.counters["reduction_x"] =
      static_cast<double>(flat.size()) / static_cast<double>(nfr.size());
}
BENCHMARK(BM_TuplesScannedReport)->Arg(100)->Arg(1000)->Arg(5000);

}  // namespace
}  // namespace nf2

BENCHMARK_MAIN();
