// Ablations for the design choices DESIGN.md calls out:
//
//   ABL-1  Permutation choice: §3.4-advised nest order vs identity vs
//          the empirically worst order — effect on tuple count and on
//          §4 update cost.
//   ABL-2  ValueSet representation: sorted vector (ours) vs a std::set
//          per component for membership probes.
//   ABL-3  Selection strategy on NFRs: tuple-level existential select
//          vs exact expansion-based select.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "algebra/operators.h"
#include "bench/workload.h"
#include "core/update.h"
#include "dependency/design.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

FlatRelation UniversityFlat(size_t students) {
  bench::UniversityConfig config;
  config.students = students;
  config.courses_per_student = 5;
  config.clubs_per_student = 2;
  config.course_pool = 30;
  config.club_pool = 10;
  config.seed = 777;
  return bench::GenerateUniversity(config);
}

// ---- ABL-1: permutation choice ----------------------------------------

void ReportPermutationAblation() {
  FlatRelation flat = UniversityFlat(150);
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  Permutation advised = AdvisePermutation(3, FdSet(3), mvds);
  Permutation identity = IdentityPermutation(3);
  Permutation worst;
  size_t worst_score = 0;
  for (const Permutation& perm : AllPermutations(3)) {
    size_t score = PermutationScore(flat, perm);
    if (score > worst_score) {
      worst_score = score;
      worst = perm;
    }
  }
  Permutation best = BestPermutationBySize(flat);

  auto measure = [&](const Permutation& perm) {
    Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(flat, perm);
    NF2_CHECK(rel.ok());
    UpdateStats before = rel->stats();
    for (int i = 0; i < 40; ++i) {
      FlatTuple t{Value::String(StrCat("zz", i)), Value::String("c1"),
                  Value::String("b1")};
      NF2_CHECK(rel->Insert(t).ok());
    }
    UpdateStats delta = rel->stats() - before;
    return std::make_pair(rel->size(),
                          delta.candidate_scans / 40);
  };
  auto name_of = [&](const Permutation& perm) {
    std::string out;
    for (size_t p : perm) out += flat.schema().attribute(p).name[0];
    return out;
  };

  std::vector<std::vector<std::string>> rows;
  const std::vector<std::pair<std::string, Permutation>> strategies{
      {"advised (sec 3.4)", advised},
      {"identity", identity},
      {"worst", worst},
      {"best (exhaustive)", best}};
  for (const auto& [label, perm] : strategies) {
    auto [tuples, scans] = measure(perm);
    rows.push_back({label, name_of(perm), std::to_string(tuples),
                    std::to_string(scans)});
  }
  bench::PrintReportTable(
      "ABL-1: nest-order choice (150 students, |R*|=" +
          std::to_string(flat.size()) + ")",
      {"strategy", "order", "NFR tuples", "cand. scans/insert"}, rows);
}

// ---- ABL-4: candidate search, inverted index vs scan -------------------
//
// The paper's §5 "optimization strategy" future work: indexed candt /
// searcht vs the literal linear scan. Composition counts are identical
// (tested); only the search cost changes.

void BM_InsertSearchScan(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = UniversityFlat(students);
  Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(
      flat, {1, 2, 0}, CanonicalRelation::SearchMode::kScan);
  NF2_CHECK(rel.ok());
  size_t i = 0;
  for (auto _ : state) {
    FlatTuple t{Value::String(StrCat("probe", i)), Value::String("c1"),
                Value::String("b1")};
    NF2_CHECK(rel->Insert(t).ok());
    NF2_CHECK(rel->Delete(t).ok());
    ++i;
  }
}
BENCHMARK(BM_InsertSearchScan)->Arg(100)->Arg(1000)->Arg(4000);

void BM_InsertSearchIndexed(benchmark::State& state) {
  size_t students = static_cast<size_t>(state.range(0));
  FlatRelation flat = UniversityFlat(students);
  Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(
      flat, {1, 2, 0}, CanonicalRelation::SearchMode::kIndexed);
  NF2_CHECK(rel.ok());
  size_t i = 0;
  for (auto _ : state) {
    FlatTuple t{Value::String(StrCat("probe", i)), Value::String("c1"),
                Value::String("b1")};
    NF2_CHECK(rel->Insert(t).ok());
    NF2_CHECK(rel->Delete(t).ok());
    ++i;
  }
}
BENCHMARK(BM_InsertSearchIndexed)->Arg(100)->Arg(1000)->Arg(4000);

// ---- ABL-2: ValueSet representation ------------------------------------

void BM_MembershipSortedVector(benchmark::State& state) {
  ValueSet set;
  size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    set.Insert(Value::String(StrCat("value_", i)));
  }
  size_t i = 0;
  for (auto _ : state) {
    Value probe = Value::String(StrCat("value_", i % (2 * n)));
    benchmark::DoNotOptimize(set.Contains(probe));
    ++i;
  }
}
BENCHMARK(BM_MembershipSortedVector)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_MembershipStdSet(benchmark::State& state) {
  std::set<Value> set;
  size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) {
    set.insert(Value::String(StrCat("value_", i)));
  }
  size_t i = 0;
  for (auto _ : state) {
    Value probe = Value::String(StrCat("value_", i % (2 * n)));
    benchmark::DoNotOptimize(set.count(probe) > 0);
    ++i;
  }
}
BENCHMARK(BM_MembershipStdSet)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// ---- ABL-3: selection strategy -----------------------------------------

void BM_SelectTupleLevel(benchmark::State& state) {
  FlatRelation flat = UniversityFlat(static_cast<size_t>(state.range(0)));
  NfrRelation nfr = CanonicalForm(flat, Permutation{1, 2, 0});
  size_t i = 0;
  for (auto _ : state) {
    Predicate pred =
        Predicate::Eq(1, Value::String(StrCat("c", i % 30)));
    benchmark::DoNotOptimize(SelectNfrTuples(nfr, pred));
    ++i;
  }
}
BENCHMARK(BM_SelectTupleLevel)->Arg(200)->Arg(1000);

void BM_SelectExactExpansion(benchmark::State& state) {
  FlatRelation flat = UniversityFlat(static_cast<size_t>(state.range(0)));
  NfrRelation nfr = CanonicalForm(flat, Permutation{1, 2, 0});
  size_t i = 0;
  for (auto _ : state) {
    Predicate pred =
        Predicate::Eq(1, Value::String(StrCat("c", i % 30)));
    benchmark::DoNotOptimize(SelectNfrExact(nfr, pred));
    ++i;
  }
}
BENCHMARK(BM_SelectExactExpansion)->Arg(200)->Arg(1000);

}  // namespace
}  // namespace nf2

int main(int argc, char** argv) {
  std::printf("Design-choice ablations\n");
  std::printf("=======================\n");
  nf2::ReportPermutationAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
