#ifndef NF2_BENCH_WORKLOAD_H_
#define NF2_BENCH_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/relation.h"
#include "util/rng.h"

namespace nf2 {
namespace bench {

/// Configuration of the university-style workload the paper's examples
/// are built from: students taking sets of courses and belonging to
/// sets of clubs, independently (so Student ->-> Course | Club holds).
struct UniversityConfig {
  size_t students = 100;
  size_t courses_per_student = 4;
  size_t clubs_per_student = 2;
  size_t course_pool = 30;   // Distinct course names.
  size_t club_pool = 10;     // Distinct club names.
  /// Probability that a student reuses the previous student's course
  /// set verbatim (drives cross-student NFR sharing).
  double share_course_set = 0.3;
  uint64_t seed = 42;
};

/// R1-style relation [Student, Course, Club]; satisfies the MVD
/// Student ->-> Course | Club by construction.
FlatRelation GenerateUniversity(const UniversityConfig& config);

/// R2-style relation [Student, Course, Semester]: each (student,
/// course) pair gets ONE semester, so no MVD holds in general.
struct EnrollmentConfig {
  size_t students = 100;
  size_t courses_per_student = 4;
  size_t course_pool = 30;
  size_t semester_pool = 6;
  uint64_t seed = 43;
};
FlatRelation GenerateEnrollment(const EnrollmentConfig& config);

/// Key-structured relation [K, X1..Xd-1] satisfying K -> X1..Xd-1, with
/// the dependent attributes drawn from small pools (so nesting on them
/// groups heavily).
struct KeyedConfig {
  size_t rows = 1000;
  size_t degree = 3;       // Including the key attribute.
  size_t value_pool = 8;   // Pool size per dependent attribute.
  uint64_t seed = 44;
};
FlatRelation GenerateKeyed(const KeyedConfig& config);

/// Fully random relation over `degree` attributes with per-attribute
/// domains of `domain` values — the adversarial case for nesting.
FlatRelation GenerateRandom(size_t degree, size_t domain, size_t rows,
                            uint64_t seed);

/// Prints an aligned report table: `header` then one row per entry.
/// Used by the reproduction binaries to print paper-vs-measured rows.
void PrintReportTable(const std::string& title,
                      const std::vector<std::string>& header,
                      const std::vector<std::vector<std::string>>& rows);

/// Formats a double with fixed precision for report tables.
std::string Fmt(double value, int precision = 2);

}  // namespace bench
}  // namespace nf2

#endif  // NF2_BENCH_WORKLOAD_H_
