// Reproduces Fig. 3: the containment relationships among canonical,
// fixed and irreducible NFRs. We enumerate EVERY relation over
// A x B x C with two-element domains (255 non-empty 1NF relations),
// then EVERY NFR form of each (every partition of R* into cross-product
// blocks is reachable by composition/decomposition), classify each form
// as canonical (equal to some V_P), irreducible (Def. 3), and fixed
// (fixed on at least one single attribute, Def. 7), then check the
// figure's claims:
//
//   1. every canonical form is irreducible        (canonical ⊂ irreducible)
//   2. irreducible forms that are not canonical exist
//   3. fixed forms exist inside and outside the irreducible region
//   4. canonical forms may or may not be fixed (the regions overlap)

#include <cstdint>
#include <cstdio>
#include <optional>
#include <set>
#include <vector>

#include "bench/workload.h"
#include "core/fixedness.h"
#include "core/irreducible.h"
#include "core/nest.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

struct Box {
  NfrTuple tuple;
  uint64_t mask;
};

/// All cross-product blocks ("boxes") inside `flat`, grown from
/// singleton tuples.
std::vector<Box> EnumerateBoxes(const FlatRelation& flat) {
  const auto& tuples = flat.tuples();
  auto mask_of = [&](const NfrTuple& t) -> std::optional<uint64_t> {
    uint64_t mask = 0;
    uint64_t contained = 0;
    for (size_t i = 0; i < tuples.size(); ++i) {
      if (t.ExpansionContains(tuples[i])) {
        mask |= (1ULL << i);
        ++contained;
      }
    }
    if (contained != t.ExpandedCount()) return std::nullopt;
    return mask;
  };
  std::vector<Box> boxes;
  std::set<std::pair<uint64_t, size_t>> seen;
  for (const FlatTuple& t : tuples) {
    NfrTuple nfr = NfrTuple::FromFlat(t);
    auto m = mask_of(nfr);
    NF2_CHECK(m.has_value());
    if (seen.insert({*m, nfr.Hash()}).second) {
      boxes.push_back({nfr, *m});
    }
  }
  for (size_t head = 0; head < boxes.size(); ++head) {
    Box box = boxes[head];
    for (size_t attr = 0; attr < flat.degree(); ++attr) {
      for (const FlatTuple& ft : tuples) {
        const Value& v = ft.at(attr);
        if (box.tuple.at(attr).Contains(v)) continue;
        NfrTuple grown = box.tuple;
        grown.at(attr).Insert(v);
        auto m = mask_of(grown);
        if (!m.has_value()) continue;
        if (seen.insert({*m, grown.Hash()}).second) {
          boxes.push_back({grown, *m});
        }
      }
    }
  }
  return boxes;
}

/// All partitions of R* into boxes — i.e. all NFR forms of `flat`.
void EnumerateForms(const std::vector<Box>& boxes, uint64_t full,
                    uint64_t covered, std::vector<size_t>* chosen,
                    const FlatRelation& flat,
                    std::vector<NfrRelation>* out) {
  if (covered == full) {
    std::vector<NfrTuple> tuples;
    for (size_t bi : *chosen) tuples.push_back(boxes[bi].tuple);
    out->emplace_back(flat.schema(), std::move(tuples));
    return;
  }
  uint64_t remaining = full & ~covered;
  size_t first = static_cast<size_t>(__builtin_ctzll(remaining));
  for (size_t bi = 0; bi < boxes.size(); ++bi) {
    const Box& box = boxes[bi];
    if (!((box.mask >> first) & 1)) continue;
    if ((box.mask & covered) != 0) continue;
    chosen->push_back(bi);
    EnumerateForms(boxes, full, covered | box.mask, chosen, flat, out);
    chosen->pop_back();
  }
}

void Run() {
  std::printf("Reproduction of Fig. 3 (canonical / fixed / irreducible)\n");
  std::printf("========================================================\n");
  std::vector<FlatTuple> universe;
  for (const char* a : {"a1", "a2"}) {
    for (const char* b : {"b1", "b2"}) {
      for (const char* c : {"c1", "c2"}) {
        universe.push_back(FlatTuple{V(a), V(b), V(c)});
      }
    }
  }
  Schema schema = Schema::OfStrings({"A", "B", "C"});

  // Venn region counters over all (relation, form) pairs.
  uint64_t total_forms = 0;
  uint64_t canonical_forms = 0;
  uint64_t irreducible_forms = 0;
  uint64_t fixed_forms = 0;
  uint64_t canonical_and_irreducible = 0;
  uint64_t irreducible_not_canonical = 0;
  uint64_t fixed_not_irreducible = 0;
  uint64_t canonical_and_fixed = 0;
  uint64_t canonical_not_fixed = 0;

  for (uint64_t mask = 1; mask < (1ULL << universe.size()); ++mask) {
    FlatRelation flat(schema);
    for (size_t i = 0; i < universe.size(); ++i) {
      if ((mask >> i) & 1) flat.Insert(universe[i]);
    }
    // Canonical forms of this relation (3! permutations).
    std::vector<NfrRelation> canonicals;
    for (const Permutation& perm : AllPermutations(3)) {
      canonicals.push_back(CanonicalForm(flat, perm));
    }
    std::vector<Box> boxes = EnumerateBoxes(flat);
    uint64_t full =
        flat.size() == 64 ? ~0ULL : ((1ULL << flat.size()) - 1);
    std::vector<NfrRelation> forms;
    std::vector<size_t> chosen;
    EnumerateForms(boxes, full, 0, &chosen, flat, &forms);

    for (const NfrRelation& form : forms) {
      NF2_CHECK(form.Expand() == flat) << "enumeration bug";
      ++total_forms;
      bool is_canonical = false;
      for (const NfrRelation& c : canonicals) {
        if (form.EqualsAsSet(c)) {
          is_canonical = true;
          break;
        }
      }
      bool is_irreducible = IsIrreducible(form);
      bool is_fixed = IsFixedOn(form, {0}) || IsFixedOn(form, {1}) ||
                      IsFixedOn(form, {2});
      canonical_forms += is_canonical;
      irreducible_forms += is_irreducible;
      fixed_forms += is_fixed;
      canonical_and_irreducible += is_canonical && is_irreducible;
      irreducible_not_canonical += is_irreducible && !is_canonical;
      fixed_not_irreducible += is_fixed && !is_irreducible;
      canonical_and_fixed += is_canonical && is_fixed;
      canonical_not_fixed += is_canonical && !is_fixed;
      // Claim 1: canonical => irreducible. Hard assertion.
      NF2_CHECK(!is_canonical || is_irreducible)
          << "Fig. 3 violated: canonical form not irreducible";
    }
  }

  bench::PrintReportTable(
      "Venn region census over all 255 relations' NFR forms",
      {"region", "count", "Fig.3 expectation"},
      {{"all NFR forms", std::to_string(total_forms), "outer box"},
       {"irreducible", std::to_string(irreducible_forms),
        "inner region"},
       {"canonical", std::to_string(canonical_forms),
        "subset of irreducible"},
       {"canonical AND irreducible",
        std::to_string(canonical_and_irreducible),
        "= canonical (containment)"},
       {"irreducible, NOT canonical",
        std::to_string(irreducible_not_canonical), "> 0"},
       {"fixed", std::to_string(fixed_forms), "overlaps all regions"},
       {"fixed, NOT irreducible", std::to_string(fixed_not_irreducible),
        "> 0 (fixed extends outside)"},
       {"canonical AND fixed", std::to_string(canonical_and_fixed),
        "> 0 (overlap)"},
       {"canonical, NOT fixed", std::to_string(canonical_not_fixed),
        "> 0 (canonical not inside fixed)"}});

  NF2_CHECK(canonical_and_irreducible == canonical_forms);
  NF2_CHECK(irreducible_not_canonical > 0);
  NF2_CHECK(fixed_not_irreducible > 0);
  NF2_CHECK(canonical_and_fixed > 0);
  NF2_CHECK(canonical_not_fixed > 0);
  std::printf("\nAll Fig. 3 containment claims verified exhaustively.\n");
}

}  // namespace
}  // namespace nf2

int main() {
  nf2::Run();
  return 0;
}
