# Empty compiler generated dependencies file for schema_designer.
# This may be replaced when dependencies are built.
