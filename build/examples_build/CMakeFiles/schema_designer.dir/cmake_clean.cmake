file(REMOVE_RECURSE
  "../examples/schema_designer"
  "../examples/schema_designer.pdb"
  "CMakeFiles/schema_designer.dir/schema_designer.cpp.o"
  "CMakeFiles/schema_designer.dir/schema_designer.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
