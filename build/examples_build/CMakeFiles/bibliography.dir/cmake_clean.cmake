file(REMOVE_RECURSE
  "../examples/bibliography"
  "../examples/bibliography.pdb"
  "CMakeFiles/bibliography.dir/bibliography.cpp.o"
  "CMakeFiles/bibliography.dir/bibliography.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
