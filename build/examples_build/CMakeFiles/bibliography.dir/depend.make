# Empty dependencies file for bibliography.
# This may be replaced when dependencies are built.
