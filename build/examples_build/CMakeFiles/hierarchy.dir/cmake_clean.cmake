file(REMOVE_RECURSE
  "../examples/hierarchy"
  "../examples/hierarchy.pdb"
  "CMakeFiles/hierarchy.dir/hierarchy.cpp.o"
  "CMakeFiles/hierarchy.dir/hierarchy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
