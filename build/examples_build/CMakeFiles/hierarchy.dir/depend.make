# Empty dependencies file for hierarchy.
# This may be replaced when dependencies are built.
