file(REMOVE_RECURSE
  "../examples/prerequisites"
  "../examples/prerequisites.pdb"
  "CMakeFiles/prerequisites.dir/prerequisites.cpp.o"
  "CMakeFiles/prerequisites.dir/prerequisites.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prerequisites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
