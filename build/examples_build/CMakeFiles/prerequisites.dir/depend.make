# Empty dependencies file for prerequisites.
# This may be replaced when dependencies are built.
