# Empty dependencies file for university.
# This may be replaced when dependencies are built.
