# Empty compiler generated dependencies file for university.
# This may be replaced when dependencies are built.
