file(REMOVE_RECURSE
  "../examples/university"
  "../examples/university.pdb"
  "CMakeFiles/university.dir/university.cpp.o"
  "CMakeFiles/university.dir/university.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
