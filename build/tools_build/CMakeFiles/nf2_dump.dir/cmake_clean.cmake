file(REMOVE_RECURSE
  "../tools/nf2_dump"
  "../tools/nf2_dump.pdb"
  "CMakeFiles/nf2_dump.dir/nf2_dump.cc.o"
  "CMakeFiles/nf2_dump.dir/nf2_dump.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf2_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
