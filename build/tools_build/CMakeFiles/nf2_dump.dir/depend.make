# Empty dependencies file for nf2_dump.
# This may be replaced when dependencies are built.
