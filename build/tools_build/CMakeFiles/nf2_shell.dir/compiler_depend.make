# Empty compiler generated dependencies file for nf2_shell.
# This may be replaced when dependencies are built.
