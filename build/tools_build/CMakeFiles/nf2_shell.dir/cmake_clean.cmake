file(REMOVE_RECURSE
  "../tools/nf2_shell"
  "../tools/nf2_shell.pdb"
  "CMakeFiles/nf2_shell.dir/nf2_shell.cc.o"
  "CMakeFiles/nf2_shell.dir/nf2_shell.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf2_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
