file(REMOVE_RECURSE
  "../tools/nf2_check"
  "../tools/nf2_check.pdb"
  "CMakeFiles/nf2_check.dir/nf2_check.cc.o"
  "CMakeFiles/nf2_check.dir/nf2_check.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf2_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
