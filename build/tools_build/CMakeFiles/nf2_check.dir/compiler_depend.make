# Empty compiler generated dependencies file for nf2_check.
# This may be replaced when dependencies are built.
