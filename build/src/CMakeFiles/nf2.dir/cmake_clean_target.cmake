file(REMOVE_RECURSE
  "libnf2.a"
)
