# Empty dependencies file for nf2.
# This may be replaced when dependencies are built.
