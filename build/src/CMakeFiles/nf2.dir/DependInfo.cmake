
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/nest_unnest.cc" "src/CMakeFiles/nf2.dir/algebra/nest_unnest.cc.o" "gcc" "src/CMakeFiles/nf2.dir/algebra/nest_unnest.cc.o.d"
  "/root/repo/src/algebra/operators.cc" "src/CMakeFiles/nf2.dir/algebra/operators.cc.o" "gcc" "src/CMakeFiles/nf2.dir/algebra/operators.cc.o.d"
  "/root/repo/src/algebra/predicate.cc" "src/CMakeFiles/nf2.dir/algebra/predicate.cc.o" "gcc" "src/CMakeFiles/nf2.dir/algebra/predicate.cc.o.d"
  "/root/repo/src/baseline/flat_engine.cc" "src/CMakeFiles/nf2.dir/baseline/flat_engine.cc.o" "gcc" "src/CMakeFiles/nf2.dir/baseline/flat_engine.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/nf2.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/nf2.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/core/compose.cc" "src/CMakeFiles/nf2.dir/core/compose.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/compose.cc.o.d"
  "/root/repo/src/core/diff.cc" "src/CMakeFiles/nf2.dir/core/diff.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/diff.cc.o.d"
  "/root/repo/src/core/fixedness.cc" "src/CMakeFiles/nf2.dir/core/fixedness.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/fixedness.cc.o.d"
  "/root/repo/src/core/format.cc" "src/CMakeFiles/nf2.dir/core/format.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/format.cc.o.d"
  "/root/repo/src/core/index.cc" "src/CMakeFiles/nf2.dir/core/index.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/index.cc.o.d"
  "/root/repo/src/core/irreducible.cc" "src/CMakeFiles/nf2.dir/core/irreducible.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/irreducible.cc.o.d"
  "/root/repo/src/core/nest.cc" "src/CMakeFiles/nf2.dir/core/nest.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/nest.cc.o.d"
  "/root/repo/src/core/relation.cc" "src/CMakeFiles/nf2.dir/core/relation.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/relation.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/nf2.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/schema.cc.o.d"
  "/root/repo/src/core/tuple.cc" "src/CMakeFiles/nf2.dir/core/tuple.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/tuple.cc.o.d"
  "/root/repo/src/core/update.cc" "src/CMakeFiles/nf2.dir/core/update.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/update.cc.o.d"
  "/root/repo/src/core/value.cc" "src/CMakeFiles/nf2.dir/core/value.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/value.cc.o.d"
  "/root/repo/src/core/value_set.cc" "src/CMakeFiles/nf2.dir/core/value_set.cc.o" "gcc" "src/CMakeFiles/nf2.dir/core/value_set.cc.o.d"
  "/root/repo/src/dependency/chase.cc" "src/CMakeFiles/nf2.dir/dependency/chase.cc.o" "gcc" "src/CMakeFiles/nf2.dir/dependency/chase.cc.o.d"
  "/root/repo/src/dependency/design.cc" "src/CMakeFiles/nf2.dir/dependency/design.cc.o" "gcc" "src/CMakeFiles/nf2.dir/dependency/design.cc.o.d"
  "/root/repo/src/dependency/fd.cc" "src/CMakeFiles/nf2.dir/dependency/fd.cc.o" "gcc" "src/CMakeFiles/nf2.dir/dependency/fd.cc.o.d"
  "/root/repo/src/dependency/mvd.cc" "src/CMakeFiles/nf2.dir/dependency/mvd.cc.o" "gcc" "src/CMakeFiles/nf2.dir/dependency/mvd.cc.o.d"
  "/root/repo/src/dependency/normalize.cc" "src/CMakeFiles/nf2.dir/dependency/normalize.cc.o" "gcc" "src/CMakeFiles/nf2.dir/dependency/normalize.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/nf2.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/nf2.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/statistics.cc" "src/CMakeFiles/nf2.dir/engine/statistics.cc.o" "gcc" "src/CMakeFiles/nf2.dir/engine/statistics.cc.o.d"
  "/root/repo/src/nested/nested_relation.cc" "src/CMakeFiles/nf2.dir/nested/nested_relation.cc.o" "gcc" "src/CMakeFiles/nf2.dir/nested/nested_relation.cc.o.d"
  "/root/repo/src/nfrql/executor.cc" "src/CMakeFiles/nf2.dir/nfrql/executor.cc.o" "gcc" "src/CMakeFiles/nf2.dir/nfrql/executor.cc.o.d"
  "/root/repo/src/nfrql/lexer.cc" "src/CMakeFiles/nf2.dir/nfrql/lexer.cc.o" "gcc" "src/CMakeFiles/nf2.dir/nfrql/lexer.cc.o.d"
  "/root/repo/src/nfrql/parser.cc" "src/CMakeFiles/nf2.dir/nfrql/parser.cc.o" "gcc" "src/CMakeFiles/nf2.dir/nfrql/parser.cc.o.d"
  "/root/repo/src/nfrql/token.cc" "src/CMakeFiles/nf2.dir/nfrql/token.cc.o" "gcc" "src/CMakeFiles/nf2.dir/nfrql/token.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/nf2.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/nf2.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/CMakeFiles/nf2.dir/storage/heap_file.cc.o" "gcc" "src/CMakeFiles/nf2.dir/storage/heap_file.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/nf2.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/nf2.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/serde.cc" "src/CMakeFiles/nf2.dir/storage/serde.cc.o" "gcc" "src/CMakeFiles/nf2.dir/storage/serde.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/nf2.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/nf2.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/nf2.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/nf2.dir/storage/wal.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/nf2.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/nf2.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/nf2.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/nf2.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/nf2.dir/util/status.cc.o" "gcc" "src/CMakeFiles/nf2.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/nf2.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/nf2.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
