# Empty dependencies file for misc_test.
# This may be replaced when dependencies are built.
