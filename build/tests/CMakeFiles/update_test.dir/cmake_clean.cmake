file(REMOVE_RECURSE
  "CMakeFiles/update_test.dir/update_test.cc.o"
  "CMakeFiles/update_test.dir/update_test.cc.o.d"
  "update_test"
  "update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
