file(REMOVE_RECURSE
  "CMakeFiles/nfrql_test.dir/nfrql_test.cc.o"
  "CMakeFiles/nfrql_test.dir/nfrql_test.cc.o.d"
  "nfrql_test"
  "nfrql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfrql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
