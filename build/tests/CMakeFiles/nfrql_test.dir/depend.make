# Empty dependencies file for nfrql_test.
# This may be replaced when dependencies are built.
