# Empty compiler generated dependencies file for nested_test.
# This may be replaced when dependencies are built.
