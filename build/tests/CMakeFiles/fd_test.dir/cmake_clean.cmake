file(REMOVE_RECURSE
  "CMakeFiles/fd_test.dir/fd_test.cc.o"
  "CMakeFiles/fd_test.dir/fd_test.cc.o.d"
  "fd_test"
  "fd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
