# Empty dependencies file for fd_test.
# This may be replaced when dependencies are built.
