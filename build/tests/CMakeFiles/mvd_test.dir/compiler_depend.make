# Empty compiler generated dependencies file for mvd_test.
# This may be replaced when dependencies are built.
