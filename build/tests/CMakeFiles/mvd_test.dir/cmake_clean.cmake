file(REMOVE_RECURSE
  "CMakeFiles/mvd_test.dir/mvd_test.cc.o"
  "CMakeFiles/mvd_test.dir/mvd_test.cc.o.d"
  "mvd_test"
  "mvd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
