file(REMOVE_RECURSE
  "CMakeFiles/irreducible_test.dir/irreducible_test.cc.o"
  "CMakeFiles/irreducible_test.dir/irreducible_test.cc.o.d"
  "irreducible_test"
  "irreducible_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irreducible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
