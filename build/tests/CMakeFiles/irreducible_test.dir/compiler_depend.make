# Empty compiler generated dependencies file for irreducible_test.
# This may be replaced when dependencies are built.
