file(REMOVE_RECURSE
  "CMakeFiles/compose_test.dir/compose_test.cc.o"
  "CMakeFiles/compose_test.dir/compose_test.cc.o.d"
  "compose_test"
  "compose_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
