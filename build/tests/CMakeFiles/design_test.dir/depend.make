# Empty dependencies file for design_test.
# This may be replaced when dependencies are built.
