file(REMOVE_RECURSE
  "CMakeFiles/design_test.dir/design_test.cc.o"
  "CMakeFiles/design_test.dir/design_test.cc.o.d"
  "design_test"
  "design_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
