file(REMOVE_RECURSE
  "CMakeFiles/relation_test.dir/relation_test.cc.o"
  "CMakeFiles/relation_test.dir/relation_test.cc.o.d"
  "relation_test"
  "relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
