# Empty compiler generated dependencies file for nest_test.
# This may be replaced when dependencies are built.
