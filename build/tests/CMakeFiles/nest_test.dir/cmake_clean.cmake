file(REMOVE_RECURSE
  "CMakeFiles/nest_test.dir/nest_test.cc.o"
  "CMakeFiles/nest_test.dir/nest_test.cc.o.d"
  "nest_test"
  "nest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
