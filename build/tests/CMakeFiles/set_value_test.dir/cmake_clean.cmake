file(REMOVE_RECURSE
  "CMakeFiles/set_value_test.dir/set_value_test.cc.o"
  "CMakeFiles/set_value_test.dir/set_value_test.cc.o.d"
  "set_value_test"
  "set_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
