# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for set_value_test.
