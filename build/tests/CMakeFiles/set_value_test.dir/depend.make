# Empty dependencies file for set_value_test.
# This may be replaced when dependencies are built.
