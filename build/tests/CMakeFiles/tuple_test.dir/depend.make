# Empty dependencies file for tuple_test.
# This may be replaced when dependencies are built.
