file(REMOVE_RECURSE
  "CMakeFiles/tuple_test.dir/tuple_test.cc.o"
  "CMakeFiles/tuple_test.dir/tuple_test.cc.o.d"
  "tuple_test"
  "tuple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
