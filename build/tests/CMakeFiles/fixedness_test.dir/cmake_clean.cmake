file(REMOVE_RECURSE
  "CMakeFiles/fixedness_test.dir/fixedness_test.cc.o"
  "CMakeFiles/fixedness_test.dir/fixedness_test.cc.o.d"
  "fixedness_test"
  "fixedness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fixedness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
