# Empty compiler generated dependencies file for fixedness_test.
# This may be replaced when dependencies are built.
