# Empty dependencies file for algebra_test.
# This may be replaced when dependencies are built.
