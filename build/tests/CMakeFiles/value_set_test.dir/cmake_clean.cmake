file(REMOVE_RECURSE
  "CMakeFiles/value_set_test.dir/value_set_test.cc.o"
  "CMakeFiles/value_set_test.dir/value_set_test.cc.o.d"
  "value_set_test"
  "value_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
