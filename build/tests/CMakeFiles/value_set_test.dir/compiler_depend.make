# Empty compiler generated dependencies file for value_set_test.
# This may be replaced when dependencies are built.
