file(REMOVE_RECURSE
  "../bench/bench_examples"
  "../bench/bench_examples.pdb"
  "CMakeFiles/bench_examples.dir/bench_examples.cc.o"
  "CMakeFiles/bench_examples.dir/bench_examples.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
