# Empty dependencies file for bench_examples.
# This may be replaced when dependencies are built.
