file(REMOVE_RECURSE
  "../bench/bench_fig1_fig2"
  "../bench/bench_fig1_fig2.pdb"
  "CMakeFiles/bench_fig1_fig2.dir/bench_fig1_fig2.cc.o"
  "CMakeFiles/bench_fig1_fig2.dir/bench_fig1_fig2.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fig2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
