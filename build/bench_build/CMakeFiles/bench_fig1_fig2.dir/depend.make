# Empty dependencies file for bench_fig1_fig2.
# This may be replaced when dependencies are built.
