# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for nf2_bench_workload.
