file(REMOVE_RECURSE
  "libnf2_bench_workload.a"
)
