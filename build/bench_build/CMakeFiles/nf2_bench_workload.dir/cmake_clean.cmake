file(REMOVE_RECURSE
  "CMakeFiles/nf2_bench_workload.dir/workload.cc.o"
  "CMakeFiles/nf2_bench_workload.dir/workload.cc.o.d"
  "libnf2_bench_workload.a"
  "libnf2_bench_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf2_bench_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
