# Empty compiler generated dependencies file for nf2_bench_workload.
# This may be replaced when dependencies are built.
