file(REMOVE_RECURSE
  "../bench/bench_update_complexity"
  "../bench/bench_update_complexity.pdb"
  "CMakeFiles/bench_update_complexity.dir/bench_update_complexity.cc.o"
  "CMakeFiles/bench_update_complexity.dir/bench_update_complexity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
