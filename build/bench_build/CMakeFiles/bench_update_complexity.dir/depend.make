# Empty dependencies file for bench_update_complexity.
# This may be replaced when dependencies are built.
