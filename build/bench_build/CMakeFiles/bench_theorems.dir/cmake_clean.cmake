file(REMOVE_RECURSE
  "../bench/bench_theorems"
  "../bench/bench_theorems.pdb"
  "CMakeFiles/bench_theorems.dir/bench_theorems.cc.o"
  "CMakeFiles/bench_theorems.dir/bench_theorems.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
