file(REMOVE_RECURSE
  "../bench/bench_construction"
  "../bench/bench_construction.pdb"
  "CMakeFiles/bench_construction.dir/bench_construction.cc.o"
  "CMakeFiles/bench_construction.dir/bench_construction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
