# Empty compiler generated dependencies file for bench_construction.
# This may be replaced when dependencies are built.
