# Empty dependencies file for bench_fig3_venn.
# This may be replaced when dependencies are built.
