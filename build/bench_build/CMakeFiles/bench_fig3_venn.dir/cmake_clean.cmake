file(REMOVE_RECURSE
  "../bench/bench_fig3_venn"
  "../bench/bench_fig3_venn.pdb"
  "CMakeFiles/bench_fig3_venn.dir/bench_fig3_venn.cc.o"
  "CMakeFiles/bench_fig3_venn.dir/bench_fig3_venn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_venn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
