# Empty compiler generated dependencies file for bench_search_space.
# This may be replaced when dependencies are built.
