file(REMOVE_RECURSE
  "../bench/bench_search_space"
  "../bench/bench_search_space.pdb"
  "CMakeFiles/bench_search_space.dir/bench_search_space.cc.o"
  "CMakeFiles/bench_search_space.dir/bench_search_space.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
