# Empty dependencies file for bench_size_reduction.
# This may be replaced when dependencies are built.
