file(REMOVE_RECURSE
  "../bench/bench_size_reduction"
  "../bench/bench_size_reduction.pdb"
  "CMakeFiles/bench_size_reduction.dir/bench_size_reduction.cc.o"
  "CMakeFiles/bench_size_reduction.dir/bench_size_reduction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_size_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
