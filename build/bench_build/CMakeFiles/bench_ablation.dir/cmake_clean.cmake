file(REMOVE_RECURSE
  "../bench/bench_ablation"
  "../bench/bench_ablation.pdb"
  "CMakeFiles/bench_ablation.dir/bench_ablation.cc.o"
  "CMakeFiles/bench_ablation.dir/bench_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
