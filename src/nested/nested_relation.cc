#include "nested/nested_relation.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

bool NestedAttribute::operator==(const NestedAttribute& other) const {
  if (name != other.name) return false;
  if (is_relation() != other.is_relation()) return false;
  if (is_relation()) return *sub == *other.sub;
  return type == other.type;
}

NestedSchema::NestedSchema(std::vector<NestedAttribute> attributes)
    : attributes_(std::move(attributes)) {
  std::vector<std::string> seen;
  for (const NestedAttribute& attr : attributes_) {
    NF2_CHECK(std::find(seen.begin(), seen.end(), attr.name) == seen.end())
        << "Duplicate nested attribute name: " << attr.name;
    seen.push_back(attr.name);
  }
}

NestedSchema NestedSchema::FromFlat(const Schema& schema) {
  std::vector<NestedAttribute> attrs;
  attrs.reserve(schema.degree());
  for (const Attribute& attr : schema.attributes()) {
    attrs.push_back(NestedAttribute{attr.name, attr.type, nullptr});
  }
  return NestedSchema(std::move(attrs));
}

const NestedAttribute& NestedSchema::attribute(size_t i) const {
  NF2_CHECK(i < attributes_.size());
  return attributes_[i];
}

std::optional<size_t> NestedSchema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

Result<size_t> NestedSchema::RequireIndex(const std::string& name) const {
  std::optional<size_t> idx = IndexOf(name);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("attribute '", name, "' not in schema ", ToString()));
  }
  return *idx;
}

bool NestedSchema::IsFlat() const {
  for (const NestedAttribute& attr : attributes_) {
    if (attr.is_relation()) return false;
  }
  return true;
}

bool NestedSchema::operator==(const NestedSchema& other) const {
  return attributes_ == other.attributes_;
}

std::string NestedSchema::ToString() const {
  std::vector<std::string> parts;
  for (const NestedAttribute& attr : attributes_) {
    if (attr.is_relation()) {
      parts.push_back(StrCat(attr.name, " ", attr.sub->ToString()));
    } else {
      parts.push_back(StrCat(attr.name, " ", ValueTypeToString(attr.type)));
    }
  }
  return StrCat("(", Join(parts, ", "), ")");
}

NestedValue::NestedValue(NestedRelation relation)
    : relation_(std::make_shared<const NestedRelation>(
          std::move(relation))) {}

const Value& NestedValue::atom() const {
  NF2_CHECK(!is_relation()) << "NestedValue is a relation";
  return atom_;
}

const NestedRelation& NestedValue::relation() const {
  NF2_CHECK(is_relation()) << "NestedValue is an atom";
  return *relation_;
}

bool NestedValue::operator==(const NestedValue& other) const {
  if (is_relation() != other.is_relation()) return false;
  if (is_relation()) return *relation_ == *other.relation_;
  return atom_ == other.atom_;
}

bool NestedValue::operator<(const NestedValue& other) const {
  // Atoms sort before relations; relations by their printed canonical
  // form (tuples are kept sorted, so this is deterministic).
  if (is_relation() != other.is_relation()) return !is_relation();
  if (!is_relation()) return atom_ < other.atom_;
  return relation_->ToString() < other.relation_->ToString();
}

std::string NestedValue::ToString() const {
  if (!is_relation()) return atom_.ToString();
  std::vector<std::string> rows;
  for (const NestedTuple& t : relation_->tuples()) {
    rows.push_back(t.ToString());
  }
  return StrCat("{", Join(rows, ", "), "}");
}

const NestedValue& NestedTuple::at(size_t i) const {
  NF2_CHECK(i < values_.size());
  return values_[i];
}

bool NestedTuple::operator<(const NestedTuple& other) const {
  return std::lexicographical_compare(values_.begin(), values_.end(),
                                      other.values_.begin(),
                                      other.values_.end());
}

std::string NestedTuple::ToString() const {
  std::vector<std::string> parts;
  for (const NestedValue& v : values_) {
    parts.push_back(v.ToString());
  }
  return StrCat("<", Join(parts, ", "), ">");
}

NestedRelation::NestedRelation(NestedSchema schema,
                               std::vector<NestedTuple> tuples)
    : schema_(std::move(schema)), tuples_(std::move(tuples)) {
  for (const NestedTuple& t : tuples_) {
    NF2_CHECK(t.degree() == schema_.degree())
        << "nested tuple degree mismatch";
  }
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()),
                tuples_.end());
}

NestedRelation NestedRelation::FromFlat(const FlatRelation& flat) {
  NestedRelation out(NestedSchema::FromFlat(flat.schema()));
  for (const FlatTuple& t : flat.tuples()) {
    std::vector<NestedValue> values;
    values.reserve(t.degree());
    for (const Value& v : t.values()) {
      values.emplace_back(v);
    }
    out.Insert(NestedTuple(std::move(values)));
  }
  return out;
}

const NestedTuple& NestedRelation::tuple(size_t i) const {
  NF2_CHECK(i < tuples_.size());
  return tuples_[i];
}

bool NestedRelation::Insert(NestedTuple t) {
  NF2_CHECK(t.degree() == schema_.degree())
      << "nested tuple degree mismatch";
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return false;
  tuples_.insert(it, std::move(t));
  return true;
}

bool NestedRelation::operator==(const NestedRelation& other) const {
  return schema_ == other.schema_ && tuples_ == other.tuples_;
}

Result<FlatRelation> NestedRelation::ToFlat() const {
  if (!schema_.IsFlat()) {
    return Status::FailedPrecondition(
        "schema has relation-valued attributes; unnest them first");
  }
  std::vector<Attribute> attrs;
  for (const NestedAttribute& attr : schema_.attributes()) {
    attrs.push_back({attr.name, attr.type});
  }
  FlatRelation out(Schema(std::move(attrs)));
  for (const NestedTuple& t : tuples_) {
    std::vector<Value> values;
    values.reserve(t.degree());
    for (const NestedValue& v : t.values()) {
      values.push_back(v.atom());
    }
    out.Insert(FlatTuple(std::move(values)));
  }
  return out;
}

std::string NestedRelation::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out =
      StrCat(pad, "NestedRelation", schema_.ToString(), " {", tuples_.size(),
             " tuples}\n");
  for (const NestedTuple& t : tuples_) {
    out += StrCat(pad, "  ", t.ToString(), "\n");
  }
  return out;
}

Result<NestedRelation> NestAttrs(const NestedRelation& rel,
                                 const std::vector<std::string>& attrs,
                                 const std::string& as_name) {
  if (attrs.empty()) {
    return Status::InvalidArgument("nest needs at least one attribute");
  }
  std::vector<size_t> nested_idx;
  for (const std::string& name : attrs) {
    NF2_ASSIGN_OR_RETURN(size_t idx, rel.schema().RequireIndex(name));
    nested_idx.push_back(idx);
  }
  std::sort(nested_idx.begin(), nested_idx.end());
  nested_idx.erase(std::unique(nested_idx.begin(), nested_idx.end()),
                   nested_idx.end());
  if (nested_idx.size() == rel.schema().degree()) {
    return Status::InvalidArgument(
        "nest must leave at least one grouping attribute");
  }
  std::vector<size_t> kept_idx;
  for (size_t i = 0; i < rel.schema().degree(); ++i) {
    if (!std::binary_search(nested_idx.begin(), nested_idx.end(), i)) {
      kept_idx.push_back(i);
    }
  }
  if (rel.schema().IndexOf(as_name).has_value()) {
    bool shadowed = false;
    for (size_t i : nested_idx) {
      if (rel.schema().attribute(i).name == as_name) shadowed = true;
    }
    if (!shadowed) {
      return Status::AlreadyExists(
          StrCat("attribute '", as_name, "' already exists"));
    }
  }

  // Sub-schema of the packed attribute.
  std::vector<NestedAttribute> sub_attrs;
  for (size_t i : nested_idx) {
    sub_attrs.push_back(rel.schema().attribute(i));
  }
  auto sub_schema =
      std::make_shared<const NestedSchema>(std::move(sub_attrs));
  // Output schema: kept attributes then the new relation attribute.
  std::vector<NestedAttribute> out_attrs;
  for (size_t i : kept_idx) {
    out_attrs.push_back(rel.schema().attribute(i));
  }
  out_attrs.push_back(NestedAttribute{as_name, ValueType::kNull, sub_schema});
  NestedSchema out_schema(std::move(out_attrs));

  // Group by the kept attributes.
  std::map<std::vector<NestedValue>, std::vector<NestedTuple>> groups;
  for (const NestedTuple& t : rel.tuples()) {
    std::vector<NestedValue> key;
    key.reserve(kept_idx.size());
    for (size_t i : kept_idx) key.push_back(t.at(i));
    std::vector<NestedValue> sub;
    sub.reserve(nested_idx.size());
    for (size_t i : nested_idx) sub.push_back(t.at(i));
    groups[std::move(key)].emplace_back(std::move(sub));
  }
  NestedRelation out(std::move(out_schema));
  for (auto& [key, sub_tuples] : groups) {
    NestedRelation sub(*sub_schema, std::move(sub_tuples));
    std::vector<NestedValue> values = key;
    values.emplace_back(std::move(sub));
    out.Insert(NestedTuple(std::move(values)));
  }
  return out;
}

Result<NestedRelation> UnnestAttr(const NestedRelation& rel,
                                  const std::string& name) {
  NF2_ASSIGN_OR_RETURN(size_t idx, rel.schema().RequireIndex(name));
  const NestedAttribute& attr = rel.schema().attribute(idx);
  if (!attr.is_relation()) {
    return Status::InvalidArgument(
        StrCat("attribute '", name, "' is atomic; cannot unnest"));
  }
  // Output schema: attributes before idx, the sub-attributes, then the
  // attributes after idx.
  std::vector<NestedAttribute> out_attrs;
  for (size_t i = 0; i < rel.schema().degree(); ++i) {
    if (i == idx) {
      for (const NestedAttribute& sub : attr.sub->attributes()) {
        if (out_attrs.end() !=
            std::find_if(out_attrs.begin(), out_attrs.end(),
                         [&](const NestedAttribute& a) {
                           return a.name == sub.name;
                         })) {
          return Status::AlreadyExists(
              StrCat("unnest would duplicate attribute '", sub.name, "'"));
        }
        out_attrs.push_back(sub);
      }
    } else {
      out_attrs.push_back(rel.schema().attribute(i));
    }
  }
  NestedSchema out_schema(std::move(out_attrs));
  NestedRelation out(std::move(out_schema));
  for (const NestedTuple& t : rel.tuples()) {
    const NestedRelation& sub = t.at(idx).relation();
    for (const NestedTuple& sub_tuple : sub.tuples()) {
      std::vector<NestedValue> values;
      for (size_t i = 0; i < t.degree(); ++i) {
        if (i == idx) {
          for (const NestedValue& v : sub_tuple.values()) {
            values.push_back(v);
          }
        } else {
          values.push_back(t.at(i));
        }
      }
      out.Insert(NestedTuple(std::move(values)));
    }
  }
  return out;
}

}  // namespace nf2
