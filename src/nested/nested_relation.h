#ifndef NF2_NESTED_NESTED_RELATION_H_
#define NF2_NESTED_NESTED_RELATION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"
#include "core/value.h"
#include "util/result.h"

namespace nf2 {

class NestedRelation;
class NestedSchema;

/// One attribute of a hierarchical schema: either atomic (a ValueType)
/// or relation-valued (carrying a sub-schema). This is the data model
/// of Jaeschke & Schek's nest/unnest algebra — the paper's reference
/// [7], which Arisawa et al. specialize to simple domains. nf2db
/// implements both: `core/` is the paper's variant, `nested/` the
/// general one.
struct NestedAttribute {
  std::string name;
  ValueType type = ValueType::kString;       // Used when sub == nullptr.
  std::shared_ptr<const NestedSchema> sub;   // Non-null: relation-valued.

  bool is_relation() const { return sub != nullptr; }
  bool operator==(const NestedAttribute& other) const;
};

/// An ordered list of (possibly relation-valued) attributes with unique
/// names.
class NestedSchema {
 public:
  NestedSchema() = default;
  explicit NestedSchema(std::vector<NestedAttribute> attributes);

  /// Lifts a flat schema (all attributes atomic).
  static NestedSchema FromFlat(const Schema& schema);

  size_t degree() const { return attributes_.size(); }
  const std::vector<NestedAttribute>& attributes() const {
    return attributes_;
  }
  const NestedAttribute& attribute(size_t i) const;
  std::optional<size_t> IndexOf(const std::string& name) const;
  Result<size_t> RequireIndex(const std::string& name) const;

  /// True when no attribute is relation-valued.
  bool IsFlat() const;

  bool operator==(const NestedSchema& other) const;
  bool operator!=(const NestedSchema& other) const {
    return !(*this == other);
  }

  /// "(A STRING, Sub (X STRING, Y INT))"-style rendering.
  std::string ToString() const;

 private:
  std::vector<NestedAttribute> attributes_;
};

/// A value in a nested tuple: an atom or a whole subrelation.
class NestedValue {
 public:
  /// Atomic value.
  NestedValue() = default;
  explicit NestedValue(Value atom) : atom_(std::move(atom)) {}
  /// Relation value.
  explicit NestedValue(NestedRelation relation);

  bool is_relation() const { return relation_ != nullptr; }
  const Value& atom() const;
  const NestedRelation& relation() const;

  bool operator==(const NestedValue& other) const;
  bool operator!=(const NestedValue& other) const {
    return !(*this == other);
  }
  bool operator<(const NestedValue& other) const;

  std::string ToString() const;

 private:
  Value atom_;
  std::shared_ptr<const NestedRelation> relation_;  // Immutable share.
};

/// A tuple of nested values.
class NestedTuple {
 public:
  NestedTuple() = default;
  explicit NestedTuple(std::vector<NestedValue> values)
      : values_(std::move(values)) {}

  size_t degree() const { return values_.size(); }
  const NestedValue& at(size_t i) const;
  const std::vector<NestedValue>& values() const { return values_; }

  bool operator==(const NestedTuple& other) const {
    return values_ == other.values_;
  }
  bool operator<(const NestedTuple& other) const;

  std::string ToString() const;

 private:
  std::vector<NestedValue> values_;
};

/// A hierarchical (NF²) relation: a set of nested tuples over a
/// NestedSchema. Set semantics throughout — duplicates collapse, order
/// is canonical (sorted).
class NestedRelation {
 public:
  NestedRelation() = default;
  explicit NestedRelation(NestedSchema schema)
      : schema_(std::move(schema)) {}
  NestedRelation(NestedSchema schema, std::vector<NestedTuple> tuples);

  /// Lifts a 1NF relation (tuples become all-atomic nested tuples).
  static NestedRelation FromFlat(const FlatRelation& flat);

  const NestedSchema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const std::vector<NestedTuple>& tuples() const { return tuples_; }
  const NestedTuple& tuple(size_t i) const;

  /// Inserts with set semantics; returns false on duplicate.
  bool Insert(NestedTuple t);

  bool operator==(const NestedRelation& other) const;
  bool operator!=(const NestedRelation& other) const {
    return !(*this == other);
  }

  /// Converts back to a FlatRelation; error unless the schema is flat.
  Result<FlatRelation> ToFlat() const;

  /// Multi-line rendering with indented subrelations.
  std::string ToString(int indent = 0) const;

 private:
  NestedSchema schema_;
  std::vector<NestedTuple> tuples_;  // Sorted, duplicate-free.
};

// ---- The ν / μ algebra of [7] ------------------------------------------

/// ν (nest): groups `rel` by the attributes NOT in `attrs` and packs
/// each group's projection onto `attrs` into one relation-valued
/// attribute named `as_name`. Errors when `attrs` is empty, covers the
/// whole schema, or `as_name` collides.
Result<NestedRelation> NestAttrs(const NestedRelation& rel,
                                 const std::vector<std::string>& attrs,
                                 const std::string& as_name);

/// μ (unnest): replaces the relation-valued attribute `name` by its
/// sub-attributes, one output tuple per sub-tuple. Tuples whose
/// subrelation is empty vanish (standard μ semantics). Errors when
/// `name` is missing or atomic.
Result<NestedRelation> UnnestAttr(const NestedRelation& rel,
                                  const std::string& name);

}  // namespace nf2

#endif  // NF2_NESTED_NESTED_RELATION_H_
