#ifndef NF2_STORAGE_SERDE_H_
#define NF2_STORAGE_SERDE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/relation.h"
#include "core/schema.h"
#include "core/tuple.h"
#include "core/value.h"
#include "core/value_dictionary.h"
#include "core/value_set.h"
#include "util/result.h"

namespace nf2 {

/// Append-only byte buffer with little-endian primitive encoders.
/// All variable-length payloads are length-prefixed, so records are
/// self-delimiting.
class BufferWriter {
 public:
  const std::string& data() const { return buf_; }
  size_t size() const { return buf_.size(); }

  /// Drops the content but keeps the capacity — reusing one writer
  /// across a loop of encodes avoids a heap allocation per record.
  void Clear() { buf_.clear(); }

  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v);
  void PutDouble(double v);
  /// 32-bit length prefix + raw bytes.
  void PutString(std::string_view s);
  /// Raw bytes, no prefix (caller knows the length).
  void PutRaw(std::string_view s);

 private:
  std::string buf_;
};

/// Sequential reader over a byte span; every getter returns Corruption
/// when the buffer is exhausted.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<std::string> GetString();
  Result<std::string> GetRaw(size_t len);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// CRC32 (IEEE 802.3 polynomial) used by WAL records and page footers.
uint32_t Crc32(std::string_view data);

// ---- Typed encoders ---------------------------------------------------

void EncodeValue(const Value& v, BufferWriter* out);
Result<Value> DecodeValue(BufferReader* in);

void EncodeValueSet(const ValueSet& s, BufferWriter* out);
Result<ValueSet> DecodeValueSet(BufferReader* in);

void EncodeFlatTuple(const FlatTuple& t, BufferWriter* out);
Result<FlatTuple> DecodeFlatTuple(BufferReader* in);

void EncodeNfrTuple(const NfrTuple& t, BufferWriter* out);
Result<NfrTuple> DecodeNfrTuple(BufferReader* in);

void EncodeSchema(const Schema& s, BufferWriter* out);
Result<Schema> DecodeSchema(BufferReader* in);

void EncodeNfrRelation(const NfrRelation& r, BufferWriter* out);
Result<NfrRelation> DecodeNfrRelation(BufferReader* in);

/// The dictionary is persisted as its values in id order, so decoding
/// re-interns them and reproduces the exact id assignment — stored
/// id-encoded state (and any future id-encoded pages) stays valid
/// across restarts.
void EncodeValueDictionary(const ValueDictionary& d, BufferWriter* out);
Result<std::shared_ptr<ValueDictionary>> DecodeValueDictionary(
    BufferReader* in);

}  // namespace nf2

#endif  // NF2_STORAGE_SERDE_H_
