#ifndef NF2_STORAGE_WAL_H_
#define NF2_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tuple.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "util/result.h"

namespace nf2 {

/// Kinds of logged operations. The engine logs logical (tuple-level)
/// operations; recovery replays them through the same §4 update
/// algorithms, so the canonical form is reconstructed exactly.
enum class WalOpType : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kCreateRelation = 3,
  kDropRelation = 4,
  kCheckpoint = 5,
  // Transaction demarcation: recovery applies the insert/delete records
  // between kTxnBegin and kTxnCommit atomically, and discards those of
  // aborted (kTxnAbort) or unfinished (crash-cut) transactions.
  kTxnBegin = 6,
  kTxnCommit = 7,
  kTxnAbort = 8,
};

/// Frame validation bounds, tied to the enum so adding an op type
/// without updating them fails to compile.
inline constexpr uint8_t kMinWalOpType =
    static_cast<uint8_t>(WalOpType::kInsert);
inline constexpr uint8_t kMaxWalOpType =
    static_cast<uint8_t>(WalOpType::kTxnAbort);
static_assert(kMinWalOpType == 1 && kMaxWalOpType == 8,
              "WalOpType enumerators must stay dense in [1, 8]; update "
              "kMin/kMaxWalOpType (and any frame-format note) if the enum "
              "grows");

const char* WalOpTypeToString(WalOpType type);

/// One logical log record.
struct WalRecord {
  uint64_t lsn = 0;        // Assigned by Append.
  WalOpType type = WalOpType::kCheckpoint;
  std::string relation;    // Target relation name ("" for checkpoint).
  std::string payload;     // Serialized tuple / schema, op-specific.

  bool operator==(const WalRecord&) const = default;
};

/// Outcome of one full scan of the log.
struct WalReadResult {
  std::vector<WalRecord> records;  // The intact prefix, in order.
  /// True when the log ended exactly at a frame boundary; false when a
  /// torn or corrupt tail was cut off after `valid_bytes`.
  bool clean_eof = true;
  /// Byte length of the intact prefix (where appends may resume).
  uint64_t valid_bytes = 0;
};

/// An append-only, CRC-checked write-ahead log.
///
/// On-disk record frame:
///   [u32 total_len][u64 lsn][u8 type][u32 name_len][name]
///   [u32 payload_len][payload][u32 crc of everything before]
///
/// Crash discipline: Open scans the log once, truncates any torn or
/// corrupt tail (a crash mid-append must not leave garbage that would
/// silently orphan every later record), and caches the surviving
/// records for recovery. Append fdatasyncs at commit points — every
/// record that is not inside an open transaction, plus the commit and
/// abort markers that close one — so an acknowledged operation is on
/// stable storage before control returns.
class WriteAheadLog {
 public:
  struct Options {
    /// When false, Append never syncs (a benchmark control and a
    /// deliberate durability/throughput trade — a crash can lose
    /// acknowledged tail records, but never tear the log).
    bool sync_on_commit = true;
    /// When set, the log reports nf2_wal_* metrics here (appends,
    /// fsyncs, appended bytes, torn-tail repairs, group-commit batch
    /// sizes). Null keeps the log un-instrumented.
    MetricsRegistry* metrics = nullptr;
  };

  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if needed) the log at `path`: scans it once,
  /// truncates a torn tail, caches the recovered records
  /// (see recovered_records()), and positions appends after the intact
  /// prefix.
  static Result<std::unique_ptr<WriteAheadLog>> Open(Env* env,
                                                     const std::string& path,
                                                     Options options);
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      Env* env, const std::string& path) {
    return Open(env, path, Options{});
  }
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path) {
    return Open(Env::Default(), path);
  }

  /// Appends a record (lsn field is overwritten), flushing always and
  /// syncing at commit points (see class comment).
  Result<uint64_t> Append(WalRecord record);

  /// Re-scans the file: the intact record prefix plus whether the tail
  /// was clean. (Open already did this once; recovery should prefer
  /// recovered_records() over a second scan.)
  Result<WalReadResult> ReadAll() const;

  /// The records recovered by Open, without re-reading the file.
  const std::vector<WalRecord>& recovered_records() const {
    return recovered_;
  }

  /// True when Open had to cut a torn/corrupt tail off the log.
  bool truncated_on_open() const { return truncated_on_open_; }

  /// Truncates the log (after a checkpoint made its contents
  /// redundant). Durable when it returns OK: this is the commit point
  /// of the checkpoint protocol.
  Status Reset();

  const std::string& path() const { return path_; }
  uint64_t next_lsn() const { return next_lsn_; }

  /// fdatasync calls issued by Append (observability for the
  /// group-commit batching benchmarks).
  uint64_t sync_count() const { return sync_count_; }

 private:
  Env* env_ = nullptr;
  Options options_;
  std::string path_;
  std::unique_ptr<WritableFile> out_;
  std::vector<WalRecord> recovered_;
  bool truncated_on_open_ = false;
  /// Tracks open-transaction state from the record types flowing
  /// through Append, so data records inside a transaction can defer
  /// their sync to the commit marker.
  bool in_txn_ = false;
  uint64_t next_lsn_ = 1;
  uint64_t sync_count_ = 0;
  /// Records appended since the last fsync — the group-commit batch
  /// size observed at each sync.
  uint64_t records_since_sync_ = 0;
  // Registry handles (null when Options::metrics was null).
  Counter* metric_appends_ = nullptr;
  Counter* metric_fsyncs_ = nullptr;
  Counter* metric_bytes_ = nullptr;
  Counter* metric_torn_repairs_ = nullptr;
  Histogram* metric_group_batch_ = nullptr;
};

}  // namespace nf2

#endif  // NF2_STORAGE_WAL_H_
