#ifndef NF2_STORAGE_WAL_H_
#define NF2_STORAGE_WAL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/tuple.h"
#include "obs/metrics.h"
#include "storage/env.h"
#include "util/result.h"

namespace nf2 {

/// Kinds of logged operations. The engine logs logical (tuple-level)
/// operations; recovery replays them through the same §4 update
/// algorithms, so the canonical form is reconstructed exactly.
enum class WalOpType : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kCreateRelation = 3,
  kDropRelation = 4,
  kCheckpoint = 5,
  // Transaction demarcation: recovery applies the insert/delete records
  // between kTxnBegin and kTxnCommit atomically, and discards those of
  // aborted (kTxnAbort) or unfinished (crash-cut) transactions.
  kTxnBegin = 6,
  kTxnCommit = 7,
  kTxnAbort = 8,
};

/// Frame validation bounds, tied to the enum so adding an op type
/// without updating them fails to compile.
inline constexpr uint8_t kMinWalOpType =
    static_cast<uint8_t>(WalOpType::kInsert);
inline constexpr uint8_t kMaxWalOpType =
    static_cast<uint8_t>(WalOpType::kTxnAbort);
static_assert(kMinWalOpType == 1 && kMaxWalOpType == 8,
              "WalOpType enumerators must stay dense in [1, 8]; update "
              "kMin/kMaxWalOpType (and any frame-format note) if the enum "
              "grows");

const char* WalOpTypeToString(WalOpType type);

/// One logical log record.
struct WalRecord {
  uint64_t lsn = 0;        // Assigned by Append.
  WalOpType type = WalOpType::kCheckpoint;
  std::string relation;    // Target relation name ("" for checkpoint).
  std::string payload;     // Serialized tuple / schema, op-specific.

  bool operator==(const WalRecord&) const = default;
};

/// A globally unambiguous stream position (DESIGN.md §14): `lsn` never
/// repeats for the lifetime of a database — Reset() carries the counter
/// across checkpoint truncation, and the checkpoint manifest persists
/// it so a reopen cannot rewind it either. `epoch` counts truncations;
/// it tells a log shipper which retained prefix the file holds.
/// Ordering is lexicographic, and because lsn alone is already strictly
/// monotone, comparing positions by lsn gives the same answer.
struct WalPosition {
  uint64_t epoch = 0;
  uint64_t lsn = 0;

  auto operator<=>(const WalPosition&) const = default;
};

/// One event delivered to a tail subscriber (see SubscribeTail).
struct WalTailEvent {
  enum class Kind : uint8_t {
    kRecord,    // A record was appended (epoch + record are set).
    kTruncate,  // Reset() ran: the log was truncated; epoch is the new
                // epoch, record.lsn the new epoch base lsn.
    kClosed,    // The log was destroyed; no further events.
  };
  Kind kind = Kind::kRecord;
  uint64_t epoch = 0;
  WalRecord record;
};

/// A bounded live feed of WAL appends, handed out by
/// WriteAheadLog::SubscribeTail. The appender pushes every record (and
/// truncate/close events) under the subscription's own mutex; the
/// consumer drains with Poll. When the consumer falls more than
/// `capacity` events behind, the oldest events are dropped and lost()
/// latches — the consumer must then resynchronize from the log file
/// (or, past a truncation, from a snapshot) instead of trusting the
/// feed to be gapless.
class WalTailSubscription {
 public:
  explicit WalTailSubscription(size_t capacity) : capacity_(capacity) {}
  WalTailSubscription(const WalTailSubscription&) = delete;
  WalTailSubscription& operator=(const WalTailSubscription&) = delete;

  /// Drains every queued event, blocking up to `timeout` for the first
  /// one. Empty when the timeout expired with nothing queued.
  std::vector<WalTailEvent> Poll(std::chrono::milliseconds timeout);

  /// True once events were dropped because the consumer lagged more
  /// than the subscription capacity. Cleared by ClearLost after the
  /// consumer resynchronized out-of-band.
  bool lost() const;
  void ClearLost();

  /// True once the log pushed kClosed (the WriteAheadLog died).
  bool closed() const;

 private:
  friend class WriteAheadLog;

  void Push(WalTailEvent event);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<WalTailEvent> events_;  // Guarded by mu_.
  bool lost_ = false;                // Guarded by mu_.
  bool closed_ = false;              // Guarded by mu_.
};

/// Outcome of one full scan of the log.
struct WalReadResult {
  std::vector<WalRecord> records;  // The intact prefix, in order.
  /// True when the log ended exactly at a frame boundary; false when a
  /// torn or corrupt tail was cut off after `valid_bytes`.
  bool clean_eof = true;
  /// Byte length of the intact prefix (where appends may resume).
  uint64_t valid_bytes = 0;
};

/// An append-only, CRC-checked write-ahead log.
///
/// On-disk record frame:
///   [u32 total_len][u64 lsn][u8 type][u32 name_len][name]
///   [u32 payload_len][payload][u32 crc of everything before]
///
/// Crash discipline: Open scans the log once, truncates any torn or
/// corrupt tail (a crash mid-append must not leave garbage that would
/// silently orphan every later record), and caches the surviving
/// records for recovery. Append fdatasyncs at commit points — every
/// record that is not inside an open transaction, plus the commit and
/// abort markers that close one — so an acknowledged operation is on
/// stable storage before control returns.
class WriteAheadLog {
 public:
  struct Options {
    /// When false, Append never syncs (a benchmark control and a
    /// deliberate durability/throughput trade — a crash can lose
    /// acknowledged tail records, but never tear the log).
    bool sync_on_commit = true;
    /// When set, the log reports nf2_wal_* metrics here (appends,
    /// fsyncs, appended bytes, torn-tail repairs, group-commit batch
    /// sizes). Null keeps the log un-instrumented.
    MetricsRegistry* metrics = nullptr;
  };

  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if needed) the log at `path`: scans it once,
  /// truncates a torn tail, caches the recovered records
  /// (see recovered_records()), and positions appends after the intact
  /// prefix.
  static Result<std::unique_ptr<WriteAheadLog>> Open(Env* env,
                                                     const std::string& path,
                                                     Options options);
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      Env* env, const std::string& path) {
    return Open(env, path, Options{});
  }
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path) {
    return Open(Env::Default(), path);
  }

  /// Appends a record (lsn field is overwritten), flushing always and
  /// syncing at commit points (see class comment).
  Result<uint64_t> Append(WalRecord record);

  /// Re-scans the file: the intact record prefix plus whether the tail
  /// was clean. (Open already did this once; recovery should prefer
  /// recovered_records() over a second scan.)
  Result<WalReadResult> ReadAll() const;

  /// The records recovered by Open, without re-reading the file.
  const std::vector<WalRecord>& recovered_records() const {
    return recovered_;
  }

  /// Frees the recovered-record cache. Recovery calls this once it has
  /// consumed the records: a long-lived process must not pin the whole
  /// pre-checkpoint log in RAM for its lifetime. recovered_records() is
  /// empty afterwards; ReadAll() still re-scans the file on demand.
  void ReleaseRecoveredRecords();

  /// True when Open had to cut a torn/corrupt tail off the log.
  bool truncated_on_open() const { return truncated_on_open_; }

  /// Truncates the log (after a checkpoint made its contents
  /// redundant). Durable when it returns OK: this is the commit point
  /// of the checkpoint protocol. LSNs are NOT rewound — the next Append
  /// continues the global sequence under a bumped epoch, so a stream
  /// position (epoch, lsn) issued before the truncate is never reused
  /// after it. On failure the log fails closed: out_ stays null and
  /// every Append returns a status until a later Reset succeeds.
  Status Reset();

  /// Folds a durably persisted position (the checkpoint manifest's
  /// wal_epoch / wal_base_lsn, written just before the truncate it
  /// describes) into this log's counters: epoch and next_lsn only ever
  /// move forward. Called once at recovery, before any Append.
  void AdoptDurablePosition(uint64_t epoch, uint64_t base_lsn);

  /// Subscribes to the live append stream: every record appended after
  /// this call (plus truncate and close events) is pushed to the
  /// returned subscription. Dropping the shared_ptr unsubscribes.
  /// `capacity` bounds the unconsumed backlog (see WalTailSubscription).
  std::shared_ptr<WalTailSubscription> SubscribeTail(size_t capacity = 4096);

  const std::string& path() const { return path_; }
  uint64_t next_lsn() const {
    return next_lsn_.load(std::memory_order_acquire);
  }

  /// Truncation epoch of the current log file (0 until the first
  /// Reset; adopted forward from the manifest at recovery).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// First LSN that can live in the current (post-truncate) log file: a
  /// subscriber whose last applied lsn is below `epoch_base_lsn() - 1`
  /// cannot be caught up from the file alone.
  uint64_t epoch_base_lsn() const {
    return epoch_base_lsn_.load(std::memory_order_acquire);
  }

  /// The current head position: the epoch plus the last assigned lsn.
  /// The two loads are not one atomic snapshot; streamer threads use
  /// this only for lag estimates, where a torn pair is harmless.
  WalPosition position() const { return {epoch(), next_lsn() - 1}; }

  /// fdatasync calls issued by Append (observability for the
  /// group-commit batching benchmarks).
  uint64_t sync_count() const { return sync_count_; }

 private:
  Env* env_ = nullptr;
  Options options_;
  std::string path_;
  std::unique_ptr<WritableFile> out_;
  std::vector<WalRecord> recovered_;
  bool truncated_on_open_ = false;
  /// Tracks open-transaction state from the record types flowing
  /// through Append, so data records inside a transaction can defer
  /// their sync to the commit marker.
  bool in_txn_ = false;
  /// Atomic because replication streamer threads read the position
  /// (lag, catch-up bounds) while the single writer thread advances it.
  std::atomic<uint64_t> next_lsn_{1};
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> epoch_base_lsn_{1};
  uint64_t sync_count_ = 0;
  /// Records appended since the last fsync — the group-commit batch
  /// size observed at each sync.
  uint64_t records_since_sync_ = 0;
  // Registry handles (null when Options::metrics was null).
  Counter* metric_appends_ = nullptr;
  Counter* metric_fsyncs_ = nullptr;
  Counter* metric_bytes_ = nullptr;
  Counter* metric_torn_repairs_ = nullptr;
  Histogram* metric_group_batch_ = nullptr;

  /// Pushes `event` to every live subscriber, pruning dead ones.
  void NotifyTail(const WalTailEvent& event);

  /// Guards tails_; never held across file I/O.
  mutable std::mutex tails_mu_;
  std::vector<std::weak_ptr<WalTailSubscription>> tails_;  // Guarded.
  /// Fast-path guard: Append skips the tails_mu_ lock entirely while no
  /// subscriber has ever been attached.
  std::atomic<bool> has_tails_{false};
};

}  // namespace nf2

#endif  // NF2_STORAGE_WAL_H_
