#ifndef NF2_STORAGE_WAL_H_
#define NF2_STORAGE_WAL_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/tuple.h"
#include "util/result.h"

namespace nf2 {

/// Kinds of logged operations. The engine logs logical (tuple-level)
/// operations; recovery replays them through the same §4 update
/// algorithms, so the canonical form is reconstructed exactly.
enum class WalOpType : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kCreateRelation = 3,
  kDropRelation = 4,
  kCheckpoint = 5,
  // Transaction demarcation: recovery applies the insert/delete records
  // between kTxnBegin and kTxnCommit atomically, and discards those of
  // aborted (kTxnAbort) or unfinished (crash-cut) transactions.
  kTxnBegin = 6,
  kTxnCommit = 7,
  kTxnAbort = 8,
};

const char* WalOpTypeToString(WalOpType type);

/// One logical log record.
struct WalRecord {
  uint64_t lsn = 0;        // Assigned by Append.
  WalOpType type = WalOpType::kCheckpoint;
  std::string relation;    // Target relation name ("" for checkpoint).
  std::string payload;     // Serialized tuple / schema, op-specific.

  bool operator==(const WalRecord&) const = default;
};

/// An append-only, CRC-checked write-ahead log.
///
/// On-disk record frame:
///   [u32 total_len][u64 lsn][u8 type][u32 name_len][name]
///   [u32 payload_len][payload][u32 crc of everything before]
///
/// ReadAll stops cleanly at the first torn/corrupt frame (a crash can
/// leave a partial tail; everything before it is durable).
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens (creating if needed) the log at `path`, scanning it to find
  /// the next LSN.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  /// Appends a record (lsn field is overwritten) and flushes.
  Result<uint64_t> Append(WalRecord record);

  /// All intact records, in order.
  Result<std::vector<WalRecord>> ReadAll() const;

  /// Truncates the log (after a checkpoint made its contents redundant).
  Status Reset();

  const std::string& path() const { return path_; }
  uint64_t next_lsn() const { return next_lsn_; }

 private:
  std::string path_;
  std::ofstream out_;
  uint64_t next_lsn_ = 1;
};

}  // namespace nf2

#endif  // NF2_STORAGE_WAL_H_
