#include "storage/fault_injection_env.h"

#include <utility>

#include "util/rng.h"
#include "util/string_util.h"

namespace nf2 {

namespace {

Status Killed() { return Status::IOError("injected fault: write stream dead"); }

}  // namespace

/// Append-only wrapper: counts appends and syncs, applies the seeded
/// partial effect at the trigger.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path,
                    std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    switch (env_->NextOp()) {
      case FaultInjectionEnv::OpFate::kProceed:
        return base_->Append(data);
      case FaultInjectionEnv::OpFate::kFailPartial: {
        // A torn write: only a prefix reaches the file.
        size_t n = static_cast<size_t>(env_->PartialFraction() *
                                       static_cast<double>(data.size()));
        Status s = base_->Append(data.substr(0, n));
        (void)s;
        return Killed();
      }
      case FaultInjectionEnv::OpFate::kFailClean:
        return Killed();
    }
    return Status::Internal("unreachable");
  }

  Status Sync() override {
    switch (env_->NextOp()) {
      case FaultInjectionEnv::OpFate::kProceed: {
        NF2_RETURN_IF_ERROR(base_->Sync());
        env_->MarkDurable(path_);
        return Status::OK();
      }
      case FaultInjectionEnv::OpFate::kFailPartial:
        // The drive persisted part of the dirty range before power cut.
        env_->MarkPartiallyDurable(path_);
        return Killed();
      case FaultInjectionEnv::OpFate::kFailClean:
        return Killed();
    }
    return Status::Internal("unreachable");
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

/// Positional wrapper: reads pass through (unsynced writes are visible,
/// like an OS page cache); writes and syncs are injectable.
class FaultRandomRWFile : public RandomRWFile {
 public:
  FaultRandomRWFile(FaultInjectionEnv* env, std::string path,
                    std::unique_ptr<RandomRWFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, char* out) override {
    return base_->Read(offset, n, out);
  }

  Status Write(uint64_t offset, std::string_view data) override {
    switch (env_->NextOp()) {
      case FaultInjectionEnv::OpFate::kProceed:
        return base_->Write(offset, data);
      case FaultInjectionEnv::OpFate::kFailPartial: {
        size_t n = static_cast<size_t>(env_->PartialFraction() *
                                       static_cast<double>(data.size()));
        Status s = base_->Write(offset, data.substr(0, n));
        (void)s;
        return Killed();
      }
      case FaultInjectionEnv::OpFate::kFailClean:
        return Killed();
    }
    return Status::Internal("unreachable");
  }

  Status Sync() override {
    switch (env_->NextOp()) {
      case FaultInjectionEnv::OpFate::kProceed: {
        NF2_RETURN_IF_ERROR(base_->Sync());
        env_->MarkDurable(path_);
        return Status::OK();
      }
      case FaultInjectionEnv::OpFate::kFailPartial:
        env_->MarkPartiallyDurable(path_);
        return Killed();
      case FaultInjectionEnv::OpFate::kFailClean:
        return Killed();
    }
    return Status::Internal("unreachable");
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<RandomRWFile> base_;
};

FaultInjectionEnv::FaultInjectionEnv(Env* base, uint64_t seed)
    : base_(base), seed_(seed) {}

void FaultInjectionEnv::Arm(uint64_t trigger) {
  trigger_ = trigger;
  op_count_ = 0;
  killed_ = false;
  durable_.clear();
}

void FaultInjectionEnv::Disarm() { trigger_ = UINT64_MAX; }

FaultInjectionEnv::OpFate FaultInjectionEnv::NextOp() {
  if (killed_) return OpFate::kFailClean;
  ++op_count_;
  if (op_count_ == trigger_) {
    killed_ = true;
    return OpFate::kFailPartial;
  }
  return OpFate::kProceed;
}

double FaultInjectionEnv::PartialFraction() const {
  // Deterministic per (seed, trigger); includes both endpoints so "no
  // bytes made it" and "everything made it but the ack was lost" both
  // occur across injection points.
  Rng rng(seed_ ^ (trigger_ * 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(rng.NextBelow(11)) / 10.0;
}

namespace {
std::string CurrentContent(Env* base, const std::string& path) {
  Result<std::string> content = base->ReadFileToString(path);
  return content.ok() ? *std::move(content) : std::string();
}
}  // namespace

void FaultInjectionEnv::MarkDurable(const std::string& path) {
  durable_[path] = CurrentContent(base_, path);
}

void FaultInjectionEnv::MarkPartiallyDurable(const std::string& path) {
  // The crash persisted an arbitrary prefix of the current content;
  // beyond it the file keeps whatever was durable before.
  std::string cur = CurrentContent(base_, path);
  auto it = durable_.find(path);
  std::string prev = it != durable_.end() ? it->second : std::string();
  size_t pos = static_cast<size_t>(PartialFraction() *
                                   static_cast<double>(cur.size()));
  std::string mixed = cur.substr(0, pos);
  if (prev.size() > pos) mixed += prev.substr(pos);
  durable_[path] = std::move(mixed);
}

Status FaultInjectionEnv::DropUnsyncedState() {
  for (const auto& [path, content] : durable_) {
    if (!base_->FileExists(path)) continue;
    if (CurrentContent(base_, path) == content) continue;
    NF2_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         base_->NewWritableFile(path, /*truncate=*/true));
    NF2_RETURN_IF_ERROR(file->Append(content));
    NF2_RETURN_IF_ERROR(file->Sync());
    NF2_RETURN_IF_ERROR(file->Close());
  }
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  if (NextOp() != OpFate::kProceed) return Killed();
  NF2_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewWritableFile(path, truncate));
  if (truncate) {
    durable_[path] = "";
  } else {
    // Pre-existing bytes were durable before this run began.
    durable_.emplace(path, CurrentContent(base_, path));
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, path, std::move(base)));
}

Result<std::unique_ptr<RandomRWFile>> FaultInjectionEnv::NewRandomRWFile(
    const std::string& path, bool truncate) {
  if (NextOp() != OpFate::kProceed) return Killed();
  NF2_ASSIGN_OR_RETURN(std::unique_ptr<RandomRWFile> base,
                       base_->NewRandomRWFile(path, truncate));
  if (truncate) {
    durable_[path] = "";
  } else {
    durable_.emplace(path, CurrentContent(base_, path));
  }
  return std::unique_ptr<RandomRWFile>(
      std::make_unique<FaultRandomRWFile>(this, path, std::move(base)));
}

Result<std::string> FaultInjectionEnv::ReadFileToString(
    const std::string& path) {
  return base_->ReadFileToString(path);
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  if (NextOp() != OpFate::kProceed) return Killed();
  NF2_RETURN_IF_ERROR(base_->RenameFile(from, to));
  auto it = durable_.find(from);
  if (it != durable_.end()) {
    durable_[to] = std::move(it->second);
    durable_.erase(it);
  } else {
    durable_[to] = CurrentContent(base_, to);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  if (NextOp() != OpFate::kProceed) return Killed();
  NF2_RETURN_IF_ERROR(base_->RemoveFile(path));
  durable_.erase(path);
  return Status::OK();
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  if (NextOp() != OpFate::kProceed) return Killed();
  NF2_RETURN_IF_ERROR(base_->TruncateFile(path, size));
  durable_[path] = CurrentContent(base_, path);
  return Status::OK();
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  return base_->CreateDirs(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  if (NextOp() != OpFate::kProceed) return Killed();
  return base_->SyncDir(path);
}

Result<std::vector<std::string>> FaultInjectionEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

}  // namespace nf2
