#include "storage/wal.h"

#include "storage/serde.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

const char* WalOpTypeToString(WalOpType type) {
  switch (type) {
    case WalOpType::kInsert:
      return "INSERT";
    case WalOpType::kDelete:
      return "DELETE";
    case WalOpType::kCreateRelation:
      return "CREATE";
    case WalOpType::kDropRelation:
      return "DROP";
    case WalOpType::kCheckpoint:
      return "CHECKPOINT";
    case WalOpType::kTxnBegin:
      return "TXN_BEGIN";
    case WalOpType::kTxnCommit:
      return "TXN_COMMIT";
    case WalOpType::kTxnAbort:
      return "TXN_ABORT";
  }
  return "?";
}

std::vector<WalTailEvent> WalTailSubscription::Poll(
    std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [this] { return !events_.empty() || closed_; });
  std::vector<WalTailEvent> out(events_.begin(), events_.end());
  events_.clear();
  return out;
}

bool WalTailSubscription::lost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lost_;
}

void WalTailSubscription::ClearLost() {
  std::lock_guard<std::mutex> lock(mu_);
  lost_ = false;
}

bool WalTailSubscription::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

void WalTailSubscription::Push(WalTailEvent event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (event.kind == WalTailEvent::Kind::kClosed) {
      closed_ = true;
    } else if (events_.size() >= capacity_) {
      // The consumer lagged past the bound: drop from the front and
      // latch lost() — a gapless feed it is no longer.
      events_.pop_front();
      lost_ = true;
    }
    if (!closed_ || event.kind == WalTailEvent::Kind::kClosed) {
      events_.push_back(std::move(event));
    }
  }
  cv_.notify_all();
}

WriteAheadLog::~WriteAheadLog() {
  NotifyTail({WalTailEvent::Kind::kClosed, epoch(), {}});
  if (out_ != nullptr) {
    Status s = out_->Close();
    if (!s.ok()) {
      NF2_LOG(Warning) << "closing WAL failed: " << s;
    }
  }
}

namespace {

/// Parses one frame from `reader`; returns NotFound at a clean end,
/// Corruption for torn/garbled frames.
Result<WalRecord> ReadFrame(BufferReader* reader) {
  if (reader->AtEnd()) {
    return Status::NotFound("end of log");
  }
  Result<uint32_t> total_len = reader->GetU32();
  if (!total_len.ok()) return Status::Corruption("torn frame header");
  Result<std::string> body = reader->GetRaw(*total_len);
  if (!body.ok()) return Status::Corruption("torn frame body");
  BufferReader frame(*body);
  WalRecord record;
  NF2_ASSIGN_OR_RETURN(record.lsn, frame.GetU64());
  NF2_ASSIGN_OR_RETURN(uint8_t type, frame.GetU8());
  if (type < kMinWalOpType || type > kMaxWalOpType) {
    return Status::Corruption("bad op type");
  }
  record.type = static_cast<WalOpType>(type);
  NF2_ASSIGN_OR_RETURN(record.relation, frame.GetString());
  NF2_ASSIGN_OR_RETURN(record.payload, frame.GetString());
  NF2_ASSIGN_OR_RETURN(uint32_t stored_crc, frame.GetU32());
  std::string_view covered(body->data(), body->size() - 4);
  if (Crc32(covered) != stored_crc) {
    return Status::Corruption("crc mismatch");
  }
  return record;
}

Result<WalReadResult> ScanLog(Env* env, const std::string& path) {
  WalReadResult out;
  if (!env->FileExists(path)) {
    return out;
  }
  NF2_ASSIGN_OR_RETURN(std::string contents, env->ReadFileToString(path));
  BufferReader reader(contents);
  while (true) {
    size_t frame_start = reader.position();
    Result<WalRecord> record = ReadFrame(&reader);
    if (!record.ok()) {
      out.valid_bytes = frame_start;
      out.clean_eof = record.status().code() == StatusCode::kNotFound;
      break;
    }
    out.records.push_back(*std::move(record));
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    Env* env, const std::string& path, Options options) {
  auto wal = std::make_unique<WriteAheadLog>();
  wal->env_ = env;
  wal->options_ = options;
  wal->path_ = path;
  if (options.metrics != nullptr) {
    wal->metric_appends_ = options.metrics->GetCounter(
        "nf2_wal_appends_total", "records appended to the WAL");
    wal->metric_fsyncs_ = options.metrics->GetCounter(
        "nf2_wal_fsyncs_total", "fdatasyncs issued at commit points");
    wal->metric_bytes_ = options.metrics->GetCounter(
        "nf2_wal_append_bytes_total", "bytes appended to the WAL");
    wal->metric_torn_repairs_ = options.metrics->GetCounter(
        "nf2_wal_torn_tail_repairs_total",
        "torn/corrupt WAL tails truncated at open");
    wal->metric_group_batch_ = options.metrics->GetHistogram(
        "nf2_wal_group_commit_batch",
        "records made durable per fsync (group-commit batch size)");
  }
  // One scan serves both LSN discovery and recovery (the records are
  // cached for the caller), and finds where the intact prefix ends.
  NF2_ASSIGN_OR_RETURN(WalReadResult scan, ScanLog(env, path));
  for (const WalRecord& r : scan.records) {
    if (r.lsn + 1 > wal->next_lsn()) {
      wal->next_lsn_.store(r.lsn + 1, std::memory_order_release);
    }
  }
  if (!scan.clean_eof) {
    // A crash tore the tail. Cut it off BEFORE appending: a frame
    // appended after garbage would survive on disk but be unreachable
    // by replay — silently losing every acknowledged record after this
    // point at the next recovery.
    NF2_LOG(Warning) << "WAL at " << path << " has a torn tail; truncating "
                     << "to " << scan.valid_bytes << " intact bytes";
    NF2_RETURN_IF_ERROR(env->TruncateFile(path, scan.valid_bytes));
    wal->truncated_on_open_ = true;
    if (wal->metric_torn_repairs_ != nullptr) {
      wal->metric_torn_repairs_->Increment();
    }
  }
  wal->recovered_ = std::move(scan.records);
  NF2_ASSIGN_OR_RETURN(wal->out_,
                       env->NewWritableFile(path, /*truncate=*/false));
  return wal;
}

Result<uint64_t> WriteAheadLog::Append(WalRecord record) {
  if (out_ == nullptr) {
    return Status::IOError("WAL is not open (a failed Reset closed it)");
  }
  record.lsn = next_lsn();
  BufferWriter body;
  body.PutU64(record.lsn);
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutString(record.relation);
  body.PutString(record.payload);
  uint32_t crc = Crc32(body.data());
  body.PutU32(crc);
  BufferWriter frame;
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.data());
  NF2_RETURN_IF_ERROR(out_->Append(frame.data()));
  ++records_since_sync_;
  if (metric_appends_ != nullptr) {
    metric_appends_->Increment();
    metric_bytes_->Increment(frame.size());
  }
  // Commit-critical records must be on stable storage before the
  // operation is acknowledged. Data records inside an open transaction
  // defer to the commit/abort marker (group commit); everything else —
  // autocommit data ops, DDL, checkpoint markers — is a commit point of
  // its own.
  bool commit_critical = true;
  switch (record.type) {
    case WalOpType::kTxnBegin:
      in_txn_ = true;
      commit_critical = false;
      break;
    case WalOpType::kTxnCommit:
    case WalOpType::kTxnAbort:
      in_txn_ = false;
      break;
    default:
      commit_critical = !in_txn_;
      break;
  }
  if (commit_critical && options_.sync_on_commit) {
    NF2_RETURN_IF_ERROR(out_->Sync());
    ++sync_count_;
    if (metric_fsyncs_ != nullptr) {
      metric_fsyncs_->Increment();
      metric_group_batch_->Observe(records_since_sync_);
    }
    records_since_sync_ = 0;
  }
  if (has_tails_.load(std::memory_order_acquire)) {
    NotifyTail({WalTailEvent::Kind::kRecord, epoch(), record});
  }
  next_lsn_.store(record.lsn + 1, std::memory_order_release);
  return record.lsn;
}

void WriteAheadLog::NotifyTail(const WalTailEvent& event) {
  if (!has_tails_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(tails_mu_);
  for (auto it = tails_.begin(); it != tails_.end();) {
    if (std::shared_ptr<WalTailSubscription> tail = it->lock()) {
      tail->Push(event);
      ++it;
    } else {
      it = tails_.erase(it);
    }
  }
}

std::shared_ptr<WalTailSubscription> WriteAheadLog::SubscribeTail(
    size_t capacity) {
  auto tail = std::make_shared<WalTailSubscription>(capacity);
  {
    std::lock_guard<std::mutex> lock(tails_mu_);
    tails_.push_back(tail);
  }
  has_tails_.store(true, std::memory_order_release);
  return tail;
}

void WriteAheadLog::ReleaseRecoveredRecords() {
  recovered_.clear();
  recovered_.shrink_to_fit();
}

void WriteAheadLog::AdoptDurablePosition(uint64_t epoch, uint64_t base_lsn) {
  if (epoch > epoch_.load(std::memory_order_relaxed)) {
    epoch_.store(epoch, std::memory_order_release);
  }
  if (base_lsn > next_lsn_.load(std::memory_order_relaxed)) {
    next_lsn_.store(base_lsn, std::memory_order_release);
  }
  if (base_lsn > epoch_base_lsn_.load(std::memory_order_relaxed)) {
    epoch_base_lsn_.store(base_lsn, std::memory_order_release);
  }
}

Result<WalReadResult> WriteAheadLog::ReadAll() const {
  return ScanLog(env_, path_);
}

Status WriteAheadLog::Reset() {
  if (out_ != nullptr) {
    // Null out_ before Close so a failure still fails closed: Append
    // on a half-reset log must return a status, never write through a
    // handle whose state is unknown.
    std::unique_ptr<WritableFile> closing = std::move(out_);
    NF2_RETURN_IF_ERROR(closing->Close());
  }
  // TruncateFile is durable (data + length) when it returns OK — the
  // checkpoint that made these records redundant commits here.
  NF2_RETURN_IF_ERROR(env_->TruncateFile(path_, 0));
  NF2_ASSIGN_OR_RETURN(out_, env_->NewWritableFile(path_,
                                                   /*truncate=*/false));
  recovered_.clear();
  // LSNs are NOT rewound: next_lsn_ keeps counting so a position
  // issued before the truncate is never reissued after it. The epoch
  // bump records that the file now holds only records >= the new base.
  const uint64_t new_epoch =
      epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  const uint64_t new_base = next_lsn();
  epoch_base_lsn_.store(new_base, std::memory_order_release);
  in_txn_ = false;
  records_since_sync_ = 0;
  WalRecord base;
  base.lsn = new_base;
  NotifyTail({WalTailEvent::Kind::kTruncate, new_epoch, std::move(base)});
  return Status::OK();
}

}  // namespace nf2
