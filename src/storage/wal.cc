#include "storage/wal.h"

#include <filesystem>

#include "storage/serde.h"
#include "util/string_util.h"

namespace nf2 {

const char* WalOpTypeToString(WalOpType type) {
  switch (type) {
    case WalOpType::kInsert:
      return "INSERT";
    case WalOpType::kDelete:
      return "DELETE";
    case WalOpType::kCreateRelation:
      return "CREATE";
    case WalOpType::kDropRelation:
      return "DROP";
    case WalOpType::kCheckpoint:
      return "CHECKPOINT";
    case WalOpType::kTxnBegin:
      return "TXN_BEGIN";
    case WalOpType::kTxnCommit:
      return "TXN_COMMIT";
    case WalOpType::kTxnAbort:
      return "TXN_ABORT";
  }
  return "?";
}

WriteAheadLog::~WriteAheadLog() {
  if (out_.is_open()) {
    out_.flush();
    out_.close();
  }
}

namespace {

/// Parses one frame from `reader`; returns NotFound at a clean end,
/// Corruption for torn/garbled frames.
Result<WalRecord> ReadFrame(BufferReader* reader) {
  if (reader->AtEnd()) {
    return Status::NotFound("end of log");
  }
  Result<uint32_t> total_len = reader->GetU32();
  if (!total_len.ok()) return Status::Corruption("torn frame header");
  Result<std::string> body = reader->GetRaw(*total_len);
  if (!body.ok()) return Status::Corruption("torn frame body");
  BufferReader frame(*body);
  WalRecord record;
  NF2_ASSIGN_OR_RETURN(record.lsn, frame.GetU64());
  NF2_ASSIGN_OR_RETURN(uint8_t type, frame.GetU8());
  if (type < 1 || type > 8) return Status::Corruption("bad op type");
  record.type = static_cast<WalOpType>(type);
  NF2_ASSIGN_OR_RETURN(record.relation, frame.GetString());
  NF2_ASSIGN_OR_RETURN(record.payload, frame.GetString());
  NF2_ASSIGN_OR_RETURN(uint32_t stored_crc, frame.GetU32());
  std::string_view covered(body->data(), body->size() - 4);
  if (Crc32(covered) != stored_crc) {
    return Status::Corruption("crc mismatch");
  }
  return record;
}

}  // namespace

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  auto wal = std::make_unique<WriteAheadLog>();
  wal->path_ = path;
  // Scan the existing log (if any) for the next LSN.
  if (std::filesystem::exists(path)) {
    NF2_ASSIGN_OR_RETURN(std::vector<WalRecord> records, [&]() {
      WriteAheadLog probe;
      probe.path_ = path;
      return probe.ReadAll();
    }());
    for (const WalRecord& r : records) {
      wal->next_lsn_ = std::max(wal->next_lsn_, r.lsn + 1);
    }
  }
  wal->out_.open(path, std::ios::binary | std::ios::app);
  if (!wal->out_.is_open()) {
    return Status::IOError(StrCat("cannot open WAL at ", path));
  }
  return wal;
}

Result<uint64_t> WriteAheadLog::Append(WalRecord record) {
  record.lsn = next_lsn_;
  BufferWriter body;
  body.PutU64(record.lsn);
  body.PutU8(static_cast<uint8_t>(record.type));
  body.PutString(record.relation);
  body.PutString(record.payload);
  uint32_t crc = Crc32(body.data());
  body.PutU32(crc);
  BufferWriter frame;
  frame.PutU32(static_cast<uint32_t>(body.size()));
  frame.PutRaw(body.data());
  out_.write(frame.data().data(),
             static_cast<std::streamsize>(frame.size()));
  out_.flush();
  if (!out_) {
    return Status::IOError("WAL append failed");
  }
  return next_lsn_++;
}

Result<std::vector<WalRecord>> WriteAheadLog::ReadAll() const {
  std::vector<WalRecord> records;
  if (!std::filesystem::exists(path_)) {
    return records;
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError(StrCat("cannot read WAL at ", path_));
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  BufferReader reader(contents);
  while (true) {
    Result<WalRecord> record = ReadFrame(&reader);
    if (!record.ok()) {
      // Clean end or torn tail: both terminate replay; anything parsed
      // so far is durable.
      break;
    }
    records.push_back(*std::move(record));
  }
  return records;
}

Status WriteAheadLog::Reset() {
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) {
    return Status::IOError("cannot truncate WAL");
  }
  out_.close();
  out_.open(path_, std::ios::binary | std::ios::app);
  if (!out_.is_open()) {
    return Status::IOError("cannot reopen WAL");
  }
  next_lsn_ = 1;
  return Status::OK();
}

}  // namespace nf2
