#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "util/string_util.h"

namespace nf2 {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(StrCat(context, ": ", std::strerror(errno)));
}

/// Restarts a syscall interrupted by a signal. open/fsync/fdatasync can
/// all return EINTR when a signal lands mid-call — with nf2d's shutdown
/// handler that is a real occurrence, not a theoretical one — and an
/// interrupted fsync must be retried, never surfaced as an IOError the
/// durability protocol would misread as a failed commit point.
template <typename Fn>
int RetryOnEintr(Fn fn) {
  int rc;
  do {
    rc = fn();
  } while (rc < 0 && errno == EINTR);
  return rc;
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IOError("append on closed file");
    while (!data.empty()) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus(StrCat("write ", path_));
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync on closed file");
    if (RetryOnEintr([&] { return ::fdatasync(fd_); }) != 0) {
      return ErrnoStatus(StrCat("fdatasync ", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return ErrnoStatus(StrCat("close ", path_));
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomRWFile : public RandomRWFile {
 public:
  PosixRandomRWFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixRandomRWFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, char* out) override {
    if (fd_ < 0) return Status::IOError("read on closed file");
    size_t done = 0;
    while (done < n) {
      ssize_t got = ::pread(fd_, out + done, n - done,
                            static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus(StrCat("pread ", path_));
      }
      if (got == 0) {
        return Status::IOError(
            StrCat("short read of ", n, " bytes at offset ", offset, " in ",
                   path_));
      }
      done += static_cast<size_t>(got);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, std::string_view data) override {
    if (fd_ < 0) return Status::IOError("write on closed file");
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                           static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus(StrCat("pwrite ", path_));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IOError("sync on closed file");
    if (RetryOnEintr([&] { return ::fdatasync(fd_); }) != 0) {
      return ErrnoStatus(StrCat("fdatasync ", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return ErrnoStatus(StrCat("close ", path_));
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    int fd = RetryOnEintr([&] { return ::open(path.c_str(), flags, 0644); });
    if (fd < 0) return ErrnoStatus(StrCat("open ", path));
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path, bool truncate) override {
    int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
    int fd = RetryOnEintr([&] { return ::open(path.c_str(), flags, 0644); });
    if (fd < 0) return ErrnoStatus(StrCat("open ", path));
    return std::unique_ptr<RandomRWFile>(
        std::make_unique<PosixRandomRWFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = RetryOnEintr([&] { return ::open(path.c_str(), O_RDONLY); });
    if (fd < 0) {
      if (errno == ENOENT) {
        return Status::NotFound(StrCat(path, " not found"));
      }
      return ErrnoStatus(StrCat("open ", path));
    }
    std::string out;
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = ErrnoStatus(StrCat("read ", path));
        ::close(fd);
        return s;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      if (errno == ENOENT) {
        return Status::NotFound(StrCat(path, " not found"));
      }
      return ErrnoStatus(StrCat("stat ", path));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus(StrCat("rename ", from, " -> ", to));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return ErrnoStatus(StrCat("unlink ", path));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (RetryOnEintr([&] {
          return ::truncate(path.c_str(), static_cast<off_t>(size));
        }) != 0) {
      return ErrnoStatus(StrCat("truncate ", path));
    }
    // Make the new length durable, not just the data: a torn tail that
    // reappears after a crash would undo the truncation.
    int fd = RetryOnEintr([&] { return ::open(path.c_str(), O_RDONLY); });
    if (fd < 0) return ErrnoStatus(StrCat("open ", path));
    int rc = RetryOnEintr([&] { return ::fsync(fd); });
    ::close(fd);
    if (rc != 0) return ErrnoStatus(StrCat("fsync ", path));
    return Status::OK();
  }

  Status CreateDirs(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) return Status::IOError(StrCat("cannot create dir ", path));
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = RetryOnEintr(
        [&] { return ::open(path.c_str(), O_RDONLY | O_DIRECTORY); });
    if (fd < 0) return ErrnoStatus(StrCat("open dir ", path));
    int rc = RetryOnEintr([&] { return ::fsync(fd); });
    ::close(fd);
    if (rc != 0) return ErrnoStatus(StrCat("fsync dir ", path));
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (const auto& entry :
         std::filesystem::directory_iterator(path, ec)) {
      names.push_back(entry.path().filename().string());
    }
    if (ec) return Status::IOError(StrCat("cannot list dir ", path));
    return names;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Status Env::WriteFileAtomic(const std::string& path,
                            std::string_view contents) {
  const std::string tmp = path + ".tmp";
  {
    NF2_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                         NewWritableFile(tmp, /*truncate=*/true));
    NF2_RETURN_IF_ERROR(file->Append(contents));
    NF2_RETURN_IF_ERROR(file->Sync());
    NF2_RETURN_IF_ERROR(file->Close());
  }
  NF2_RETURN_IF_ERROR(RenameFile(tmp, path));
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  return SyncDir(dir);
}

}  // namespace nf2
