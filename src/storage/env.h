#ifndef NF2_STORAGE_ENV_H_
#define NF2_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace nf2 {

/// A sequential, append-only file handle. Append buffers in the OS;
/// nothing is durable until Sync returns OK.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Forces everything appended so far to stable storage (fdatasync).
  virtual Status Sync() = 0;

  /// Closes the handle. Append/Sync after Close are errors.
  virtual Status Close() = 0;
};

/// A positional read/write file handle (page-structured files).
class RandomRWFile {
 public:
  virtual ~RandomRWFile() = default;

  /// Reads exactly `n` bytes at `offset` into `out`; IOError on a
  /// short read.
  virtual Status Read(uint64_t offset, size_t n, char* out) = 0;

  /// Writes `data` at `offset`, extending the file as needed.
  virtual Status Write(uint64_t offset, std::string_view data) = 0;

  /// Forces all writes to stable storage (fdatasync).
  virtual Status Sync() = 0;

  /// Closes the handle.
  virtual Status Close() = 0;
};

/// All file-system access of the storage layer goes through an Env, so
/// tests can interpose fault injection and the durability protocol is
/// auditable in one place. The default implementation (Env::Default())
/// is POSIX fd-based: Sync is a real fdatasync, SyncDir a real fsync of
/// the directory, and RenameFile the atomic rename(2).
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment (never null, never deleted).
  static Env* Default();

  /// Opens `path` for appending, creating it if missing; truncates
  /// first when `truncate` is set.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Opens `path` for positional read/write, creating it if missing;
  /// truncates first when `truncate` is set.
  virtual Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file into a string.
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes and makes the truncation durable.
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  virtual Status CreateDirs(const std::string& path) = 0;

  /// Fsyncs the directory itself so renames/creates within it are
  /// durable.
  virtual Status SyncDir(const std::string& path) = 0;

  /// File names (not paths) of the directory's entries.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;

  /// Crash-atomic whole-file replacement: writes `contents` to a
  /// sibling temp file, syncs it, renames it over `path`, and syncs the
  /// parent directory. A crash at any point leaves either the old file
  /// or the new one, never a torn hybrid.
  Status WriteFileAtomic(const std::string& path, std::string_view contents);
};

}  // namespace nf2

#endif  // NF2_STORAGE_ENV_H_
