#ifndef NF2_STORAGE_CHECKPOINT_H_
#define NF2_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/nest.h"
#include "core/relation.h"
#include "core/schema.h"
#include "storage/env.h"
#include "storage/page.h"
#include "storage/serde.h"
#include "util/result.h"

namespace nf2 {

/// Incremental, page-level checkpoints (DESIGN.md §12).
///
/// A checkpoint no longer rewrites every table file. Instead each table
/// file is shadow-paged: the MANIFEST maps every *logical* page of a
/// table to the *physical* page slot holding its live version. Writing
/// a checkpoint serializes the relation into logical page images, skips
/// every page whose CRC matches the manifest, and writes the changed
/// ones into physical slots the durable manifest does NOT reference —
/// old versions stay intact until the next manifest is published by an
/// atomic rename. The WAL truncate after that rename is the commit
/// point: a crash anywhere earlier recovers from the old manifest plus
/// a full (idempotent) replay, a crash after it from the new manifest.

/// The live version of one logical page.
struct PageVersion {
  PageId physical = kInvalidPageId;  // Slot in the heap file.
  uint64_t version = 0;              // checkpoint_seq that wrote it.
  uint32_t crc = 0;                  // CRC32 of the full page image.

  bool operator==(const PageVersion&) const = default;
};

/// The manifest entry for one table file.
struct TableManifest {
  /// Identity stamp of the file the mapping was built against (from the
  /// table's metadata record). A mismatch on recovery means the file
  /// was wholesale-replaced (CREATE after DROP) after this manifest was
  /// written — the mapping is stale and the file is read flat instead.
  uint64_t file_id = 0;
  /// Physical size of the heap file, in pages, after the checkpoint.
  PageId physical_pages = 0;
  /// Logical page index -> live version. Index 0 is the metadata page;
  /// its content never changes for a given file, so physical slot 0 is
  /// never recycled as a shadow slot.
  std::vector<PageVersion> pages;

  bool operator==(const TableManifest&) const = default;
};

/// The whole-database checkpoint manifest, persisted as MANIFEST.nf2
/// via WriteFileAtomic (never torn; either the old mapping or the new
/// one is on disk).
struct Manifest {
  uint64_t checkpoint_seq = 0;  // Monotone, bumped per checkpoint.
  uint64_t dict_size = 0;       // Dictionary entries covered by dict.nf2.
  std::map<std::string, TableManifest> tables;  // Key: table file name.
  /// WAL stream position carried across the truncate this checkpoint
  /// commits with: the truncate bumps the log to `wal_epoch` and its
  /// first post-truncate record gets lsn >= `wal_base_lsn`. Recovery
  /// folds these into the reopened log (AdoptDurablePosition) so a
  /// stream position (epoch, lsn) is never reissued across a restart.
  /// Both 0 on manifests written before replication existed.
  uint64_t wal_epoch = 0;
  uint64_t wal_base_lsn = 0;

  bool operator==(const Manifest&) const = default;
};

void EncodeManifest(const Manifest& m, BufferWriter* out);
Result<Manifest> DecodeManifest(BufferReader* in);

/// Loads and CRC-verifies the manifest; NotFound when the file does not
/// exist (a fresh or pre-manifest database), Corruption when it fails
/// validation — recovery must then fail closed rather than guess a
/// page mapping.
Result<Manifest> LoadManifest(Env* env, const std::string& path);

/// Atomically replaces the manifest file (write temp -> sync -> rename
/// -> sync dir).
Status SaveManifestAtomic(Env* env, const std::string& path,
                          const Manifest& m);

/// What one CheckpointTableDelta call did.
struct CheckpointDeltaStats {
  uint64_t pages_written = 0;
  uint64_t pages_skipped = 0;
  uint64_t bytes_written = 0;

  CheckpointDeltaStats& operator+=(const CheckpointDeltaStats& o) {
    pages_written += o.pages_written;
    pages_skipped += o.pages_skipped;
    bytes_written += o.bytes_written;
    return *this;
  }
};

/// Writes `relation` into the table file at `path` as a page-level
/// delta against `*entry` (the durable manifest's mapping for the
/// file), updating `*entry` in place to the new mapping:
///  - Durable mapping present (entry matches the file's identity
///    stamp): changed logical pages go to physical slots the old
///    mapping does not reference (shadow paging); unchanged pages are
///    skipped. Safe because recovery reads such a file only through
///    the durable mapping, never flat.
///  - No durable mapping (missing file, fresh CREATE, or a stale
///    entry): if the serialized pages already equal the file's pages
///    (a fresh WriteTableAtomic product) the identity mapping is
///    adopted with zero writes; otherwise the file is replaced
///    wholesale via temp + rename — shadow slots in an unmapped file
///    are not crash-protected, so in-place deltas are off the table.
/// The file is fdatasync'd before returning whenever anything was
/// written. The caller must only persist `*entry` (SaveManifestAtomic)
/// AFTER this returns OK.
Result<CheckpointDeltaStats> CheckpointTableDelta(
    Env* env, const std::string& path, const Schema& schema,
    const Permutation& nest_order, const NfrRelation& relation,
    TableManifest* entry, uint64_t new_version);

/// A table read through a manifest mapping.
struct MappedTable {
  Schema schema;
  Permutation nest_order;
  uint64_t file_id = 0;
  NfrRelation relation;
};

/// Reads the table at `path` through `entry`'s logical->physical
/// mapping, verifying every page against its manifest CRC and the
/// file_id against the metadata record. Any mismatch is Corruption:
/// a mapped read must never silently mix page versions.
Result<MappedTable> ReadTableMapped(Env* env, const std::string& path,
                                    const TableManifest& entry);

/// The file_id stamped in the table file's metadata record (physical
/// page 0, slot 0), or 0 when it cannot be read — callers treat 0 as
/// "mapping does not apply" and fall back to a flat read, which
/// surfaces real corruption with a proper error.
uint64_t ProbeTableFileId(Env* env, const std::string& path);

}  // namespace nf2

#endif  // NF2_STORAGE_CHECKPOINT_H_
