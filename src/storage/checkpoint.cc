#include "storage/checkpoint.h"

#include <filesystem>
#include <vector>

#include "storage/heap_file.h"
#include "storage/table.h"
#include "util/string_util.h"

namespace nf2 {

namespace {
constexpr uint32_t kManifestMagic = 0x4e463243;  // "NF2C".
constexpr uint32_t kManifestVersion = 1;

std::string_view PageView(const Page& page) {
  return std::string_view(page.data(), kPageSize);
}
}  // namespace

void EncodeManifest(const Manifest& m, BufferWriter* out) {
  out->PutU32(kManifestMagic);
  out->PutU32(kManifestVersion);
  out->PutU64(m.checkpoint_seq);
  out->PutU64(m.dict_size);
  out->PutU32(static_cast<uint32_t>(m.tables.size()));
  for (const auto& [name, t] : m.tables) {
    out->PutString(name);
    out->PutU64(t.file_id);
    out->PutU32(t.physical_pages);
    out->PutU32(static_cast<uint32_t>(t.pages.size()));
    for (const PageVersion& pv : t.pages) {
      out->PutU32(pv.physical);
      out->PutU64(pv.version);
      out->PutU32(pv.crc);
    }
  }
  out->PutU64(m.wal_epoch);
  out->PutU64(m.wal_base_lsn);
}

Result<Manifest> DecodeManifest(BufferReader* in) {
  NF2_ASSIGN_OR_RETURN(uint32_t magic, in->GetU32());
  if (magic != kManifestMagic) {
    return Status::Corruption("bad manifest magic");
  }
  NF2_ASSIGN_OR_RETURN(uint32_t version, in->GetU32());
  if (version != kManifestVersion) {
    return Status::Corruption(
        StrCat("unsupported manifest version ", version));
  }
  Manifest m;
  NF2_ASSIGN_OR_RETURN(m.checkpoint_seq, in->GetU64());
  NF2_ASSIGN_OR_RETURN(m.dict_size, in->GetU64());
  NF2_ASSIGN_OR_RETURN(uint32_t n_tables, in->GetU32());
  for (uint32_t i = 0; i < n_tables; ++i) {
    NF2_ASSIGN_OR_RETURN(std::string name, in->GetString());
    TableManifest t;
    NF2_ASSIGN_OR_RETURN(t.file_id, in->GetU64());
    NF2_ASSIGN_OR_RETURN(t.physical_pages, in->GetU32());
    NF2_ASSIGN_OR_RETURN(uint32_t n_pages, in->GetU32());
    t.pages.reserve(n_pages);
    for (uint32_t p = 0; p < n_pages; ++p) {
      PageVersion pv;
      NF2_ASSIGN_OR_RETURN(pv.physical, in->GetU32());
      NF2_ASSIGN_OR_RETURN(pv.version, in->GetU64());
      NF2_ASSIGN_OR_RETURN(pv.crc, in->GetU32());
      if (pv.physical >= t.physical_pages) {
        return Status::Corruption(
            StrCat("manifest maps logical page ", p, " of ", name,
                   " to physical ", pv.physical, " past file end ",
                   t.physical_pages));
      }
      t.pages.push_back(pv);
    }
    m.tables.emplace(std::move(name), std::move(t));
  }
  // WAL position fields postdate kManifestVersion's introduction;
  // manifests written before them simply end here, which reads as
  // position (0, 0) — "nothing to adopt".
  if (!in->AtEnd()) {
    NF2_ASSIGN_OR_RETURN(m.wal_epoch, in->GetU64());
    NF2_ASSIGN_OR_RETURN(m.wal_base_lsn, in->GetU64());
  }
  return m;
}

Result<Manifest> LoadManifest(Env* env, const std::string& path) {
  if (!env->FileExists(path)) {
    return Status::NotFound(StrCat("manifest ", path, " not found"));
  }
  NF2_ASSIGN_OR_RETURN(std::string bytes, env->ReadFileToString(path));
  if (bytes.size() < 4) {
    return Status::Corruption("manifest too short for checksum");
  }
  std::string_view payload(bytes.data(), bytes.size() - 4);
  BufferReader crc_reader(
      std::string_view(bytes.data() + payload.size(), 4));
  NF2_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.GetU32());
  if (Crc32(payload) != stored_crc) {
    return Status::Corruption("manifest checksum mismatch");
  }
  BufferReader in(payload);
  NF2_ASSIGN_OR_RETURN(Manifest m, DecodeManifest(&in));
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes after manifest");
  }
  return m;
}

Status SaveManifestAtomic(Env* env, const std::string& path,
                          const Manifest& m) {
  BufferWriter payload;
  EncodeManifest(m, &payload);
  BufferWriter file;
  file.PutRaw(payload.data());
  file.PutU32(Crc32(payload.data()));
  return env->WriteFileAtomic(path, file.data());
}

namespace {
// Replaces the file at `path` wholesale with the serialized `pages`
// via temp + rename + dir sync (crash-atomic: either the old file or
// the complete new one survives), and sets `*entry` to the identity
// mapping. The safe path whenever no DURABLE manifest entry protects
// the file — shadow-writing into such a file and crashing before the
// manifest lands would make the flat-read fallback see mixed pages.
Status ReplaceTableFile(Env* env, const std::string& path,
                        const std::vector<Page>& pages, uint64_t file_id,
                        uint64_t new_version, TableManifest* entry,
                        CheckpointDeltaStats* stats) {
  const std::string tmp = path + ".tmp";
  TableManifest next;
  next.file_id = file_id;
  {
    NF2_ASSIGN_OR_RETURN(std::unique_ptr<HeapFile> file,
                         HeapFile::Create(env, tmp));
    for (size_t i = 0; i < pages.size(); ++i) {
      NF2_RETURN_IF_ERROR(
          file->WritePageAt(static_cast<PageId>(i), pages[i]));
      next.pages.push_back({static_cast<PageId>(i), new_version,
                            Crc32(PageView(pages[i]))});
      ++stats->pages_written;
      stats->bytes_written += kPageSize;
    }
    next.physical_pages = file->page_count();
    NF2_RETURN_IF_ERROR(file->Sync());
  }
  NF2_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  NF2_RETURN_IF_ERROR(env->SyncDir(dir));
  *entry = std::move(next);
  return Status::OK();
}
}  // namespace

Result<CheckpointDeltaStats> CheckpointTableDelta(
    Env* env, const std::string& path, const Schema& schema,
    const Permutation& nest_order, const NfrRelation& relation,
    TableManifest* entry, uint64_t new_version) {
  CheckpointDeltaStats stats;

  uint64_t file_id =
      env->FileExists(path) ? ProbeTableFileId(env, path) : 0;

  if (file_id == 0) {
    // Missing (or unreadable) file: write from scratch under a fresh
    // identity stamp.
    file_id = NewTableFileId();
    NF2_ASSIGN_OR_RETURN(
        std::vector<Page> pages,
        SerializeTablePages(schema, nest_order, file_id, relation));
    NF2_RETURN_IF_ERROR(ReplaceTableFile(env, path, pages, file_id,
                                         new_version, entry, &stats));
    return stats;
  }

  NF2_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapFile> file,
      HeapFile::Open(env, path, /*tolerate_torn_tail=*/true));

  NF2_ASSIGN_OR_RETURN(
      std::vector<Page> pages,
      SerializeTablePages(schema, nest_order, file_id, relation));

  const bool durable_mapping =
      entry->file_id == file_id && !entry->pages.empty();
  TableManifest base = *entry;
  if (!durable_mapping) {
    // No durable entry protects this file (fresh CREATE, or an entry
    // built against a replaced file). Its current pages ARE the live
    // versions — adopt them as an identity baseline.
    base = TableManifest{};
    base.file_id = file_id;
    base.physical_pages = file->page_count();
    Page scratch;
    for (PageId i = 0; i < file->page_count(); ++i) {
      NF2_RETURN_IF_ERROR(file->ReadPage(i, &scratch));
      base.pages.push_back({i, /*version=*/0, Crc32(PageView(scratch))});
    }
    bool identical = pages.size() == base.pages.size();
    for (size_t i = 0; identical && i < pages.size(); ++i) {
      identical = Crc32(PageView(pages[i])) == base.pages[i].crc;
    }
    if (identical) {
      // A file freshly produced by WriteTableAtomic diffs to zero
      // writes: adopt the identity mapping, touch nothing.
      stats.pages_skipped += pages.size();
      *entry = std::move(base);
      return stats;
    }
    // Changed, and shadow slots in this file are NOT protected by the
    // durable manifest — a crash mid-shadow-write would feed mixed
    // pages to the flat-read fallback. Replace the file wholesale
    // (crash-atomic) instead; from the next checkpoint on, the durable
    // entry enables true page deltas.
    file.reset();
    NF2_RETURN_IF_ERROR(ReplaceTableFile(env, path, pages, file_id,
                                         new_version, entry, &stats));
    return stats;
  }

  // Physical slots the durable mapping references must survive until
  // the next manifest is published; anything else below page_count is a
  // free shadow slot. Physical page 0 is never recycled: it always
  // holds the metadata record ProbeTableFileId reads.
  std::vector<bool> referenced(file->page_count(), false);
  if (!referenced.empty()) referenced[0] = true;
  for (const PageVersion& pv : base.pages) {
    if (pv.physical < referenced.size()) referenced[pv.physical] = true;
  }

  TableManifest next;
  next.file_id = file_id;
  PageId free_cursor = 1;
  bool wrote = false;
  for (size_t i = 0; i < pages.size(); ++i) {
    const uint32_t crc = Crc32(PageView(pages[i]));
    if (i < base.pages.size() && base.pages[i].crc == crc) {
      next.pages.push_back(base.pages[i]);
      ++stats.pages_skipped;
      continue;
    }
    PageId slot = kInvalidPageId;
    while (free_cursor < referenced.size()) {
      if (!referenced[free_cursor]) {
        slot = free_cursor;
        break;
      }
      ++free_cursor;
    }
    if (slot == kInvalidPageId) {
      slot = file->page_count();
      referenced.resize(file->page_count() + 1, false);
    }
    referenced[slot] = true;
    NF2_RETURN_IF_ERROR(file->WritePageAt(slot, pages[i]));
    next.pages.push_back({slot, new_version, crc});
    ++stats.pages_written;
    stats.bytes_written += kPageSize;
    wrote = true;
  }
  next.physical_pages = file->page_count();
  if (wrote) NF2_RETURN_IF_ERROR(file->Sync());
  *entry = std::move(next);
  return stats;
}

Result<MappedTable> ReadTableMapped(Env* env, const std::string& path,
                                    const TableManifest& entry) {
  if (entry.pages.empty()) {
    return Status::Corruption(
        StrCat("empty manifest mapping for ", path));
  }
  NF2_ASSIGN_OR_RETURN(
      std::unique_ptr<HeapFile> file,
      HeapFile::Open(env, path, /*tolerate_torn_tail=*/true));
  MappedTable out;
  Page page;
  for (size_t i = 0; i < entry.pages.size(); ++i) {
    const PageVersion& pv = entry.pages[i];
    if (pv.physical >= file->page_count()) {
      return Status::Corruption(
          StrCat("manifest maps logical page ", i, " of ", path,
                 " past file end"));
    }
    NF2_RETURN_IF_ERROR(file->ReadPage(pv.physical, &page));
    if (Crc32(PageView(page)) != pv.crc) {
      return Status::Corruption(
          StrCat("page checksum mismatch on logical page ", i, " of ",
                 path));
    }
    if (i == 0) {
      NF2_ASSIGN_OR_RETURN(std::string meta_bytes, page.Read(0));
      NF2_ASSIGN_OR_RETURN(TableMeta meta, DecodeTableMeta(meta_bytes));
      if (meta.file_id != entry.file_id) {
        return Status::Corruption(
            StrCat("file identity mismatch on ", path,
                   ": manifest expects ", entry.file_id, ", file has ",
                   meta.file_id));
      }
      out.schema = std::move(meta.schema);
      out.nest_order = std::move(meta.nest_order);
      out.file_id = meta.file_id;
      out.relation = NfrRelation(out.schema);
    }
    for (auto& [slot, record] : page.LiveRecords()) {
      if (i == 0 && slot == 0) continue;  // Metadata record.
      BufferReader reader(record);
      NF2_ASSIGN_OR_RETURN(NfrTuple tuple, DecodeNfrTuple(&reader));
      if (tuple.degree() != out.schema.degree()) {
        return Status::Corruption("stored tuple degree mismatch");
      }
      out.relation.Add(std::move(tuple));
    }
  }
  return out;
}

uint64_t ProbeTableFileId(Env* env, const std::string& path) {
  auto file = HeapFile::Open(env, path, /*tolerate_torn_tail=*/true);
  if (!file.ok() || (*file)->page_count() == 0) return 0;
  Page page;
  if (!(*file)->ReadPage(0, &page).ok()) return 0;
  auto record = page.Read(0);
  if (!record.ok()) return 0;
  auto meta = DecodeTableMeta(*record);
  if (!meta.ok()) return 0;
  return meta->file_id;
}

}  // namespace nf2
