#ifndef NF2_STORAGE_PAGE_H_
#define NF2_STORAGE_PAGE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace nf2 {

/// Fixed page size; small enough that tests exercise multi-page files.
inline constexpr size_t kPageSize = 4096;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

/// A slotted page: records grow from the tail, the slot directory grows
/// from the head.
///
/// Layout:
///   [u16 slot_count][u16 free_end]
///   [slot 0: u16 offset, u16 length] [slot 1] ...
///   ... free space ...
///   [record bytes, packed toward the end]
///
/// A slot with length 0 is a tombstone (deleted record).
class Page {
 public:
  struct SlotId {
    PageId page = kInvalidPageId;
    uint16_t slot = 0;
    bool operator==(const SlotId&) const = default;
  };

  Page();

  /// Re-initializes an empty slotted page.
  void Format();

  /// Number of slots (including tombstones).
  uint16_t slot_count() const;

  /// Bytes available for one more record (accounting for its slot).
  size_t FreeSpace() const;

  /// Appends a record; returns its slot index, or nullopt when the page
  /// is full. Records larger than the page payload never fit.
  std::optional<uint16_t> Insert(std::string_view record);

  /// Reads the record in `slot`; NotFound for tombstones, OutOfRange
  /// for bad slots.
  Result<std::string> Read(uint16_t slot) const;

  /// Tombstones `slot`. Space is reclaimed by Compact().
  Status Delete(uint16_t slot);

  /// Rewrites live records to drop tombstone space. Slot indices are
  /// NOT stable across compaction; callers re-scan afterwards.
  void Compact();

  /// All live (slot, record) pairs in slot order.
  std::vector<std::pair<uint16_t, std::string>> LiveRecords() const;

  /// Raw page bytes (exactly kPageSize).
  const char* data() const { return bytes_.data(); }
  char* mutable_data() { return bytes_.data(); }

 private:
  uint16_t GetU16At(size_t pos) const;
  void SetU16At(size_t pos, uint16_t v);

  std::array<char, kPageSize> bytes_;
};

}  // namespace nf2

#endif  // NF2_STORAGE_PAGE_H_
