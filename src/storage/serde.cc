#include "storage/serde.h"

#include <bit>
#include <cstring>

#include "util/string_util.h"

namespace nf2 {

void BufferWriter::PutU8(uint8_t v) {
  buf_.push_back(static_cast<char>(v));
}

// The wire order is little-endian; on a little-endian host the in-memory
// representation already matches, so each Put is one append instead of a
// push_back per byte (these run once per field of every encoded record).

void BufferWriter::PutU16(uint16_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  } else {
    for (int i = 0; i < 2; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BufferWriter::PutU32(uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  } else {
    for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BufferWriter::PutU64(uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) {
    buf_.append(reinterpret_cast<const char*>(&v), sizeof(v));
  } else {
    for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BufferWriter::PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }

void BufferWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BufferWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void BufferWriter::PutRaw(std::string_view s) { buf_.append(s); }

namespace {
Status Truncated(const char* what) {
  return Status::Corruption(StrCat("buffer truncated reading ", what));
}
}  // namespace

Result<uint8_t> BufferReader::GetU8() {
  if (remaining() < 1) return Truncated("u8");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint16_t> BufferReader::GetU16() {
  if (remaining() < 2) return Truncated("u16");
  uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint32_t> BufferReader::GetU32() {
  if (remaining() < 4) return Truncated("u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<uint64_t> BufferReader::GetU64() {
  if (remaining() < 8) return Truncated("u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

Result<int64_t> BufferReader::GetI64() {
  NF2_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> BufferReader::GetDouble() {
  NF2_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BufferReader::GetString() {
  NF2_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  return GetRaw(len);
}

Result<std::string> BufferReader::GetRaw(size_t len) {
  if (remaining() < len) return Truncated("bytes");
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

namespace {

/// Slice-by-8 tables for CRC-32 (polynomial 0xedb88320). t[0] is the
/// classic bytewise table; t[j] advances a byte j positions further, so
/// eight lookups fold eight input bytes per iteration. The produced
/// checksums are bit-identical to the bytewise algorithm — on-disk CRCs
/// (WAL frames, pages, manifest) are unaffected.
struct Crc32Tables {
  uint32_t t[8][256];
  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (int j = 1; j < 8; ++j) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[j][i] = (t[j - 1][i] >> 8) ^ t[0][t[j - 1][i] & 0xff];
      }
    }
  }
};

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const Crc32Tables tables;
  const auto& t = tables.t;
  uint32_t crc = 0xffffffffu;
  const char* p = data.data();
  size_t n = data.size();
  if constexpr (std::endian::native == std::endian::little) {
    // Page-CRC comparison is the per-checkpoint cost on every UNCHANGED
    // page, so the bulk path matters: fold 8 bytes per iteration.
    while (n >= 8) {
      uint32_t lo;
      uint32_t hi;
      std::memcpy(&lo, p, 4);
      std::memcpy(&hi, p + 4, 4);
      crc ^= lo;
      crc = t[7][crc & 0xff] ^ t[6][(crc >> 8) & 0xff] ^
            t[5][(crc >> 16) & 0xff] ^ t[4][crc >> 24] ^
            t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
            t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
      p += 8;
      n -= 8;
    }
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ static_cast<uint8_t>(*p++)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void EncodeValue(const Value& v, BufferWriter* out) {
  out->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      out->PutU8(v.AsBool() ? 1 : 0);
      break;
    case ValueType::kInt:
      out->PutI64(v.AsInt());
      break;
    case ValueType::kDouble:
      out->PutDouble(v.AsDouble());
      break;
    case ValueType::kString:
      out->PutString(v.AsString());
      break;
    case ValueType::kSet: {
      const std::vector<Value>& elements = v.AsSet();
      out->PutU32(static_cast<uint32_t>(elements.size()));
      for (const Value& e : elements) {
        EncodeValue(e, out);
      }
      break;
    }
  }
}

Result<Value> DecodeValue(BufferReader* in) {
  NF2_ASSIGN_OR_RETURN(uint8_t tag, in->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      NF2_ASSIGN_OR_RETURN(uint8_t b, in->GetU8());
      return Value::Bool(b != 0);
    }
    case ValueType::kInt: {
      NF2_ASSIGN_OR_RETURN(int64_t i, in->GetI64());
      return Value::Int(i);
    }
    case ValueType::kDouble: {
      NF2_ASSIGN_OR_RETURN(double d, in->GetDouble());
      return Value::Double(d);
    }
    case ValueType::kString: {
      NF2_ASSIGN_OR_RETURN(std::string s, in->GetString());
      return Value::String(std::move(s));
    }
    case ValueType::kSet: {
      NF2_ASSIGN_OR_RETURN(uint32_t count, in->GetU32());
      if (count > in->remaining()) {
        return Status::Corruption("set value count exceeds buffer size");
      }
      std::vector<Value> elements;
      elements.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        NF2_ASSIGN_OR_RETURN(Value e, DecodeValue(in));
        elements.push_back(std::move(e));
      }
      return Value::SetOf(std::move(elements));
    }
  }
  return Status::Corruption(StrCat("unknown value tag ", int{tag}));
}

void EncodeValueSet(const ValueSet& s, BufferWriter* out) {
  out->PutU32(static_cast<uint32_t>(s.size()));
  for (const Value& v : s.values()) {
    EncodeValue(v, out);
  }
}

Result<ValueSet> DecodeValueSet(BufferReader* in) {
  NF2_ASSIGN_OR_RETURN(uint32_t count, in->GetU32());
  if (count > in->remaining()) {
    return Status::Corruption("value-set count exceeds buffer size");
  }
  std::vector<Value> values;
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NF2_ASSIGN_OR_RETURN(Value v, DecodeValue(in));
    values.push_back(std::move(v));
  }
  return ValueSet(std::move(values));
}

void EncodeFlatTuple(const FlatTuple& t, BufferWriter* out) {
  out->PutU32(static_cast<uint32_t>(t.degree()));
  for (const Value& v : t.values()) {
    EncodeValue(v, out);
  }
}

Result<FlatTuple> DecodeFlatTuple(BufferReader* in) {
  NF2_ASSIGN_OR_RETURN(uint32_t degree, in->GetU32());
  if (degree > in->remaining()) {
    return Status::Corruption("tuple degree exceeds buffer size");
  }
  std::vector<Value> values;
  values.reserve(degree);
  for (uint32_t i = 0; i < degree; ++i) {
    NF2_ASSIGN_OR_RETURN(Value v, DecodeValue(in));
    values.push_back(std::move(v));
  }
  return FlatTuple(std::move(values));
}

void EncodeNfrTuple(const NfrTuple& t, BufferWriter* out) {
  out->PutU32(static_cast<uint32_t>(t.degree()));
  for (const ValueSet& c : t.components()) {
    EncodeValueSet(c, out);
  }
}

Result<NfrTuple> DecodeNfrTuple(BufferReader* in) {
  NF2_ASSIGN_OR_RETURN(uint32_t degree, in->GetU32());
  if (degree > in->remaining()) {
    return Status::Corruption("tuple degree exceeds buffer size");
  }
  std::vector<ValueSet> components;
  components.reserve(degree);
  for (uint32_t i = 0; i < degree; ++i) {
    NF2_ASSIGN_OR_RETURN(ValueSet s, DecodeValueSet(in));
    components.push_back(std::move(s));
  }
  return NfrTuple(std::move(components));
}

void EncodeSchema(const Schema& s, BufferWriter* out) {
  out->PutU32(static_cast<uint32_t>(s.degree()));
  for (const Attribute& attr : s.attributes()) {
    out->PutString(attr.name);
    out->PutU8(static_cast<uint8_t>(attr.type));
  }
}

Result<Schema> DecodeSchema(BufferReader* in) {
  NF2_ASSIGN_OR_RETURN(uint32_t degree, in->GetU32());
  if (degree > AttrSet::kMaxAttrs) {
    return Status::Corruption(
        StrCat("schema degree ", degree, " exceeds limit"));
  }
  std::vector<Attribute> attrs;
  attrs.reserve(degree);
  for (uint32_t i = 0; i < degree; ++i) {
    NF2_ASSIGN_OR_RETURN(std::string name, in->GetString());
    NF2_ASSIGN_OR_RETURN(uint8_t type, in->GetU8());
    if (type > static_cast<uint8_t>(ValueType::kSet)) {
      return Status::Corruption("bad attribute type tag");
    }
    for (const Attribute& prev : attrs) {
      if (prev.name == name) {
        return Status::Corruption("duplicate attribute name in schema");
      }
    }
    attrs.push_back({std::move(name), static_cast<ValueType>(type)});
  }
  return Schema(std::move(attrs));
}

void EncodeNfrRelation(const NfrRelation& r, BufferWriter* out) {
  EncodeSchema(r.schema(), out);
  out->PutU32(static_cast<uint32_t>(r.size()));
  for (const NfrTuple& t : r.tuples()) {
    EncodeNfrTuple(t, out);
  }
}

Result<NfrRelation> DecodeNfrRelation(BufferReader* in) {
  NF2_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(in));
  NF2_ASSIGN_OR_RETURN(uint32_t count, in->GetU32());
  if (count > in->remaining()) {
    return Status::Corruption("relation tuple count exceeds buffer size");
  }
  std::vector<NfrTuple> tuples;
  tuples.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NF2_ASSIGN_OR_RETURN(NfrTuple t, DecodeNfrTuple(in));
    if (t.degree() != schema.degree()) {
      return Status::Corruption("tuple degree mismatch in relation");
    }
    if (!t.IsWellFormed()) {
      return Status::Corruption("empty component in stored tuple");
    }
    tuples.push_back(std::move(t));
  }
  return NfrRelation(std::move(schema), std::move(tuples));
}

void EncodeValueDictionary(const ValueDictionary& d, BufferWriter* out) {
  out->PutU32(static_cast<uint32_t>(d.size()));
  for (ValueId id = 0; id < d.size(); ++id) {
    EncodeValue(d.value(id), out);
  }
}

Result<std::shared_ptr<ValueDictionary>> DecodeValueDictionary(
    BufferReader* in) {
  NF2_ASSIGN_OR_RETURN(uint32_t count, in->GetU32());
  if (count > in->remaining()) {
    return Status::Corruption("dictionary entry count exceeds buffer size");
  }
  auto dict = std::make_shared<ValueDictionary>();
  for (uint32_t i = 0; i < count; ++i) {
    NF2_ASSIGN_OR_RETURN(Value v, DecodeValue(in));
    ValueId id = dict->Intern(v);
    if (id != i) {
      return Status::Corruption("duplicate value in stored dictionary");
    }
  }
  return dict;
}

}  // namespace nf2
