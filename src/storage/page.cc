#include "storage/page.h"

#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

namespace {
constexpr size_t kHeaderSize = 4;       // slot_count + free_end.
constexpr size_t kSlotSize = 4;         // offset + length.
constexpr size_t kSlotCountPos = 0;
constexpr size_t kFreeEndPos = 2;
}  // namespace

Page::Page() { Format(); }

void Page::Format() {
  bytes_.fill(0);
  SetU16At(kSlotCountPos, 0);
  SetU16At(kFreeEndPos, static_cast<uint16_t>(kPageSize));
}

uint16_t Page::GetU16At(size_t pos) const {
  uint16_t v;
  std::memcpy(&v, bytes_.data() + pos, sizeof(v));
  return v;
}

void Page::SetU16At(size_t pos, uint16_t v) {
  std::memcpy(bytes_.data() + pos, &v, sizeof(v));
}

uint16_t Page::slot_count() const { return GetU16At(kSlotCountPos); }

size_t Page::FreeSpace() const {
  size_t slots_end = kHeaderSize + slot_count() * kSlotSize;
  size_t free_end = GetU16At(kFreeEndPos);
  size_t gap = free_end > slots_end ? free_end - slots_end : 0;
  return gap > kSlotSize ? gap - kSlotSize : 0;
}

std::optional<uint16_t> Page::Insert(std::string_view record) {
  if (record.size() > 0xffff) return std::nullopt;
  if (FreeSpace() < record.size()) return std::nullopt;
  uint16_t count = slot_count();
  uint16_t free_end = GetU16At(kFreeEndPos);
  uint16_t offset = static_cast<uint16_t>(free_end - record.size());
  std::memcpy(bytes_.data() + offset, record.data(), record.size());
  size_t slot_pos = kHeaderSize + count * kSlotSize;
  SetU16At(slot_pos, offset);
  SetU16At(slot_pos + 2, static_cast<uint16_t>(record.size()));
  SetU16At(kFreeEndPos, offset);
  SetU16At(kSlotCountPos, count + 1);
  return count;
}

Result<std::string> Page::Read(uint16_t slot) const {
  if (slot >= slot_count()) {
    return Status::OutOfRange(StrCat("slot ", slot, " out of range"));
  }
  size_t slot_pos = kHeaderSize + slot * kSlotSize;
  uint16_t offset = GetU16At(slot_pos);
  uint16_t length = GetU16At(slot_pos + 2);
  if (length == 0) {
    return Status::NotFound(StrCat("slot ", slot, " is deleted"));
  }
  if (offset + length > kPageSize) {
    return Status::Corruption("slot points past page end");
  }
  return std::string(bytes_.data() + offset, length);
}

Status Page::Delete(uint16_t slot) {
  if (slot >= slot_count()) {
    return Status::OutOfRange(StrCat("slot ", slot, " out of range"));
  }
  size_t slot_pos = kHeaderSize + slot * kSlotSize;
  if (GetU16At(slot_pos + 2) == 0) {
    return Status::NotFound(StrCat("slot ", slot, " already deleted"));
  }
  SetU16At(slot_pos + 2, 0);
  return Status::OK();
}

void Page::Compact() {
  std::vector<std::pair<uint16_t, std::string>> live = LiveRecords();
  Format();
  for (auto& [slot, record] : live) {
    std::optional<uint16_t> inserted = Insert(record);
    NF2_CHECK(inserted.has_value()) << "compaction cannot overflow";
  }
}

std::vector<std::pair<uint16_t, std::string>> Page::LiveRecords() const {
  std::vector<std::pair<uint16_t, std::string>> out;
  for (uint16_t s = 0; s < slot_count(); ++s) {
    Result<std::string> record = Read(s);
    if (record.ok()) {
      out.emplace_back(s, *std::move(record));
    }
  }
  return out;
}

}  // namespace nf2
