#include "storage/table.h"

#include <filesystem>

#include "storage/serde.h"
#include "util/string_util.h"

namespace nf2 {

namespace {
constexpr uint32_t kTableMagic = 0x4e463252;  // "NF2R".

std::string EncodeMetadata(const Schema& schema, const Permutation& order) {
  BufferWriter out;
  out.PutU32(kTableMagic);
  EncodeSchema(schema, &out);
  out.PutU32(static_cast<uint32_t>(order.size()));
  for (size_t p : order) {
    out.PutU32(static_cast<uint32_t>(p));
  }
  return out.data();
}

Result<std::pair<Schema, Permutation>> DecodeMetadata(
    const std::string& bytes) {
  BufferReader in(bytes);
  NF2_ASSIGN_OR_RETURN(uint32_t magic, in.GetU32());
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic");
  }
  NF2_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(&in));
  NF2_ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
  Permutation order;
  order.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    NF2_ASSIGN_OR_RETURN(uint32_t p, in.GetU32());
    order.push_back(p);
  }
  if (!IsValidPermutation(order, schema.degree())) {
    return Status::Corruption("stored nest order is not a permutation");
  }
  return std::make_pair(std::move(schema), std::move(order));
}
}  // namespace

Result<std::unique_ptr<Table>> Table::Create(Env* env,
                                             const std::string& path,
                                             Schema schema,
                                             Permutation nest_order,
                                             size_t pool_pages,
                                             BufferPoolMetrics pool_metrics) {
  if (!IsValidPermutation(nest_order, schema.degree())) {
    return Status::InvalidArgument("nest order is not a permutation");
  }
  std::unique_ptr<Table> table(new Table());
  table->env_ = env;
  table->schema_ = std::move(schema);
  table->nest_order_ = std::move(nest_order);
  table->pool_metrics_ = pool_metrics;
  NF2_ASSIGN_OR_RETURN(table->file_, HeapFile::Create(env, path));
  table->pool_ = std::make_unique<BufferPool>(table->file_.get(),
                                              pool_pages, pool_metrics);
  NF2_RETURN_IF_ERROR(table->WriteMetadata());
  return table;
}

Result<std::unique_ptr<Table>> Table::Open(Env* env,
                                           const std::string& path,
                                           size_t pool_pages,
                                           BufferPoolMetrics pool_metrics) {
  std::unique_ptr<Table> table(new Table());
  table->env_ = env;
  table->pool_metrics_ = pool_metrics;
  NF2_ASSIGN_OR_RETURN(table->file_, HeapFile::Open(env, path));
  if (table->file_->page_count() == 0) {
    return Status::Corruption("table file has no metadata page");
  }
  table->pool_ = std::make_unique<BufferPool>(table->file_.get(),
                                              pool_pages, pool_metrics);
  NF2_ASSIGN_OR_RETURN(Page * meta_page, table->pool_->Fetch(0));
  NF2_ASSIGN_OR_RETURN(std::string meta, meta_page->Read(0));
  NF2_ASSIGN_OR_RETURN(auto decoded, DecodeMetadata(meta));
  table->schema_ = std::move(decoded.first);
  table->nest_order_ = std::move(decoded.second);
  return table;
}

Status Table::WriteMetadata() {
  auto allocated = pool_->Allocate();
  if (!allocated.ok()) return allocated.status();
  auto [id, page] = *allocated;
  if (id != 0) {
    return Status::Internal("metadata page must be page 0");
  }
  std::string meta = EncodeMetadata(schema_, nest_order_);
  if (!page->Insert(meta).has_value()) {
    return Status::Internal("metadata does not fit in one page");
  }
  pool_->MarkDirty(0);
  return Status::OK();
}

Result<RecordId> Table::Append(const NfrTuple& tuple) {
  if (tuple.degree() != schema_.degree()) {
    return Status::InvalidArgument("tuple degree mismatch");
  }
  BufferWriter out;
  EncodeNfrTuple(tuple, &out);
  const std::string& record = out.data();
  // Try the cursor page, then allocate.
  for (PageId id = append_cursor_; id < file_->page_count(); ++id) {
    NF2_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(id));
    std::optional<uint16_t> slot = page->Insert(record);
    if (slot.has_value()) {
      pool_->MarkDirty(id);
      append_cursor_ = id;
      return RecordId{id, *slot};
    }
  }
  NF2_ASSIGN_OR_RETURN(auto allocated, pool_->Allocate());
  auto [id, page] = allocated;
  std::optional<uint16_t> slot = page->Insert(record);
  if (!slot.has_value()) {
    return Status::InvalidArgument(
        StrCat("tuple record of ", record.size(),
               " bytes does not fit in a fresh page"));
  }
  pool_->MarkDirty(id);
  append_cursor_ = id;
  return RecordId{id, *slot};
}

Status Table::Erase(RecordId rid) {
  NF2_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(rid.page));
  NF2_RETURN_IF_ERROR(page->Delete(rid.slot));
  pool_->MarkDirty(rid.page);
  return Status::OK();
}

Result<NfrRelation> Table::ReadAll() {
  NF2_ASSIGN_OR_RETURN(auto scanned, ScanWithIds());
  NfrRelation out(schema_);
  for (auto& [rid, tuple] : scanned) {
    out.Add(std::move(tuple));
  }
  return out;
}

Result<std::vector<std::pair<RecordId, NfrTuple>>> Table::ScanWithIds() {
  std::vector<std::pair<RecordId, NfrTuple>> out;
  for (PageId id = 0; id < file_->page_count(); ++id) {
    NF2_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(id));
    for (auto& [slot, record] : page->LiveRecords()) {
      if (id == 0 && slot == 0) continue;  // Metadata record.
      BufferReader reader(record);
      NF2_ASSIGN_OR_RETURN(NfrTuple tuple, DecodeNfrTuple(&reader));
      if (tuple.degree() != schema_.degree()) {
        return Status::Corruption("stored tuple degree mismatch");
      }
      out.emplace_back(RecordId{id, slot}, std::move(tuple));
    }
  }
  return out;
}

Status Table::Rewrite(const NfrRelation& relation) {
  if (relation.schema() != schema_) {
    return Status::InvalidArgument("relation schema mismatch on rewrite");
  }
  // Rebuild the file from scratch: metadata, then all tuples.
  std::string path = file_->path();
  pool_.reset();
  file_.reset();
  NF2_ASSIGN_OR_RETURN(file_, HeapFile::Create(env_, path));
  pool_ = std::make_unique<BufferPool>(file_.get(), 64, pool_metrics_);
  append_cursor_ = 0;
  NF2_RETURN_IF_ERROR(WriteMetadata());
  for (const NfrTuple& t : relation.tuples()) {
    NF2_ASSIGN_OR_RETURN(RecordId rid, Append(t));
    (void)rid;
  }
  return Flush();
}

Result<size_t> Table::Vacuum() {
  NF2_ASSIGN_OR_RETURN(NfrRelation live, ReadAll());
  NF2_RETURN_IF_ERROR(Rewrite(live));
  return live.size();
}

Status Table::Flush() { return pool_->FlushAll(); }

Status WriteTableAtomic(Env* env, const std::string& path,
                        const Schema& schema, const Permutation& nest_order,
                        const NfrRelation& relation,
                        BufferPoolMetrics pool_metrics) {
  const std::string tmp = path + ".tmp";
  {
    NF2_ASSIGN_OR_RETURN(
        std::unique_ptr<Table> table,
        Table::Create(env, tmp, schema, nest_order, /*pool_pages=*/64,
                      pool_metrics));
    for (const NfrTuple& t : relation.tuples()) {
      NF2_RETURN_IF_ERROR(table->Append(t).status());
    }
    // FlushAll writes back every dirty page and fdatasyncs, so the temp
    // file is complete on stable storage before the rename publishes it.
    NF2_RETURN_IF_ERROR(table->Flush());
  }
  NF2_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  return env->SyncDir(dir);
}

}  // namespace nf2
