#include "storage/table.h"

#include <atomic>
#include <chrono>
#include <filesystem>

#include "storage/serde.h"
#include "util/string_util.h"

namespace nf2 {

namespace {
constexpr uint32_t kTableMagic = 0x4e463252;  // "NF2R".
}  // namespace

std::string EncodeTableMeta(const TableMeta& meta) {
  BufferWriter out;
  out.PutU32(kTableMagic);
  EncodeSchema(meta.schema, &out);
  out.PutU32(static_cast<uint32_t>(meta.nest_order.size()));
  for (size_t p : meta.nest_order) {
    out.PutU32(static_cast<uint32_t>(p));
  }
  out.PutU64(meta.file_id);
  return out.data();
}

Result<TableMeta> DecodeTableMeta(std::string_view bytes) {
  BufferReader in(bytes);
  NF2_ASSIGN_OR_RETURN(uint32_t magic, in.GetU32());
  if (magic != kTableMagic) {
    return Status::Corruption("bad table magic");
  }
  TableMeta meta;
  NF2_ASSIGN_OR_RETURN(meta.schema, DecodeSchema(&in));
  NF2_ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
  meta.nest_order.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    NF2_ASSIGN_OR_RETURN(uint32_t p, in.GetU32());
    meta.nest_order.push_back(p);
  }
  if (!IsValidPermutation(meta.nest_order, meta.schema.degree())) {
    return Status::Corruption("stored nest order is not a permutation");
  }
  // Files written before the manifest era end here; their id stays 0,
  // which every manifest check treats as "mapping does not apply".
  if (in.remaining() >= 8) {
    NF2_ASSIGN_OR_RETURN(meta.file_id, in.GetU64());
  }
  return meta;
}

uint64_t NewTableFileId() {
  static std::atomic<uint64_t> counter{0};
  const uint64_t t = static_cast<uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  const uint64_t c = counter.fetch_add(1, std::memory_order_relaxed);
  // splitmix64-style mix: ids must differ across process restarts, so
  // wall time seeds the hash and the counter separates ids minted in
  // the same tick. A collision is only ever detected work (the CRC
  // check fails closed), never silent corruption.
  uint64_t x = t + 0x9E3779B97F4A7C15ull * (c + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

Result<std::vector<Page>> SerializeTablePages(const Schema& schema,
                                              const Permutation& nest_order,
                                              uint64_t file_id,
                                              const NfrRelation& relation) {
  if (relation.schema() != schema) {
    return Status::InvalidArgument("relation schema mismatch on serialize");
  }
  std::vector<Page> pages(1);
  pages.back().Format();
  if (!pages.back()
           .Insert(EncodeTableMeta({schema, nest_order, file_id}))
           .has_value()) {
    return Status::Internal("metadata does not fit in one page");
  }
  BufferWriter out;
  for (const NfrTuple& t : relation.tuples()) {
    out.Clear();
    EncodeNfrTuple(t, &out);
    if (!pages.back().Insert(out.data()).has_value()) {
      pages.emplace_back();
      pages.back().Format();
      if (!pages.back().Insert(out.data()).has_value()) {
        return Status::InvalidArgument(
            StrCat("tuple record of ", out.size(),
                   " bytes does not fit in a fresh page"));
      }
    }
  }
  return pages;
}

Result<std::unique_ptr<Table>> Table::Create(Env* env,
                                             const std::string& path,
                                             Schema schema,
                                             Permutation nest_order,
                                             size_t pool_pages,
                                             BufferPoolMetrics pool_metrics) {
  if (!IsValidPermutation(nest_order, schema.degree())) {
    return Status::InvalidArgument("nest order is not a permutation");
  }
  std::unique_ptr<Table> table(new Table());
  table->env_ = env;
  table->schema_ = std::move(schema);
  table->nest_order_ = std::move(nest_order);
  table->file_id_ = NewTableFileId();
  table->pool_metrics_ = pool_metrics;
  NF2_ASSIGN_OR_RETURN(table->file_, HeapFile::Create(env, path));
  table->pool_ = std::make_unique<BufferPool>(table->file_.get(),
                                              pool_pages, pool_metrics);
  NF2_RETURN_IF_ERROR(table->WriteMetadata());
  return table;
}

Result<std::unique_ptr<Table>> Table::Open(Env* env,
                                           const std::string& path,
                                           size_t pool_pages,
                                           BufferPoolMetrics pool_metrics) {
  std::unique_ptr<Table> table(new Table());
  table->env_ = env;
  table->pool_metrics_ = pool_metrics;
  NF2_ASSIGN_OR_RETURN(table->file_, HeapFile::Open(env, path));
  if (table->file_->page_count() == 0) {
    return Status::Corruption("table file has no metadata page");
  }
  table->pool_ = std::make_unique<BufferPool>(table->file_.get(),
                                              pool_pages, pool_metrics);
  NF2_ASSIGN_OR_RETURN(Page * meta_page, table->pool_->Fetch(0));
  NF2_ASSIGN_OR_RETURN(std::string meta, meta_page->Read(0));
  NF2_ASSIGN_OR_RETURN(TableMeta decoded, DecodeTableMeta(meta));
  table->schema_ = std::move(decoded.schema);
  table->nest_order_ = std::move(decoded.nest_order);
  table->file_id_ = decoded.file_id;
  return table;
}

Status Table::WriteMetadata() {
  auto allocated = pool_->Allocate();
  if (!allocated.ok()) return allocated.status();
  auto [id, page] = *allocated;
  if (id != 0) {
    return Status::Internal("metadata page must be page 0");
  }
  std::string meta = EncodeTableMeta({schema_, nest_order_, file_id_});
  if (!page->Insert(meta).has_value()) {
    return Status::Internal("metadata does not fit in one page");
  }
  pool_->MarkDirty(0);
  return Status::OK();
}

Result<RecordId> Table::Append(const NfrTuple& tuple) {
  if (tuple.degree() != schema_.degree()) {
    return Status::InvalidArgument("tuple degree mismatch");
  }
  BufferWriter out;
  EncodeNfrTuple(tuple, &out);
  const std::string& record = out.data();
  // Try the cursor page, then allocate.
  for (PageId id = append_cursor_; id < file_->page_count(); ++id) {
    NF2_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(id));
    std::optional<uint16_t> slot = page->Insert(record);
    if (slot.has_value()) {
      pool_->MarkDirty(id);
      append_cursor_ = id;
      return RecordId{id, *slot};
    }
  }
  NF2_ASSIGN_OR_RETURN(auto allocated, pool_->Allocate());
  auto [id, page] = allocated;
  std::optional<uint16_t> slot = page->Insert(record);
  if (!slot.has_value()) {
    return Status::InvalidArgument(
        StrCat("tuple record of ", record.size(),
               " bytes does not fit in a fresh page"));
  }
  pool_->MarkDirty(id);
  append_cursor_ = id;
  return RecordId{id, *slot};
}

Status Table::Erase(RecordId rid) {
  NF2_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(rid.page));
  NF2_RETURN_IF_ERROR(page->Delete(rid.slot));
  pool_->MarkDirty(rid.page);
  return Status::OK();
}

Result<NfrRelation> Table::ReadAll() {
  NF2_ASSIGN_OR_RETURN(auto scanned, ScanWithIds());
  NfrRelation out(schema_);
  for (auto& [rid, tuple] : scanned) {
    out.Add(std::move(tuple));
  }
  return out;
}

Result<std::vector<std::pair<RecordId, NfrTuple>>> Table::ScanWithIds() {
  std::vector<std::pair<RecordId, NfrTuple>> out;
  for (PageId id = 0; id < file_->page_count(); ++id) {
    NF2_ASSIGN_OR_RETURN(Page * page, pool_->Fetch(id));
    for (auto& [slot, record] : page->LiveRecords()) {
      if (id == 0 && slot == 0) continue;  // Metadata record.
      BufferReader reader(record);
      NF2_ASSIGN_OR_RETURN(NfrTuple tuple, DecodeNfrTuple(&reader));
      if (tuple.degree() != schema_.degree()) {
        return Status::Corruption("stored tuple degree mismatch");
      }
      out.emplace_back(RecordId{id, slot}, std::move(tuple));
    }
  }
  return out;
}

Status Table::Rewrite(const NfrRelation& relation) {
  if (relation.schema() != schema_) {
    return Status::InvalidArgument("relation schema mismatch on rewrite");
  }
  // Rebuild the file from scratch: metadata, then all tuples.
  std::string path = file_->path();
  pool_.reset();
  file_.reset();
  NF2_ASSIGN_OR_RETURN(file_, HeapFile::Create(env_, path));
  pool_ = std::make_unique<BufferPool>(file_.get(), 64, pool_metrics_);
  append_cursor_ = 0;
  file_id_ = NewTableFileId();  // The rebuilt file is a new identity.
  NF2_RETURN_IF_ERROR(WriteMetadata());
  for (const NfrTuple& t : relation.tuples()) {
    NF2_ASSIGN_OR_RETURN(RecordId rid, Append(t));
    (void)rid;
  }
  return Flush();
}

Result<size_t> Table::Vacuum() {
  NF2_ASSIGN_OR_RETURN(NfrRelation live, ReadAll());
  NF2_RETURN_IF_ERROR(Rewrite(live));
  return live.size();
}

Status Table::Flush() { return pool_->FlushAll(); }

Status WriteTableAtomic(Env* env, const std::string& path,
                        const Schema& schema, const Permutation& nest_order,
                        const NfrRelation& relation,
                        BufferPoolMetrics pool_metrics) {
  const std::string tmp = path + ".tmp";
  {
    NF2_ASSIGN_OR_RETURN(
        std::unique_ptr<Table> table,
        Table::Create(env, tmp, schema, nest_order, /*pool_pages=*/64,
                      pool_metrics));
    for (const NfrTuple& t : relation.tuples()) {
      NF2_RETURN_IF_ERROR(table->Append(t).status());
    }
    // FlushAll writes back every dirty page and fdatasyncs, so the temp
    // file is complete on stable storage before the rename publishes it.
    NF2_RETURN_IF_ERROR(table->Flush());
  }
  NF2_RETURN_IF_ERROR(env->RenameFile(tmp, path));
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  return env->SyncDir(dir);
}

}  // namespace nf2
