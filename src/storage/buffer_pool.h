#ifndef NF2_STORAGE_BUFFER_POOL_H_
#define NF2_STORAGE_BUFFER_POOL_H_

#include <list>
#include <memory>
#include <unordered_map>

#include "obs/metrics.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "util/result.h"

namespace nf2 {

/// An LRU page cache in front of one HeapFile. Fetch() returns a
/// pointer that stays valid until the next Fetch/Allocate (frames live
/// in a stable list); dirty pages are written back on eviction and on
/// FlushAll.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    uint64_t writeback_bytes = 0;
  };

  /// `capacity` is the maximum number of cached pages (>= 1).
  /// `metrics` handles (any of which may be null) receive the same
  /// hit/miss/eviction/writeback events as the local Stats — the local
  /// struct stays per-pool, the registry counters aggregate across all
  /// pools of a database.
  BufferPool(HeapFile* file, size_t capacity,
             BufferPoolMetrics metrics = {});

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the cached page, loading (and possibly evicting) as
  /// needed. Mark it dirty through MarkDirty after mutating.
  Result<Page*> Fetch(PageId id);

  /// Allocates a new page in the file and returns it cached (dirty).
  Result<std::pair<PageId, Page*>> Allocate();

  /// Marks a cached page dirty; fatal when `id` is not resident.
  void MarkDirty(PageId id);

  /// Writes back every dirty page (in ascending PageId order, so the
  /// write stream is sequential) and syncs the file.
  Status FlushAll();

  const Stats& stats() const { return stats_; }
  size_t resident_pages() const { return frames_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  struct Frame {
    PageId id;
    Page page;
    bool dirty = false;
  };

  /// Evicts the least-recently-used frame (writes back if dirty).
  Status EvictOne();

  HeapFile* file_;
  size_t capacity_;
  std::list<Frame> frames_;  // Front = most recently used.
  std::unordered_map<PageId, std::list<Frame>::iterator> index_;
  Stats stats_;
  BufferPoolMetrics metrics_;
};

}  // namespace nf2

#endif  // NF2_STORAGE_BUFFER_POOL_H_
