#include "storage/buffer_pool.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

namespace {
void Bump(Counter* counter) {
  if (counter != nullptr) counter->Increment();
}
}  // namespace

BufferPool::BufferPool(HeapFile* file, size_t capacity,
                       BufferPoolMetrics metrics)
    : file_(file), capacity_(capacity), metrics_(metrics) {
  NF2_CHECK(file_ != nullptr);
  NF2_CHECK(capacity_ >= 1) << "buffer pool needs at least one frame";
}

Result<Page*> BufferPool::Fetch(PageId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.hits;
    Bump(metrics_.hits);
    frames_.splice(frames_.begin(), frames_, it->second);
    return &frames_.front().page;
  }
  ++stats_.misses;
  Bump(metrics_.misses);
  if (frames_.size() >= capacity_) {
    NF2_RETURN_IF_ERROR(EvictOne());
  }
  frames_.emplace_front();
  Frame& frame = frames_.front();
  frame.id = id;
  Status read = file_->ReadPage(id, &frame.page);
  if (!read.ok()) {
    frames_.pop_front();
    return read;
  }
  index_[id] = frames_.begin();
  return &frame.page;
}

Result<std::pair<PageId, Page*>> BufferPool::Allocate() {
  NF2_ASSIGN_OR_RETURN(PageId id, file_->AllocatePage());
  if (frames_.size() >= capacity_) {
    NF2_RETURN_IF_ERROR(EvictOne());
  }
  frames_.emplace_front();
  Frame& frame = frames_.front();
  frame.id = id;
  frame.page.Format();
  frame.dirty = true;
  index_[id] = frames_.begin();
  return std::make_pair(id, &frame.page);
}

void BufferPool::MarkDirty(PageId id) {
  auto it = index_.find(id);
  NF2_CHECK(it != index_.end()) << "MarkDirty on non-resident page " << id;
  it->second->dirty = true;
}

Status BufferPool::EvictOne() {
  NF2_CHECK(!frames_.empty());
  Frame& victim = frames_.back();
  if (victim.dirty) {
    NF2_RETURN_IF_ERROR(file_->WritePage(victim.id, victim.page));
    ++stats_.writebacks;
    stats_.writeback_bytes += kPageSize;
    Bump(metrics_.writebacks);
  }
  ++stats_.evictions;
  Bump(metrics_.evictions);
  index_.erase(victim.id);
  frames_.pop_back();
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::vector<Frame*> dirty;
  for (Frame& frame : frames_) {
    if (frame.dirty) dirty.push_back(&frame);
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const Frame* a, const Frame* b) { return a->id < b->id; });
  for (Frame* frame : dirty) {
    NF2_RETURN_IF_ERROR(file_->WritePage(frame->id, frame->page));
    frame->dirty = false;
    ++stats_.writebacks;
    stats_.writeback_bytes += kPageSize;
    Bump(metrics_.writebacks);
  }
  return file_->Sync();
}

}  // namespace nf2
