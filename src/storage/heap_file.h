#ifndef NF2_STORAGE_HEAP_FILE_H_
#define NF2_STORAGE_HEAP_FILE_H_

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/result.h"

namespace nf2 {

/// Identifies a record inside a heap file.
struct RecordId {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPageId; }
  bool operator==(const RecordId&) const = default;
  std::string ToString() const;
};

/// A page-structured file of variable-length records. Raw I/O only —
/// callers go through BufferPool for caching.
///
/// Not thread-safe; nf2db is a single-threaded embedded engine like the
/// systems of its era.
class HeapFile {
 public:
  HeapFile() = default;
  ~HeapFile();

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Creates a new empty file (truncates an existing one).
  static Result<std::unique_ptr<HeapFile>> Create(const std::string& path);

  /// Opens an existing file; errors if missing or not page-aligned.
  static Result<std::unique_ptr<HeapFile>> Open(const std::string& path);

  const std::string& path() const { return path_; }
  PageId page_count() const { return page_count_; }

  /// Reads page `id` into `*page`.
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at `id` (must be < page_count()).
  Status WritePage(PageId id, const Page& page);

  /// Appends a freshly formatted page; returns its id.
  Result<PageId> AllocatePage();

  /// Flushes the underlying stream.
  Status Sync();

 private:
  std::string path_;
  std::fstream file_;
  PageId page_count_ = 0;
};

}  // namespace nf2

#endif  // NF2_STORAGE_HEAP_FILE_H_
