#ifndef NF2_STORAGE_HEAP_FILE_H_
#define NF2_STORAGE_HEAP_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"
#include "storage/page.h"
#include "util/result.h"

namespace nf2 {

/// Identifies a record inside a heap file.
struct RecordId {
  PageId page = kInvalidPageId;
  uint16_t slot = 0;

  bool valid() const { return page != kInvalidPageId; }
  bool operator==(const RecordId&) const = default;
  std::string ToString() const;
};

/// A page-structured file of variable-length records. Raw I/O only —
/// callers go through BufferPool for caching. All I/O flows through the
/// owning Env, so fault-injection tests can cut the write stream at any
/// syscall.
///
/// Not thread-safe; nf2db is a single-threaded embedded engine like the
/// systems of its era.
class HeapFile {
 public:
  HeapFile() = default;
  ~HeapFile();

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Creates a new empty file (truncates an existing one).
  static Result<std::unique_ptr<HeapFile>> Create(Env* env,
                                                  const std::string& path);
  static Result<std::unique_ptr<HeapFile>> Create(const std::string& path) {
    return Create(Env::Default(), path);
  }

  /// Opens an existing file; errors if missing or not page-aligned.
  /// With `tolerate_torn_tail`, a trailing partial page (a crash mid
  /// shadow-page append) is floored away instead of rejected: the torn
  /// region is never referenced by any manifest and is overwritten by
  /// the next extension.
  static Result<std::unique_ptr<HeapFile>> Open(Env* env,
                                                const std::string& path,
                                                bool tolerate_torn_tail = false);
  static Result<std::unique_ptr<HeapFile>> Open(const std::string& path) {
    return Open(Env::Default(), path);
  }

  const std::string& path() const { return path_; }
  PageId page_count() const { return page_count_; }

  /// Reads page `id` into `*page`.
  Status ReadPage(PageId id, Page* page);

  /// Writes `page` at `id` (must be < page_count()).
  Status WritePage(PageId id, const Page& page);

  /// Writes `page` at `id`, extending the file by exactly one page when
  /// `id == page_count()` — the shadow-page writer's append path, which
  /// places a full image rather than a fresh empty page.
  Status WritePageAt(PageId id, const Page& page);

  /// Appends a freshly formatted page; returns its id.
  Result<PageId> AllocatePage();

  /// fdatasyncs the file: every written page is on stable storage when
  /// this returns OK.
  Status Sync();

 private:
  Env* env_ = nullptr;
  std::string path_;
  std::unique_ptr<RandomRWFile> file_;
  PageId page_count_ = 0;
};

}  // namespace nf2

#endif  // NF2_STORAGE_HEAP_FILE_H_
