#include "storage/heap_file.h"

#include <filesystem>

#include "util/string_util.h"

namespace nf2 {

std::string RecordId::ToString() const {
  return StrCat("(page=", page, ", slot=", slot, ")");
}

HeapFile::~HeapFile() {
  if (file_.is_open()) {
    file_.flush();
    file_.close();
  }
}

Result<std::unique_ptr<HeapFile>> HeapFile::Create(const std::string& path) {
  auto hf = std::make_unique<HeapFile>();
  hf->path_ = path;
  hf->file_.open(path, std::ios::binary | std::ios::in | std::ios::out |
                           std::ios::trunc);
  if (!hf->file_.is_open()) {
    return Status::IOError(StrCat("cannot create heap file ", path));
  }
  hf->page_count_ = 0;
  return hf;
}

Result<std::unique_ptr<HeapFile>> HeapFile::Open(const std::string& path) {
  std::error_code ec;
  uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    return Status::NotFound(StrCat("heap file ", path, " not found"));
  }
  if (size % kPageSize != 0) {
    return Status::Corruption(
        StrCat("heap file ", path, " size ", size,
               " is not a multiple of the page size"));
  }
  auto hf = std::make_unique<HeapFile>();
  hf->path_ = path;
  hf->file_.open(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!hf->file_.is_open()) {
    return Status::IOError(StrCat("cannot open heap file ", path));
  }
  hf->page_count_ = static_cast<PageId>(size / kPageSize);
  return hf;
}

Status HeapFile::ReadPage(PageId id, Page* page) {
  if (id >= page_count_) {
    return Status::OutOfRange(StrCat("page ", id, " past end"));
  }
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(id) * kPageSize);
  file_.read(page->mutable_data(), kPageSize);
  if (!file_) {
    return Status::IOError(StrCat("short read of page ", id));
  }
  return Status::OK();
}

Status HeapFile::WritePage(PageId id, const Page& page) {
  if (id >= page_count_) {
    return Status::OutOfRange(StrCat("page ", id, " past end"));
  }
  file_.clear();
  file_.seekp(static_cast<std::streamoff>(id) * kPageSize);
  file_.write(page.data(), kPageSize);
  if (!file_) {
    return Status::IOError(StrCat("short write of page ", id));
  }
  return Status::OK();
}

Result<PageId> HeapFile::AllocatePage() {
  Page fresh;
  PageId id = page_count_;
  file_.clear();
  file_.seekp(static_cast<std::streamoff>(id) * kPageSize);
  file_.write(fresh.data(), kPageSize);
  if (!file_) {
    return Status::IOError("failed to extend heap file");
  }
  ++page_count_;
  return id;
}

Status HeapFile::Sync() {
  file_.flush();
  if (!file_) {
    return Status::IOError("flush failed");
  }
  return Status::OK();
}

}  // namespace nf2
