#include "storage/heap_file.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

std::string RecordId::ToString() const {
  return StrCat("(page=", page, ", slot=", slot, ")");
}

HeapFile::~HeapFile() {
  if (file_ != nullptr) {
    Status s = file_->Close();
    if (!s.ok()) {
      NF2_LOG(Warning) << "closing heap file " << path_ << " failed: " << s;
    }
  }
}

Result<std::unique_ptr<HeapFile>> HeapFile::Create(Env* env,
                                                   const std::string& path) {
  auto hf = std::make_unique<HeapFile>();
  hf->env_ = env;
  hf->path_ = path;
  NF2_ASSIGN_OR_RETURN(hf->file_,
                       env->NewRandomRWFile(path, /*truncate=*/true));
  hf->page_count_ = 0;
  return hf;
}

Result<std::unique_ptr<HeapFile>> HeapFile::Open(Env* env,
                                                 const std::string& path,
                                                 bool tolerate_torn_tail) {
  if (!env->FileExists(path)) {
    return Status::NotFound(StrCat("heap file ", path, " not found"));
  }
  NF2_ASSIGN_OR_RETURN(uint64_t size, env->FileSize(path));
  if (size % kPageSize != 0 && !tolerate_torn_tail) {
    return Status::Corruption(
        StrCat("heap file ", path, " size ", size,
               " is not a multiple of the page size"));
  }
  auto hf = std::make_unique<HeapFile>();
  hf->env_ = env;
  hf->path_ = path;
  NF2_ASSIGN_OR_RETURN(hf->file_,
                       env->NewRandomRWFile(path, /*truncate=*/false));
  hf->page_count_ = static_cast<PageId>(size / kPageSize);
  return hf;
}

Status HeapFile::ReadPage(PageId id, Page* page) {
  if (id >= page_count_) {
    return Status::OutOfRange(StrCat("page ", id, " past end"));
  }
  return file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize,
                     page->mutable_data());
}

Status HeapFile::WritePage(PageId id, const Page& page) {
  if (id >= page_count_) {
    return Status::OutOfRange(StrCat("page ", id, " past end"));
  }
  return file_->Write(static_cast<uint64_t>(id) * kPageSize,
                      std::string_view(page.data(), kPageSize));
}

Status HeapFile::WritePageAt(PageId id, const Page& page) {
  if (id > page_count_) {
    return Status::OutOfRange(StrCat("page ", id, " past end"));
  }
  NF2_RETURN_IF_ERROR(
      file_->Write(static_cast<uint64_t>(id) * kPageSize,
                   std::string_view(page.data(), kPageSize)));
  if (id == page_count_) ++page_count_;
  return Status::OK();
}

Result<PageId> HeapFile::AllocatePage() {
  Page fresh;
  PageId id = page_count_;
  NF2_RETURN_IF_ERROR(
      file_->Write(static_cast<uint64_t>(id) * kPageSize,
                   std::string_view(fresh.data(), kPageSize)));
  ++page_count_;
  return id;
}

Status HeapFile::Sync() { return file_->Sync(); }

}  // namespace nf2
