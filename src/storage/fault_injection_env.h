#ifndef NF2_STORAGE_FAULT_INJECTION_ENV_H_
#define NF2_STORAGE_FAULT_INJECTION_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"

namespace nf2 {

/// An Env that simulates power loss at an exact, reproducible point in
/// the write stream.
///
/// Every mutating operation (append, positional write, sync, rename,
/// truncate, remove, create, directory sync) increments a counter; when
/// the counter reaches the armed trigger the environment "kills" the
/// write stream: the triggering operation takes partial effect (a
/// seeded prefix — modeling a torn sector write or a sync that pushed
/// only part of the dirty range) and every later mutation fails with
/// IOError, exactly as if the process had lost power mid-syscall.
///
/// Writes pass through to the base Env (so reads observe them, like an
/// OS page cache), while the environment separately tracks the content
/// each file had at its last successful Sync. After the kill,
/// DropUnsyncedState() rolls every file back to that durable content —
/// the state a real machine would reboot with. Reopening the database
/// against the base Env then exercises recovery against precisely the
/// bytes that survived.
///
/// Determinism: the same (seed, trigger) pair always tears the same
/// operation at the same byte offset.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base, uint64_t seed);

  /// Arms the kill switch: the `trigger`-th mutating operation (1-based)
  /// fails with partial effect; everything after fails cleanly. Resets
  /// the operation counter, kill flag, and durable-state tracking.
  void Arm(uint64_t trigger);

  /// Disarms without clearing tracking (operations keep counting).
  void Disarm();

  /// Mutating operations observed since the last Arm.
  uint64_t op_count() const { return op_count_; }

  /// True once the trigger fired.
  bool killed() const { return killed_; }

  /// Simulates the reboot after power loss: every file written during
  /// this run is rolled back to its last-synced content. Call after the
  /// database handle is destroyed and before reopening.
  Status DropUnsyncedState();

  // Env interface -------------------------------------------------------
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::unique_ptr<RandomRWFile>> NewRandomRWFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFileToString(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDirs(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomRWFile;

  /// What the next mutating operation is allowed to do.
  enum class OpFate {
    kProceed,      // Not at the trigger: full effect.
    kFailClean,    // At/past the trigger: no effect, IOError.
    kFailPartial,  // The trigger itself: partial effect, then IOError.
  };
  OpFate NextOp();

  /// Deterministic in [0, 1]: how much of the triggering operation's
  /// effect survives.
  double PartialFraction() const;

  /// Records the current on-disk content of `path` as durable.
  void MarkDurable(const std::string& path);

  /// Marks a seeded mixture of current and last-durable content as
  /// durable (a partially-effective sync).
  void MarkPartiallyDurable(const std::string& path);

  Env* base_;
  uint64_t seed_;
  uint64_t trigger_ = UINT64_MAX;
  uint64_t op_count_ = 0;
  bool killed_ = false;
  /// Path -> content at last successful sync (files touched this run).
  std::map<std::string, std::string> durable_;
};

}  // namespace nf2

#endif  // NF2_STORAGE_FAULT_INJECTION_ENV_H_
