#ifndef NF2_STORAGE_TABLE_H_
#define NF2_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/nest.h"
#include "core/relation.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "util/result.h"

namespace nf2 {

/// The metadata record every table file carries in page 0, slot 0.
/// `file_id` is a unique identity stamp minted whenever the file is
/// built from scratch (Create / Rewrite); the checkpoint manifest
/// records it so recovery can tell a shadow-paged file from one that
/// was wholesale-replaced after the manifest was written.
struct TableMeta {
  Schema schema;
  Permutation nest_order;
  uint64_t file_id = 0;  // 0 = pre-file_id file (legacy, read flat).
};

std::string EncodeTableMeta(const TableMeta& meta);
Result<TableMeta> DecodeTableMeta(std::string_view bytes);

/// A fresh, process-unique table file identity (never 0).
uint64_t NewTableFileId();

/// Deterministically packs `relation` into logical page images exactly
/// as Table::Create + Append would lay them out: the metadata record in
/// page 0 slot 0, then tuple records first-fit in tuple order. The
/// incremental checkpoint diffs these images against the manifest's
/// per-page CRCs to find the pages worth writing.
Result<std::vector<Page>> SerializeTablePages(const Schema& schema,
                                              const Permutation& nest_order,
                                              uint64_t file_id,
                                              const NfrRelation& relation);

/// A persistent NFR: one heap file holding a metadata record (schema +
/// nest order) in page 0, slot 0, and one record per NFR tuple after
/// it. This is the paper's "realization view": the nested relation IS
/// the physical representation, with correspondingly fewer records than
/// the 1NF expansion.
class Table {
 public:
  /// Creates an empty table file. `pool_metrics` handles (optional)
  /// receive this table's buffer-pool events in addition to the local
  /// pool_stats().
  static Result<std::unique_ptr<Table>> Create(
      Env* env, const std::string& path, Schema schema,
      Permutation nest_order, size_t pool_pages = 64,
      BufferPoolMetrics pool_metrics = {});
  static Result<std::unique_ptr<Table>> Create(const std::string& path,
                                               Schema schema,
                                               Permutation nest_order,
                                               size_t pool_pages = 64) {
    return Create(Env::Default(), path, std::move(schema),
                  std::move(nest_order), pool_pages);
  }

  /// Opens an existing table file and reads its metadata.
  static Result<std::unique_ptr<Table>> Open(
      Env* env, const std::string& path, size_t pool_pages = 64,
      BufferPoolMetrics pool_metrics = {});
  static Result<std::unique_ptr<Table>> Open(const std::string& path,
                                             size_t pool_pages = 64) {
    return Open(Env::Default(), path, pool_pages);
  }

  const Schema& schema() const { return schema_; }
  const Permutation& nest_order() const { return nest_order_; }
  const std::string& path() const { return file_->path(); }
  uint64_t file_id() const { return file_id_; }

  /// Appends one NFR tuple; returns where it landed.
  Result<RecordId> Append(const NfrTuple& tuple);

  /// Tombstones the record at `rid`.
  Status Erase(RecordId rid);

  /// Scans all live tuples into an NfrRelation.
  Result<NfrRelation> ReadAll();

  /// Scans all live tuples with their record ids.
  Result<std::vector<std::pair<RecordId, NfrTuple>>> ScanWithIds();

  /// Replaces the table contents with `relation` (used by checkpoints).
  Status Rewrite(const NfrRelation& relation);

  /// Compacts the file in place: rewrites live tuples, dropping
  /// tombstone space and empty pages. Record ids are NOT stable across
  /// a vacuum. Returns the number of live tuples kept.
  Result<size_t> Vacuum();

  /// Flushes dirty pages and fdatasyncs the file.
  Status Flush();

  const BufferPool::Stats& pool_stats() const { return pool_->stats(); }

 private:
  Table() = default;

  Status WriteMetadata();

  Env* env_ = nullptr;
  Schema schema_;
  Permutation nest_order_;
  uint64_t file_id_ = 0;
  std::unique_ptr<HeapFile> file_;
  std::unique_ptr<BufferPool> pool_;
  BufferPoolMetrics pool_metrics_;
  PageId append_cursor_ = 0;  // Page most likely to have free space.
};

/// Crash-atomic whole-table replacement: builds the table at a sibling
/// temp path, flushes and syncs it, renames it over `path`, and syncs
/// the parent directory. A crash at any point leaves either the old
/// table file or the new one, never a torn hybrid — the building block
/// of the checkpoint protocol.
Status WriteTableAtomic(Env* env, const std::string& path,
                        const Schema& schema, const Permutation& nest_order,
                        const NfrRelation& relation,
                        BufferPoolMetrics pool_metrics = {});

}  // namespace nf2

#endif  // NF2_STORAGE_TABLE_H_
