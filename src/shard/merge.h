#ifndef NF2_SHARD_MERGE_H_
#define NF2_SHARD_MERGE_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "engine/snapshot.h"
#include "nfrql/ast.h"
#include "util/result.h"

namespace nf2 {
namespace shard {

/// One shard's bound read context for a scattered statement: the live
/// engine plus, when non-null, the pinned snapshot the read executes
/// against. A null snapshot means a live read — only safe while the
/// router session owns the fan-out transaction, which bounces every
/// other writer on every shard (the same read-your-own-writes argument
/// the single-engine Session makes).
struct ShardReadContext {
  Database* db = nullptr;
  std::shared_ptr<const DatabaseSnapshot> snapshot;
};

/// Deep copy of a WHERE tree (ConditionNode owns its children through
/// unique_ptr, so statements with conditions are not copyable as-is).
std::unique_ptr<ConditionNode> CloneCondition(const ConditionNode* node);

/// Field-by-field copy of a SELECT, cloning the WHERE tree — the merge
/// layer rewrites per-shard variants (stripped LIMIT, widened
/// projection) without mutating the caller's statement.
SelectStatement CloneSelect(const SelectStatement& stmt);

/// Executes `stmt` scattered across `shards` (in shard order, each
/// through the regular query planner) and merges the per-shard replies
/// into the text the single-engine executor would produce for the
/// union of the shards' data (DESIGN.md §13):
///   - plain SELECTs concatenate (projection duplicates deduplicated
///     keep-first in shard order) and re-apply LIMIT;
///   - ORDER BY re-merges sorted per-shard runs with a k-way heap,
///     ties broken by shard index;
///   - factorized aggregates combine per column: COUNT(*) and SUM add,
///     MIN/MAX take the extreme, COUNT(attr) — a DISTINCT count — adds
///     only when `attr` is the partition attribute (value sets are then
///     hash-disjoint across shards) and otherwise re-counts through a
///     per-shard companion projection; GROUP BY merges per group key.
/// `partition_attr` names the relation's partition attribute;
/// `merged_rows`, when non-null, is incremented by the number of
/// per-shard rows fed into the merge (router observability).
Result<std::string> ScatterSelect(const SelectStatement& stmt,
                                  const std::vector<ShardReadContext>& shards,
                                  const std::string& partition_attr,
                                  uint64_t* merged_rows);

}  // namespace shard
}  // namespace nf2

#endif  // NF2_SHARD_MERGE_H_
