#include "shard/shard_map.h"

#include <filesystem>

#include "util/string_util.h"

namespace nf2 {
namespace shard {

namespace {
constexpr char kShardMarkerFile[] = "SHARDS";
}  // namespace

size_t PartitionAttr(const RelationInfo& info) {
  FdSet fds = info.fd_set();
  for (size_t p = 0; p < info.schema.degree(); ++p) {
    if (fds.IsSuperkey(AttrSet{p})) return p;
  }
  return 0;
}

uint64_t StableValueHash(const Value& v) {
  std::string text = v.ToString();
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

size_t ShardOf(const Value& v, size_t shard_count) {
  if (shard_count <= 1) return 0;
  return static_cast<size_t>(StableValueHash(v) % shard_count);
}

std::string ShardDir(const std::string& base_dir, size_t index) {
  return (std::filesystem::path(base_dir) / StrCat("shard-", index))
      .string();
}

Result<size_t> EnsureShardMarker(Env* env, const std::string& base_dir,
                                 size_t shard_count) {
  if (shard_count == 0) {
    return Status::InvalidArgument("shard count must be at least 1");
  }
  NF2_RETURN_IF_ERROR(env->CreateDirs(base_dir));
  const std::string path =
      (std::filesystem::path(base_dir) / kShardMarkerFile).string();
  if (env->FileExists(path)) {
    NF2_ASSIGN_OR_RETURN(std::string text, env->ReadFileToString(path));
    size_t pinned = 0;
    for (char c : Trim(text)) {
      if (c < '0' || c > '9') {
        return Status::Internal(
            StrCat("corrupt shard marker ", path, ": '", Trim(text), "'"));
      }
      pinned = pinned * 10 + static_cast<size_t>(c - '0');
    }
    if (pinned != shard_count) {
      return Status::FailedPrecondition(
          StrCat("database at ", base_dir, " was created with ", pinned,
                 " shard(s); reopening with ", shard_count,
                 " would mis-route every key"));
    }
    return pinned;
  }
  NF2_RETURN_IF_ERROR(
      env->WriteFileAtomic(path, StrCat(shard_count, "\n")));
  return shard_count;
}

}  // namespace shard
}  // namespace nf2
