#include "shard/router.h"

#include <charconv>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <utility>

#include "core/format.h"
#include "core/nest.h"
#include "engine/statistics.h"
#include "exec/planner.h"
#include "nfrql/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace shard {

namespace {

/// The count out of "<verb> N tuple(s) ..." mutation replies — the
/// router sums these across shards for scattered mutations.
uint64_t LeadingCount(const std::string& text, const std::string& verb) {
  const std::string prefix = StrCat(verb, " ");
  if (!text.starts_with(prefix)) return 0;
  uint64_t n = 0;
  const char* begin = text.data() + prefix.size();
  const char* end = text.data() + text.size();
  std::from_chars(begin, end, n);
  return n;
}

/// Injects a shard="<i>" label into every sample line of a Prometheus
/// text exposition (comment lines pass through).
std::string AddShardLabel(const std::string& text, size_t index) {
  const std::string label = StrCat("shard=\"", index, "\"");
  std::string out;
  out.reserve(text.size());
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) nl = text.size();
    std::string line = text.substr(start, nl - start);
    if (!line.empty() && line[0] != '#') {
      size_t space = line.find(' ');
      size_t brace = line.find('{');
      if (space != std::string::npos) {
        if (brace != std::string::npos && brace < space) {
          line.insert(brace + 1, StrCat(label, ","));
        } else {
          line.insert(space, StrCat("{", label, "}"));
        }
      }
    }
    out += line;
    if (nl == text.size()) break;
    out += '\n';
    start = nl + 1;
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<ShardRouter>> ShardRouter::Open(const std::string& dir,
                                                       Options options,
                                                       Env* env) {
  NF2_RETURN_IF_ERROR(
      EnsureShardMarker(env, dir, options.shards).status());
  auto router = std::unique_ptr<ShardRouter>(new ShardRouter());
  router->dir_ = dir;
  router->env_ = env;

  // Shards recover independently, so open them in parallel — recovery
  // (WAL replay, table reads) dominates cold start.
  std::vector<Result<std::unique_ptr<Database>>> opened;
  opened.reserve(options.shards);
  for (size_t i = 0; i < options.shards; ++i) {
    opened.emplace_back(Status::Internal("shard open did not run"));
  }
  if (options.parallel_open) {
    std::vector<std::thread> threads;
    threads.reserve(options.shards);
    for (size_t i = 0; i < options.shards; ++i) {
      threads.emplace_back([&, i]() {
        opened[i] = Database::Open(ShardDir(dir, i), options.db, env);
      });
    }
    for (std::thread& t : threads) t.join();
  } else {
    for (size_t i = 0; i < options.shards; ++i) {
      opened[i] = Database::Open(ShardDir(dir, i), options.db, env);
    }
  }
  for (size_t i = 0; i < options.shards; ++i) {
    if (!opened[i].ok()) {
      return Status(opened[i].status().code(),
                    StrCat("shard ", i, ": ", opened[i].status().message()));
    }
    router->dbs_.push_back(*std::move(opened[i]));
  }

  // Heal a crashed DDL fan-out: a relation missing on any shard is
  // dropped from the shards that have it. This completes a crashed DROP
  // and rolls back a crashed CREATE — either way the catalogs converge,
  // which the routing layer depends on.
  std::map<std::string, size_t> presence;
  for (const auto& db : router->dbs_) {
    for (const std::string& name : db->ListRelations()) ++presence[name];
  }
  for (const auto& [name, count] : presence) {
    if (count == router->dbs_.size()) continue;
    NF2_LOG(Warning) << "relation '" << name << "' exists on " << count
                     << " of " << router->dbs_.size()
                     << " shards (interrupted DDL fan-out); dropping the "
                        "stragglers";
    for (const auto& db : router->dbs_) {
      if (!db->Info(name).ok()) continue;
      Status dropped = db->DropRelation(name);
      if (!dropped.ok()) {
        return Status(dropped.code(),
                      StrCat("healing interrupted DDL for '", name,
                             "': ", dropped.message()));
      }
    }
  }

  for (const auto& db : router->dbs_) {
    router->managers_.push_back(std::make_unique<server::SessionManager>(
        db.get(), options.statement_cache_capacity));
  }

  MetricsRegistry* reg = &router->metrics_;
  reg->GetGauge("nf2_router_shards", "Number of engine shards")
      ->Set(static_cast<int64_t>(router->dbs_.size()));
  router->metric_point_ = reg->GetCounter(
      "nf2_router_point_total", "Statements routed to exactly one shard");
  router->metric_scatter_ = reg->GetCounter(
      "nf2_router_scatter_total", "Statements scattered to all shards");
  router->metric_merge_rows_ =
      reg->GetCounter("nf2_router_merge_rows_total",
                      "Per-shard rows fed into scatter-gather merges");
  router->metric_ddl_fanout_ = reg->GetCounter(
      "nf2_router_ddl_fanout_total", "DDL statements fanned out");
  router->metric_ddl_rollbacks_ =
      reg->GetCounter("nf2_router_ddl_rollbacks_total",
                      "DDL fan-outs rolled back after a shard failure");
  return router;
}

std::unique_ptr<server::ClientSession> ShardRouter::NewClientSession() {
  return std::make_unique<RouterSession>(
      next_session_id_.fetch_add(1, std::memory_order_relaxed), this);
}

void ShardRouter::ShutdownCheckpoint() {
  for (const auto& manager : managers_) manager->ShutdownCheckpoint();
}

RouterSession::RouterSession(uint64_t id, ShardRouter* router)
    : id_(id), router_(router) {
  sessions_.reserve(router_->managers_.size());
  for (const auto& manager : router_->managers_) {
    sessions_.push_back(manager->NewSession());
  }
}

RouterSession::~RouterSession() { Abort(); }

void RouterSession::Abort() {
  for (const auto& session : sessions_) session->Abort();
  own_txn_ = false;
}

Result<std::string> RouterSession::Execute(std::string_view statement) {
  const std::string trimmed = Trim(statement);
  // Meta commands always go through the router so `\metrics` includes
  // the router-level registry (scatter-gather counters, replication
  // lag on a follower) even with a single shard.
  if (!trimmed.empty() && trimmed[0] == '\\') return ExecuteMeta(trimmed);
  // One shard: forward verbatim (statement cache, batch snapshot
  // sharing — everything behaves exactly like the unsharded server).
  if (sessions_.size() == 1) return sessions_[0]->Execute(statement);
  NF2_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(trimmed));
  return Dispatch(stmt);
}

std::vector<Result<std::string>> RouterSession::ExecuteBatch(
    const std::vector<std::string>& statements) {
  if (sessions_.size() == 1) return sessions_[0]->ExecuteBatch(statements);
  // Statement-at-a-time: each statement classifies and routes on its
  // own, and a failing statement reports its error in place (the kBatch
  // contract) without disturbing the other statements' replies.
  std::vector<Result<std::string>> results;
  results.reserve(statements.size());
  for (const std::string& statement : statements) {
    results.push_back(Execute(statement));
  }
  return results;
}

std::optional<RouterSession::PartitionInfo> RouterSession::Partition(
    const std::string& name) const {
  std::shared_ptr<const DatabaseSnapshot> snap =
      router_->dbs_[0]->PinSnapshot();
  std::shared_ptr<const DatabaseSnapshot::RelationVersion> version =
      snap->FindVersion(name);
  if (version == nullptr) return std::nullopt;
  PartitionInfo out;
  out.attr = PartitionAttr(version->info);
  out.attr_name = version->info.schema.attribute(out.attr).name;
  out.degree = version->info.schema.degree();
  return out;
}

std::vector<ShardReadContext> RouterSession::MakeReadContexts() const {
  std::vector<ShardReadContext> out;
  out.reserve(router_->dbs_.size());
  for (const auto& db : router_->dbs_) {
    ShardReadContext ctx;
    ctx.db = db.get();
    if (!own_txn_) ctx.snapshot = db->PinSnapshot();
    out.push_back(std::move(ctx));
  }
  return out;
}

Result<std::string> RouterSession::Dispatch(const Statement& stmt) {
  return std::visit(
      [&](const auto& s) -> Result<std::string> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, CreateStatement>) {
          return RouteCreate(s, stmt);
        } else if constexpr (std::is_same_v<T, DropStatement>) {
          return RouteDrop(s, stmt);
        } else if constexpr (std::is_same_v<T, InsertStatement>) {
          return RouteInsert(s, stmt);
        } else if constexpr (std::is_same_v<T, DeleteStatement>) {
          return RouteDelete(s, stmt);
        } else if constexpr (std::is_same_v<T, UpdateStatement>) {
          return RouteUpdate(s, stmt);
        } else if constexpr (std::is_same_v<T, SelectStatement>) {
          return RouteSelect(s, stmt);
        } else if constexpr (std::is_same_v<T, ShowStatement>) {
          return RouteShow(s);
        } else if constexpr (std::is_same_v<T, DescribeStatement>) {
          return RouteDescribe(s);
        } else if constexpr (std::is_same_v<T, NestStatement>) {
          return RouteNest(s);
        } else if constexpr (std::is_same_v<T, ListStatement>) {
          // Catalogs are identical across shards (DDL fan-out), so
          // shard 0 answers for everyone.
          return sessions_[0]->ExecuteParsed(stmt);
        } else if constexpr (std::is_same_v<T, StatsStatement>) {
          return RouteStats(s);
        } else if constexpr (std::is_same_v<T, TxnStatement>) {
          return RouteTxn(s, stmt);
        } else if constexpr (std::is_same_v<T, ExplainStatement>) {
          return RouteExplain(s, stmt);
        } else {
          return RouteCheckpoint(stmt);
        }
      },
      stmt);
}

Result<std::string> RouterSession::RouteInsert(const InsertStatement& s,
                                               const Statement& whole) {
  std::optional<PartitionInfo> part = Partition(s.name);
  if (!part.has_value()) {
    // Unknown relation (or a malformed row below): forward to shard 0
    // so the error text is exactly the single-engine one.
    return sessions_[0]->ExecuteParsed(whole);
  }
  std::vector<std::vector<std::vector<Value>>> buckets(sessions_.size());
  for (const std::vector<Value>& row : s.rows) {
    if (row.size() != part->degree) {
      return sessions_[0]->ExecuteParsed(whole);
    }
    buckets[ShardOf(row[part->attr], sessions_.size())].push_back(row);
  }
  router_->metric_point_->Increment();
  uint64_t total = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i].empty()) continue;
    InsertStatement sub;
    sub.name = s.name;
    sub.rows = std::move(buckets[i]);
    Statement sub_stmt = std::move(sub);
    // A failing row leaves earlier rows applied, exactly like the
    // single-engine executor's per-row loop.
    NF2_ASSIGN_OR_RETURN(std::string text,
                         sessions_[i]->ExecuteParsed(sub_stmt));
    total += LeadingCount(text, "inserted");
  }
  return StrCat("inserted ", total, " tuple(s) into ", s.name);
}

Result<std::string> RouterSession::ScatterMutation(
    const Statement& whole, const char* verb, const char* preposition,
    const std::string& name) {
  router_->metric_scatter_->Increment();
  uint64_t total = 0;
  for (const auto& session : sessions_) {
    NF2_ASSIGN_OR_RETURN(std::string text, session->ExecuteParsed(whole));
    total += LeadingCount(text, verb);
  }
  return StrCat(verb, " ", total, " tuple(s) ", preposition, " ", name);
}

Result<std::string> RouterSession::RouteDelete(const DeleteStatement& s,
                                               const Statement& whole) {
  std::optional<PartitionInfo> part = Partition(s.name);
  if (!part.has_value()) return sessions_[0]->ExecuteParsed(whole);
  if (!s.rows.empty()) {
    std::vector<std::vector<std::vector<Value>>> buckets(sessions_.size());
    for (const std::vector<Value>& row : s.rows) {
      if (row.size() != part->degree) {
        return sessions_[0]->ExecuteParsed(whole);
      }
      buckets[ShardOf(row[part->attr], sessions_.size())].push_back(row);
    }
    router_->metric_point_->Increment();
    uint64_t total = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i].empty()) continue;
      DeleteStatement sub;
      sub.name = s.name;
      sub.rows = std::move(buckets[i]);
      Statement sub_stmt = std::move(sub);
      NF2_ASSIGN_OR_RETURN(std::string text,
                           sessions_[i]->ExecuteParsed(sub_stmt));
      total += LeadingCount(text, "deleted");
    }
    return StrCat("deleted ", total, " tuple(s) from ", s.name);
  }
  if (s.where == nullptr) return sessions_[0]->ExecuteParsed(whole);
  std::optional<Value> eq = EqualityConjunct(s.where.get(), part->attr_name);
  if (eq.has_value()) {
    router_->metric_point_->Increment();
    return sessions_[ShardOf(*eq, sessions_.size())]->ExecuteParsed(whole);
  }
  return ScatterMutation(whole, "deleted", "from", s.name);
}

Result<std::string> RouterSession::RouteUpdate(const UpdateStatement& s,
                                               const Statement& whole) {
  std::optional<PartitionInfo> part = Partition(s.name);
  if (!part.has_value()) return sessions_[0]->ExecuteParsed(whole);
  for (const auto& [attr, literal] : s.sets) {
    if (attr == part->attr_name) {
      // The rewrite would move tuples to a different shard; a
      // cross-shard delete+insert is not atomic today.
      return Status::Unimplemented(
          StrCat("UPDATE of partition attribute '", attr,
                 "' is not supported with more than one shard"));
    }
  }
  if (s.where != nullptr) {
    std::optional<Value> eq =
        EqualityConjunct(s.where.get(), part->attr_name);
    if (eq.has_value()) {
      router_->metric_point_->Increment();
      return sessions_[ShardOf(*eq, sessions_.size())]->ExecuteParsed(whole);
    }
  }
  return ScatterMutation(whole, "updated", "in", s.name);
}

Result<std::string> RouterSession::RouteSelect(const SelectStatement& s,
                                               const Statement& whole) {
  if (!s.joins.empty()) {
    return Status::Unimplemented(
        "JOIN is not supported with more than one shard (relations "
        "partition on their own keys, so join rows are not co-located)");
  }
  std::optional<PartitionInfo> part = Partition(s.name);
  if (!part.has_value()) return sessions_[0]->ExecuteParsed(whole);
  std::optional<Value> eq = EqualityConjunct(s.where.get(), part->attr_name);
  if (eq.has_value()) {
    // Every matching row lives on the shard the pinned value hashes to
    // — aggregates included (empty elsewhere).
    router_->metric_point_->Increment();
    return sessions_[ShardOf(*eq, sessions_.size())]->ExecuteParsed(whole);
  }
  router_->metric_scatter_->Increment();
  uint64_t merged = 0;
  Result<std::string> res =
      ScatterSelect(s, MakeReadContexts(), part->attr_name, &merged);
  router_->metric_merge_rows_->Increment(merged);
  return res;
}

Result<std::string> RouterSession::RouteCreate(const CreateStatement& s,
                                               const Statement& whole) {
  router_->metric_ddl_fanout_->Increment();
  std::string reply;
  for (size_t i = 0; i < sessions_.size(); ++i) {
    Result<std::string> res = sessions_[i]->ExecuteParsed(whole);
    if (!res.ok()) {
      // All-or-nothing: undo the shards that already created it.
      router_->metric_ddl_rollbacks_->Increment();
      DropStatement drop;
      drop.name = s.name;
      Statement drop_stmt = std::move(drop);
      for (size_t j = 0; j < i; ++j) {
        Result<std::string> undone = sessions_[j]->ExecuteParsed(drop_stmt);
        if (!undone.ok()) {
          NF2_LOG(Warning)
              << "CREATE rollback of '" << s.name << "' failed on shard "
              << j << ": " << undone.status().ToString()
              << " (the next Open heals the straggler)";
        }
      }
      return res.status();
    }
    if (i == 0) reply = *std::move(res);
  }
  return reply;
}

Result<std::string> RouterSession::RouteDrop(const DropStatement& s,
                                             const Statement& whole) {
  (void)s;
  router_->metric_ddl_fanout_->Increment();
  // Attempt every shard even after a failure so the catalogs converge
  // (a relation half-dropped here is healed at the next Open anyway).
  Status first = Status::OK();
  std::string reply;
  for (size_t i = 0; i < sessions_.size(); ++i) {
    Result<std::string> res = sessions_[i]->ExecuteParsed(whole);
    if (!res.ok()) {
      if (first.ok()) first = res.status();
    } else if (i == 0) {
      reply = *std::move(res);
    }
  }
  if (!first.ok()) return first;
  return reply;
}

Result<std::string> RouterSession::RouteTxn(const TxnStatement& s,
                                            const Statement& whole) {
  if (s.kind == TxnStatement::Kind::kBegin) {
    for (size_t i = 0; i < sessions_.size(); ++i) {
      Result<std::string> res = sessions_[i]->ExecuteParsed(whole);
      if (!res.ok()) {
        // Release the shards that did start a transaction.
        TxnStatement rollback;
        rollback.kind = TxnStatement::Kind::kRollback;
        Statement rollback_stmt = rollback;
        for (size_t j = 0; j < i; ++j) {
          (void)sessions_[j]->ExecuteParsed(rollback_stmt);
        }
        return res.status();
      }
    }
    own_txn_ = true;
    return std::string("transaction started");
  }
  Status first = Status::OK();
  for (const auto& session : sessions_) {
    Result<std::string> res = session->ExecuteParsed(whole);
    if (!res.ok() && first.ok()) first = res.status();
  }
  own_txn_ = false;
  if (!first.ok()) {
    // A shard may still hold its transaction open; keep live reads so
    // this session continues to see its own writes there.
    for (const auto& db : router_->dbs_) {
      if (db->in_transaction()) own_txn_ = true;
    }
    return first;
  }
  return std::string(s.kind == TxnStatement::Kind::kCommit
                         ? "transaction committed"
                         : "transaction rolled back");
}

Result<std::string> RouterSession::RouteCheckpoint(const Statement& whole) {
  Status first = Status::OK();
  for (const auto& session : sessions_) {
    Result<std::string> res = session->ExecuteParsed(whole);
    if (!res.ok() && first.ok()) first = res.status();
  }
  if (!first.ok()) return first;
  return std::string("checkpoint complete");
}

Result<std::string> RouterSession::RouteExplain(const ExplainStatement& s,
                                                const Statement& whole) {
  NF2_CHECK(s.inner != nullptr);
  const Statement& inner = s.inner->stmt;
  if (const auto* sel = std::get_if<SelectStatement>(&inner)) {
    std::optional<PartitionInfo> part = Partition(sel->name);
    if (part.has_value() && sel->joins.empty()) {
      std::optional<Value> eq =
          EqualityConjunct(sel->where.get(), part->attr_name);
      if (eq.has_value()) {
        return sessions_[ShardOf(*eq, sessions_.size())]->ExecuteParsed(
            whole);
      }
    }
    if (s.profile) {
      return Status::Unimplemented(
          "PROFILE of a scattered statement is not supported; pin the "
          "partition attribute or run with --shards 1");
    }
    NF2_ASSIGN_OR_RETURN(std::string text,
                         sessions_[0]->ExecuteParsed(whole));
    return StrCat(text, "\nscatter: ", sessions_.size(),
                  " shard(s), merged at router");
  }
  if (s.profile) {
    // PROFILE executes its statement; running it on one shard would
    // apply a fan-out statement once instead of N times.
    return Status::Unimplemented(
        "PROFILE is only supported for point-routed SELECTs with more "
        "than one shard");
  }
  return sessions_[0]->ExecuteParsed(whole);
}

Result<std::string> RouterSession::Recompose(const std::string& name,
                                             RelationInfo* info,
                                             NfrRelation* relation) const {
  // Theorem 2 makes this well-defined: the union of the shards' R* has
  // exactly one canonical form under the shared nest order, so
  // re-nesting the concatenated expansions IS the global relation.
  std::vector<ShardReadContext> contexts = MakeReadContexts();
  bool have_info = false;
  std::vector<FlatTuple> rows;
  for (const ShardReadContext& ctx : contexts) {
    const NfrRelation* shard_rel = nullptr;
    std::shared_ptr<const DatabaseSnapshot::RelationVersion> version;
    if (ctx.snapshot != nullptr) {
      version = ctx.snapshot->FindVersion(name);
      if (version == nullptr) {
        return Status::NotFound(StrCat("relation '", name, "' not found"));
      }
      if (!have_info) *info = version->info;
      shard_rel = &version->relation->relation();
    } else {
      NF2_ASSIGN_OR_RETURN(const RelationInfo* live_info,
                           ctx.db->Info(name));
      if (!have_info) *info = *live_info;
      NF2_ASSIGN_OR_RETURN(shard_rel, ctx.db->Relation(name));
    }
    have_info = true;
    FlatRelation expanded = shard_rel->Expand();
    for (const FlatTuple& t : expanded.tuples()) rows.push_back(t);
  }
  FlatRelation flat(info->schema, std::move(rows));
  *relation = CanonicalForm(flat, info->nest_order);
  return std::string();
}

Result<std::string> RouterSession::RouteShow(const ShowStatement& s) {
  RelationInfo info;
  NfrRelation relation;
  NF2_RETURN_IF_ERROR(Recompose(s.name, &info, &relation).status());
  return RenderTable(relation, s.name);
}

Result<std::string> RouterSession::RouteDescribe(const DescribeStatement& s) {
  RelationInfo info;
  NfrRelation relation;
  NF2_RETURN_IF_ERROR(Recompose(s.name, &info, &relation).status());
  RelationStats stats = ComputeRelationStats(relation);
  std::vector<std::string> order_names;
  for (size_t p : info.nest_order) {
    order_names.push_back(info.schema.attribute(p).name);
  }
  std::string out = StrCat("relation  : ", info.name, "\n",
                           "schema    : ", info.schema.ToString(), "\n",
                           "nest order: ", Join(order_names, " then "),
                           "\n");
  if (!info.fds.empty()) {
    out += StrCat("FDs       : ", info.fd_set().ToString(info.schema), "\n");
  }
  if (!info.mvds.empty()) {
    out +=
        StrCat("MVDs      : ", info.mvd_set().ToString(info.schema), "\n");
  }
  out += StrCat("size      : ", stats.nfr_tuples, " NFR tuples, |R*|=",
                stats.flat_tuples, ", reduction x", stats.TupleReduction());
  return out;
}

Result<std::string> RouterSession::RouteNest(const NestStatement& s) {
  RelationInfo info;
  NfrRelation view;
  NF2_RETURN_IF_ERROR(Recompose(s.name, &info, &view).status());
  for (const std::string& attr : s.attributes) {
    NF2_ASSIGN_OR_RETURN(size_t idx, view.schema().RequireIndex(attr));
    view = s.unnest ? UnnestOn(view, idx) : NestOn(view, idx);
  }
  return RenderTable(view, StrCat(s.unnest ? "UNNEST " : "NEST ", s.name,
                                  " ON ", Join(s.attributes, ", ")));
}

Result<std::string> RouterSession::RouteStats(const StatsStatement& s) {
  RelationInfo info;
  NfrRelation relation;
  NF2_RETURN_IF_ERROR(Recompose(s.name, &info, &relation).status());
  RelationStats stats = ComputeRelationStats(relation);
  stats.name = s.name;
  // Maintenance counters and dictionary sizes are per shard; report
  // their sums (each shard ran its own §4 chains).
  std::vector<ShardReadContext> contexts = MakeReadContexts();
  for (const ShardReadContext& ctx : contexts) {
    Result<RelationStats> shard_stats = ctx.snapshot != nullptr
                                            ? ctx.snapshot->Stats(s.name)
                                            : ctx.db->Stats(s.name);
    if (!shard_stats.ok()) continue;
    stats.dict_values += shard_stats->dict_values;
    stats.update_stats.compositions += shard_stats->update_stats.compositions;
    stats.update_stats.decompositions +=
        shard_stats->update_stats.decompositions;
    stats.update_stats.recons_calls += shard_stats->update_stats.recons_calls;
    stats.update_stats.candidate_scans +=
        shard_stats->update_stats.candidate_scans;
    stats.update_stats.find_candidate_ns +=
        shard_stats->update_stats.find_candidate_ns;
    stats.update_stats.recons_ns += shard_stats->update_stats.recons_ns;
  }
  return stats.ToString();
}

Result<std::string> RouterSession::ExecuteMeta(const std::string& command) {
  const std::string lower = ToLower(command);
  if (lower == "\\shards") return RenderShards();
  if (lower == "\\metrics" || lower == "\\metrics prom") {
    return RenderMetrics(/*prometheus=*/lower.ends_with("prom"));
  }
  // Everything else (\sleep, unknown-command errors) behaves like the
  // single-engine session.
  return sessions_[0]->Execute(command);
}

std::string RouterSession::RenderShards() const {
  std::string out;
  for (size_t i = 0; i < router_->dbs_.size(); ++i) {
    Database* db = router_->dbs_[i].get();
    uint64_t wal_bytes = 0;
    Result<uint64_t> size = router_->env_->FileSize(db->wal_path());
    if (size.ok()) wal_bytes = *size;
    std::string age = "never";
    if (std::optional<std::chrono::steady_clock::time_point> t =
            db->last_checkpoint_time()) {
      age = StrCat(std::chrono::duration_cast<std::chrono::seconds>(
                       std::chrono::steady_clock::now() - *t)
                       .count(),
                   "s ago");
    }
    out += StrCat("shard-", i, ": ", db->PinSnapshot()->relation_count(),
                  " relation(s), wal ", wal_bytes,
                  " bytes, last checkpoint ", age, "\n");
  }
  out += StrCat(router_->dbs_.size(), " shard(s)");
  return out;
}

std::string RouterSession::RenderMetrics(bool prometheus) const {
  std::string out = prometheus ? router_->metrics_.ToPrometheusText()
                               : router_->metrics_.ToString();
  for (size_t i = 0; i < router_->dbs_.size(); ++i) {
    const std::string shard_text =
        router_->dbs_[i]->MetricsText(prometheus);
    if (prometheus) {
      out += AddShardLabel(shard_text, i);
    } else {
      out += StrCat("--- shard-", i, " ---\n", shard_text);
    }
  }
  return out;
}

}  // namespace shard
}  // namespace nf2
