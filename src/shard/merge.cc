#include "shard/merge.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <unordered_set>
#include <utility>

#include "core/format.h"
#include "exec/plan.h"
#include "exec/planner.h"
#include "nfrql/executor.h"
#include "util/string_util.h"

namespace nf2 {
namespace shard {

namespace {

/// CatalogView over one shard: the pinned snapshot when the context
/// carries one (frozen dictionary, zero engine locks), the live engine
/// otherwise (router-owned transaction only).
class ShardCatalog : public CatalogView {
 public:
  explicit ShardCatalog(const ShardReadContext* ctx) : ctx_(ctx) {}

  Result<BoundRelation> Bind(const std::string& name) const override {
    if (ctx_->snapshot != nullptr) {
      std::shared_ptr<const DatabaseSnapshot::RelationVersion> version =
          ctx_->snapshot->FindVersion(name);
      if (version == nullptr) {
        return Status::NotFound(StrCat("relation '", name, "' not found"));
      }
      return BoundRelation{&version->info, version->relation.get()};
    }
    BoundRelation out;
    NF2_ASSIGN_OR_RETURN(out.info, ctx_->db->Info(name));
    NF2_ASSIGN_OR_RETURN(out.relation, ctx_->db->Canonical(name));
    return out;
  }

  const ValueDictionary* frozen_dictionary() const override {
    return ctx_->snapshot != nullptr ? ctx_->snapshot->dictionary().get()
                                     : nullptr;
  }

 private:
  const ShardReadContext* ctx_;
};

/// Plans and drains `stmt` on one shard, returning the produced rows
/// (and, when requested, the plan's output schema).
Result<std::vector<FlatTuple>> RunOnShard(const SelectStatement& stmt,
                                          const ShardReadContext& ctx,
                                          Schema* schema_out) {
  ShardCatalog catalog(&ctx);
  NF2_ASSIGN_OR_RETURN(SelectPlan plan, PlanSelect(stmt, catalog));
  plan.root->Open();
  std::vector<FlatTuple> rows;
  FlatTuple row;
  while (plan.root->Next(&row)) {
    rows.push_back(std::move(row));
  }
  plan.root->Close();
  if (schema_out != nullptr) *schema_out = plan.root->schema();
  return rows;
}

/// K-way merge of per-shard runs already sorted on column `col`; ties
/// resolve to the lower shard index (deterministic merge order).
std::vector<FlatTuple> KWayMergeByColumn(
    const std::vector<std::vector<FlatTuple>>& runs, size_t col,
    bool desc) {
  struct Head {
    size_t run;
    size_t pos;
  };
  // "true" means a sorts after b — priority_queue then surfaces the
  // next row of the merged order at top().
  auto after = [&runs, col, desc](const Head& a, const Head& b) {
    const Value& va = runs[a.run][a.pos].at(col);
    const Value& vb = runs[b.run][b.pos].at(col);
    if (vb < va) return !desc;
    if (va < vb) return desc;
    return a.run > b.run;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(after)> heap(after);
  size_t total = 0;
  for (size_t i = 0; i < runs.size(); ++i) {
    total += runs[i].size();
    if (!runs[i].empty()) heap.push(Head{i, 0});
  }
  std::vector<FlatTuple> out;
  out.reserve(total);
  while (!heap.empty()) {
    Head head = heap.top();
    heap.pop();
    out.push_back(runs[head.run][head.pos]);
    if (head.pos + 1 < runs[head.run].size()) {
      heap.push(Head{head.run, head.pos + 1});
    }
  }
  return out;
}

/// Keep-first deduplication in the rows' current order (what a global
/// ProjectOp would have produced).
void DedupeKeepFirst(std::vector<FlatTuple>* rows) {
  std::unordered_set<FlatTuple> seen;
  std::vector<FlatTuple> out;
  out.reserve(rows->size());
  for (FlatTuple& row : *rows) {
    if (seen.insert(row).second) out.push_back(std::move(row));
  }
  *rows = std::move(out);
}

void ApplyLimit(const std::optional<uint64_t>& limit,
                std::vector<FlatTuple>* rows) {
  if (limit.has_value() && rows->size() > *limit) {
    rows->resize(static_cast<size_t>(*limit));
  }
}

/// Plain (unprojected or projected, unordered) SELECT: concatenate in
/// shard order. Full rows are disjoint across shards (a row lives on
/// exactly the shard its partition value hashes to), so duplicates are
/// only possible under projection. LIMIT is pushed down per shard only
/// in the full-row case — under projection a per-shard cut could starve
/// the post-dedup global LIMIT.
Result<std::string> ScatterPlain(const SelectStatement& stmt,
                                 const std::vector<ShardReadContext>& shards,
                                 uint64_t* merged_rows) {
  const bool projected = !stmt.columns.empty();
  SelectStatement per = CloneSelect(stmt);
  if (projected) per.limit.reset();
  Schema schema;
  std::vector<FlatTuple> rows;
  for (size_t i = 0; i < shards.size(); ++i) {
    NF2_ASSIGN_OR_RETURN(
        std::vector<FlatTuple> part,
        RunOnShard(per, shards[i], i == 0 ? &schema : nullptr));
    if (merged_rows != nullptr) *merged_rows += part.size();
    for (FlatTuple& row : part) rows.push_back(std::move(row));
  }
  if (projected) DedupeKeepFirst(&rows);
  ApplyLimit(stmt.limit, &rows);
  FlatRelation result(schema, std::move(rows));
  return StrCat(RenderTable(result), result.size(), " row(s)");
}

/// ORDER BY SELECT: per-shard runs arrive sorted (each shard ran the
/// full plan including its SortOp); the router re-merges them. When the
/// projection drops the order column (the planner's sort-below-project
/// case) the shards return full-width rows and the router projects
/// after the merge, preserving the merged order.
Result<std::string> ScatterOrdered(const SelectStatement& stmt,
                                   const std::vector<ShardReadContext>& shards,
                                   uint64_t* merged_rows) {
  const bool projected = !stmt.columns.empty();
  const bool survives =
      !projected || std::find(stmt.columns.begin(), stmt.columns.end(),
                              stmt.order_attr) != stmt.columns.end();
  SelectStatement per = CloneSelect(stmt);
  if (projected) {
    per.limit.reset();
    if (!survives) per.columns.clear();
  }
  Schema schema;
  std::vector<std::vector<FlatTuple>> runs(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    NF2_ASSIGN_OR_RETURN(runs[i],
                         RunOnShard(per, shards[i], i == 0 ? &schema : nullptr));
    if (merged_rows != nullptr) *merged_rows += runs[i].size();
  }
  NF2_ASSIGN_OR_RETURN(size_t order_pos,
                       schema.RequireIndex(stmt.order_attr));
  std::vector<FlatTuple> rows =
      KWayMergeByColumn(runs, order_pos, stmt.order_desc);
  Schema out_schema = schema;
  if (!survives) {
    std::vector<size_t> indices;
    indices.reserve(stmt.columns.size());
    for (const std::string& name : stmt.columns) {
      NF2_ASSIGN_OR_RETURN(size_t idx, schema.RequireIndex(name));
      indices.push_back(idx);
    }
    for (FlatTuple& row : rows) {
      std::vector<Value> cells;
      cells.reserve(indices.size());
      for (size_t idx : indices) cells.push_back(row.at(idx));
      row = FlatTuple(std::move(cells));
    }
    out_schema = schema.Project(indices);
  }
  if (projected) DedupeKeepFirst(&rows);
  ApplyLimit(stmt.limit, &rows);
  return StrCat(RenderRowsInOrder(out_schema, rows), rows.size(),
                " row(s)");
}

/// Folds one shard's partial aggregate value into the accumulator.
/// COUNT(attr) reaches here only for the partition attribute, where
/// per-shard distinct sets are hash-disjoint and the counts add.
void FoldPartial(const AggSpec& spec, Value* acc, const Value& next) {
  switch (spec.func) {
    case AggSpec::Func::kCountStar:
    case AggSpec::Func::kCount:
      *acc = Value::Int(acc->AsInt() + next.AsInt());
      return;
    case AggSpec::Func::kSum:
      if (acc->type() == ValueType::kDouble ||
          next.type() == ValueType::kDouble) {
        *acc = Value::Double(acc->AsDouble() + next.AsDouble());
      } else {
        *acc = Value::Int(acc->AsInt() + next.AsInt());
      }
      return;
    case AggSpec::Func::kMin:
      if (next.is_null()) return;
      if (acc->is_null() || next < *acc) *acc = next;
      return;
    case AggSpec::Func::kMax:
      if (next.is_null()) return;
      if (acc->is_null() || *acc < next) *acc = next;
      return;
  }
}

/// Global distinct counts for COUNT(attr) on a non-partition attribute:
/// per-shard distinct sets can overlap, so the router re-projects
/// (group,) attr on every shard, unions the pairs, and counts. The
/// companion sees the same WHERE, so it observes exactly the aggregated
/// rows.
struct DistinctCounts {
  std::map<Value, int64_t> per_group;
  int64_t total = 0;
};

Result<DistinctCounts> CompanionDistinct(
    const SelectStatement& stmt, const std::string& attr,
    const std::vector<ShardReadContext>& shards) {
  SelectStatement comp;
  comp.name = stmt.name;
  if (!stmt.group_attr.empty()) comp.columns.push_back(stmt.group_attr);
  comp.columns.push_back(attr);
  comp.where = CloneCondition(stmt.where.get());
  std::set<FlatTuple> uni;
  for (const ShardReadContext& ctx : shards) {
    NF2_ASSIGN_OR_RETURN(std::vector<FlatTuple> part,
                         RunOnShard(comp, ctx, nullptr));
    for (FlatTuple& row : part) uni.insert(std::move(row));
  }
  DistinctCounts out;
  if (stmt.group_attr.empty()) {
    out.total = static_cast<int64_t>(uni.size());
  } else {
    for (const FlatTuple& row : uni) ++out.per_group[row.at(0)];
  }
  return out;
}

/// Aggregate (grouped or not) SELECT: per-shard partials, combined per
/// aggregate function; ORDER BY and LIMIT re-applied over the merged
/// groups (a per-shard LIMIT over partial groups would be wrong, so it
/// is stripped from the scattered statement).
Result<std::string> ScatterAggregate(
    const SelectStatement& stmt, const std::vector<ShardReadContext>& shards,
    const std::string& partition_attr, uint64_t* merged_rows) {
  const bool grouped = !stmt.group_attr.empty();
  const size_t agg_base = grouped ? 1 : 0;
  SelectStatement per = CloneSelect(stmt);
  per.limit.reset();
  std::vector<std::vector<FlatTuple>> parts(shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    NF2_ASSIGN_OR_RETURN(parts[i], RunOnShard(per, shards[i], nullptr));
    if (merged_rows != nullptr) *merged_rows += parts[i].size();
  }

  std::vector<FlatTuple> rows;
  if (grouped) {
    // Same std::map the single-engine AggregateOp accumulates into, so
    // un-ORDER BY'd group order (ascending group key) matches.
    std::map<Value, std::vector<Value>> acc;
    for (const std::vector<FlatTuple>& part : parts) {
      for (const FlatTuple& row : part) {
        auto [it, inserted] = acc.try_emplace(
            row.at(0), row.values().begin() + 1, row.values().end());
        if (inserted) continue;
        for (size_t j = 0; j < stmt.aggregates.size(); ++j) {
          FoldPartial(stmt.aggregates[j], &it->second[j],
                      row.at(agg_base + j));
        }
      }
    }
    rows.reserve(acc.size());
    for (auto& [group, aggs] : acc) {
      std::vector<Value> cells;
      cells.reserve(1 + aggs.size());
      cells.push_back(group);
      for (Value& v : aggs) cells.push_back(std::move(v));
      rows.emplace_back(std::move(cells));
    }
  } else {
    std::vector<Value> acc;
    for (const std::vector<FlatTuple>& part : parts) {
      if (part.empty()) continue;  // Ungrouped plans emit exactly one row.
      if (acc.empty()) {
        acc.assign(part.front().values().begin(),
                   part.front().values().end());
        continue;
      }
      for (size_t j = 0; j < stmt.aggregates.size(); ++j) {
        FoldPartial(stmt.aggregates[j], &acc[j], part.front().at(j));
      }
    }
    if (!acc.empty()) rows.emplace_back(std::move(acc));
  }

  // COUNT(attr) is a DISTINCT count; summing per-shard partials is only
  // valid when the counted attribute is the partition attribute.
  // COUNT(group_attr) within its own group is always 1.
  for (size_t j = 0; j < stmt.aggregates.size(); ++j) {
    const AggSpec& agg = stmt.aggregates[j];
    if (agg.func != AggSpec::Func::kCount) continue;
    if (agg.attr == partition_attr) continue;
    if (grouped && agg.attr == stmt.group_attr) {
      for (FlatTuple& row : rows) row.at(agg_base + j) = Value::Int(1);
      continue;
    }
    NF2_ASSIGN_OR_RETURN(DistinctCounts counts,
                         CompanionDistinct(stmt, agg.attr, shards));
    if (grouped) {
      for (FlatTuple& row : rows) {
        auto it = counts.per_group.find(row.at(0));
        row.at(agg_base + j) =
            Value::Int(it != counts.per_group.end() ? it->second : 0);
      }
    } else if (!rows.empty()) {
      rows.front().at(j) = Value::Int(counts.total);
    }
  }

  if (!stmt.order_attr.empty()) {
    // Resolve ORDER BY against the aggregate output's column names,
    // exactly as the single-engine plan's SortOp does.
    std::vector<std::string> names;
    if (grouped) names.push_back(stmt.group_attr);
    for (const AggSpec& agg : stmt.aggregates) names.push_back(agg.Label());
    auto it = std::find(names.begin(), names.end(), stmt.order_attr);
    if (it == names.end()) {
      return Status::Internal(
          StrCat("unresolved ORDER BY column '", stmt.order_attr, "'"));
    }
    const size_t pos = static_cast<size_t>(it - names.begin());
    const bool desc = stmt.order_desc;
    std::stable_sort(rows.begin(), rows.end(),
                     [pos, desc](const FlatTuple& a, const FlatTuple& b) {
                       return desc ? b.at(pos) < a.at(pos)
                                   : a.at(pos) < b.at(pos);
                     });
  }
  ApplyLimit(stmt.limit, &rows);

  if (grouped) {
    std::string out;
    for (const FlatTuple& row : rows) {
      std::vector<std::string> cells;
      cells.reserve(row.degree());
      for (const Value& v : row.values()) cells.push_back(v.ToString());
      out += StrCat(Join(cells, "\t"), "\n");
    }
    out += StrCat(rows.size(), " group(s)");
    return out;
  }
  if (rows.empty()) return std::string();
  std::vector<std::string> cells;
  cells.reserve(rows.front().degree());
  for (const Value& v : rows.front().values()) cells.push_back(v.ToString());
  return Join(cells, "\t");
}

}  // namespace

std::unique_ptr<ConditionNode> CloneCondition(const ConditionNode* node) {
  if (node == nullptr) return nullptr;
  auto out = std::make_unique<ConditionNode>();
  out->kind = node->kind;
  out->attribute = node->attribute;
  out->op = node->op;
  out->literal = node->literal;
  out->left = CloneCondition(node->left.get());
  out->right = CloneCondition(node->right.get());
  return out;
}

SelectStatement CloneSelect(const SelectStatement& stmt) {
  SelectStatement out;
  out.name = stmt.name;
  out.joins = stmt.joins;
  out.columns = stmt.columns;
  out.aggregates = stmt.aggregates;
  out.group_attr = stmt.group_attr;
  out.order_attr = stmt.order_attr;
  out.order_desc = stmt.order_desc;
  out.limit = stmt.limit;
  out.where = CloneCondition(stmt.where.get());
  return out;
}

Result<std::string> ScatterSelect(const SelectStatement& stmt,
                                  const std::vector<ShardReadContext>& shards,
                                  const std::string& partition_attr,
                                  uint64_t* merged_rows) {
  if (!stmt.aggregates.empty()) {
    return ScatterAggregate(stmt, shards, partition_attr, merged_rows);
  }
  if (!stmt.order_attr.empty()) {
    return ScatterOrdered(stmt, shards, merged_rows);
  }
  return ScatterPlain(stmt, shards, merged_rows);
}

}  // namespace shard
}  // namespace nf2
