#ifndef NF2_SHARD_ROUTER_H_
#define NF2_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/database.h"
#include "server/session.h"
#include "shard/merge.h"
#include "shard/shard_map.h"
#include "util/result.h"

namespace nf2 {
namespace shard {

class RouterSession;

/// A hash-partitioned engine group behind a scatter-gather router
/// (DESIGN.md §13): N in-process shards, each a full Database —
/// own WAL, checkpoint lane, MVCC snapshot chain, engine gate — living
/// at <dir>/shard-<i>. ShardRouter plugs into Server as a
/// SessionProvider: each connection gets a RouterSession that
/// classifies every statement, routes point operations (the WHERE
/// pins the partition attribute, or INSERT/DELETE VALUES rows hash
/// individually) to exactly one shard, and scatters everything else,
/// merging the replies into single-engine-identical text.
///
/// With shards == 1 every call forwards verbatim to the one underlying
/// SessionManager — byte-identical to the unsharded server.
///
/// DDL fans out all-or-nothing: CREATE applies shard by shard and
/// rolls back the shards that succeeded if any shard refuses; a crash
/// mid-fan-out is healed at the next Open, which drops any relation
/// that does not exist on every shard (completing a crashed DROP,
/// rolling back a crashed CREATE — either way the shards converge).
class ShardRouter : public server::SessionProvider {
 public:
  struct Options {
    /// Number of shards (>= 1). Pinned by the SHARDS marker file on
    /// first open; later opens must match.
    size_t shards = 1;
    /// Per-shard engine options.
    Database::Options db;
    /// Per-shard parsed-statement cache capacity.
    size_t statement_cache_capacity = server::kDefaultStatementCacheCapacity;
    /// Open the shards on parallel threads (recovery dominates cold
    /// start). Crash tests turn this off: FaultInjectionEnv is
    /// single-threaded.
    bool parallel_open = true;
  };

  /// Opens (creating if needed) all shards under `dir`, in parallel,
  /// then heals DDL-fan-out stragglers as described above.
  static Result<std::unique_ptr<ShardRouter>> Open(const std::string& dir,
                                                   Options options, Env* env);
  static Result<std::unique_ptr<ShardRouter>> Open(const std::string& dir,
                                                   Options options) {
    return Open(dir, options, Env::Default());
  }

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // SessionProvider:
  std::unique_ptr<server::ClientSession> NewClientSession() override;
  MetricsRegistry* metrics_registry() override { return &metrics_; }
  void ShutdownCheckpoint() override;

  size_t shard_count() const { return dbs_.size(); }
  Database* shard_db(size_t i) { return dbs_[i].get(); }
  server::SessionManager* shard_sessions(size_t i) {
    return managers_[i].get();
  }
  const std::string& dir() const { return dir_; }

 private:
  friend class RouterSession;
  ShardRouter() = default;

  std::string dir_;
  Env* env_ = nullptr;
  /// Router-level registry: the server's nf2_server_* metrics and the
  /// nf2_router_* counters land here; per-shard engine metrics stay in
  /// each shard's own registry (rendered with shard labels by
  /// `\metrics`).
  MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Database>> dbs_;
  std::vector<std::unique_ptr<server::SessionManager>> managers_;
  std::atomic<uint64_t> next_session_id_{1};

  Counter* metric_point_ = nullptr;
  Counter* metric_scatter_ = nullptr;
  Counter* metric_merge_rows_ = nullptr;
  Counter* metric_ddl_fanout_ = nullptr;
  Counter* metric_ddl_rollbacks_ = nullptr;
};

/// One client's fan-out session: a per-shard engine Session for every
/// shard (transaction ownership, gating, and rendering per shard come
/// from those), plus the router's classification and merge logic. Not
/// internally synchronized — one statement (or batch) at a time, like
/// Session.
class RouterSession : public server::ClientSession {
 public:
  RouterSession(uint64_t id, ShardRouter* router);
  ~RouterSession() override;

  uint64_t id() const override { return id_; }
  Result<std::string> Execute(std::string_view statement) override;
  std::vector<Result<std::string>> ExecuteBatch(
      const std::vector<std::string>& statements) override;
  void Abort() override;

 private:
  /// Partition metadata resolved from shard 0's published snapshot
  /// (catalogs are identical across shards by the DDL fan-out
  /// invariant).
  struct PartitionInfo {
    size_t attr = 0;
    std::string attr_name;
    size_t degree = 0;
  };
  std::optional<PartitionInfo> Partition(const std::string& name) const;

  /// Live contexts while this session owns the fan-out transaction
  /// (read-your-own-writes), pinned snapshots otherwise.
  std::vector<ShardReadContext> MakeReadContexts() const;

  Result<std::string> Dispatch(const Statement& stmt);
  Result<std::string> RouteInsert(const InsertStatement& s,
                                  const Statement& whole);
  Result<std::string> RouteDelete(const DeleteStatement& s,
                                  const Statement& whole);
  Result<std::string> RouteUpdate(const UpdateStatement& s,
                                  const Statement& whole);
  Result<std::string> RouteSelect(const SelectStatement& s,
                                  const Statement& whole);
  Result<std::string> RouteCreate(const CreateStatement& s,
                                  const Statement& whole);
  Result<std::string> RouteDrop(const DropStatement& s,
                                const Statement& whole);
  Result<std::string> RouteTxn(const TxnStatement& s, const Statement& whole);
  Result<std::string> RouteCheckpoint(const Statement& whole);
  Result<std::string> RouteExplain(const ExplainStatement& s,
                                   const Statement& whole);
  Result<std::string> Recompose(const std::string& name, RelationInfo* info,
                                NfrRelation* relation) const;
  Result<std::string> RouteShow(const ShowStatement& s);
  Result<std::string> RouteDescribe(const DescribeStatement& s);
  Result<std::string> RouteNest(const NestStatement& s);
  Result<std::string> RouteStats(const StatsStatement& s);

  Result<std::string> ExecuteMeta(const std::string& command);
  std::string RenderShards() const;
  std::string RenderMetrics(bool prometheus) const;

  /// Scatters a mutation to every shard in order, summing the counts
  /// out of "<verb> N tuple(s) <preposition> <name>" replies.
  Result<std::string> ScatterMutation(const Statement& whole,
                                      const char* verb,
                                      const char* preposition,
                                      const std::string& name);

  uint64_t id_;
  ShardRouter* router_;
  std::vector<std::unique_ptr<server::Session>> sessions_;
  /// True while this session holds the fan-out transaction (BEGIN
  /// succeeded on every shard).
  bool own_txn_ = false;
};

}  // namespace shard
}  // namespace nf2

#endif  // NF2_SHARD_ROUTER_H_
