#ifndef NF2_SHARD_SHARD_MAP_H_
#define NF2_SHARD_SHARD_MAP_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "core/value.h"
#include "storage/env.h"
#include "util/result.h"

namespace nf2 {
namespace shard {

/// Position of the partition attribute of `info`: the first attribute
/// that is key-like in the paper's Def. 7 sense — a single attribute
/// whose FD-closure under the declared FDs covers the whole schema, so
/// one of its values identifies at most one NFR tuple. A relation
/// declaring no such attribute partitions on position 0: every value
/// still hashes deterministically, only point-routing quality degrades
/// (scans stay correct because they scatter).
size_t PartitionAttr(const RelationInfo& info);

/// FNV-1a over the value's canonical text rendering. Stable across
/// processes and runs (no pointer, seed, or locale dependence), so a
/// value's home shard survives restarts.
uint64_t StableValueHash(const Value& v);

/// Home shard of `v` among `shard_count` shards.
size_t ShardOf(const Value& v, size_t shard_count);

/// "<base_dir>/shard-<index>" — one engine directory per shard.
std::string ShardDir(const std::string& base_dir, size_t index);

/// Validates (writing it on first open) the SHARDS marker file in
/// `base_dir`. The marker pins the shard count the data directory was
/// laid out with; reopening with a different --shards N is refused
/// (FailedPrecondition) instead of silently mis-routing every key.
/// Returns the pinned count (== `shard_count` on success).
Result<size_t> EnsureShardMarker(Env* env, const std::string& base_dir,
                                 size_t shard_count);

}  // namespace shard
}  // namespace nf2

#endif  // NF2_SHARD_SHARD_MAP_H_
