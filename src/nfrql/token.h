#ifndef NF2_NFRQL_TOKEN_H_
#define NF2_NFRQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace nf2 {

/// Token kinds of the NFRQL language.
enum class TokenType {
  kIdentifier,   // relation / attribute names, keywords
  kString,       // 'quoted literal'
  kInteger,      // 42
  kDouble,       // 3.5
  kLParen,       // (
  kRParen,       // )
  kComma,        // ,
  kStar,         // *
  kSemicolon,    // ;
  kEq,           // =
  kNe,           // !=
  kLt,           // <
  kLe,           // <=
  kGt,           // >
  kGe,           // >=
  kArrow,        // ->   (FD)
  kDoubleArrow,  // ->-> (MVD)
  kPipe,         // |
  kLBrace,       // {  (set-literal open)
  kRBrace,       // }  (set-literal close)
  kEnd,          // end of input
};

const char* TokenTypeToString(TokenType type);

/// One lexed token. Identifiers keep their original spelling in `text`;
/// keyword matching is case-insensitive and done by the parser.
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  // Byte offset in the source, for error messages.

  /// Case-insensitive keyword test for identifier tokens.
  bool IsKeyword(const std::string& keyword) const;
};

}  // namespace nf2

#endif  // NF2_NFRQL_TOKEN_H_
