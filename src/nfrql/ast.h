#ifndef NF2_NFRQL_AST_H_
#define NF2_NFRQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/value.h"

namespace nf2 {

/// A condition tree as written in a WHERE clause; attribute references
/// are still names (resolved against the schema at execution time).
struct ConditionNode {
  enum class Kind { kCompare, kAnd, kOr, kNot };
  Kind kind = Kind::kCompare;
  // kCompare:
  std::string attribute;
  std::string op;  // "=", "!=", "<", "<=", ">", ">=".
  Value literal;
  // kAnd/kOr take both children; kNot takes `left`.
  std::unique_ptr<ConditionNode> left;
  std::unique_ptr<ConditionNode> right;
};

/// CREATE RELATION name (attr TYPE, ...) [NEST a, b, ...]
///   [FD a, b -> c, d]... [MVD a ->-> b]...
struct CreateStatement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;  // name, type.
  std::vector<std::string> nest_order;  // Empty: advise from deps.
  struct FdClause {
    std::vector<std::string> lhs;
    std::vector<std::string> rhs;
  };
  struct MvdClause {
    std::vector<std::string> lhs;
    std::vector<std::string> rhs;
  };
  std::vector<FdClause> fds;
  std::vector<MvdClause> mvds;
};

/// DROP RELATION name
struct DropStatement {
  std::string name;
};

/// INSERT INTO name VALUES (v, ...)[, (v, ...)]...
struct InsertStatement {
  std::string name;
  std::vector<std::vector<Value>> rows;
};

/// DELETE FROM name VALUES (v, ...) | DELETE FROM name WHERE cond
struct DeleteStatement {
  std::string name;
  std::vector<std::vector<Value>> rows;            // VALUES form.
  std::unique_ptr<ConditionNode> where;            // WHERE form.
};

/// UPDATE name SET attr = lit [, attr = lit]... [WHERE cond]
struct UpdateStatement {
  std::string name;
  std::vector<std::pair<std::string, Value>> sets;
  std::unique_ptr<ConditionNode> where;  // Null: update every tuple.
};

/// One aggregate call in a SELECT list: COUNT(*), COUNT(a), SUM(a),
/// MIN(a), MAX(a). COUNT(a) counts DISTINCT values of `a` (set
/// semantics — the only COUNT an NFR component can answer directly).
struct AggSpec {
  enum class Func { kCountStar, kCount, kSum, kMin, kMax };
  Func func = Func::kCountStar;
  std::string attr;  // Empty for COUNT(*).

  /// Canonical output-column name: "COUNT(*)", "SUM(Sal)", ... — also
  /// the spelling ORDER BY uses to reference an aggregate.
  std::string Label() const {
    switch (func) {
      case Func::kCountStar:
        return "COUNT(*)";
      case Func::kCount:
        return "COUNT(" + attr + ")";
      case Func::kSum:
        return "SUM(" + attr + ")";
      case Func::kMin:
        return "MIN(" + attr + ")";
      case Func::kMax:
        return "MAX(" + attr + ")";
    }
    return "";
  }

  bool operator==(const AggSpec&) const = default;
};

/// SELECT [* | cols | [g,] aggs] FROM name [JOIN name]... [WHERE cond]
///   [GROUP BY g] [ORDER BY col [ASC|DESC]] [LIMIT n]
struct SelectStatement {
  std::string name;                       // First FROM relation.
  std::vector<std::string> joins;         // Further relations, natural-joined.
  std::vector<std::string> columns;       // Plain columns; empty means '*'
                                          // when `aggregates` is empty too.
  std::vector<AggSpec> aggregates;        // Aggregate calls, in list order.
  std::string group_attr;                 // GROUP BY attribute (or empty).
  std::string order_attr;                 // ORDER BY column/agg label.
  bool order_desc = false;
  std::optional<uint64_t> limit;
  std::unique_ptr<ConditionNode> where;
};

/// SHOW name — prints the stored canonical NFR as a table.
struct ShowStatement {
  std::string name;
};

/// DESCRIBE name — prints schema, nest order, dependencies, statistics.
struct DescribeStatement {
  std::string name;
};

/// NEST name ON a[, b...] / UNNEST name ON a — prints a derived view.
struct NestStatement {
  std::string name;
  std::vector<std::string> attributes;
  bool unnest = false;
};

/// LIST — relation names.
struct ListStatement {};

/// STATS name — size and update statistics.
struct StatsStatement {
  std::string name;
};

/// CHECKPOINT — flush tables, truncate the WAL.
struct CheckpointStatement {};

struct StatementBox;  // Holds the inner Statement; defined below.

/// EXPLAIN <stmt> — the operator plan tree, without executing.
/// PROFILE <stmt> — executes <stmt> and reports the span tree with
/// wall times, rows in/out, and §4 composition counts.
struct ExplainStatement {
  bool profile = false;
  std::unique_ptr<StatementBox> inner;
};

/// BEGIN / COMMIT / ROLLBACK.
struct TxnStatement {
  enum class Kind { kBegin, kCommit, kRollback };
  Kind kind = Kind::kBegin;
};

using Statement =
    std::variant<CreateStatement, DropStatement, InsertStatement,
                 DeleteStatement, UpdateStatement, SelectStatement,
                 ShowStatement, DescribeStatement, NestStatement,
                 ListStatement, StatsStatement, CheckpointStatement,
                 TxnStatement, ExplainStatement>;

/// Indirection so ExplainStatement can hold the (recursive) variant —
/// same trick ConditionNode uses for its children.
struct StatementBox {
  Statement stmt;
};

}  // namespace nf2

#endif  // NF2_NFRQL_AST_H_
