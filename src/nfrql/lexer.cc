#include "nfrql/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace nf2 {

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  std::vector<Token> out;
  size_t i = 0;
  auto push = [&](TokenType type, size_t start, std::string text = "") {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.position = start;
    out.push_back(std::move(t));
  };
  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < source.size() && IsIdentBody(source[j])) ++j;
      push(TokenType::kIdentifier, start,
           std::string(source.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])) &&
         // "->" must stay an arrow.
         source[i + 1] != '>')) {
      size_t j = i + 1;
      bool is_double = false;
      while (j < source.size() &&
             (std::isdigit(static_cast<unsigned char>(source[j])) ||
              source[j] == '.')) {
        if (source[j] == '.') is_double = true;
        ++j;
      }
      std::string text(source.substr(i, j - i));
      Token t;
      t.position = start;
      t.text = text;
      if (is_double) {
        t.type = TokenType::kDouble;
        t.double_value = std::stod(text);
      } else {
        t.type = TokenType::kInteger;
        t.int_value = std::stoll(text);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      std::string text;
      bool closed = false;
      while (j < source.size()) {
        if (source[j] == '\'') {
          // '' escapes a quote, SQL-style.
          if (j + 1 < source.size() && source[j + 1] == '\'') {
            text += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text += source[j];
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(
            StrCat("unterminated string literal at offset ", start));
      }
      push(TokenType::kString, start, std::move(text));
      i = j;
      continue;
    }
    // Multi-char operators first.
    auto rest = source.substr(i);
    if (StartsWith(rest, "->->")) {
      push(TokenType::kDoubleArrow, start, "->->");
      i += 4;
      continue;
    }
    if (StartsWith(rest, "->")) {
      push(TokenType::kArrow, start, "->");
      i += 2;
      continue;
    }
    if (StartsWith(rest, "!=")) {
      push(TokenType::kNe, start, "!=");
      i += 2;
      continue;
    }
    if (StartsWith(rest, "<=")) {
      push(TokenType::kLe, start, "<=");
      i += 2;
      continue;
    }
    if (StartsWith(rest, ">=")) {
      push(TokenType::kGe, start, ">=");
      i += 2;
      continue;
    }
    switch (c) {
      case '(':
        push(TokenType::kLParen, start, "(");
        break;
      case ')':
        push(TokenType::kRParen, start, ")");
        break;
      case ',':
        push(TokenType::kComma, start, ",");
        break;
      case '*':
        push(TokenType::kStar, start, "*");
        break;
      case ';':
        push(TokenType::kSemicolon, start, ";");
        break;
      case '=':
        push(TokenType::kEq, start, "=");
        break;
      case '<':
        push(TokenType::kLt, start, "<");
        break;
      case '>':
        push(TokenType::kGt, start, ">");
        break;
      case '|':
        push(TokenType::kPipe, start, "|");
        break;
      case '{':
        push(TokenType::kLBrace, start, "{");
        break;
      case '}':
        push(TokenType::kRBrace, start, "}");
        break;
      default:
        return Status::InvalidArgument(
            StrCat("unexpected character '", std::string(1, c),
                   "' at offset ", start));
    }
    ++i;
  }
  push(TokenType::kEnd, source.size());
  return out;
}

}  // namespace nf2
