#ifndef NF2_NFRQL_PARSER_H_
#define NF2_NFRQL_PARSER_H_

#include <string>
#include <string_view>

#include "nfrql/ast.h"
#include "util/result.h"

namespace nf2 {

/// Parses one NFRQL statement (a trailing semicolon is allowed).
///
/// Grammar sketch (keywords case-insensitive):
///   CREATE RELATION name '(' attr type (',' attr type)* ')'
///       [NEST attr (',' attr)*]
///       (FD attr (',' attr)* '->' attr (',' attr)*)*
///       (MVD attr (',' attr)* '->->' attr (',' attr)*)*
///   DROP RELATION name
///   INSERT INTO name VALUES row (',' row)*
///   DELETE FROM name (VALUES row (',' row)* | WHERE cond)
///   SELECT ('*' | attr (',' attr)*) FROM name [WHERE cond]
///   SHOW name
///   NEST name ON attr (',' attr)*
///   UNNEST name ON attr
///   LIST
///   STATS name
///   CHECKPOINT
/// where row = '(' literal (',' literal)* ')' and cond is the usual
/// AND/OR/NOT tree over comparisons `attr op literal`.
Result<Statement> ParseStatement(std::string_view source);

/// Canonical key for a parsed-statement cache: `source` with leading
/// and trailing whitespace and any trailing semicolons stripped. Two
/// spellings that differ only in that decoration parse identically
/// (the grammar allows one optional trailing `;`), so they must share a
/// cache entry. Deliberately NOT case-folded: the lexer is
/// case-sensitive inside quoted literals, so only byte-identical
/// statement bodies are safe to unify.
std::string StatementCacheKey(std::string_view source);

}  // namespace nf2

#endif  // NF2_NFRQL_PARSER_H_
