#include "nfrql/parser.h"

#include "nfrql/lexer.h"
#include "util/string_util.h"

namespace nf2 {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    NF2_ASSIGN_OR_RETURN(Statement stmt, ParseTop());
    // Optional trailing semicolon.
    if (Current().type == TokenType::kSemicolon) Advance();
    if (Current().type != TokenType::kEnd) {
      return UnexpectedToken("end of statement");
    }
    return stmt;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  const Token& Peek(size_t ahead) const {
    size_t i = pos_ + ahead;
    return tokens_[std::min(i, tokens_.size() - 1)];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status UnexpectedToken(const std::string& expected) const {
    return Status::InvalidArgument(
        StrCat("expected ", expected, " but found ",
               TokenTypeToString(Current().type),
               Current().text.empty() ? "" : StrCat(" '", Current().text, "'"),
               " at offset ", Current().position));
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Current().type != TokenType::kIdentifier) {
      return UnexpectedToken(what);
    }
    std::string text = Current().text;
    Advance();
    return text;
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!Current().IsKeyword(keyword)) {
      return UnexpectedToken(StrCat("keyword ", keyword));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectToken(TokenType type) {
    if (Current().type != type) {
      return UnexpectedToken(TokenTypeToString(type));
    }
    Advance();
    return Status::OK();
  }

  Result<Value> ParseLiteral() {
    const Token& t = Current();
    // Set literal: '{' literal (',' literal)* '}' or the empty set '{}'.
    if (t.type == TokenType::kLBrace) {
      Advance();
      std::vector<Value> elements;
      if (Current().type != TokenType::kRBrace) {
        while (true) {
          NF2_ASSIGN_OR_RETURN(Value element, ParseLiteral());
          elements.push_back(std::move(element));
          if (Current().type != TokenType::kComma) break;
          Advance();
        }
      }
      NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kRBrace));
      return Value::SetOf(std::move(elements));
    }
    switch (t.type) {
      case TokenType::kString: {
        Value v = Value::String(t.text);
        Advance();
        return v;
      }
      case TokenType::kInteger: {
        Value v = Value::Int(t.int_value);
        Advance();
        return v;
      }
      case TokenType::kDouble: {
        Value v = Value::Double(t.double_value);
        Advance();
        return v;
      }
      case TokenType::kIdentifier: {
        if (t.IsKeyword("TRUE")) {
          Advance();
          return Value::Bool(true);
        }
        if (t.IsKeyword("FALSE")) {
          Advance();
          return Value::Bool(false);
        }
        if (t.IsKeyword("NULL")) {
          Advance();
          return Value::Null();
        }
        // Bare identifiers are accepted as string literals — handy for
        // the paper's s1/c1/b1 style examples.
        Value v = Value::String(t.text);
        Advance();
        return v;
      }
      default:
        return UnexpectedToken("a literal");
    }
  }

  Result<std::vector<std::string>> ParseNameList() {
    std::vector<std::string> names;
    NF2_ASSIGN_OR_RETURN(std::string first, ExpectIdentifier("a name"));
    names.push_back(std::move(first));
    while (Current().type == TokenType::kComma) {
      Advance();
      NF2_ASSIGN_OR_RETURN(std::string next, ExpectIdentifier("a name"));
      names.push_back(std::move(next));
    }
    return names;
  }

  Result<std::vector<Value>> ParseRow() {
    NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kLParen));
    std::vector<Value> row;
    NF2_ASSIGN_OR_RETURN(Value first, ParseLiteral());
    row.push_back(std::move(first));
    while (Current().type == TokenType::kComma) {
      Advance();
      NF2_ASSIGN_OR_RETURN(Value next, ParseLiteral());
      row.push_back(std::move(next));
    }
    NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen));
    return row;
  }

  // cond := and_expr (OR and_expr)*
  Result<std::unique_ptr<ConditionNode>> ParseCondition() {
    NF2_ASSIGN_OR_RETURN(std::unique_ptr<ConditionNode> left,
                         ParseAndExpr());
    while (Current().IsKeyword("OR")) {
      Advance();
      NF2_ASSIGN_OR_RETURN(std::unique_ptr<ConditionNode> right,
                           ParseAndExpr());
      auto node = std::make_unique<ConditionNode>();
      node->kind = ConditionNode::Kind::kOr;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  // and_expr := unary (AND unary)*
  Result<std::unique_ptr<ConditionNode>> ParseAndExpr() {
    NF2_ASSIGN_OR_RETURN(std::unique_ptr<ConditionNode> left, ParseUnary());
    while (Current().IsKeyword("AND")) {
      Advance();
      NF2_ASSIGN_OR_RETURN(std::unique_ptr<ConditionNode> right,
                           ParseUnary());
      auto node = std::make_unique<ConditionNode>();
      node->kind = ConditionNode::Kind::kAnd;
      node->left = std::move(left);
      node->right = std::move(right);
      left = std::move(node);
    }
    return left;
  }

  // unary := NOT unary | '(' cond ')' | attr op literal
  Result<std::unique_ptr<ConditionNode>> ParseUnary() {
    if (Current().IsKeyword("NOT")) {
      Advance();
      NF2_ASSIGN_OR_RETURN(std::unique_ptr<ConditionNode> inner,
                           ParseUnary());
      auto node = std::make_unique<ConditionNode>();
      node->kind = ConditionNode::Kind::kNot;
      node->left = std::move(inner);
      return node;
    }
    if (Current().type == TokenType::kLParen) {
      Advance();
      NF2_ASSIGN_OR_RETURN(std::unique_ptr<ConditionNode> inner,
                           ParseCondition());
      NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen));
      return inner;
    }
    auto node = std::make_unique<ConditionNode>();
    node->kind = ConditionNode::Kind::kCompare;
    NF2_ASSIGN_OR_RETURN(node->attribute,
                         ExpectIdentifier("an attribute name"));
    switch (Current().type) {
      case TokenType::kEq:
        node->op = "=";
        break;
      case TokenType::kNe:
        node->op = "!=";
        break;
      case TokenType::kLt:
        node->op = "<";
        break;
      case TokenType::kLe:
        node->op = "<=";
        break;
      case TokenType::kGt:
        node->op = ">";
        break;
      case TokenType::kGe:
        node->op = ">=";
        break;
      default:
        return UnexpectedToken("a comparison operator");
    }
    Advance();
    NF2_ASSIGN_OR_RETURN(node->literal, ParseLiteral());
    return node;
  }

  Result<Statement> ParseTop() {
    if (Current().IsKeyword("EXPLAIN") || Current().IsKeyword("PROFILE")) {
      ExplainStatement stmt;
      stmt.profile = Current().IsKeyword("PROFILE");
      Advance();
      if (Current().IsKeyword("EXPLAIN") || Current().IsKeyword("PROFILE")) {
        return Status::InvalidArgument(
            "EXPLAIN/PROFILE cannot be nested");
      }
      NF2_ASSIGN_OR_RETURN(Statement inner, ParseTop());
      stmt.inner = std::make_unique<StatementBox>();
      stmt.inner->stmt = std::move(inner);
      return Statement{std::move(stmt)};
    }
    if (Current().IsKeyword("CREATE")) return ParseCreate();
    if (Current().IsKeyword("DROP")) return ParseDrop();
    if (Current().IsKeyword("INSERT")) return ParseInsert();
    if (Current().IsKeyword("DELETE")) return ParseDelete();
    if (Current().IsKeyword("UPDATE")) return ParseUpdate();
    if (Current().IsKeyword("SELECT")) return ParseSelect();
    if (Current().IsKeyword("SHOW")) return ParseShow();
    if (Current().IsKeyword("DESCRIBE")) {
      Advance();
      DescribeStatement stmt;
      NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
      return Statement{std::move(stmt)};
    }
    if (Current().IsKeyword("NEST")) return ParseNest(/*unnest=*/false);
    if (Current().IsKeyword("UNNEST")) return ParseNest(/*unnest=*/true);
    if (Current().IsKeyword("LIST")) {
      Advance();
      return Statement{ListStatement{}};
    }
    if (Current().IsKeyword("STATS")) {
      Advance();
      StatsStatement stmt;
      NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
      return Statement{std::move(stmt)};
    }
    if (Current().IsKeyword("CHECKPOINT")) {
      Advance();
      return Statement{CheckpointStatement{}};
    }
    if (Current().IsKeyword("BEGIN")) {
      Advance();
      return Statement{TxnStatement{TxnStatement::Kind::kBegin}};
    }
    if (Current().IsKeyword("COMMIT")) {
      Advance();
      return Statement{TxnStatement{TxnStatement::Kind::kCommit}};
    }
    if (Current().IsKeyword("ROLLBACK")) {
      Advance();
      return Statement{TxnStatement{TxnStatement::Kind::kRollback}};
    }
    return UnexpectedToken("a statement keyword");
  }

  Result<Statement> ParseCreate() {
    Advance();  // CREATE
    NF2_RETURN_IF_ERROR(ExpectKeyword("RELATION"));
    CreateStatement stmt;
    NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
    NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kLParen));
    while (true) {
      NF2_ASSIGN_OR_RETURN(std::string attr,
                           ExpectIdentifier("an attribute name"));
      NF2_ASSIGN_OR_RETURN(std::string type,
                           ExpectIdentifier("an attribute type"));
      stmt.attributes.emplace_back(std::move(attr), std::move(type));
      if (Current().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen));
    if (Current().IsKeyword("NEST")) {
      Advance();
      NF2_ASSIGN_OR_RETURN(stmt.nest_order, ParseNameList());
    }
    while (Current().IsKeyword("FD") || Current().IsKeyword("MVD")) {
      bool is_fd = Current().IsKeyword("FD");
      Advance();
      NF2_ASSIGN_OR_RETURN(std::vector<std::string> lhs, ParseNameList());
      if (is_fd) {
        NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kArrow));
        NF2_ASSIGN_OR_RETURN(std::vector<std::string> rhs, ParseNameList());
        stmt.fds.push_back({std::move(lhs), std::move(rhs)});
      } else {
        NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kDoubleArrow));
        NF2_ASSIGN_OR_RETURN(std::vector<std::string> rhs, ParseNameList());
        stmt.mvds.push_back({std::move(lhs), std::move(rhs)});
      }
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseDrop() {
    Advance();  // DROP
    NF2_RETURN_IF_ERROR(ExpectKeyword("RELATION"));
    DropStatement stmt;
    NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    NF2_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement stmt;
    NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
    NF2_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    NF2_ASSIGN_OR_RETURN(std::vector<Value> row, ParseRow());
    stmt.rows.push_back(std::move(row));
    while (Current().type == TokenType::kComma) {
      Advance();
      NF2_ASSIGN_OR_RETURN(std::vector<Value> next, ParseRow());
      stmt.rows.push_back(std::move(next));
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseDelete() {
    Advance();  // DELETE
    NF2_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStatement stmt;
    NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
    if (Current().IsKeyword("VALUES")) {
      Advance();
      NF2_ASSIGN_OR_RETURN(std::vector<Value> row, ParseRow());
      stmt.rows.push_back(std::move(row));
      while (Current().type == TokenType::kComma) {
        Advance();
        NF2_ASSIGN_OR_RETURN(std::vector<Value> next, ParseRow());
        stmt.rows.push_back(std::move(next));
      }
    } else if (Current().IsKeyword("WHERE")) {
      Advance();
      NF2_ASSIGN_OR_RETURN(stmt.where, ParseCondition());
    } else {
      return UnexpectedToken("VALUES or WHERE");
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseUpdate() {
    Advance();  // UPDATE
    UpdateStatement stmt;
    NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
    NF2_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      NF2_ASSIGN_OR_RETURN(std::string attr,
                           ExpectIdentifier("an attribute name"));
      NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kEq));
      NF2_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
      stmt.sets.emplace_back(std::move(attr), std::move(literal));
      if (Current().type != TokenType::kComma) break;
      Advance();
    }
    if (Current().IsKeyword("WHERE")) {
      Advance();
      NF2_ASSIGN_OR_RETURN(stmt.where, ParseCondition());
    }
    return Statement{std::move(stmt)};
  }

  /// True when the current token starts an aggregate call like
  /// COUNT( / SUM( / MIN( / MAX(.
  bool AtAggregate() const {
    return (Current().IsKeyword("COUNT") || Current().IsKeyword("SUM") ||
            Current().IsKeyword("MIN") || Current().IsKeyword("MAX")) &&
           Peek(1).type == TokenType::kLParen;
  }

  // agg := COUNT '(' '*' ')' | (COUNT|SUM|MIN|MAX) '(' attr ')'
  Result<AggSpec> ParseAggregate() {
    AggSpec spec;
    if (Current().IsKeyword("COUNT")) {
      spec.func = AggSpec::Func::kCount;
    } else if (Current().IsKeyword("SUM")) {
      spec.func = AggSpec::Func::kSum;
    } else if (Current().IsKeyword("MIN")) {
      spec.func = AggSpec::Func::kMin;
    } else {
      spec.func = AggSpec::Func::kMax;
    }
    Advance();  // The function keyword.
    NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kLParen));
    if (Current().type == TokenType::kStar) {
      if (spec.func != AggSpec::Func::kCount) {
        return UnexpectedToken("an attribute name");
      }
      spec.func = AggSpec::Func::kCountStar;
      Advance();
    } else {
      NF2_ASSIGN_OR_RETURN(spec.attr,
                           ExpectIdentifier("an attribute name"));
    }
    NF2_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen));
    return spec;
  }

  Result<Statement> ParseSelect() {
    Advance();  // SELECT
    SelectStatement stmt;
    if (Current().type == TokenType::kStar) {
      Advance();
    } else {
      // Comma-separated list of plain columns and aggregate calls.
      while (true) {
        if (AtAggregate()) {
          NF2_ASSIGN_OR_RETURN(AggSpec spec, ParseAggregate());
          stmt.aggregates.push_back(std::move(spec));
        } else {
          NF2_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("a column or aggregate"));
          stmt.columns.push_back(std::move(col));
        }
        if (Current().type != TokenType::kComma) break;
        Advance();
      }
      if (!stmt.aggregates.empty() && stmt.columns.size() > 1) {
        return Status::InvalidArgument(
            "at most one plain column may accompany aggregates (and it "
            "must be the GROUP BY attribute)");
      }
    }
    NF2_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
    while (Current().IsKeyword("JOIN")) {
      Advance();
      NF2_ASSIGN_OR_RETURN(std::string next,
                           ExpectIdentifier("a relation name"));
      stmt.joins.push_back(std::move(next));
    }
    if (Current().IsKeyword("WHERE")) {
      Advance();
      NF2_ASSIGN_OR_RETURN(stmt.where, ParseCondition());
    }
    if (Current().IsKeyword("GROUP")) {
      Advance();
      NF2_RETURN_IF_ERROR(ExpectKeyword("BY"));
      NF2_ASSIGN_OR_RETURN(stmt.group_attr,
                           ExpectIdentifier("the grouping attribute"));
      if (stmt.aggregates.empty()) {
        return Status::InvalidArgument(
            "GROUP BY requires at least one aggregate in the SELECT list");
      }
      if (!stmt.columns.empty() && stmt.columns[0] != stmt.group_attr) {
        return Status::InvalidArgument(
            StrCat("GROUP BY attribute '", stmt.group_attr,
                   "' must match the selected attribute '",
                   stmt.columns[0], "'"));
      }
      if (!stmt.joins.empty()) {
        return Status::Unimplemented(
            "GROUP BY over joins is not supported");
      }
    }
    if (!stmt.aggregates.empty() && !stmt.columns.empty() &&
        stmt.group_attr.empty()) {
      return Status::InvalidArgument(
          StrCat("selected attribute '", stmt.columns[0],
                 "' requires GROUP BY ", stmt.columns[0]));
    }
    if (Current().IsKeyword("ORDER")) {
      Advance();
      NF2_RETURN_IF_ERROR(ExpectKeyword("BY"));
      if (AtAggregate()) {
        NF2_ASSIGN_OR_RETURN(AggSpec spec, ParseAggregate());
        stmt.order_attr = spec.Label();
      } else {
        NF2_ASSIGN_OR_RETURN(stmt.order_attr,
                             ExpectIdentifier("an ORDER BY column"));
      }
      if (Current().IsKeyword("ASC")) {
        Advance();
      } else if (Current().IsKeyword("DESC")) {
        stmt.order_desc = true;
        Advance();
      }
    }
    if (Current().IsKeyword("LIMIT")) {
      Advance();
      if (Current().type != TokenType::kInteger ||
          Current().int_value < 0) {
        return UnexpectedToken("a non-negative LIMIT count");
      }
      stmt.limit = static_cast<uint64_t>(Current().int_value);
      Advance();
    }
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseShow() {
    Advance();  // SHOW
    ShowStatement stmt;
    NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
    return Statement{std::move(stmt)};
  }

  Result<Statement> ParseNest(bool unnest) {
    Advance();  // NEST / UNNEST
    NestStatement stmt;
    stmt.unnest = unnest;
    NF2_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("a relation name"));
    NF2_RETURN_IF_ERROR(ExpectKeyword("ON"));
    NF2_ASSIGN_OR_RETURN(stmt.attributes, ParseNameList());
    return Statement{std::move(stmt)};
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view source) {
  NF2_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

std::string StatementCacheKey(std::string_view source) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  size_t begin = 0;
  size_t end = source.size();
  while (begin < end && is_space(source[begin])) ++begin;
  while (end > begin && is_space(source[end - 1])) --end;
  // The grammar allows one optional trailing `;`; strip it (and any
  // whitespace it was padded with) so `X` and `X ;` share an entry. A
  // run of semicolons is left alone — that spelling does not parse, and
  // a cache key must never unify an invalid statement with a valid one.
  if (end > begin && source[end - 1] == ';' &&
      (end - 1 == begin || source[end - 2] != ';')) {
    --end;
    while (end > begin && is_space(source[end - 1])) --end;
  }
  return std::string(source.substr(begin, end - begin));
}

}  // namespace nf2
