#ifndef NF2_NFRQL_EXECUTOR_H_
#define NF2_NFRQL_EXECUTOR_H_

#include <string>
#include <string_view>

#include "engine/database.h"
#include "nfrql/ast.h"
#include "obs/trace.h"
#include "util/result.h"

namespace nf2 {

/// Executes NFRQL statements against a Database, returning the rendered
/// result text (tables, acknowledgements, statistics).
class Executor {
 public:
  explicit Executor(Database* db) : db_(db) {}

  /// Parses and executes one statement.
  Result<std::string> Execute(std::string_view source);

  /// Executes an already-parsed statement.
  Result<std::string> Execute(const Statement& stmt);

 private:
  Result<std::string> ExecCreate(const CreateStatement& stmt);
  Result<std::string> ExecDrop(const DropStatement& stmt);
  Result<std::string> ExecInsert(const InsertStatement& stmt);
  Result<std::string> ExecDelete(const DeleteStatement& stmt);
  Result<std::string> ExecUpdate(const UpdateStatement& stmt);
  Result<std::string> ExecSelect(const SelectStatement& stmt);
  Result<std::string> ExecShow(const ShowStatement& stmt);
  Result<std::string> ExecDescribe(const DescribeStatement& stmt);
  Result<std::string> ExecNest(const NestStatement& stmt);
  Result<std::string> ExecList();
  Result<std::string> ExecStats(const StatsStatement& stmt);
  Result<std::string> ExecCheckpoint();
  Result<std::string> ExecTxn(const TxnStatement& stmt);
  Result<std::string> ExecExplain(const ExplainStatement& stmt);

  /// Resolves a parsed condition tree against `schema` into a Predicate.
  Result<Predicate> ResolveCondition(const ConditionNode& node,
                                     const Schema& schema) const;

  Database* db_;
  /// Non-null only while a PROFILE'd statement runs: the exec functions
  /// open TraceSpans into it (no-ops otherwise).
  Trace* trace_ = nullptr;
};

}  // namespace nf2

#endif  // NF2_NFRQL_EXECUTOR_H_
