#ifndef NF2_NFRQL_EXECUTOR_H_
#define NF2_NFRQL_EXECUTOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "engine/database.h"
#include "engine/snapshot.h"
#include "exec/planner.h"
#include "nfrql/ast.h"
#include "obs/trace.h"
#include "util/result.h"

namespace nf2 {

/// Box table like RenderTable (core/format.h), but preserving the given
/// row order — ORDER BY output must not be re-sorted by the renderer.
/// Shared by ExecSelect and the shard router's scatter-gather merge.
std::string RenderRowsInOrder(const Schema& schema,
                              const std::vector<FlatTuple>& rows);

/// Executes NFRQL statements against a Database, returning the rendered
/// result text (tables, acknowledgements, statistics).
///
/// Snapshot binding: callers running a read-only statement may bind a
/// pinned DatabaseSnapshot first — every read the statement performs
/// (Info/Relation/Scan/Query/Stats/List) is then answered from that
/// immutable snapshot instead of the live database, with zero engine
/// locks. Write/DDL/transaction statements always go to the live
/// database regardless of binding; the server never binds a snapshot
/// for them.
class Executor {
 public:
  explicit Executor(Database* db) : db_(db) {}

  /// Parses and executes one statement.
  Result<std::string> Execute(std::string_view source);

  /// Executes an already-parsed statement.
  Result<std::string> Execute(const Statement& stmt);

  /// Routes subsequent reads to `snapshot` until ClearSnapshot().
  void BindSnapshot(std::shared_ptr<const DatabaseSnapshot> snapshot) {
    snapshot_ = std::move(snapshot);
  }
  void ClearSnapshot() { snapshot_.reset(); }

 private:
  Result<std::string> ExecCreate(const CreateStatement& stmt);
  Result<std::string> ExecDrop(const DropStatement& stmt);
  Result<std::string> ExecInsert(const InsertStatement& stmt);
  Result<std::string> ExecDelete(const DeleteStatement& stmt);
  Result<std::string> ExecUpdate(const UpdateStatement& stmt);
  Result<std::string> ExecSelect(const SelectStatement& stmt);
  Result<std::string> ExecShow(const ShowStatement& stmt);
  Result<std::string> ExecDescribe(const DescribeStatement& stmt);
  Result<std::string> ExecNest(const NestStatement& stmt);
  Result<std::string> ExecList();
  Result<std::string> ExecStats(const StatsStatement& stmt);
  Result<std::string> ExecCheckpoint();
  Result<std::string> ExecTxn(const TxnStatement& stmt);
  Result<std::string> ExecExplain(const ExplainStatement& stmt);

  /// Compiles `stmt` into an operator tree against the bound view
  /// (snapshot when pinned, live database otherwise) — shared by
  /// ExecSelect and EXPLAIN.
  Result<SelectPlan> PlanSelectStatement(const SelectStatement& stmt) const;

  // Read dispatch: the bound snapshot when one is pinned, else the
  // live database. Only the read-only exec functions go through these.
  Result<const RelationInfo*> ViewInfo(const std::string& name) const;
  Result<const NfrRelation*> ViewRelation(const std::string& name) const;
  Result<RelationStats> ViewStats(const std::string& name) const;
  std::vector<std::string> ViewList() const;

  Database* db_;
  /// Non-null only while a read-only statement runs against a pinned
  /// snapshot (BindSnapshot).
  std::shared_ptr<const DatabaseSnapshot> snapshot_;
  /// Non-null only while a PROFILE'd statement runs: the exec functions
  /// open TraceSpans into it (no-ops otherwise).
  Trace* trace_ = nullptr;
};

}  // namespace nf2

#endif  // NF2_NFRQL_EXECUTOR_H_
