#include "nfrql/token.h"

#include "util/string_util.h"

namespace nf2 {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kString:
      return "string";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kDouble:
      return "double";
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kComma:
      return "','";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kEq:
      return "'='";
    case TokenType::kNe:
      return "'!='";
    case TokenType::kLt:
      return "'<'";
    case TokenType::kLe:
      return "'<='";
    case TokenType::kGt:
      return "'>'";
    case TokenType::kGe:
      return "'>='";
    case TokenType::kArrow:
      return "'->'";
    case TokenType::kDoubleArrow:
      return "'->->'";
    case TokenType::kPipe:
      return "'|'";
    case TokenType::kLBrace:
      return "'{'";
    case TokenType::kRBrace:
      return "'}'";
    case TokenType::kEnd:
      return "end of input";
  }
  return "?";
}

bool Token::IsKeyword(const std::string& keyword) const {
  return type == TokenType::kIdentifier && ToUpper(text) == ToUpper(keyword);
}

}  // namespace nf2
