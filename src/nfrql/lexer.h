#ifndef NF2_NFRQL_LEXER_H_
#define NF2_NFRQL_LEXER_H_

#include <string_view>
#include <vector>

#include "nfrql/token.h"
#include "util/result.h"

namespace nf2 {

/// Tokenizes an NFRQL statement. The token stream always ends with a
/// kEnd token. Errors report the byte offset of the offending input.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace nf2

#endif  // NF2_NFRQL_LEXER_H_
