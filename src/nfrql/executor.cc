#include "nfrql/executor.h"

#include <algorithm>

#include "core/format.h"
#include "core/nest.h"
#include "exec/plan.h"
#include "nfrql/parser.h"
#include "util/string_util.h"

namespace nf2 {

namespace {

Result<ValueType> ParseTypeName(const std::string& name) {
  std::string upper = ToUpper(name);
  if (upper == "STRING" || upper == "TEXT") return ValueType::kString;
  if (upper == "INT" || upper == "INTEGER") return ValueType::kInt;
  if (upper == "DOUBLE" || upper == "REAL") return ValueType::kDouble;
  if (upper == "BOOL" || upper == "BOOLEAN") return ValueType::kBool;
  if (upper == "SET") return ValueType::kSet;
  return Status::InvalidArgument(StrCat("unknown type '", name, "'"));
}

Result<AttrSet> ResolveAttrs(const Schema& schema,
                             const std::vector<std::string>& names) {
  AttrSet out;
  for (const std::string& name : names) {
    NF2_ASSIGN_OR_RETURN(size_t idx, schema.RequireIndex(name));
    out.Add(idx);
  }
  return out;
}

std::string OpLabel(const char* op, const std::string& name) {
  return StrCat(op, "(", name, ")");
}

/// Snapshots a relation's §4 counters on construction and attaches the
/// deltas (compositions, decompositions, ...) to `span` on destruction
/// — the PROFILE numbers come from the same UpdateStats the registry
/// mirrors, so they match `\metrics` exactly. Declare after the span it
/// annotates so it closes first.
class Section4Probe {
 public:
  Section4Probe(Database* db, std::string name, TraceSpan* span)
      : db_(db), name_(std::move(name)), span_(span) {
    if (span_ == nullptr) return;
    Result<UpdateStats> stats = db_->RelationUpdateStats(name_);
    if (stats.ok()) before_ = *stats;
  }
  ~Section4Probe() {
    if (span_ == nullptr) return;
    Result<UpdateStats> stats = db_->RelationUpdateStats(name_);
    if (!stats.ok()) return;
    UpdateStats d = *stats - before_;
    span_->AddAttr("compositions", static_cast<int64_t>(d.compositions));
    span_->AddAttr("decompositions",
                   static_cast<int64_t>(d.decompositions));
    span_->AddAttr("recons_calls", static_cast<int64_t>(d.recons_calls));
    span_->AddAttr("candidate_scans",
                   static_cast<int64_t>(d.candidate_scans));
  }

 private:
  Database* db_;
  std::string name_;
  TraceSpan* span_;
  UpdateStats before_;
};

/// Plan-tree label for statements EXPLAIN renders as a single operator.
std::string StatementLabel(const Statement& stmt) {
  return std::visit(
      [](const auto& s) -> std::string {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, CreateStatement>) {
          return OpLabel("create", s.name);
        } else if constexpr (std::is_same_v<T, DropStatement>) {
          return OpLabel("drop", s.name);
        } else if constexpr (std::is_same_v<T, InsertStatement>) {
          return OpLabel("insert", s.name);
        } else if constexpr (std::is_same_v<T, DeleteStatement>) {
          return OpLabel("delete", s.name);
        } else if constexpr (std::is_same_v<T, UpdateStatement>) {
          return OpLabel("update", s.name);
        } else if constexpr (std::is_same_v<T, SelectStatement>) {
          return OpLabel("select", s.name);
        } else if constexpr (std::is_same_v<T, ShowStatement>) {
          return OpLabel("show", s.name);
        } else if constexpr (std::is_same_v<T, DescribeStatement>) {
          return OpLabel("describe", s.name);
        } else if constexpr (std::is_same_v<T, NestStatement>) {
          return OpLabel(s.unnest ? "unnest" : "nest", s.name);
        } else if constexpr (std::is_same_v<T, StatsStatement>) {
          return OpLabel("stats", s.name);
        } else if constexpr (std::is_same_v<T, ListStatement>) {
          return "list";
        } else if constexpr (std::is_same_v<T, CheckpointStatement>) {
          return "checkpoint";
        } else if constexpr (std::is_same_v<T, TxnStatement>) {
          return "txn";
        } else {
          return "explain";
        }
      },
      stmt);
}

/// Builds the EXPLAIN plan tree under `parent` — the same operator
/// structure the PROFILE spans produce, with only statically-known
/// attributes, so the output is deterministic.
void BuildPlan(const Statement& stmt, SpanNode* parent) {
  if (const auto* ins = std::get_if<InsertStatement>(&stmt)) {
    SpanNode* n = parent->AddChild(OpLabel("insert", ins->name));
    n->AddAttr("rows_in", static_cast<int64_t>(ins->rows.size()));
    n->AddChild("recons");
    return;
  }
  if (const auto* del = std::get_if<DeleteStatement>(&stmt)) {
    SpanNode* n = parent->AddChild(OpLabel("delete", del->name));
    if (!del->rows.empty()) {
      n->AddAttr("rows_in", static_cast<int64_t>(del->rows.size()));
    } else {
      n->AddChild(OpLabel("filter", del->name));
    }
    n->AddChild("recons");
    return;
  }
  if (const auto* upd = std::get_if<UpdateStatement>(&stmt)) {
    SpanNode* n = parent->AddChild(OpLabel("update", upd->name));
    n->AddChild(upd->where != nullptr ? OpLabel("filter", upd->name)
                                      : OpLabel("scan", upd->name));
    n->AddChild("recons");
    return;
  }
  // SELECT is handled by ExecExplain via the query planner — the plan
  // tree IS the operator tree the executor runs.
  parent->AddChild(StatementLabel(stmt));
}

/// Mirrors a compiled operator tree into span nodes under `parent`.
/// EXPLAIN passes with_stats=false (deterministic, labels only);
/// PROFILE passes true after execution so per-operator wall time,
/// rows_out, and operator stats become span attributes.
void AttachPlan(const PlanOp& op, SpanNode* parent, bool with_stats) {
  SpanNode* n = parent->AddChild(op.label());
  if (with_stats) {
    n->duration_ns = op.elapsed_ns();
    n->AddAttr("rows_out", static_cast<int64_t>(op.rows_out()));
    for (const auto& [key, value] : op.stats()) {
      n->AddAttr(key, value);
    }
  }
  for (const auto& child : op.children()) {
    AttachPlan(*child, n, with_stats);
  }
}

/// CatalogView over the live database.
class LiveCatalog : public CatalogView {
 public:
  explicit LiveCatalog(const Database* db) : db_(db) {}

  Result<BoundRelation> Bind(const std::string& name) const override {
    BoundRelation out;
    NF2_ASSIGN_OR_RETURN(out.info, db_->Info(name));
    NF2_ASSIGN_OR_RETURN(out.relation, db_->Canonical(name));
    return out;
  }

  const ValueDictionary* frozen_dictionary() const override {
    return nullptr;
  }

 private:
  const Database* db_;
};

/// CatalogView over a pinned snapshot: lookups resolve against the
/// frozen dictionary and never touch live engine structures. The
/// executor holds the snapshot shared_ptr for the statement's
/// duration, which keeps every bound RelationVersion alive.
class SnapshotCatalog : public CatalogView {
 public:
  explicit SnapshotCatalog(const DatabaseSnapshot* snap) : snap_(snap) {}

  Result<BoundRelation> Bind(const std::string& name) const override {
    std::shared_ptr<const DatabaseSnapshot::RelationVersion> version =
        snap_->FindVersion(name);
    if (version == nullptr) {
      return Status::NotFound(StrCat("relation '", name, "' not found"));
    }
    return BoundRelation{&version->info, version->relation.get()};
  }

  const ValueDictionary* frozen_dictionary() const override {
    return snap_->dictionary().get();
  }

 private:
  const DatabaseSnapshot* snap_;
};

}  // namespace

// Exported (executor.h): the shard router's merge layer renders k-way
// merged ORDER BY rows through the same function so sharded output is
// byte-identical to single-engine output.
std::string RenderRowsInOrder(const Schema& schema,
                              const std::vector<FlatTuple>& rows) {
  const size_t cols = schema.degree();
  std::vector<size_t> width(cols, 0);
  for (size_t c = 0; c < cols; ++c) {
    width[c] = schema.attribute(c).name.size();
  }
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const FlatTuple& row : rows) {
    std::vector<std::string> line;
    line.reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      line.push_back(row.at(c).ToString());
      width[c] = std::max(width[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  auto rule = [&]() {
    std::string out = "+";
    for (size_t c = 0; c < cols; ++c) {
      out += std::string(width[c] + 2, '-');
      out += "+";
    }
    out += "\n";
    return out;
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < cols; ++c) {
      out += " " + row[c] + std::string(width[c] - row[c].size(), ' ') +
             " |";
    }
    out += "\n";
    return out;
  };
  std::vector<std::string> header;
  header.reserve(cols);
  for (size_t c = 0; c < cols; ++c) {
    header.push_back(schema.attribute(c).name);
  }
  std::string out = rule();
  out += line(header);
  out += rule();
  for (const auto& row : cells) out += line(row);
  out += rule();
  return out;
}

Result<std::string> Executor::Execute(std::string_view source) {
  NF2_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(source));
  return Execute(stmt);
}

Result<std::string> Executor::Execute(const Statement& stmt) {
  return std::visit(
      [this](const auto& s) -> Result<std::string> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, CreateStatement>) {
          return ExecCreate(s);
        } else if constexpr (std::is_same_v<T, DropStatement>) {
          return ExecDrop(s);
        } else if constexpr (std::is_same_v<T, InsertStatement>) {
          return ExecInsert(s);
        } else if constexpr (std::is_same_v<T, DeleteStatement>) {
          return ExecDelete(s);
        } else if constexpr (std::is_same_v<T, UpdateStatement>) {
          return ExecUpdate(s);
        } else if constexpr (std::is_same_v<T, SelectStatement>) {
          return ExecSelect(s);
        } else if constexpr (std::is_same_v<T, ShowStatement>) {
          return ExecShow(s);
        } else if constexpr (std::is_same_v<T, DescribeStatement>) {
          return ExecDescribe(s);
        } else if constexpr (std::is_same_v<T, NestStatement>) {
          return ExecNest(s);
        } else if constexpr (std::is_same_v<T, ListStatement>) {
          return ExecList();
        } else if constexpr (std::is_same_v<T, StatsStatement>) {
          return ExecStats(s);
        } else if constexpr (std::is_same_v<T, TxnStatement>) {
          return ExecTxn(s);
        } else if constexpr (std::is_same_v<T, ExplainStatement>) {
          return ExecExplain(s);
        } else {
          return ExecCheckpoint();
        }
      },
      stmt);
}

Result<std::string> Executor::ExecCreate(const CreateStatement& stmt) {
  std::vector<Attribute> attrs;
  for (const auto& [name, type_name] : stmt.attributes) {
    NF2_ASSIGN_OR_RETURN(ValueType type, ParseTypeName(type_name));
    attrs.push_back({name, type});
  }
  Schema schema(std::move(attrs));
  Permutation order;
  if (!stmt.nest_order.empty()) {
    NF2_ASSIGN_OR_RETURN(order,
                         PermutationFromNames(schema, stmt.nest_order));
  }
  std::vector<Fd> fds;
  for (const auto& clause : stmt.fds) {
    NF2_ASSIGN_OR_RETURN(AttrSet lhs, ResolveAttrs(schema, clause.lhs));
    NF2_ASSIGN_OR_RETURN(AttrSet rhs, ResolveAttrs(schema, clause.rhs));
    fds.push_back(Fd{lhs, rhs});
  }
  std::vector<Mvd> mvds;
  for (const auto& clause : stmt.mvds) {
    NF2_ASSIGN_OR_RETURN(AttrSet lhs, ResolveAttrs(schema, clause.lhs));
    NF2_ASSIGN_OR_RETURN(AttrSet rhs, ResolveAttrs(schema, clause.rhs));
    mvds.push_back(Mvd{lhs, rhs});
  }
  NF2_RETURN_IF_ERROR(db_->CreateRelation(stmt.name, schema, order,
                                          std::move(fds), std::move(mvds)));
  NF2_ASSIGN_OR_RETURN(const RelationInfo* info, db_->Info(stmt.name));
  std::vector<std::string> order_names;
  for (size_t p : info->nest_order) {
    order_names.push_back(info->schema.attribute(p).name);
  }
  return StrCat("created relation ", stmt.name, " nest order [",
                Join(order_names, ", "), "]");
}

Result<std::string> Executor::ExecDrop(const DropStatement& stmt) {
  NF2_RETURN_IF_ERROR(db_->DropRelation(stmt.name));
  return StrCat("dropped relation ", stmt.name);
}

Result<std::string> Executor::ExecInsert(const InsertStatement& stmt) {
  TraceSpan span(trace_, OpLabel("insert", stmt.name));
  span.AddAttr("rows_in", static_cast<int64_t>(stmt.rows.size()));
  TraceSpan apply(trace_, "recons");
  Section4Probe probe(db_, stmt.name,
                      trace_ == nullptr ? nullptr : &apply);
  size_t inserted = 0;
  for (const std::vector<Value>& row : stmt.rows) {
    NF2_RETURN_IF_ERROR(db_->Insert(stmt.name, FlatTuple(row)));
    ++inserted;
  }
  return StrCat("inserted ", inserted, " tuple(s) into ", stmt.name);
}

Result<std::string> Executor::ExecDelete(const DeleteStatement& stmt) {
  TraceSpan span(trace_, OpLabel("delete", stmt.name));
  size_t deleted = 0;
  if (!stmt.rows.empty()) {
    span.AddAttr("rows_in", static_cast<int64_t>(stmt.rows.size()));
    TraceSpan apply(trace_, "recons");
    Section4Probe probe(db_, stmt.name,
                        trace_ == nullptr ? nullptr : &apply);
    for (const std::vector<Value>& row : stmt.rows) {
      NF2_RETURN_IF_ERROR(db_->Delete(stmt.name, FlatTuple(row)));
      ++deleted;
    }
  } else {
    NF2_ASSIGN_OR_RETURN(const RelationInfo* info, db_->Info(stmt.name));
    if (stmt.where == nullptr) {
      // Reachable through the server protocol (hand-built statements);
      // the parser also rejects this form. Refusing beats a crash and
      // beats silently deleting everything.
      return Status::InvalidArgument(
          "DELETE needs a VALUES list or a WHERE clause");
    }
    FlatRelation matching(info->schema);
    {
      TraceSpan filter(trace_, OpLabel("filter", stmt.name));
      NF2_ASSIGN_OR_RETURN(Predicate pred,
                           ResolveCondition(*stmt.where, info->schema));
      NF2_ASSIGN_OR_RETURN(matching, db_->Query(stmt.name, pred));
      filter.AddAttr("rows_out", static_cast<int64_t>(matching.size()));
    }
    TraceSpan apply(trace_, "recons");
    Section4Probe probe(db_, stmt.name,
                        trace_ == nullptr ? nullptr : &apply);
    for (const FlatTuple& t : matching.tuples()) {
      NF2_RETURN_IF_ERROR(db_->Delete(stmt.name, t));
      ++deleted;
    }
  }
  return StrCat("deleted ", deleted, " tuple(s) from ", stmt.name);
}

Result<std::string> Executor::ExecUpdate(const UpdateStatement& stmt) {
  TraceSpan span(trace_, OpLabel("update", stmt.name));
  NF2_ASSIGN_OR_RETURN(const RelationInfo* info, db_->Info(stmt.name));
  std::vector<std::pair<size_t, Value>> sets;
  for (const auto& [attr, literal] : stmt.sets) {
    NF2_ASSIGN_OR_RETURN(size_t idx, info->schema.RequireIndex(attr));
    sets.emplace_back(idx, literal);
  }
  FlatRelation matching(info->schema);
  if (stmt.where != nullptr) {
    TraceSpan filter(trace_, OpLabel("filter", stmt.name));
    NF2_ASSIGN_OR_RETURN(Predicate pred,
                         ResolveCondition(*stmt.where, info->schema));
    NF2_ASSIGN_OR_RETURN(matching, db_->Query(stmt.name, pred));
    filter.AddAttr("rows_out", static_cast<int64_t>(matching.size()));
  } else {
    TraceSpan scan(trace_, OpLabel("scan", stmt.name));
    NF2_ASSIGN_OR_RETURN(matching, db_->Scan(stmt.name));
    scan.AddAttr("rows_out", static_cast<int64_t>(matching.size()));
  }
  // Set semantics: delete each matching tuple, insert its rewrite.
  // Rewrites that collide with existing tuples simply merge.
  TraceSpan apply(trace_, "recons");
  Section4Probe probe(db_, stmt.name,
                      trace_ == nullptr ? nullptr : &apply);
  size_t updated = 0;
  for (const FlatTuple& old_tuple : matching.tuples()) {
    FlatTuple new_tuple = old_tuple;
    for (const auto& [idx, literal] : sets) {
      new_tuple.at(idx) = literal;
    }
    if (new_tuple == old_tuple) continue;
    NF2_RETURN_IF_ERROR(db_->Delete(stmt.name, old_tuple));
    Status inserted = db_->Insert(stmt.name, new_tuple);
    if (!inserted.ok() &&
        inserted.code() != StatusCode::kAlreadyExists) {
      // The old tuple is already deleted; re-insert it before
      // surfacing the error so a rejected rewrite (FD violation, type
      // mismatch) never silently loses the original row.
      Status restored = db_->Insert(stmt.name, old_tuple);
      if (!restored.ok()) {
        return Status::Internal(StrCat(
            "update failed (", inserted.message(),
            ") and restoring the original tuple also failed: ",
            restored.message()));
      }
      return inserted;
    }
    ++updated;
  }
  return StrCat("updated ", updated, " tuple(s) in ", stmt.name);
}

Result<const RelationInfo*> Executor::ViewInfo(
    const std::string& name) const {
  return snapshot_ != nullptr ? snapshot_->Info(name) : db_->Info(name);
}

Result<const NfrRelation*> Executor::ViewRelation(
    const std::string& name) const {
  return snapshot_ != nullptr ? snapshot_->Relation(name)
                              : db_->Relation(name);
}

Result<RelationStats> Executor::ViewStats(const std::string& name) const {
  return snapshot_ != nullptr ? snapshot_->Stats(name) : db_->Stats(name);
}

std::vector<std::string> Executor::ViewList() const {
  return snapshot_ != nullptr ? snapshot_->ListRelations()
                              : db_->ListRelations();
}

Result<SelectPlan> Executor::PlanSelectStatement(
    const SelectStatement& stmt) const {
  if (snapshot_ != nullptr) {
    SnapshotCatalog catalog(snapshot_.get());
    return PlanSelect(stmt, catalog);
  }
  LiveCatalog catalog(db_);
  return PlanSelect(stmt, catalog);
}

Result<std::string> Executor::ExecSelect(const SelectStatement& stmt) {
  TraceSpan span(trace_, OpLabel("select", stmt.name));
  NF2_ASSIGN_OR_RETURN(SelectPlan plan, PlanSelectStatement(stmt));
  if (trace_ != nullptr) plan.root->EnableTiming();
  plan.root->Open();
  std::vector<FlatTuple> rows;
  FlatTuple row;
  while (plan.root->Next(&row)) {
    rows.push_back(std::move(row));
  }
  plan.root->Close();
  if (span.node() != nullptr) {
    AttachPlan(*plan.root, span.node(), /*with_stats=*/true);
  }
  if (plan.grouped) {
    // "group\tvalue..." lines, one per group, in pipeline order.
    std::string out;
    for (const FlatTuple& r : rows) {
      std::vector<std::string> cells;
      cells.reserve(r.degree());
      for (const Value& v : r.values()) cells.push_back(v.ToString());
      out += StrCat(Join(cells, "\t"), "\n");
    }
    out += StrCat(rows.size(), " group(s)");
    return out;
  }
  if (plan.aggregate) {
    // Ungrouped aggregates produce exactly one row, rendered bare so
    // `SELECT COUNT(*) ...` answers are machine-friendly ("2").
    if (rows.empty()) return std::string();
    std::vector<std::string> cells;
    cells.reserve(rows.front().degree());
    for (const Value& v : rows.front().values()) {
      cells.push_back(v.ToString());
    }
    return Join(cells, "\t");
  }
  if (plan.ordered) {
    return StrCat(RenderRowsInOrder(plan.root->schema(), rows), rows.size(),
                  " row(s)");
  }
  FlatRelation result(plan.root->schema(), std::move(rows));
  return StrCat(RenderTable(result), result.size(), " row(s)");
}

Result<std::string> Executor::ExecShow(const ShowStatement& stmt) {
  NF2_ASSIGN_OR_RETURN(const NfrRelation* rel, ViewRelation(stmt.name));
  return RenderTable(*rel, stmt.name);
}

Result<std::string> Executor::ExecDescribe(const DescribeStatement& stmt) {
  NF2_ASSIGN_OR_RETURN(const RelationInfo* info, ViewInfo(stmt.name));
  NF2_ASSIGN_OR_RETURN(RelationStats stats, ViewStats(stmt.name));
  std::vector<std::string> order_names;
  for (size_t p : info->nest_order) {
    order_names.push_back(info->schema.attribute(p).name);
  }
  std::string out = StrCat("relation  : ", info->name, "\n",
                           "schema    : ", info->schema.ToString(), "\n",
                           "nest order: ", Join(order_names, " then "),
                           "\n");
  if (!info->fds.empty()) {
    out += StrCat("FDs       : ", info->fd_set().ToString(info->schema),
                  "\n");
  }
  if (!info->mvds.empty()) {
    out += StrCat("MVDs      : ", info->mvd_set().ToString(info->schema),
                  "\n");
  }
  out += StrCat("size      : ", stats.nfr_tuples, " NFR tuples, |R*|=",
                stats.flat_tuples, ", reduction x",
                stats.TupleReduction());
  return out;
}

Result<std::string> Executor::ExecNest(const NestStatement& stmt) {
  NF2_ASSIGN_OR_RETURN(const NfrRelation* rel, ViewRelation(stmt.name));
  NfrRelation view = *rel;
  for (const std::string& attr : stmt.attributes) {
    NF2_ASSIGN_OR_RETURN(size_t idx, view.schema().RequireIndex(attr));
    view = stmt.unnest ? UnnestOn(view, idx) : NestOn(view, idx);
  }
  return RenderTable(view, StrCat(stmt.unnest ? "UNNEST " : "NEST ",
                                  stmt.name, " ON ",
                                  Join(stmt.attributes, ", ")));
}

Result<std::string> Executor::ExecList() {
  std::vector<std::string> names = ViewList();
  if (names.empty()) return std::string("no relations");
  return Join(names, "\n");
}

Result<std::string> Executor::ExecStats(const StatsStatement& stmt) {
  NF2_ASSIGN_OR_RETURN(RelationStats stats, ViewStats(stmt.name));
  return stats.ToString();
}

Result<std::string> Executor::ExecCheckpoint() {
  TraceSpan span(trace_, "checkpoint");
  NF2_RETURN_IF_ERROR(db_->Checkpoint());
  return std::string("checkpoint complete");
}

Result<std::string> Executor::ExecExplain(const ExplainStatement& stmt) {
  NF2_CHECK(stmt.inner != nullptr);
  const Statement& inner = stmt.inner->stmt;
  if (!stmt.profile) {
    Trace plan_tree;
    if (const auto* sel = std::get_if<SelectStatement>(&inner)) {
      // SELECT: run the real planner so EXPLAIN shows exactly the
      // operator tree execution would use (index_scan vs scan, ...).
      NF2_ASSIGN_OR_RETURN(SelectPlan plan, PlanSelectStatement(*sel));
      SpanNode* root =
          plan_tree.mutable_root()->AddChild(OpLabel("select", sel->name));
      AttachPlan(*plan.root, root, /*with_stats=*/false);
    } else {
      BuildPlan(inner, plan_tree.mutable_root());
    }
    return StrCat("EXPLAIN\n", plan_tree.Render(TraceRender::kPlanOnly));
  }
  Trace trace;
  trace_ = &trace;
  Result<std::string> result = Execute(inner);
  trace_ = nullptr;
  NF2_RETURN_IF_ERROR(result.status());
  if (trace.root().children.empty()) {
    // Statements without dedicated instrumentation still report as one
    // (untimed) operator rather than an empty profile.
    trace.mutable_root()->AddChild(StatementLabel(inner));
  }
  return StrCat(*result, "\n\nPROFILE\n",
                trace.Render(TraceRender::kWithTimes));
}

Result<std::string> Executor::ExecTxn(const TxnStatement& stmt) {
  switch (stmt.kind) {
    case TxnStatement::Kind::kBegin:
      NF2_RETURN_IF_ERROR(db_->Begin());
      return std::string("transaction started");
    case TxnStatement::Kind::kCommit:
      NF2_RETURN_IF_ERROR(db_->Commit());
      return std::string("transaction committed");
    case TxnStatement::Kind::kRollback:
      NF2_RETURN_IF_ERROR(db_->Rollback());
      return std::string("transaction rolled back");
  }
  return Status::Internal("unhandled txn kind");
}

}  // namespace nf2
