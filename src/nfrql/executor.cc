#include "nfrql/executor.h"

#include "algebra/operators.h"
#include "core/format.h"
#include "core/nest.h"
#include "nfrql/parser.h"
#include "util/string_util.h"

namespace nf2 {

namespace {

Result<ValueType> ParseTypeName(const std::string& name) {
  std::string upper = ToUpper(name);
  if (upper == "STRING" || upper == "TEXT") return ValueType::kString;
  if (upper == "INT" || upper == "INTEGER") return ValueType::kInt;
  if (upper == "DOUBLE" || upper == "REAL") return ValueType::kDouble;
  if (upper == "BOOL" || upper == "BOOLEAN") return ValueType::kBool;
  if (upper == "SET") return ValueType::kSet;
  return Status::InvalidArgument(StrCat("unknown type '", name, "'"));
}

Result<AttrSet> ResolveAttrs(const Schema& schema,
                             const std::vector<std::string>& names) {
  AttrSet out;
  for (const std::string& name : names) {
    NF2_ASSIGN_OR_RETURN(size_t idx, schema.RequireIndex(name));
    out.Add(idx);
  }
  return out;
}

}  // namespace

Result<std::string> Executor::Execute(std::string_view source) {
  NF2_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(source));
  return Execute(stmt);
}

Result<std::string> Executor::Execute(const Statement& stmt) {
  return std::visit(
      [this](const auto& s) -> Result<std::string> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, CreateStatement>) {
          return ExecCreate(s);
        } else if constexpr (std::is_same_v<T, DropStatement>) {
          return ExecDrop(s);
        } else if constexpr (std::is_same_v<T, InsertStatement>) {
          return ExecInsert(s);
        } else if constexpr (std::is_same_v<T, DeleteStatement>) {
          return ExecDelete(s);
        } else if constexpr (std::is_same_v<T, UpdateStatement>) {
          return ExecUpdate(s);
        } else if constexpr (std::is_same_v<T, SelectStatement>) {
          return ExecSelect(s);
        } else if constexpr (std::is_same_v<T, ShowStatement>) {
          return ExecShow(s);
        } else if constexpr (std::is_same_v<T, DescribeStatement>) {
          return ExecDescribe(s);
        } else if constexpr (std::is_same_v<T, NestStatement>) {
          return ExecNest(s);
        } else if constexpr (std::is_same_v<T, ListStatement>) {
          return ExecList();
        } else if constexpr (std::is_same_v<T, StatsStatement>) {
          return ExecStats(s);
        } else if constexpr (std::is_same_v<T, TxnStatement>) {
          return ExecTxn(s);
        } else {
          return ExecCheckpoint();
        }
      },
      stmt);
}

Result<std::string> Executor::ExecCreate(const CreateStatement& stmt) {
  std::vector<Attribute> attrs;
  for (const auto& [name, type_name] : stmt.attributes) {
    NF2_ASSIGN_OR_RETURN(ValueType type, ParseTypeName(type_name));
    attrs.push_back({name, type});
  }
  Schema schema(std::move(attrs));
  Permutation order;
  if (!stmt.nest_order.empty()) {
    NF2_ASSIGN_OR_RETURN(order,
                         PermutationFromNames(schema, stmt.nest_order));
  }
  std::vector<Fd> fds;
  for (const auto& clause : stmt.fds) {
    NF2_ASSIGN_OR_RETURN(AttrSet lhs, ResolveAttrs(schema, clause.lhs));
    NF2_ASSIGN_OR_RETURN(AttrSet rhs, ResolveAttrs(schema, clause.rhs));
    fds.push_back(Fd{lhs, rhs});
  }
  std::vector<Mvd> mvds;
  for (const auto& clause : stmt.mvds) {
    NF2_ASSIGN_OR_RETURN(AttrSet lhs, ResolveAttrs(schema, clause.lhs));
    NF2_ASSIGN_OR_RETURN(AttrSet rhs, ResolveAttrs(schema, clause.rhs));
    mvds.push_back(Mvd{lhs, rhs});
  }
  NF2_RETURN_IF_ERROR(db_->CreateRelation(stmt.name, schema, order,
                                          std::move(fds), std::move(mvds)));
  NF2_ASSIGN_OR_RETURN(const RelationInfo* info, db_->Info(stmt.name));
  std::vector<std::string> order_names;
  for (size_t p : info->nest_order) {
    order_names.push_back(info->schema.attribute(p).name);
  }
  return StrCat("created relation ", stmt.name, " nest order [",
                Join(order_names, ", "), "]");
}

Result<std::string> Executor::ExecDrop(const DropStatement& stmt) {
  NF2_RETURN_IF_ERROR(db_->DropRelation(stmt.name));
  return StrCat("dropped relation ", stmt.name);
}

Result<std::string> Executor::ExecInsert(const InsertStatement& stmt) {
  size_t inserted = 0;
  for (const std::vector<Value>& row : stmt.rows) {
    NF2_RETURN_IF_ERROR(db_->Insert(stmt.name, FlatTuple(row)));
    ++inserted;
  }
  return StrCat("inserted ", inserted, " tuple(s) into ", stmt.name);
}

Result<std::string> Executor::ExecDelete(const DeleteStatement& stmt) {
  size_t deleted = 0;
  if (!stmt.rows.empty()) {
    for (const std::vector<Value>& row : stmt.rows) {
      NF2_RETURN_IF_ERROR(db_->Delete(stmt.name, FlatTuple(row)));
      ++deleted;
    }
  } else {
    NF2_ASSIGN_OR_RETURN(const RelationInfo* info, db_->Info(stmt.name));
    NF2_CHECK(stmt.where != nullptr);
    NF2_ASSIGN_OR_RETURN(Predicate pred,
                         ResolveCondition(*stmt.where, info->schema));
    NF2_ASSIGN_OR_RETURN(FlatRelation matching,
                         db_->Query(stmt.name, pred));
    for (const FlatTuple& t : matching.tuples()) {
      NF2_RETURN_IF_ERROR(db_->Delete(stmt.name, t));
      ++deleted;
    }
  }
  return StrCat("deleted ", deleted, " tuple(s) from ", stmt.name);
}

Result<std::string> Executor::ExecUpdate(const UpdateStatement& stmt) {
  NF2_ASSIGN_OR_RETURN(const RelationInfo* info, db_->Info(stmt.name));
  std::vector<std::pair<size_t, Value>> sets;
  for (const auto& [attr, literal] : stmt.sets) {
    NF2_ASSIGN_OR_RETURN(size_t idx, info->schema.RequireIndex(attr));
    sets.emplace_back(idx, literal);
  }
  FlatRelation matching(info->schema);
  if (stmt.where != nullptr) {
    NF2_ASSIGN_OR_RETURN(Predicate pred,
                         ResolveCondition(*stmt.where, info->schema));
    NF2_ASSIGN_OR_RETURN(matching, db_->Query(stmt.name, pred));
  } else {
    NF2_ASSIGN_OR_RETURN(matching, db_->Scan(stmt.name));
  }
  // Set semantics: delete each matching tuple, insert its rewrite.
  // Rewrites that collide with existing tuples simply merge.
  size_t updated = 0;
  for (const FlatTuple& old_tuple : matching.tuples()) {
    FlatTuple new_tuple = old_tuple;
    for (const auto& [idx, literal] : sets) {
      new_tuple.at(idx) = literal;
    }
    if (new_tuple == old_tuple) continue;
    NF2_RETURN_IF_ERROR(db_->Delete(stmt.name, old_tuple));
    Status inserted = db_->Insert(stmt.name, new_tuple);
    if (!inserted.ok() &&
        inserted.code() != StatusCode::kAlreadyExists) {
      return inserted;
    }
    ++updated;
  }
  return StrCat("updated ", updated, " tuple(s) in ", stmt.name);
}

Result<std::string> Executor::ExecSelect(const SelectStatement& stmt) {
  if (!stmt.group_attr.empty()) {
    // Aggregate form: counts come straight off the NFR components.
    NF2_ASSIGN_OR_RETURN(const RelationInfo* info, db_->Info(stmt.name));
    NF2_ASSIGN_OR_RETURN(const NfrRelation* rel, db_->Relation(stmt.name));
    NF2_ASSIGN_OR_RETURN(size_t group_idx,
                         info->schema.RequireIndex(stmt.group_attr));
    NF2_ASSIGN_OR_RETURN(size_t count_idx,
                         info->schema.RequireIndex(stmt.count_attr));
    NfrRelation view = *rel;
    if (stmt.where != nullptr) {
      NF2_ASSIGN_OR_RETURN(Predicate pred,
                           ResolveCondition(*stmt.where, info->schema));
      view = SelectNfrExact(*rel, pred);
    }
    NF2_ASSIGN_OR_RETURN(std::vector<GroupCount> counts,
                         GroupedDistinctCounts(view, group_idx, count_idx));
    std::string out;
    for (const GroupCount& gc : counts) {
      out += StrCat(gc.group.ToString(), "\t", gc.count, "\n");
    }
    out += StrCat(counts.size(), " group(s)");
    return out;
  }
  FlatRelation result(Schema{});
  if (stmt.joins.empty()) {
    NF2_ASSIGN_OR_RETURN(const RelationInfo* info, db_->Info(stmt.name));
    if (stmt.where != nullptr) {
      // Single-relation selections evaluate against the NFR directly.
      NF2_ASSIGN_OR_RETURN(Predicate pred,
                           ResolveCondition(*stmt.where, info->schema));
      NF2_ASSIGN_OR_RETURN(result, db_->Query(stmt.name, pred));
    } else {
      NF2_ASSIGN_OR_RETURN(result, db_->Scan(stmt.name));
    }
  } else {
    // Natural-join the scans left to right, then filter.
    NF2_ASSIGN_OR_RETURN(result, db_->Scan(stmt.name));
    for (const std::string& next : stmt.joins) {
      NF2_ASSIGN_OR_RETURN(FlatRelation right, db_->Scan(next));
      result = NaturalJoin(result, right);
    }
    if (stmt.where != nullptr) {
      NF2_ASSIGN_OR_RETURN(Predicate pred,
                           ResolveCondition(*stmt.where, result.schema()));
      result = Select(result, pred);
    }
  }
  if (stmt.count_only) {
    return StrCat(result.size());
  }
  if (!stmt.columns.empty()) {
    NF2_ASSIGN_OR_RETURN(result, ProjectByName(result, stmt.columns));
  }
  return StrCat(RenderTable(result), result.size(), " row(s)");
}

Result<std::string> Executor::ExecShow(const ShowStatement& stmt) {
  NF2_ASSIGN_OR_RETURN(const NfrRelation* rel, db_->Relation(stmt.name));
  return RenderTable(*rel, stmt.name);
}

Result<std::string> Executor::ExecDescribe(const DescribeStatement& stmt) {
  NF2_ASSIGN_OR_RETURN(const RelationInfo* info, db_->Info(stmt.name));
  NF2_ASSIGN_OR_RETURN(RelationStats stats, db_->Stats(stmt.name));
  std::vector<std::string> order_names;
  for (size_t p : info->nest_order) {
    order_names.push_back(info->schema.attribute(p).name);
  }
  std::string out = StrCat("relation  : ", info->name, "\n",
                           "schema    : ", info->schema.ToString(), "\n",
                           "nest order: ", Join(order_names, " then "),
                           "\n");
  if (!info->fds.empty()) {
    out += StrCat("FDs       : ", info->fd_set().ToString(info->schema),
                  "\n");
  }
  if (!info->mvds.empty()) {
    out += StrCat("MVDs      : ", info->mvd_set().ToString(info->schema),
                  "\n");
  }
  out += StrCat("size      : ", stats.nfr_tuples, " NFR tuples, |R*|=",
                stats.flat_tuples, ", reduction x",
                stats.TupleReduction());
  return out;
}

Result<std::string> Executor::ExecNest(const NestStatement& stmt) {
  NF2_ASSIGN_OR_RETURN(const NfrRelation* rel, db_->Relation(stmt.name));
  NfrRelation view = *rel;
  for (const std::string& attr : stmt.attributes) {
    NF2_ASSIGN_OR_RETURN(size_t idx, view.schema().RequireIndex(attr));
    view = stmt.unnest ? UnnestOn(view, idx) : NestOn(view, idx);
  }
  return RenderTable(view, StrCat(stmt.unnest ? "UNNEST " : "NEST ",
                                  stmt.name, " ON ",
                                  Join(stmt.attributes, ", ")));
}

Result<std::string> Executor::ExecList() {
  std::vector<std::string> names = db_->ListRelations();
  if (names.empty()) return std::string("no relations");
  return Join(names, "\n");
}

Result<std::string> Executor::ExecStats(const StatsStatement& stmt) {
  NF2_ASSIGN_OR_RETURN(RelationStats stats, db_->Stats(stmt.name));
  return stats.ToString();
}

Result<std::string> Executor::ExecCheckpoint() {
  NF2_RETURN_IF_ERROR(db_->Checkpoint());
  return std::string("checkpoint complete");
}

Result<std::string> Executor::ExecTxn(const TxnStatement& stmt) {
  switch (stmt.kind) {
    case TxnStatement::Kind::kBegin:
      NF2_RETURN_IF_ERROR(db_->Begin());
      return std::string("transaction started");
    case TxnStatement::Kind::kCommit:
      NF2_RETURN_IF_ERROR(db_->Commit());
      return std::string("transaction committed");
    case TxnStatement::Kind::kRollback:
      NF2_RETURN_IF_ERROR(db_->Rollback());
      return std::string("transaction rolled back");
  }
  return Status::Internal("unhandled txn kind");
}

Result<Predicate> Executor::ResolveCondition(const ConditionNode& node,
                                             const Schema& schema) const {
  switch (node.kind) {
    case ConditionNode::Kind::kCompare: {
      NF2_ASSIGN_OR_RETURN(size_t attr,
                           schema.RequireIndex(node.attribute));
      CompareOp op;
      if (node.op == "=") {
        op = CompareOp::kEq;
      } else if (node.op == "!=") {
        op = CompareOp::kNe;
      } else if (node.op == "<") {
        op = CompareOp::kLt;
      } else if (node.op == "<=") {
        op = CompareOp::kLe;
      } else if (node.op == ">") {
        op = CompareOp::kGt;
      } else if (node.op == ">=") {
        op = CompareOp::kGe;
      } else {
        return Status::InvalidArgument(
            StrCat("unknown comparison '", node.op, "'"));
      }
      return Predicate::Compare(attr, op, node.literal);
    }
    case ConditionNode::Kind::kAnd: {
      NF2_ASSIGN_OR_RETURN(Predicate left,
                           ResolveCondition(*node.left, schema));
      NF2_ASSIGN_OR_RETURN(Predicate right,
                           ResolveCondition(*node.right, schema));
      return Predicate::And(std::move(left), std::move(right));
    }
    case ConditionNode::Kind::kOr: {
      NF2_ASSIGN_OR_RETURN(Predicate left,
                           ResolveCondition(*node.left, schema));
      NF2_ASSIGN_OR_RETURN(Predicate right,
                           ResolveCondition(*node.right, schema));
      return Predicate::Or(std::move(left), std::move(right));
    }
    case ConditionNode::Kind::kNot: {
      NF2_ASSIGN_OR_RETURN(Predicate inner,
                           ResolveCondition(*node.left, schema));
      return Predicate::Not(std::move(inner));
    }
  }
  return Status::Internal("unhandled condition kind");
}

}  // namespace nf2
