#include "core/format.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace nf2 {

namespace {

std::string RenderGrid(const std::string& title,
                       const std::vector<std::string>& header,
                       const std::vector<std::vector<std::string>>& rows) {
  const size_t cols = header.size();
  std::vector<size_t> width(cols, 0);
  for (size_t c = 0; c < cols; ++c) {
    width[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (size_t c = 0; c < cols; ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto rule = [&]() {
    std::string out = "+";
    for (size_t c = 0; c < cols; ++c) {
      out += std::string(width[c] + 2, '-');
      out += "+";
    }
    out += "\n";
    return out;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string out = "|";
    for (size_t c = 0; c < cols; ++c) {
      out += " " + cells[c] + std::string(width[c] - cells[c].size(), ' ') +
             " |";
    }
    out += "\n";
    return out;
  };
  std::string out;
  if (!title.empty()) {
    out += title + "\n";
  }
  out += rule();
  out += line(header);
  out += rule();
  for (const auto& row : rows) {
    out += line(row);
  }
  out += rule();
  return out;
}

}  // namespace

std::string RenderTable(const NfrRelation& rel, const std::string& title) {
  std::vector<std::string> header;
  header.reserve(rel.degree());
  for (const Attribute& attr : rel.schema().attributes()) {
    header.push_back(attr.name);
  }
  std::vector<NfrTuple> sorted = rel.tuples();
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::vector<std::string>> rows;
  rows.reserve(sorted.size());
  for (const NfrTuple& t : sorted) {
    std::vector<std::string> row;
    row.reserve(rel.degree());
    for (size_t c = 0; c < rel.degree(); ++c) {
      std::vector<std::string> parts;
      for (const Value& v : t.at(c).values()) {
        parts.push_back(v.ToString());
      }
      row.push_back(Join(parts, ", "));
    }
    rows.push_back(std::move(row));
  }
  return RenderGrid(title, header, rows);
}

std::string RenderTable(const FlatRelation& rel, const std::string& title) {
  std::vector<std::string> header;
  header.reserve(rel.degree());
  for (const Attribute& attr : rel.schema().attributes()) {
    header.push_back(attr.name);
  }
  std::vector<std::vector<std::string>> rows;
  rows.reserve(rel.size());
  for (const FlatTuple& t : rel.tuples()) {
    std::vector<std::string> row;
    row.reserve(rel.degree());
    for (const Value& v : t.values()) {
      row.push_back(v.ToString());
    }
    rows.push_back(std::move(row));
  }
  return RenderGrid(title, header, rows);
}

}  // namespace nf2
