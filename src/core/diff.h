#ifndef NF2_CORE_DIFF_H_
#define NF2_CORE_DIFF_H_

#include <string>
#include <vector>

#include "core/relation.h"
#include "core/update.h"
#include "util/result.h"

namespace nf2 {

/// The minimal tuple-level update script between two 1NF states:
/// exactly the deletes and inserts that turn `from` into `to`. Since
/// relations are sets, this script is unique and minimal.
struct UpdateScript {
  std::vector<FlatTuple> deletes;  // from - to.
  std::vector<FlatTuple> inserts;  // to - from.

  size_t size() const { return deletes.size() + inserts.size(); }
  bool empty() const { return deletes.empty() && inserts.empty(); }
  std::string ToString() const;
};

/// Computes the script turning `from` into `to`. Error when schemas
/// differ.
Result<UpdateScript> ComputeDiff(const FlatRelation& from,
                                 const FlatRelation& to);

/// Applies a script through the §4 algorithms (deletes first, then
/// inserts), keeping `rel` canonical throughout. On error the relation
/// is left at the failing step (scripts from ComputeDiff against the
/// relation's own R* never fail).
Status ApplyScript(const UpdateScript& script, CanonicalRelation* rel);

/// Convenience: incrementally synchronizes `rel` to denote exactly
/// `target` (diff + apply). Returns the number of operations applied.
Result<size_t> SyncTo(const FlatRelation& target, CanonicalRelation* rel);

}  // namespace nf2

#endif  // NF2_CORE_DIFF_H_
