#ifndef NF2_CORE_IRREDUCIBLE_H_
#define NF2_CORE_IRREDUCIBLE_H_

#include "core/relation.h"
#include "util/result.h"
#include "util/rng.h"

namespace nf2 {

/// Definition 3: true when no further composition is possible on any
/// attribute — i.e. no pair of tuples satisfies Definition 1.
bool IsIrreducible(const NfrRelation& r);

/// Applies compositions until irreducible, always taking the first
/// composable pair in scan order. Deterministic; one of possibly many
/// irreducible forms (Example 1 shows they are not unique).
NfrRelation ReduceGreedy(const NfrRelation& r);

/// Applies compositions until irreducible, picking the next composable
/// pair at random. Different seeds reach different irreducible forms,
/// which is how tests and benches explore the space from Example 1/3.
NfrRelation ReduceRandomized(const NfrRelation& r, Rng* rng);

/// Finds an irreducible form with the *minimum* number of tuples, by
/// exhaustive search over partitions of R* into cross-product blocks
/// ("boxes"). Example 2 shows this minimum can beat every canonical
/// form. Exponential; errors when `flat` has more than `max_tuples`
/// simple tuples (default 16) or more than 64.
Result<NfrRelation> MinimalIrreducible(const FlatRelation& flat,
                                       size_t max_tuples = 16);

/// Counts the minimum number of tuples over all canonical forms — i.e.
/// min over all n! permutations of |V_P(R)|. Fatal for degree > 8.
size_t MinCanonicalSize(const FlatRelation& flat);

}  // namespace nf2

#endif  // NF2_CORE_IRREDUCIBLE_H_
