#include "core/tuple.h"

#include <algorithm>
#include <limits>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

const Value& FlatTuple::at(size_t i) const {
  NF2_CHECK(i < values_.size()) << "FlatTuple index out of range";
  return values_[i];
}

Value& FlatTuple::at(size_t i) {
  NF2_CHECK(i < values_.size()) << "FlatTuple index out of range";
  return values_[i];
}

bool FlatTuple::operator<(const FlatTuple& other) const {
  return std::lexicographical_compare(values_.begin(), values_.end(),
                                      other.values_.begin(),
                                      other.values_.end());
}

size_t FlatTuple::Hash() const {
  return HashRange(values_.begin(), values_.end());
}

std::string FlatTuple::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(values_.size());
  for (const Value& v : values_) {
    parts.push_back(v.ToString());
  }
  return StrCat("(", Join(parts, ", "), ")");
}

std::ostream& operator<<(std::ostream& os, const FlatTuple& tuple) {
  return os << tuple.ToString();
}

NfrTuple NfrTuple::FromFlat(const FlatTuple& flat) {
  std::vector<ValueSet> components;
  components.reserve(flat.degree());
  for (const Value& v : flat.values()) {
    components.push_back(ValueSet(v));
  }
  return NfrTuple(std::move(components));
}

const ValueSet& NfrTuple::at(size_t i) const {
  NF2_CHECK(i < components_.size()) << "NfrTuple index out of range";
  return components_[i];
}

ValueSet& NfrTuple::at(size_t i) {
  NF2_CHECK(i < components_.size()) << "NfrTuple index out of range";
  return components_[i];
}

bool NfrTuple::IsSimple() const {
  for (const ValueSet& c : components_) {
    if (!c.IsSingleton()) return false;
  }
  return true;
}

bool NfrTuple::IsWellFormed() const {
  for (const ValueSet& c : components_) {
    if (c.empty()) return false;
  }
  return true;
}

uint64_t NfrTuple::ExpandedCount() const {
  uint64_t count = 1;
  for (const ValueSet& c : components_) {
    uint64_t size = c.size();
    if (size != 0 &&
        count > std::numeric_limits<uint64_t>::max() / size) {
      return std::numeric_limits<uint64_t>::max();
    }
    count *= size;
  }
  return count;
}

std::vector<FlatTuple> NfrTuple::Expand() const {
  std::vector<FlatTuple> out;
  if (components_.empty()) return out;
  for (const ValueSet& c : components_) {
    if (c.empty()) return out;  // Ill-formed tuple denotes nothing.
  }
  std::vector<size_t> index(components_.size(), 0);
  while (true) {
    std::vector<Value> values;
    values.reserve(components_.size());
    for (size_t i = 0; i < components_.size(); ++i) {
      values.push_back(components_[i][index[i]]);
    }
    out.emplace_back(std::move(values));
    // Odometer increment, last component fastest (keeps output sorted
    // because each component is itself sorted).
    size_t i = components_.size();
    while (i > 0) {
      --i;
      if (++index[i] < components_[i].size()) break;
      index[i] = 0;
      if (i == 0) return out;
    }
  }
}

bool NfrTuple::ExpansionContains(const FlatTuple& flat) const {
  if (flat.degree() != components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!components_[i].Contains(flat.at(i))) return false;
  }
  return true;
}

bool NfrTuple::AgreesExcept(const NfrTuple& other, size_t c) const {
  if (degree() != other.degree()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i == c) continue;
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

bool NfrTuple::IsComponentwiseSubsetOf(const NfrTuple& other) const {
  if (degree() != other.degree()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (!components_[i].IsSubsetOf(other.components_[i])) return false;
  }
  return true;
}

bool NfrTuple::operator<(const NfrTuple& other) const {
  return std::lexicographical_compare(components_.begin(), components_.end(),
                                      other.components_.begin(),
                                      other.components_.end());
}

size_t NfrTuple::Hash() const {
  size_t seed = 0x45f2db;
  for (const ValueSet& c : components_) {
    seed = HashCombine(seed, c.Hash());
  }
  return seed;
}

size_t NfrTuple::HashExcept(size_t skip) const {
  size_t seed = 0x9e57;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i == skip) continue;
    seed = HashCombine(seed, components_[i].Hash());
  }
  return seed;
}

std::string NfrTuple::ToString(const Schema& schema) const {
  std::vector<std::string> parts;
  parts.reserve(components_.size());
  for (size_t i = 0; i < components_.size(); ++i) {
    std::string name = i < schema.degree() ? schema.attribute(i).name
                                           : StrCat("E", i + 1);
    parts.push_back(StrCat(name, "(", components_[i].ToString(), ")"));
  }
  return StrCat("[", Join(parts, " "), "]");
}

std::string NfrTuple::ToString() const { return ToString(Schema()); }

std::ostream& operator<<(std::ostream& os, const NfrTuple& tuple) {
  return os << tuple.ToString();
}

}  // namespace nf2
