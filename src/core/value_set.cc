#include "core/value_set.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace nf2 {

ValueSet::ValueSet(Value v) { values_.push_back(std::move(v)); }

ValueSet::ValueSet(std::initializer_list<Value> values)
    : ValueSet(std::vector<Value>(values)) {}

ValueSet::ValueSet(std::vector<Value> values) : values_(std::move(values)) {
  std::sort(values_.begin(), values_.end());
  values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
}

ValueSet ValueSet::FromSortedUnique(std::vector<Value> values) {
  NF2_DCHECK(std::is_sorted(values.begin(), values.end()) &&
             std::adjacent_find(values.begin(), values.end()) == values.end())
      << "FromSortedUnique input not sorted-unique";
  ValueSet out;
  out.values_ = std::move(values);
  return out;
}

const Value& ValueSet::single() const {
  NF2_CHECK(IsSingleton()) << "ValueSet::single() on set of size "
                           << values_.size();
  return values_[0];
}

bool ValueSet::Contains(const Value& v) const {
  return std::binary_search(values_.begin(), values_.end(), v);
}

bool ValueSet::Insert(const Value& v) {
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it != values_.end() && *it == v) {
    return false;
  }
  values_.insert(it, v);
  return true;
}

bool ValueSet::Erase(const Value& v) {
  auto it = std::lower_bound(values_.begin(), values_.end(), v);
  if (it == values_.end() || *it != v) {
    return false;
  }
  values_.erase(it);
  return true;
}

ValueSet ValueSet::Union(const ValueSet& other) const {
  ValueSet out;
  out.values_.reserve(values_.size() + other.values_.size());
  std::set_union(values_.begin(), values_.end(), other.values_.begin(),
                 other.values_.end(), std::back_inserter(out.values_));
  return out;
}

ValueSet ValueSet::Intersect(const ValueSet& other) const {
  ValueSet out;
  std::set_intersection(values_.begin(), values_.end(), other.values_.begin(),
                        other.values_.end(),
                        std::back_inserter(out.values_));
  return out;
}

ValueSet ValueSet::Difference(const ValueSet& other) const {
  ValueSet out;
  std::set_difference(values_.begin(), values_.end(), other.values_.begin(),
                      other.values_.end(), std::back_inserter(out.values_));
  return out;
}

bool ValueSet::IsSubsetOf(const ValueSet& other) const {
  return std::includes(other.values_.begin(), other.values_.end(),
                       values_.begin(), values_.end());
}

bool ValueSet::IsDisjointFrom(const ValueSet& other) const {
  auto a = values_.begin();
  auto b = other.values_.begin();
  while (a != values_.end() && b != other.values_.end()) {
    int cmp = a->Compare(*b);
    if (cmp == 0) return false;
    if (cmp < 0) {
      ++a;
    } else {
      ++b;
    }
  }
  return true;
}

bool ValueSet::operator<(const ValueSet& other) const {
  return std::lexicographical_compare(values_.begin(), values_.end(),
                                      other.values_.begin(),
                                      other.values_.end());
}

size_t ValueSet::Hash() const {
  return HashRange(values_.begin(), values_.end());
}

std::string ValueSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ",";
    out += values_[i].ToString();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const ValueSet& set) {
  return os << set.ToString();
}

}  // namespace nf2
