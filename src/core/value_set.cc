#include "core/value_set.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"

namespace nf2 {

const std::vector<Value>& ValueSet::EmptyRep() {
  static const std::vector<Value> kEmpty;
  return kEmpty;
}

void ValueSet::Adopt(std::vector<Value> values) {
  if (values.empty()) {
    rep_.reset();
  } else {
    rep_ = std::make_shared<const std::vector<Value>>(std::move(values));
  }
}

ValueSet::ValueSet(Value v) {
  Adopt(std::vector<Value>{std::move(v)});
}

ValueSet::ValueSet(std::initializer_list<Value> values)
    : ValueSet(std::vector<Value>(values)) {}

ValueSet::ValueSet(std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  Adopt(std::move(values));
}

ValueSet ValueSet::FromSortedUnique(std::vector<Value> values) {
  NF2_DCHECK(std::is_sorted(values.begin(), values.end()) &&
             std::adjacent_find(values.begin(), values.end()) == values.end())
      << "FromSortedUnique input not sorted-unique";
  ValueSet out;
  out.Adopt(std::move(values));
  return out;
}

const Value& ValueSet::single() const {
  NF2_CHECK(IsSingleton()) << "ValueSet::single() on set of size " << size();
  return values()[0];
}

bool ValueSet::Contains(const Value& v) const {
  const std::vector<Value>& elems = values();
  return std::binary_search(elems.begin(), elems.end(), v);
}

bool ValueSet::Insert(const Value& v) {
  const std::vector<Value>& elems = values();
  auto it = std::lower_bound(elems.begin(), elems.end(), v);
  if (it != elems.end() && *it == v) {
    return false;
  }
  // Copy-on-write: build the new vector rather than touching the old
  // rep — a snapshot sharing it may be mid-read on another thread.
  std::vector<Value> next;
  next.reserve(elems.size() + 1);
  next.insert(next.end(), elems.begin(), it);
  next.push_back(v);
  next.insert(next.end(), it, elems.end());
  Adopt(std::move(next));
  return true;
}

bool ValueSet::Erase(const Value& v) {
  const std::vector<Value>& elems = values();
  auto it = std::lower_bound(elems.begin(), elems.end(), v);
  if (it == elems.end() || *it != v) {
    return false;
  }
  std::vector<Value> next;
  next.reserve(elems.size() - 1);
  next.insert(next.end(), elems.begin(), it);
  next.insert(next.end(), it + 1, elems.end());
  Adopt(std::move(next));
  return true;
}

ValueSet ValueSet::Union(const ValueSet& other) const {
  std::vector<Value> merged;
  merged.reserve(size() + other.size());
  const std::vector<Value>& a = values();
  const std::vector<Value>& b = other.values();
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(merged));
  ValueSet out;
  out.Adopt(std::move(merged));
  return out;
}

ValueSet ValueSet::Intersect(const ValueSet& other) const {
  std::vector<Value> merged;
  const std::vector<Value>& a = values();
  const std::vector<Value>& b = other.values();
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(merged));
  ValueSet out;
  out.Adopt(std::move(merged));
  return out;
}

ValueSet ValueSet::Difference(const ValueSet& other) const {
  std::vector<Value> merged;
  const std::vector<Value>& a = values();
  const std::vector<Value>& b = other.values();
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(merged));
  ValueSet out;
  out.Adopt(std::move(merged));
  return out;
}

bool ValueSet::IsSubsetOf(const ValueSet& other) const {
  if (rep_ == other.rep_) return true;
  const std::vector<Value>& a = values();
  const std::vector<Value>& b = other.values();
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool ValueSet::IsDisjointFrom(const ValueSet& other) const {
  const std::vector<Value>& avec = values();
  const std::vector<Value>& bvec = other.values();
  auto a = avec.begin();
  auto b = bvec.begin();
  while (a != avec.end() && b != bvec.end()) {
    int cmp = a->Compare(*b);
    if (cmp == 0) return false;
    if (cmp < 0) {
      ++a;
    } else {
      ++b;
    }
  }
  return true;
}

bool ValueSet::operator<(const ValueSet& other) const {
  if (rep_ == other.rep_) return false;
  const std::vector<Value>& a = values();
  const std::vector<Value>& b = other.values();
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

size_t ValueSet::Hash() const {
  const std::vector<Value>& elems = values();
  return HashRange(elems.begin(), elems.end());
}

std::string ValueSet::ToString() const {
  const std::vector<Value>& elems = values();
  std::string out;
  for (size_t i = 0; i < elems.size(); ++i) {
    if (i > 0) out += ",";
    out += elems[i].ToString();
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const ValueSet& set) {
  return os << set.ToString();
}

}  // namespace nf2
