#ifndef NF2_CORE_FIXEDNESS_H_
#define NF2_CORE_FIXEDNESS_H_

#include <string>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"

namespace nf2 {

/// Definition 6: the cardinality correspondence between the values of an
/// attribute Ei and the tuples of R.
///
///   k1To1 (1:1) — every value appears in at most one tuple, always as a
///                 singleton component;
///   kNTo1 (n:1) — at most one tuple, but inside a compound component;
///   k1ToN (1:n) — in several tuples, always as singleton components;
///   kMToN (m:n) — in several tuples, inside compound components.
enum class CardinalityClass {
  k1To1 = 0,
  kNTo1 = 1,
  k1ToN = 2,
  kMToN = 3,
};

const char* CardinalityClassToString(CardinalityClass c);

/// Classifies one value `v` of attribute position `attr` in `r`:
/// whether it appears in more than one tuple, and whether any occurrence
/// is inside a compound component.
CardinalityClass ClassifyValue(const NfrRelation& r, size_t attr,
                               const Value& v);

/// Classifies the whole attribute: the strongest class exhibited by any
/// of its values (multi-tuple dominates single-tuple, compound dominates
/// singleton). An attribute with no values classifies as 1:1.
CardinalityClass ClassifyAttribute(const NfrRelation& r, size_t attr);

/// Definition 7: R is *fixed* on attribute positions F1..Fk when for
/// every combination of values (f1..fk), fi drawn from Fi's active
/// domain, at most one tuple contains all of them "as a part" (i.e.
/// fi ∈ tuple's Fi-component for every i). Fixedness is the paper's key
/// notion for NFRs.
bool IsFixedOn(const NfrRelation& r, const AttrSet& attrs);

/// All minimal attribute sets on which `r` is fixed (no proper subset is
/// also fixed) — NFR analogues of candidate keys. Exponential in degree;
/// fatal for degree > 16.
std::vector<AttrSet> MinimalFixedSets(const NfrRelation& r);

/// Largest k such that r is fixed on some (n-k)-subset... precisely:
/// true when r is fixed on the complement of each single attribute, the
/// situation Theorem 5 guarantees for canonical forms ("fixed on at most
/// n-1 domains").
bool IsFixedOnAllButOne(const NfrRelation& r, size_t excluded_attr);

}  // namespace nf2

#endif  // NF2_CORE_FIXEDNESS_H_
