#include "core/index.h"

#include <algorithm>

#include "util/logging.h"

namespace nf2 {

NfrIndex::NfrIndex(size_t degree) : degree_(degree), postings_(degree) {}

NfrIndex::NfrIndex(size_t degree,
                   std::shared_ptr<const ValueDictionary> dict)
    : degree_(degree), dict_(std::move(dict)), postings_by_id_(degree) {
  NF2_CHECK(dict_ != nullptr) << "id-keyed NfrIndex needs a dictionary";
}

void NfrIndex::AddTuple(size_t tuple_id, const NfrTuple& t) {
  NF2_CHECK(!interned()) << "Value-keyed mutation on an id-keyed index";
  NF2_CHECK(t.degree() == degree_);
  for (size_t attr = 0; attr < degree_; ++attr) {
    for (const Value& v : t.at(attr).values()) {
      std::vector<size_t>& ids = postings_[attr][v];
      auto it = std::lower_bound(ids.begin(), ids.end(), tuple_id);
      NF2_DCHECK(it == ids.end() || *it != tuple_id);
      ids.insert(it, tuple_id);
    }
  }
}

void NfrIndex::RemoveTuple(size_t tuple_id, const NfrTuple& t) {
  NF2_CHECK(!interned()) << "Value-keyed mutation on an id-keyed index";
  NF2_CHECK(t.degree() == degree_);
  for (size_t attr = 0; attr < degree_; ++attr) {
    for (const Value& v : t.at(attr).values()) {
      auto map_it = postings_[attr].find(v);
      NF2_CHECK(map_it != postings_[attr].end())
          << "index missing value " << v.ToString();
      std::vector<size_t>& ids = map_it->second;
      auto it = std::lower_bound(ids.begin(), ids.end(), tuple_id);
      NF2_CHECK(it != ids.end() && *it == tuple_id)
          << "index missing id for " << v.ToString();
      ids.erase(it);
      if (ids.empty()) {
        postings_[attr].erase(map_it);
      }
    }
  }
}

void NfrIndex::MoveTuple(size_t from_id, size_t to_id, const NfrTuple& t) {
  if (from_id == to_id) return;
  RemoveTuple(from_id, t);
  AddTuple(to_id, t);
}

void NfrIndex::AddEncoded(size_t tuple_id, const EncodedTuple& t) {
  NF2_CHECK(interned()) << "id-keyed mutation on a Value-keyed index";
  NF2_CHECK(t.size() == degree_);
  for (size_t attr = 0; attr < degree_; ++attr) {
    std::vector<std::vector<size_t>>& slots = postings_by_id_[attr];
    for (ValueId v : t[attr].ids()) {
      if (v >= slots.size()) slots.resize(v + 1);
      std::vector<size_t>& ids = slots[v];
      auto it = std::lower_bound(ids.begin(), ids.end(), tuple_id);
      NF2_DCHECK(it == ids.end() || *it != tuple_id);
      ids.insert(it, tuple_id);
    }
  }
}

void NfrIndex::RemoveEncoded(size_t tuple_id, const EncodedTuple& t) {
  NF2_CHECK(interned()) << "id-keyed mutation on a Value-keyed index";
  NF2_CHECK(t.size() == degree_);
  for (size_t attr = 0; attr < degree_; ++attr) {
    std::vector<std::vector<size_t>>& slots = postings_by_id_[attr];
    for (ValueId v : t[attr].ids()) {
      NF2_CHECK(v < slots.size()) << "index missing value id " << v;
      std::vector<size_t>& ids = slots[v];
      auto it = std::lower_bound(ids.begin(), ids.end(), tuple_id);
      NF2_CHECK(it != ids.end() && *it == tuple_id)
          << "index missing id for value id " << v;
      ids.erase(it);
      // An emptied posting list keeps its heap buffer otherwise —
      // churn-heavy workloads would hold peak capacity forever.
      if (ids.empty()) {
        std::vector<size_t>().swap(ids);
      }
    }
    // Reclaim trailing empty slots. Interior empties must stay (their
    // ValueIds may return), but the tail can always shrink — the
    // value-keyed path erases empty map entries for the same reason.
    while (!slots.empty() && slots.back().empty()) {
      slots.pop_back();
    }
  }
}

void NfrIndex::MoveEncoded(size_t from_id, size_t to_id,
                           const EncodedTuple& t) {
  if (from_id == to_id) return;
  RemoveEncoded(from_id, t);
  AddEncoded(to_id, t);
}

const std::vector<size_t>* NfrIndex::Postings(size_t attr,
                                              const Value& v) const {
  NF2_CHECK(attr < degree_);
  if (interned()) {
    std::optional<ValueId> id = dict_->Find(v);
    if (!id.has_value()) return nullptr;
    return PostingsById(attr, *id);
  }
  auto it = postings_[attr].find(v);
  return it == postings_[attr].end() ? nullptr : &it->second;
}

const std::vector<size_t>* NfrIndex::PostingsById(size_t attr,
                                                  ValueId id) const {
  NF2_CHECK(interned());
  NF2_CHECK(attr < degree_);
  const std::vector<std::vector<size_t>>& slots = postings_by_id_[attr];
  if (id >= slots.size() || slots[id].empty()) return nullptr;
  return &slots[id];
}

std::vector<size_t> IntersectSorted(const std::vector<size_t>& a,
                                    const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<size_t> NfrIndex::ContainingInRange(size_t attr,
                                                const RangeBound& bound) const {
  NF2_CHECK(attr < degree_);
  std::vector<size_t> out;
  if (!interned()) {
    // Bound-scan the sorted postings map: seek to the lower bound, walk
    // forward until past the upper bound.
    const std::map<Value, std::vector<size_t>>& per_attr = postings_[attr];
    auto it = per_attr.begin();
    if (bound.lower.has_value()) {
      it = bound.lower_inclusive ? per_attr.lower_bound(*bound.lower)
                                 : per_attr.upper_bound(*bound.lower);
    }
    for (; it != per_attr.end(); ++it) {
      if (bound.upper.has_value()) {
        if (bound.upper_inclusive ? *bound.upper < it->first
                                  : !(it->first < *bound.upper)) {
          break;
        }
      }
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  } else {
    // Id-keyed slots carry no value order; bound-scan the dictionary's
    // value order instead and union the in-range slots.
    std::vector<ValueId> order = dict_->IdsInValueOrder();
    auto value_less = [this](ValueId id, const Value& v) {
      return dict_->value(id) < v;
    };
    auto less_value = [this](const Value& v, ValueId id) {
      return v < dict_->value(id);
    };
    auto it = order.begin();
    auto end = order.end();
    if (bound.lower.has_value()) {
      it = bound.lower_inclusive
               ? std::lower_bound(order.begin(), order.end(), *bound.lower,
                                  value_less)
               : std::upper_bound(order.begin(), order.end(), *bound.lower,
                                  less_value);
    }
    if (bound.upper.has_value()) {
      end = bound.upper_inclusive
                ? std::upper_bound(it, order.end(), *bound.upper, less_value)
                : std::lower_bound(it, order.end(), *bound.upper, value_less);
    }
    for (; it != end; ++it) {
      const std::vector<size_t>* ids = PostingsById(attr, *it);
      if (ids != nullptr) {
        out.insert(out.end(), ids->begin(), ids->end());
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<size_t> NfrIndex::ContainingAll(size_t attr,
                                            const ValueSet& values) const {
  NF2_CHECK(!values.empty());
  const std::vector<size_t>* first = Postings(attr, values[0]);
  if (first == nullptr) return {};
  std::vector<size_t> out = *first;
  for (size_t i = 1; i < values.size() && !out.empty(); ++i) {
    const std::vector<size_t>* next = Postings(attr, values[i]);
    if (next == nullptr) return {};
    out = IntersectSorted(out, *next);
  }
  return out;
}

std::vector<size_t> NfrIndex::ContainingAllIds(size_t attr,
                                               const IdSet& ids) const {
  NF2_CHECK(!ids.empty());
  const std::vector<size_t>* first = PostingsById(attr, ids[0]);
  if (first == nullptr) return {};
  std::vector<size_t> out = *first;
  for (size_t i = 1; i < ids.size() && !out.empty(); ++i) {
    const std::vector<size_t>* next = PostingsById(attr, ids[i]);
    if (next == nullptr) return {};
    out = IntersectSorted(out, *next);
  }
  return out;
}

std::vector<size_t> NfrIndex::ContainingTuple(const NfrTuple& t) const {
  NF2_CHECK(t.degree() == degree_);
  std::vector<size_t> out = ContainingAll(0, t.at(0));
  for (size_t attr = 1; attr < degree_ && !out.empty(); ++attr) {
    out = IntersectSorted(out, ContainingAll(attr, t.at(attr)));
  }
  return out;
}

std::vector<size_t> NfrIndex::ContainingEncoded(const EncodedTuple& t) const {
  NF2_CHECK(t.size() == degree_);
  std::vector<size_t> out = ContainingAllIds(0, t[0]);
  for (size_t attr = 1; attr < degree_ && !out.empty(); ++attr) {
    out = IntersectSorted(out, ContainingAllIds(attr, t[attr]));
  }
  return out;
}

size_t NfrIndex::slot_count() const {
  size_t total = 0;
  for (const auto& per_attr : postings_by_id_) {
    total += per_attr.size();
  }
  return total;
}

size_t NfrIndex::entry_count() const {
  size_t total = 0;
  if (interned()) {
    for (const auto& per_attr : postings_by_id_) {
      for (const auto& ids : per_attr) {
        total += ids.size();
      }
    }
    return total;
  }
  for (const auto& per_attr : postings_) {
    for (const auto& [value, ids] : per_attr) {
      total += ids.size();
    }
  }
  return total;
}

}  // namespace nf2
