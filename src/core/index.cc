#include "core/index.h"

#include <algorithm>

#include "util/logging.h"

namespace nf2 {

NfrIndex::NfrIndex(size_t degree) : postings_(degree) {}

void NfrIndex::AddTuple(size_t tuple_id, const NfrTuple& t) {
  NF2_CHECK(t.degree() == postings_.size());
  for (size_t attr = 0; attr < postings_.size(); ++attr) {
    for (const Value& v : t.at(attr).values()) {
      std::vector<size_t>& ids = postings_[attr][v];
      auto it = std::lower_bound(ids.begin(), ids.end(), tuple_id);
      NF2_DCHECK(it == ids.end() || *it != tuple_id);
      ids.insert(it, tuple_id);
    }
  }
}

void NfrIndex::RemoveTuple(size_t tuple_id, const NfrTuple& t) {
  NF2_CHECK(t.degree() == postings_.size());
  for (size_t attr = 0; attr < postings_.size(); ++attr) {
    for (const Value& v : t.at(attr).values()) {
      auto map_it = postings_[attr].find(v);
      NF2_CHECK(map_it != postings_[attr].end())
          << "index missing value " << v.ToString();
      std::vector<size_t>& ids = map_it->second;
      auto it = std::lower_bound(ids.begin(), ids.end(), tuple_id);
      NF2_CHECK(it != ids.end() && *it == tuple_id)
          << "index missing id for " << v.ToString();
      ids.erase(it);
      if (ids.empty()) {
        postings_[attr].erase(map_it);
      }
    }
  }
}

void NfrIndex::MoveTuple(size_t from_id, size_t to_id, const NfrTuple& t) {
  if (from_id == to_id) return;
  RemoveTuple(from_id, t);
  AddTuple(to_id, t);
}

const std::vector<size_t>* NfrIndex::Postings(size_t attr,
                                              const Value& v) const {
  NF2_CHECK(attr < postings_.size());
  auto it = postings_[attr].find(v);
  return it == postings_[attr].end() ? nullptr : &it->second;
}

std::vector<size_t> IntersectSorted(const std::vector<size_t>& a,
                                    const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<size_t> NfrIndex::ContainingAll(size_t attr,
                                            const ValueSet& values) const {
  NF2_CHECK(!values.empty());
  const std::vector<size_t>* first = Postings(attr, values[0]);
  if (first == nullptr) return {};
  std::vector<size_t> out = *first;
  for (size_t i = 1; i < values.size() && !out.empty(); ++i) {
    const std::vector<size_t>* next = Postings(attr, values[i]);
    if (next == nullptr) return {};
    out = IntersectSorted(out, *next);
  }
  return out;
}

std::vector<size_t> NfrIndex::ContainingTuple(const NfrTuple& t) const {
  NF2_CHECK(t.degree() == postings_.size());
  std::vector<size_t> out = ContainingAll(0, t.at(0));
  for (size_t attr = 1; attr < postings_.size() && !out.empty(); ++attr) {
    out = IntersectSorted(out, ContainingAll(attr, t.at(attr)));
  }
  return out;
}

size_t NfrIndex::entry_count() const {
  size_t total = 0;
  for (const auto& per_attr : postings_) {
    for (const auto& [value, ids] : per_attr) {
      total += ids.size();
    }
  }
  return total;
}

}  // namespace nf2
