#include "core/schema.h"

#include <bit>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  NF2_CHECK(attributes_.size() <= AttrSet::kMaxAttrs)
      << "Schema exceeds " << AttrSet::kMaxAttrs << " attributes";
  std::unordered_set<std::string> seen;
  for (const Attribute& attr : attributes_) {
    NF2_CHECK(seen.insert(attr.name).second)
        << "Duplicate attribute name: " << attr.name;
  }
}

Schema Schema::OfStrings(std::initializer_list<const char*> names) {
  std::vector<Attribute> attrs;
  for (const char* name : names) {
    attrs.push_back({name, ValueType::kString});
  }
  return Schema(std::move(attrs));
}

Schema Schema::OfStrings(const std::vector<std::string>& names) {
  std::vector<Attribute> attrs;
  for (const std::string& name : names) {
    attrs.push_back({name, ValueType::kString});
  }
  return Schema(std::move(attrs));
}

const Attribute& Schema::attribute(size_t i) const {
  NF2_CHECK(i < attributes_.size()) << "Attribute index out of range";
  return attributes_[i];
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) {
      return i;
    }
  }
  return std::nullopt;
}

Result<size_t> Schema::RequireIndex(const std::string& name) const {
  std::optional<size_t> idx = IndexOf(name);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("attribute '", name, "' not in schema ", ToString()));
  }
  return *idx;
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Attribute> attrs;
  attrs.reserve(indices.size());
  for (size_t i : indices) {
    attrs.push_back(attribute(i));
  }
  return Schema(std::move(attrs));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (const Attribute& attr : attributes_) {
    parts.push_back(
        StrCat(attr.name, " ", ValueTypeToString(attr.type)));
  }
  return StrCat("(", Join(parts, ", "), ")");
}

std::ostream& operator<<(std::ostream& os, const Schema& schema) {
  return os << schema.ToString();
}

AttrSet::AttrSet(std::initializer_list<size_t> positions) {
  for (size_t pos : positions) {
    Add(pos);
  }
}

AttrSet::AttrSet(const std::vector<size_t>& positions) {
  for (size_t pos : positions) {
    Add(pos);
  }
}

AttrSet AttrSet::All(size_t degree) {
  NF2_CHECK(degree <= kMaxAttrs);
  AttrSet out;
  out.mask_ = degree == kMaxAttrs ? ~0ULL : ((1ULL << degree) - 1);
  return out;
}

size_t AttrSet::size() const { return std::popcount(mask_); }

void AttrSet::Add(size_t pos) {
  NF2_CHECK(pos < kMaxAttrs);
  mask_ |= (1ULL << pos);
}

void AttrSet::Remove(size_t pos) {
  NF2_CHECK(pos < kMaxAttrs);
  mask_ &= ~(1ULL << pos);
}

AttrSet AttrSet::Union(const AttrSet& other) const {
  AttrSet out;
  out.mask_ = mask_ | other.mask_;
  return out;
}

AttrSet AttrSet::Intersect(const AttrSet& other) const {
  AttrSet out;
  out.mask_ = mask_ & other.mask_;
  return out;
}

AttrSet AttrSet::Difference(const AttrSet& other) const {
  AttrSet out;
  out.mask_ = mask_ & ~other.mask_;
  return out;
}

bool AttrSet::IsSubsetOf(const AttrSet& other) const {
  return (mask_ & ~other.mask_) == 0;
}

std::vector<size_t> AttrSet::ToVector() const {
  std::vector<size_t> out;
  for (size_t i = 0; i < kMaxAttrs; ++i) {
    if (Contains(i)) {
      out.push_back(i);
    }
  }
  return out;
}

std::string AttrSet::ToString(const Schema& schema) const {
  std::vector<std::string> names;
  for (size_t i : ToVector()) {
    names.push_back(i < schema.degree() ? schema.attribute(i).name
                                        : StrCat("#", i));
  }
  return StrCat("{", Join(names, ","), "}");
}

}  // namespace nf2
