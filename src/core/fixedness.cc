#include "core/fixedness.h"

#include <algorithm>
#include <cstdint>
#include <map>

#include "util/logging.h"

namespace nf2 {

const char* CardinalityClassToString(CardinalityClass c) {
  switch (c) {
    case CardinalityClass::k1To1:
      return "1:1";
    case CardinalityClass::kNTo1:
      return "n:1";
    case CardinalityClass::k1ToN:
      return "1:n";
    case CardinalityClass::kMToN:
      return "m:n";
  }
  return "?";
}

namespace {
CardinalityClass MakeClass(bool multi_tuple, bool compound) {
  if (multi_tuple) {
    return compound ? CardinalityClass::kMToN : CardinalityClass::k1ToN;
  }
  return compound ? CardinalityClass::kNTo1 : CardinalityClass::k1To1;
}
}  // namespace

CardinalityClass ClassifyValue(const NfrRelation& r, size_t attr,
                               const Value& v) {
  NF2_CHECK(attr < r.degree());
  size_t occurrences = 0;
  bool compound = false;
  for (const NfrTuple& t : r.tuples()) {
    if (t.at(attr).Contains(v)) {
      ++occurrences;
      if (!t.at(attr).IsSingleton()) compound = true;
    }
  }
  return MakeClass(occurrences > 1, compound);
}

CardinalityClass ClassifyAttribute(const NfrRelation& r, size_t attr) {
  NF2_CHECK(attr < r.degree());
  // Count occurrences per value in one pass.
  std::map<Value, std::pair<size_t, bool>> stats;  // value -> (count, compound)
  for (const NfrTuple& t : r.tuples()) {
    bool is_compound = !t.at(attr).IsSingleton();
    for (const Value& v : t.at(attr).values()) {
      auto& entry = stats[v];
      entry.first += 1;
      entry.second = entry.second || is_compound;
    }
  }
  bool any_multi = false;
  bool any_compound = false;
  for (const auto& [v, entry] : stats) {
    any_multi = any_multi || entry.first > 1;
    any_compound = any_compound || entry.second;
  }
  return MakeClass(any_multi, any_compound);
}

bool IsFixedOn(const NfrRelation& r, const AttrSet& attrs) {
  std::vector<size_t> positions = attrs.ToVector();
  for (size_t p : positions) {
    NF2_CHECK(p < r.degree()) << "Fixedness attribute out of range";
  }
  if (positions.empty()) {
    // Fixed on the empty set iff there is at most one tuple.
    return r.size() <= 1;
  }
  // Two tuples violate fixedness iff for every Fi their components
  // intersect: then pick fi from each intersection and both tuples
  // contain (f1..fk).
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = i + 1; j < r.size(); ++j) {
      bool all_intersect = true;
      for (size_t p : positions) {
        if (r.tuple(i).at(p).IsDisjointFrom(r.tuple(j).at(p))) {
          all_intersect = false;
          break;
        }
      }
      if (all_intersect) return false;
    }
  }
  return true;
}

std::vector<AttrSet> MinimalFixedSets(const NfrRelation& r) {
  size_t n = r.degree();
  NF2_CHECK(n <= 16) << "MinimalFixedSets limited to degree 16";
  std::vector<AttrSet> fixed;
  // Enumerate subsets by increasing size so minimality is easy to check.
  std::vector<uint64_t> masks;
  for (uint64_t m = 1; m < (1ULL << n); ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
    int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
    return pa != pb ? pa < pb : a < b;
  });
  for (uint64_t m : masks) {
    bool has_fixed_subset = false;
    for (const AttrSet& f : fixed) {
      if ((f.mask() & ~m) == 0) {
        has_fixed_subset = true;
        break;
      }
    }
    if (has_fixed_subset) continue;
    std::vector<size_t> positions;
    for (size_t i = 0; i < n; ++i) {
      if ((m >> i) & 1) positions.push_back(i);
    }
    AttrSet set(positions);
    if (IsFixedOn(r, set)) {
      fixed.push_back(set);
    }
  }
  return fixed;
}

bool IsFixedOnAllButOne(const NfrRelation& r, size_t excluded_attr) {
  NF2_CHECK(excluded_attr < r.degree());
  AttrSet all = AttrSet::All(r.degree());
  all.Remove(excluded_attr);
  return IsFixedOn(r, all);
}

}  // namespace nf2
