#ifndef NF2_CORE_SCHEMA_H_
#define NF2_CORE_SCHEMA_H_

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/value.h"
#include "util/result.h"

namespace nf2 {

/// One named attribute (the paper's "domain" Ei) with an atom type.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// A relation schema: an ordered list of attributes with unique names.
/// NFR and 1NF relations share schemas — the nesting state lives in the
/// tuples, not the schema, exactly as in the paper where NFRs are
/// "defined on simple domains".
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  /// Convenience: all-string attributes from names, e.g.
  /// Schema::OfStrings({"Student", "Course", "Club"}).
  static Schema OfStrings(std::initializer_list<const char*> names);
  static Schema OfStrings(const std::vector<std::string>& names);

  /// Number of attributes (the paper's "degree" n).
  size_t degree() const { return attributes_.size(); }

  const std::vector<Attribute>& attributes() const { return attributes_; }
  const Attribute& attribute(size_t i) const;

  /// Index of the attribute named `name`, if present.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Index of `name` or an error mentioning the schema.
  Result<size_t> RequireIndex(const std::string& name) const;

  /// Schema with the attributes at `indices`, in that order.
  Schema Project(const std::vector<size_t>& indices) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// "R(Student STRING, Course STRING)"-style rendering without the name.
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

std::ostream& operator<<(std::ostream& os, const Schema& schema);

/// A subset of attribute positions, stored as a 64-bit mask. Schemas are
/// limited to 64 attributes, far beyond any NFR in the paper.
class AttrSet {
 public:
  static constexpr size_t kMaxAttrs = 64;

  AttrSet() = default;
  /// Set containing the given positions.
  AttrSet(std::initializer_list<size_t> positions);
  /// Set containing the positions in `positions`.
  explicit AttrSet(const std::vector<size_t>& positions);

  /// The full set {0, ..., degree-1}.
  static AttrSet All(size_t degree);

  bool empty() const { return mask_ == 0; }
  size_t size() const;
  bool Contains(size_t pos) const { return (mask_ >> pos) & 1; }

  void Add(size_t pos);
  void Remove(size_t pos);

  AttrSet Union(const AttrSet& other) const;
  AttrSet Intersect(const AttrSet& other) const;
  AttrSet Difference(const AttrSet& other) const;
  bool IsSubsetOf(const AttrSet& other) const;

  /// Positions in ascending order.
  std::vector<size_t> ToVector() const;

  uint64_t mask() const { return mask_; }

  bool operator==(const AttrSet& other) const { return mask_ == other.mask_; }
  bool operator!=(const AttrSet& other) const { return mask_ != other.mask_; }
  bool operator<(const AttrSet& other) const { return mask_ < other.mask_; }

  /// "{A,C}"-style rendering using names from `schema`.
  std::string ToString(const Schema& schema) const;

 private:
  uint64_t mask_ = 0;
};

}  // namespace nf2

#endif  // NF2_CORE_SCHEMA_H_
