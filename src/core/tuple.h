#ifndef NF2_CORE_TUPLE_H_
#define NF2_CORE_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "core/schema.h"
#include "core/value.h"
#include "core/value_set.h"

namespace nf2 {

/// An ordinary 1NF tuple `[D1(e1) ... Dn(en)]`: one atomic value per
/// attribute. The paper calls these "simple tuples"; the unique 1NF
/// relation underlying an NFR R is written R* (Theorem 1).
class FlatTuple {
 public:
  FlatTuple() = default;
  explicit FlatTuple(std::vector<Value> values) : values_(std::move(values)) {}
  FlatTuple(std::initializer_list<Value> values) : values_(values) {}

  size_t degree() const { return values_.size(); }
  const std::vector<Value>& values() const { return values_; }
  const Value& at(size_t i) const;
  Value& at(size_t i);

  bool operator==(const FlatTuple& other) const {
    return values_ == other.values_;
  }
  bool operator!=(const FlatTuple& other) const {
    return values_ != other.values_;
  }
  /// Lexicographic order; used to keep FlatRelation canonical.
  bool operator<(const FlatTuple& other) const;

  size_t Hash() const;

  /// "(s1, c1, b1)"-style rendering.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const FlatTuple& tuple);

/// An NFR tuple `[E1(e11,...,e1r1) ... En(en1,...,enrn)]` (§3.1): one
/// non-empty *set* of atomic values per attribute. It denotes the set of
/// simple tuples obtained by picking one element per component — i.e.
/// its expansion is the full cross product of the component sets.
class NfrTuple {
 public:
  NfrTuple() = default;
  explicit NfrTuple(std::vector<ValueSet> components)
      : components_(std::move(components)) {}
  NfrTuple(std::initializer_list<ValueSet> components)
      : components_(components) {}

  /// Promotes a simple tuple to an all-singleton NFR tuple.
  static NfrTuple FromFlat(const FlatTuple& flat);

  size_t degree() const { return components_.size(); }
  const std::vector<ValueSet>& components() const { return components_; }
  const ValueSet& at(size_t i) const;
  ValueSet& at(size_t i);

  /// True when every component is a singleton (a simple tuple in NFR
  /// clothing).
  bool IsSimple() const;

  /// True when every component is non-empty (an invariant of well-formed
  /// NFR tuples; decomposition must never produce an empty component).
  bool IsWellFormed() const;

  /// Number of simple tuples this tuple denotes: the product of
  /// component sizes. May be large; saturates at uint64 max.
  uint64_t ExpandedCount() const;

  /// All denoted simple tuples, in lexicographic order.
  std::vector<FlatTuple> Expand() const;

  /// True when `flat` is one of the denoted simple tuples, i.e. each of
  /// its values is a member of the corresponding component.
  bool ExpansionContains(const FlatTuple& flat) const;

  /// Def. 1 precondition: this and `other` are set-theoretically equal on
  /// every component except position `c`.
  bool AgreesExcept(const NfrTuple& other, size_t c) const;

  /// True when each component of this tuple is a subset of `other`'s.
  bool IsComponentwiseSubsetOf(const NfrTuple& other) const;

  bool operator==(const NfrTuple& other) const {
    return components_ == other.components_;
  }
  bool operator!=(const NfrTuple& other) const {
    return components_ != other.components_;
  }
  /// Lexicographic order on components; gives relations a canonical
  /// printing/comparison order.
  bool operator<(const NfrTuple& other) const;

  size_t Hash() const;

  /// Hash of all components except position `skip` — the NestOn
  /// grouping key; pass degree() or larger to hash every component.
  /// Its interned twin is HashEncodedTupleExcept (core/value_dictionary),
  /// which mixes IdSet hashes with the same seed so both grouping paths
  /// bucket identically shaped inputs the same way.
  size_t HashExcept(size_t skip) const;

  /// Paper-style rendering with attribute names:
  /// "[Student(s2,s3) Course(c1,c2)]". Without a schema, positions are
  /// rendered as E1..En.
  std::string ToString(const Schema& schema) const;
  std::string ToString() const;

 private:
  std::vector<ValueSet> components_;
};

std::ostream& operator<<(std::ostream& os, const NfrTuple& tuple);

}  // namespace nf2

namespace std {
template <>
struct hash<nf2::FlatTuple> {
  size_t operator()(const nf2::FlatTuple& t) const { return t.Hash(); }
};
template <>
struct hash<nf2::NfrTuple> {
  size_t operator()(const nf2::NfrTuple& t) const { return t.Hash(); }
};
}  // namespace std

#endif  // NF2_CORE_TUPLE_H_
