#ifndef NF2_CORE_UPDATE_H_
#define NF2_CORE_UPDATE_H_

#include <memory>
#include <optional>
#include <string>

#include "core/index.h"
#include "core/nest.h"
#include "core/relation.h"
#include "core/value_dictionary.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace nf2 {

/// Operation counters for the §4 update algorithms. The paper measures
/// complexity as the *number of compositions* (Theorem A-4: at most a
/// function of the degree n, independent of the number of tuples).
///
/// The *_ns counters are wall-clock nanoseconds, so `\stats` can show
/// where time goes alongside how much algebra ran. recons_ns covers the
/// top-level recons invocations (including the candidate searches they
/// perform); find_candidate_ns isolates the candt search itself.
struct UpdateStats {
  uint64_t compositions = 0;    // compo() applications (Def. 1)
  uint64_t decompositions = 0;  // unnest() applications (Def. 2)
  uint64_t recons_calls = 0;    // invocations of procedure "recons"
  uint64_t candidate_scans = 0; // tuples examined while searching candt
  uint64_t find_candidate_ns = 0;  // wall time inside FindCandidate
  uint64_t recons_ns = 0;          // wall time inside top-level Recons

  void Reset() { *this = UpdateStats{}; }

  /// Average nanoseconds per FindCandidate call (0 when never called).
  double AvgFindCandidateNs() const;
  /// Average nanoseconds per top-level recons chain, approximated per
  /// recons call (0 when never called).
  double AvgReconsNs() const;

  UpdateStats operator-(const UpdateStats& other) const;
  std::string ToString() const;
};

/// An NFR maintained in canonical form V_P(R*) under a fixed nest order
/// (§3.3), supporting tuple-level insertion and deletion with the §4
/// algorithms: updates touch only the tuples reachable from the
/// candidate chain, never the whole relation.
///
/// Invariant: relation() == CanonicalForm(relation().Expand(), order())
/// after every successful operation — tests enforce this against the
/// nest-from-scratch oracle.
class CanonicalRelation {
 public:
  /// Whether candidate/containment searches scan all tuples (the
  /// paper's algorithms as written) or use an inverted value index
  /// (the §5 "optimization strategy", implemented in core/index.h).
  /// Both produce identical relations; only the search cost differs.
  enum class SearchMode { kScan, kIndexed };

  /// Which representation the candidate/containment searches run on.
  /// kValue is the untouched pre-dictionary path, kept as the
  /// comparison control; kInterned maintains an id-encoded mirror of
  /// every tuple against a ValueDictionary, so the hot searches compare
  /// and hash dense integers. The two modes execute the same algebra —
  /// composition/decomposition/recons counts are bit-identical.
  enum class Encoding { kValue, kInterned };

  /// An empty canonical relation. `order` must be a permutation of the
  /// schema's positions; order[0] is nested first. When `dict` is null
  /// and `encoding` is kInterned, the relation owns a private
  /// dictionary; the engine passes its per-database dictionary instead
  /// so ids are shared across relations.
  CanonicalRelation(Schema schema, Permutation order,
                    SearchMode mode = SearchMode::kIndexed,
                    Encoding encoding = Encoding::kInterned,
                    std::shared_ptr<ValueDictionary> dict = nullptr);

  /// Builds the canonical form of an existing 1NF relation.
  static Result<CanonicalRelation> FromFlat(
      const FlatRelation& flat, Permutation order,
      SearchMode mode = SearchMode::kIndexed,
      Encoding encoding = Encoding::kInterned,
      std::shared_ptr<ValueDictionary> dict = nullptr);

  const Schema& schema() const { return relation_.schema(); }
  const Permutation& order() const { return order_; }
  const NfrRelation& relation() const { return relation_; }

  /// Number of NFR tuples currently held.
  size_t size() const { return relation_.size(); }

  /// True when the simple tuple `t` is in R*.
  bool Contains(const FlatTuple& t) const;

  /// The NFR tuples whose `attr` component contains `value` — a point
  /// query answered from the inverted index when available (kIndexed),
  /// falling back to a scan otherwise. Exactly the tuples a tuple-level
  /// select for `attr = value` returns.
  NfrRelation TuplesContaining(size_t attr, const Value& value) const;

  /// The NFR tuples whose `attr` component holds at least one value
  /// inside `bound` — a range query answered by a bound-scan of the
  /// sorted index postings when available (kIndexed/kInterned), falling
  /// back to a scan otherwise. The candidates for `attr < v` & co.
  NfrRelation TuplesInRange(size_t attr, const RangeBound& bound) const;

  /// Id-space twin of TuplesContaining for kInterned relations: the
  /// caller resolves `value` to its ValueId against a dictionary of its
  /// choosing, and the lookup then never touches dict_ — which is what
  /// lets a snapshot reader (engine/snapshot.h) answer point queries
  /// against a frozen dictionary while writers intern into the live
  /// one. Answered from the inverted index when available, falling
  /// back to a scan of the encoded mirror.
  NfrRelation TuplesContainingId(size_t attr, ValueId id) const;

  /// §4.2: inserts simple tuple `t`, restoring canonical form via the
  /// candidate-tuple / recons procedure. AlreadyExists if present.
  Status Insert(const FlatTuple& t);

  /// §4.3: deletes simple tuple `t` — locate the containing tuple
  /// (searcht), unnest it down to `t` re-inserting the split-off
  /// remainders through recons, then drop it. NotFound if absent.
  Status Delete(const FlatTuple& t);

  /// Cumulative operation counters (never reset internally).
  const UpdateStats& stats() const { return stats_; }
  UpdateStats* mutable_stats() { return &stats_; }

  /// Mirrors every stats_ increment into the given registry counters
  /// (the engine passes handles from its MetricsRegistry, so the
  /// database-wide §4 counters stay bit-identical to the sum of the
  /// per-relation UpdateStats). Call before the first operation.
  void set_metrics(const UpdatePathMetrics& metrics) { metrics_ = metrics; }

  SearchMode search_mode() const { return mode_; }
  Encoding encoding() const { return encoding_; }

  /// The dictionary backing the interned representation (null in
  /// kValue mode).
  const std::shared_ptr<ValueDictionary>& dictionary() const {
    return dict_;
  }

 private:
  /// The paper's procedure "recons": repeatedly merge `t` into the
  /// relation via its candidate tuple, splitting the candidate on
  /// later-nested attributes as needed; adds `t` verbatim when no
  /// candidate exists.
  void Recons(NfrTuple t, int depth);

  struct Candidate {
    size_t tuple_index;  // Index into relation_.
    size_t m_pos;        // Position in nest order where composition happens.
  };

  /// The paper's "candt": the unique candidate tuple of `t` with the
  /// smallest nest-order position m, if any. A tuple s is a candidate at
  /// position m when s agrees exactly with t on every earlier-nested
  /// attribute, covers t on every later-nested attribute, and is
  /// disjoint from t on the m-th — then unnesting s on the later-nested
  /// attributes (Lemma A-2) makes it composable with t over m.
  std::optional<Candidate> FindCandidate(const NfrTuple& t);

  /// True when tuple `s` is a candidate for `t` at nest position `m`.
  bool IsCandidateAt(const NfrTuple& s, const NfrTuple& t, size_t m) const;

  /// Id-space twin of IsCandidateAt — pure integer merges.
  bool IsCandidateAtEncoded(const EncodedTuple& s, const EncodedTuple& t,
                            size_t m) const;

  /// Index-maintaining mutations of relation_ (and, in kInterned mode,
  /// of the encoded mirror).
  void AddTuple(NfrTuple t);
  NfrTuple TakeTupleAt(size_t index);

  /// The unique tuple whose expansion contains `t`, or size() if none.
  size_t FindContainingTuple(const FlatTuple& t) const;

  /// Encodes the simple tuple `t` against dict_ WITHOUT interning new
  /// values: nullopt when some value is not in the dictionary (then no
  /// stored tuple can contain `t`).
  std::optional<EncodedTuple> TryEncodeFlat(const FlatTuple& t) const;

  NfrRelation relation_;
  Permutation order_;
  SearchMode mode_;
  Encoding encoding_;
  std::shared_ptr<ValueDictionary> dict_;  // kInterned only.
  std::vector<EncodedTuple> encoded_;      // Mirror of relation_ (kInterned).
  std::optional<NfrIndex> index_;
  UpdateStats stats_;
  UpdatePathMetrics metrics_;  // All-null when not wired to a registry.
};

/// Ablation baseline: re-derives the canonical form of R* ± t from
/// scratch by full re-nesting (what a system without the §4 algorithms
/// would do). Used by bench_update_complexity.
NfrRelation RebuildCanonicalAfterInsert(const NfrRelation& r,
                                        const FlatTuple& t,
                                        const Permutation& order);
NfrRelation RebuildCanonicalAfterDelete(const NfrRelation& r,
                                        const FlatTuple& t,
                                        const Permutation& order);

}  // namespace nf2

#endif  // NF2_CORE_UPDATE_H_
