#include "core/diff.h"

#include "util/string_util.h"

namespace nf2 {

std::string UpdateScript::ToString() const {
  std::string out =
      StrCat("UpdateScript{", deletes.size(), " deletes, ",
             inserts.size(), " inserts}\n");
  for (const FlatTuple& t : deletes) {
    out += StrCat("  - ", t.ToString(), "\n");
  }
  for (const FlatTuple& t : inserts) {
    out += StrCat("  + ", t.ToString(), "\n");
  }
  return out;
}

Result<UpdateScript> ComputeDiff(const FlatRelation& from,
                                 const FlatRelation& to) {
  if (from.schema() != to.schema()) {
    return Status::InvalidArgument(
        StrCat("diff schema mismatch: ", from.schema().ToString(), " vs ",
               to.schema().ToString()));
  }
  UpdateScript script;
  // Both tuple lists are sorted: a single merge pass.
  size_t i = 0, j = 0;
  while (i < from.size() || j < to.size()) {
    if (j == to.size() ||
        (i < from.size() && from.tuple(i) < to.tuple(j))) {
      script.deletes.push_back(from.tuple(i));
      ++i;
    } else if (i == from.size() || to.tuple(j) < from.tuple(i)) {
      script.inserts.push_back(to.tuple(j));
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return script;
}

Status ApplyScript(const UpdateScript& script, CanonicalRelation* rel) {
  for (const FlatTuple& t : script.deletes) {
    NF2_RETURN_IF_ERROR(rel->Delete(t));
  }
  for (const FlatTuple& t : script.inserts) {
    NF2_RETURN_IF_ERROR(rel->Insert(t));
  }
  return Status::OK();
}

Result<size_t> SyncTo(const FlatRelation& target, CanonicalRelation* rel) {
  NF2_ASSIGN_OR_RETURN(UpdateScript script,
                       ComputeDiff(rel->relation().Expand(), target));
  NF2_RETURN_IF_ERROR(ApplyScript(script, rel));
  return script.size();
}

}  // namespace nf2
