#include "core/value_dictionary.h"

#include <algorithm>
#include <numeric>

#include "util/hash.h"
#include "util/logging.h"

namespace nf2 {

ValueId ValueDictionary::Intern(const Value& v) {
  auto it = ids_.find(v);
  if (it != ids_.end()) return it->second;
  NF2_CHECK(values_.size() < kMaxValues) << "value dictionary full";
  ValueId id = static_cast<ValueId>(values_.size());
  if (!ranks_dirty_) {
    if (values_.empty() || values_[max_value_id_] < v) {
      // Monotone intern: the new value takes the next rank directly.
      ranks_.push_back(id);
      max_value_id_ = id;
    } else {
      ranks_dirty_ = true;
    }
  }
  values_.push_back(v);
  ids_.emplace(v, id);
  return id;
}

std::optional<ValueId> ValueDictionary::Find(const Value& v) const {
  auto it = ids_.find(v);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

const Value& ValueDictionary::value(ValueId id) const {
  NF2_CHECK(id < values_.size()) << "ValueId " << id << " out of range";
  return values_[id];
}

void ValueDictionary::EnsureRanks() const {
  if (!ranks_dirty_ && ranks_.size() == values_.size()) return;
  std::vector<ValueId> by_value(values_.size());
  std::iota(by_value.begin(), by_value.end(), 0);
  std::sort(by_value.begin(), by_value.end(),
            [this](ValueId a, ValueId b) { return values_[a] < values_[b]; });
  ranks_.resize(values_.size());
  for (uint32_t rank = 0; rank < by_value.size(); ++rank) {
    ranks_[by_value[rank]] = rank;
  }
  if (!by_value.empty()) max_value_id_ = by_value.back();
  ranks_dirty_ = false;
}

uint32_t ValueDictionary::Rank(ValueId id) const {
  NF2_CHECK(id < values_.size()) << "ValueId " << id << " out of range";
  EnsureRanks();
  return ranks_[id];
}

int ValueDictionary::CompareIds(ValueId a, ValueId b) const {
  if (a == b) return 0;
  uint32_t ra = Rank(a);
  uint32_t rb = Rank(b);
  return ra < rb ? -1 : 1;
}

std::vector<ValueId> ValueDictionary::IdsInValueOrder() const {
  EnsureRanks();
  std::vector<ValueId> out(values_.size());
  for (ValueId id = 0; id < out.size(); ++id) {
    out[ranks_[id]] = id;
  }
  return out;
}

IdSet::IdSet(std::vector<ValueId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

IdSet IdSet::FromSorted(std::vector<ValueId> ids) {
  NF2_DCHECK(std::is_sorted(ids.begin(), ids.end()) &&
             std::adjacent_find(ids.begin(), ids.end()) == ids.end())
      << "IdSet::FromSorted input not sorted-unique";
  IdSet out;
  out.ids_ = std::move(ids);
  return out;
}

ValueId IdSet::single() const {
  NF2_CHECK(IsSingleton()) << "IdSet::single() on set of size " << ids_.size();
  return ids_[0];
}

bool IdSet::Contains(ValueId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool IdSet::Insert(ValueId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) return false;
  ids_.insert(it, id);
  return true;
}

bool IdSet::Erase(ValueId id) {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return false;
  ids_.erase(it);
  return true;
}

IdSet IdSet::Union(const IdSet& other) const {
  IdSet out;
  out.ids_.reserve(ids_.size() + other.ids_.size());
  std::set_union(ids_.begin(), ids_.end(), other.ids_.begin(),
                 other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IdSet IdSet::Intersect(const IdSet& other) const {
  IdSet out;
  std::set_intersection(ids_.begin(), ids_.end(), other.ids_.begin(),
                        other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

IdSet IdSet::Difference(const IdSet& other) const {
  IdSet out;
  std::set_difference(ids_.begin(), ids_.end(), other.ids_.begin(),
                      other.ids_.end(), std::back_inserter(out.ids_));
  return out;
}

bool IdSet::IsSubsetOf(const IdSet& other) const {
  return std::includes(other.ids_.begin(), other.ids_.end(), ids_.begin(),
                       ids_.end());
}

bool IdSet::IsDisjointFrom(const IdSet& other) const {
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a == *b) return false;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return true;
}

size_t IdSet::Hash() const {
  size_t seed = 0xcbf29ce484222325ULL;
  for (ValueId id : ids_) {
    seed = HashCombine(seed, id);
  }
  return seed;
}

IdSet InternValueSet(ValueDictionary* dict, const ValueSet& s) {
  std::vector<ValueId> ids;
  ids.reserve(s.size());
  for (const Value& v : s.values()) {
    ids.push_back(dict->Intern(v));
  }
  return IdSet(std::move(ids));
}

ValueSet DecodeIdSet(const ValueDictionary& dict, const IdSet& s) {
  // Sort ids by rank so the decoded elements come out in ascending
  // value order and ValueSet can skip its own payload sort.
  std::vector<ValueId> by_value(s.ids());
  std::sort(by_value.begin(), by_value.end(),
            [&dict](ValueId a, ValueId b) {
              return dict.Rank(a) < dict.Rank(b);
            });
  std::vector<Value> values;
  values.reserve(by_value.size());
  for (ValueId id : by_value) {
    values.push_back(dict.value(id));
  }
  return ValueSet::FromSortedUnique(std::move(values));
}

EncodedTuple InternTuple(ValueDictionary* dict, const NfrTuple& t) {
  EncodedTuple out;
  out.reserve(t.degree());
  for (const ValueSet& c : t.components()) {
    out.push_back(InternValueSet(dict, c));
  }
  return out;
}

NfrTuple DecodeTuple(const ValueDictionary& dict, const EncodedTuple& t) {
  std::vector<ValueSet> components;
  components.reserve(t.size());
  for (const IdSet& s : t) {
    components.push_back(DecodeIdSet(dict, s));
  }
  return NfrTuple(std::move(components));
}

size_t HashEncodedTupleExcept(const EncodedTuple& t, size_t skip_attr) {
  size_t seed = 0x9e57;
  for (size_t i = 0; i < t.size(); ++i) {
    if (i == skip_attr) continue;
    seed = HashCombine(seed, t[i].Hash());
  }
  return seed;
}

}  // namespace nf2
