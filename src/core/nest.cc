#include "core/nest.h"

#include <algorithm>
#include <unordered_map>

#include "core/compose.h"
#include "core/value_dictionary.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

Permutation IdentityPermutation(size_t degree) {
  Permutation perm(degree);
  for (size_t i = 0; i < degree; ++i) perm[i] = i;
  return perm;
}

Result<Permutation> PermutationFromNames(
    const Schema& schema, const std::vector<std::string>& names) {
  if (names.size() != schema.degree()) {
    return Status::InvalidArgument(
        StrCat("permutation has ", names.size(), " names but schema degree is ",
               schema.degree()));
  }
  Permutation perm;
  perm.reserve(names.size());
  for (const std::string& name : names) {
    NF2_ASSIGN_OR_RETURN(size_t idx, schema.RequireIndex(name));
    perm.push_back(idx);
  }
  if (!IsValidPermutation(perm, schema.degree())) {
    return Status::InvalidArgument("permutation names contain duplicates");
  }
  return perm;
}

bool IsValidPermutation(const Permutation& perm, size_t degree) {
  if (perm.size() != degree) return false;
  std::vector<bool> seen(degree, false);
  for (size_t p : perm) {
    if (p >= degree || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

std::vector<Permutation> AllPermutations(size_t degree) {
  NF2_CHECK(degree <= 8) << "AllPermutations limited to degree 8";
  Permutation perm = IdentityPermutation(degree);
  std::vector<Permutation> out;
  do {
    out.push_back(perm);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return out;
}

namespace {

/// Componentwise equality of encoded tuples except position `attr` —
/// the id-space form of NfrTuple::AgreesExcept.
bool AgreesExceptEncoded(const EncodedTuple& a, const EncodedTuple& b,
                         size_t attr) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (i == attr) continue;
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// One NestOn stage in id space: group tuples that agree on every
/// component except `attr` (integer hash + integer equality), union the
/// attr ids within each group. Same loop structure as the Value path,
/// so the output tuple order is identical.
std::vector<EncodedTuple> NestEncodedOn(std::vector<EncodedTuple> tuples,
                                        size_t attr) {
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  std::vector<EncodedTuple> merged;
  merged.reserve(tuples.size());
  for (EncodedTuple& t : tuples) {
    size_t h = HashEncodedTupleExcept(t, attr);
    auto& bucket = buckets[h];
    bool joined = false;
    for (size_t idx : bucket) {
      if (AgreesExceptEncoded(merged[idx], t, attr)) {
        merged[idx][attr] = merged[idx][attr].Union(t[attr]);
        joined = true;
        break;
      }
    }
    if (!joined) {
      bucket.push_back(merged.size());
      merged.push_back(std::move(t));
    }
  }
  return merged;
}

NfrRelation DecodeRelation(const Schema& schema, const ValueDictionary& dict,
                           std::vector<EncodedTuple> tuples) {
  std::vector<NfrTuple> out;
  out.reserve(tuples.size());
  for (const EncodedTuple& t : tuples) {
    out.push_back(DecodeTuple(dict, t));
  }
  return NfrRelation(schema, std::move(out));
}

}  // namespace

NfrRelation NestOn(const NfrRelation& r, size_t attr) {
  NF2_CHECK(attr < r.degree()) << "NestOn attribute out of range";
  ValueDictionary dict;
  std::vector<EncodedTuple> encoded;
  encoded.reserve(r.size());
  for (const NfrTuple& t : r.tuples()) {
    encoded.push_back(InternTuple(&dict, t));
  }
  return DecodeRelation(r.schema(), dict,
                        NestEncodedOn(std::move(encoded), attr));
}

NfrRelation NestOnLegacy(const NfrRelation& r, size_t attr) {
  NF2_CHECK(attr < r.degree()) << "NestOn attribute out of range";
  // Group tuples that agree on every component except `attr`, then union
  // the attr-components within each group. This is exactly the closure
  // of Definition 1 compositions over `attr`; Theorem 2 guarantees the
  // pairwise order is irrelevant.
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  std::vector<NfrTuple> merged;
  merged.reserve(r.size());
  for (const NfrTuple& t : r.tuples()) {
    size_t h = t.HashExcept(attr);
    auto& bucket = buckets[h];
    bool joined = false;
    for (size_t idx : bucket) {
      if (merged[idx].AgreesExcept(t, attr)) {
        merged[idx].at(attr) = merged[idx].at(attr).Union(t.at(attr));
        joined = true;
        break;
      }
    }
    if (!joined) {
      bucket.push_back(merged.size());
      merged.push_back(t);
    }
  }
  return NfrRelation(r.schema(), std::move(merged));
}

NfrRelation RandomizedNestOn(const NfrRelation& r, size_t attr, Rng* rng) {
  NF2_CHECK(attr < r.degree());
  NF2_CHECK(rng != nullptr);
  std::vector<NfrTuple> tuples = r.tuples();
  rng->Shuffle(&tuples);
  bool changed = true;
  while (changed) {
    changed = false;
    // Collect all composable pairs, pick one at random, apply, repeat.
    std::vector<std::pair<size_t, size_t>> pairs;
    for (size_t i = 0; i < tuples.size() && pairs.size() < 64; ++i) {
      for (size_t j = i + 1; j < tuples.size() && pairs.size() < 64; ++j) {
        if (ComposableOn(tuples[i], tuples[j], attr)) {
          pairs.emplace_back(i, j);
        }
      }
    }
    if (!pairs.empty()) {
      auto [i, j] = pairs[rng->NextBelow(pairs.size())];
      tuples[i] = Compose(tuples[i], tuples[j], attr);
      tuples.erase(tuples.begin() + static_cast<ptrdiff_t>(j));
      changed = true;
    }
  }
  return NfrRelation(r.schema(), std::move(tuples));
}

NfrRelation NestSequence(const NfrRelation& r, const Permutation& perm) {
  NF2_CHECK(IsValidPermutation(perm, r.degree()))
      << "NestSequence: invalid permutation";
  // Encode once, run every stage on ids, decode once.
  ValueDictionary dict;
  std::vector<EncodedTuple> encoded;
  encoded.reserve(r.size());
  for (const NfrTuple& t : r.tuples()) {
    encoded.push_back(InternTuple(&dict, t));
  }
  for (size_t attr : perm) {
    encoded = NestEncodedOn(std::move(encoded), attr);
  }
  return DecodeRelation(r.schema(), dict, std::move(encoded));
}

NfrRelation CanonicalForm(const FlatRelation& r, const Permutation& perm) {
  NF2_CHECK(IsValidPermutation(perm, r.degree()))
      << "CanonicalForm: invalid permutation";
  // Flat tuples encode directly to all-singleton id tuples; the
  // intermediate singleton NfrRelation of the definition never
  // materializes.
  ValueDictionary dict;
  std::vector<EncodedTuple> encoded;
  encoded.reserve(r.size());
  for (const FlatTuple& t : r.tuples()) {
    EncodedTuple enc;
    enc.reserve(t.degree());
    for (const Value& v : t.values()) {
      enc.push_back(IdSet(dict.Intern(v)));
    }
    encoded.push_back(std::move(enc));
  }
  for (size_t attr : perm) {
    encoded = NestEncodedOn(std::move(encoded), attr);
  }
  return DecodeRelation(r.schema(), dict, std::move(encoded));
}

NfrRelation NestSequenceLegacy(const NfrRelation& r, const Permutation& perm) {
  NF2_CHECK(IsValidPermutation(perm, r.degree()))
      << "NestSequence: invalid permutation";
  NfrRelation out = r;
  for (size_t attr : perm) {
    out = NestOnLegacy(out, attr);
  }
  return out;
}

NfrRelation CanonicalFormLegacy(const FlatRelation& r,
                                const Permutation& perm) {
  return NestSequenceLegacy(NfrRelation::FromFlat(r), perm);
}

NfrRelation UnnestOn(const NfrRelation& r, size_t attr) {
  NF2_CHECK(attr < r.degree());
  std::vector<NfrTuple> out;
  out.reserve(r.size());
  for (const NfrTuple& t : r.tuples()) {
    for (const Value& v : t.at(attr).values()) {
      NfrTuple split = t;
      split.at(attr) = ValueSet(v);
      out.push_back(std::move(split));
    }
  }
  return NfrRelation(r.schema(), std::move(out));
}

FlatRelation UnnestAll(const NfrRelation& r) { return r.Expand(); }

}  // namespace nf2
