#ifndef NF2_CORE_INDEX_H_
#define NF2_CORE_INDEX_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/tuple.h"
#include "core/value.h"
#include "core/value_dictionary.h"

namespace nf2 {

/// A one-dimensional interval over attribute values: the target of a
/// range predicate (`attr < v`, `attr >= v`, ...) after the planner has
/// folded every top-level range conjunct on one attribute together.
/// Absent bounds are unbounded on that side.
struct RangeBound {
  std::optional<Value> lower;
  std::optional<Value> upper;
  bool lower_inclusive = true;
  bool upper_inclusive = true;

  /// True when `v` lies inside the interval.
  bool Admits(const Value& v) const {
    if (lower.has_value()) {
      if (lower_inclusive ? v < *lower : v <= *lower) return false;
    }
    if (upper.has_value()) {
      if (upper_inclusive ? *upper < v : *upper <= v) return false;
    }
    return true;
  }
};

/// An inverted index over the tuples of one NFR: for every attribute
/// position, a map from atomic value to the ids of the tuples whose
/// component contains that value.
///
/// This is the "optimization strategy" the paper leaves open (§5): the
/// §4 algorithms' candidate search (`candt`) and containing-tuple
/// search (`searcht`) become posting-list intersections instead of full
/// scans, making update cost sublinear in the number of tuples while
/// the composition count stays bounded by Theorem A-4.
///
/// Two keying modes:
///  - Value-keyed (legacy): postings live in a std::map<Value, ...>
///    per attribute; every lookup re-compares variant payloads.
///  - Id-keyed (interned): constructed with a ValueDictionary, postings
///    live in a plain vector indexed by the dense ValueId, so a lookup
///    is one array access. Mutations then go through the *Encoded
///    entry points; the Value-based read API still works by consulting
///    the dictionary first.
///
/// Tuple ids are positions in the owner's tuple vector; the owner must
/// use swap-remove semantics and report moves via MoveTuple.
class NfrIndex {
 public:
  /// Value-keyed index (the untouched legacy path).
  explicit NfrIndex(size_t degree);

  /// Id-keyed index over `dict`.
  NfrIndex(size_t degree, std::shared_ptr<const ValueDictionary> dict);

  size_t degree() const { return degree_; }
  bool interned() const { return dict_ != nullptr; }

  /// Indexes `t` under `tuple_id` (Value-keyed mode only).
  void AddTuple(size_t tuple_id, const NfrTuple& t);

  /// Removes `t`'s entries for `tuple_id` (Value-keyed mode only).
  void RemoveTuple(size_t tuple_id, const NfrTuple& t);

  /// Re-labels `t` from `from_id` to `to_id` (swap-remove bookkeeping,
  /// Value-keyed mode only).
  void MoveTuple(size_t from_id, size_t to_id, const NfrTuple& t);

  /// Id-keyed counterparts (interned mode only).
  void AddEncoded(size_t tuple_id, const EncodedTuple& t);
  void RemoveEncoded(size_t tuple_id, const EncodedTuple& t);
  void MoveEncoded(size_t from_id, size_t to_id, const EncodedTuple& t);

  /// Ids of tuples whose `attr` component contains `v` (ascending), or
  /// nullptr when none do. Works in both modes.
  const std::vector<size_t>* Postings(size_t attr, const Value& v) const;

  /// Ids of tuples whose `attr` component contains the interned value
  /// `id` (interned mode only).
  const std::vector<size_t>* PostingsById(size_t attr, ValueId id) const;

  /// Ids of tuples whose `attr` component contains at least one value
  /// inside `bound` — the union of the postings whose keys fall in the
  /// interval. Value-keyed mode bound-scans the sorted postings map;
  /// interned mode bound-scans the dictionary's value order and unions
  /// the id-keyed slots inside the bound. Works in both modes.
  std::vector<size_t> ContainingInRange(size_t attr,
                                        const RangeBound& bound) const;

  /// Ids of tuples whose `attr` component contains EVERY value of
  /// `values` — the intersection of the postings. Empty vector when any
  /// value is unindexed. Works in both modes.
  std::vector<size_t> ContainingAll(size_t attr,
                                    const ValueSet& values) const;

  /// Id-space form of ContainingAll (interned mode only).
  std::vector<size_t> ContainingAllIds(size_t attr, const IdSet& ids) const;

  /// Ids of tuples containing the whole tuple `t` componentwise (the
  /// index form of "expansion contains"): intersection across all
  /// attributes. For well-formed NFRs this has at most one element when
  /// `t` is simple. Works in both modes.
  std::vector<size_t> ContainingTuple(const NfrTuple& t) const;

  /// Id-space form of ContainingTuple (interned mode only).
  std::vector<size_t> ContainingEncoded(const EncodedTuple& t) const;

  /// Total number of (value -> id) entries, for stats/tests.
  size_t entry_count() const;

  /// Id-keyed capacity: total posting slots held across all attributes
  /// (including empty interior ones). RemoveEncoded reclaims trailing
  /// empty slots, so after deleting the tuples that carried the highest
  /// ValueIds this shrinks back — churn-heavy workloads must not grow
  /// postings_by_id_ forever. Always 0 in Value-keyed mode (that path
  /// erases empty map entries instead).
  size_t slot_count() const;

 private:
  size_t degree_;

  // Value-keyed mode. Postings are sorted vectors: components are small
  // and intersections scan linearly.
  std::vector<std::map<Value, std::vector<size_t>>> postings_;

  // Id-keyed mode: postings_by_id_[attr][value_id] -> sorted tuple ids.
  // Slots are grown on demand; an empty slot means "unindexed".
  std::shared_ptr<const ValueDictionary> dict_;
  std::vector<std::vector<std::vector<size_t>>> postings_by_id_;
};

/// Intersects two sorted id vectors.
std::vector<size_t> IntersectSorted(const std::vector<size_t>& a,
                                    const std::vector<size_t>& b);

}  // namespace nf2

#endif  // NF2_CORE_INDEX_H_
