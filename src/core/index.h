#ifndef NF2_CORE_INDEX_H_
#define NF2_CORE_INDEX_H_

#include <map>
#include <optional>
#include <vector>

#include "core/tuple.h"
#include "core/value.h"

namespace nf2 {

/// An inverted index over the tuples of one NFR: for every attribute
/// position, a map from atomic value to the ids of the tuples whose
/// component contains that value.
///
/// This is the "optimization strategy" the paper leaves open (§5): the
/// §4 algorithms' candidate search (`candt`) and containing-tuple
/// search (`searcht`) become posting-list intersections instead of full
/// scans, making update cost sublinear in the number of tuples while
/// the composition count stays bounded by Theorem A-4.
///
/// Tuple ids are positions in the owner's tuple vector; the owner must
/// use swap-remove semantics and report moves via MoveTuple.
class NfrIndex {
 public:
  explicit NfrIndex(size_t degree);

  size_t degree() const { return postings_.size(); }

  /// Indexes `t` under `tuple_id`.
  void AddTuple(size_t tuple_id, const NfrTuple& t);

  /// Removes `t`'s entries for `tuple_id`.
  void RemoveTuple(size_t tuple_id, const NfrTuple& t);

  /// Re-labels `t` from `from_id` to `to_id` (swap-remove bookkeeping).
  void MoveTuple(size_t from_id, size_t to_id, const NfrTuple& t);

  /// Ids of tuples whose `attr` component contains `v` (ascending), or
  /// nullptr when none do.
  const std::vector<size_t>* Postings(size_t attr, const Value& v) const;

  /// Ids of tuples whose `attr` component contains EVERY value of
  /// `values` — the intersection of the postings. Empty vector when any
  /// value is unindexed.
  std::vector<size_t> ContainingAll(size_t attr,
                                    const ValueSet& values) const;

  /// Ids of tuples containing the whole tuple `t` componentwise (the
  /// index form of "expansion contains"): intersection across all
  /// attributes. For well-formed NFRs this has at most one element when
  /// `t` is simple.
  std::vector<size_t> ContainingTuple(const NfrTuple& t) const;

  /// Total number of (value -> id) entries, for stats/tests.
  size_t entry_count() const;

 private:
  // One value->postings map per attribute. Postings are sorted vectors:
  // components are small and intersections scan linearly.
  std::vector<std::map<Value, std::vector<size_t>>> postings_;
};

/// Intersects two sorted id vectors.
std::vector<size_t> IntersectSorted(const std::vector<size_t>& a,
                                    const std::vector<size_t>& b);

}  // namespace nf2

#endif  // NF2_CORE_INDEX_H_
