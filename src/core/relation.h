#ifndef NF2_CORE_RELATION_H_
#define NF2_CORE_RELATION_H_

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "core/schema.h"
#include "core/tuple.h"
#include "util/result.h"

namespace nf2 {

/// A 1NF relation: a set of simple tuples, kept sorted and
/// duplicate-free. This is the paper's R* — the unique flat relation an
/// NFR denotes (Theorem 1).
class FlatRelation {
 public:
  FlatRelation() = default;
  explicit FlatRelation(Schema schema) : schema_(std::move(schema)) {}
  FlatRelation(Schema schema, std::vector<FlatTuple> tuples);

  const Schema& schema() const { return schema_; }
  size_t degree() const { return schema_.degree(); }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Tuples in ascending lexicographic order.
  const std::vector<FlatTuple>& tuples() const { return tuples_; }
  const FlatTuple& tuple(size_t i) const;

  /// Membership test (binary search).
  bool Contains(const FlatTuple& t) const;

  /// Inserts `t`; returns false if it was already present. Fatal if the
  /// tuple degree does not match the schema.
  bool Insert(FlatTuple t);

  /// Removes `t`; returns false if it was absent.
  bool Erase(const FlatTuple& t);

  /// Set-equality (schemas and tuple sets both match).
  bool operator==(const FlatRelation& other) const {
    return schema_ == other.schema_ && tuples_ == other.tuples_;
  }
  bool operator!=(const FlatRelation& other) const {
    return !(*this == other);
  }

  size_t Hash() const;

  /// Multi-line listing of all tuples.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<FlatTuple> tuples_;  // Sorted ascending, no duplicates.
};

std::ostream& operator<<(std::ostream& os, const FlatRelation& rel);

/// A non-first-normal-form relation (§3.1): a set of NFR tuples over
/// simple domains. Well-formed NFRs in this library are those derivable
/// from a 1NF relation by composition/decomposition, which means the
/// expansions of distinct tuples are pairwise disjoint and R* carries no
/// duplicates.
class NfrRelation {
 public:
  NfrRelation() = default;
  explicit NfrRelation(Schema schema) : schema_(std::move(schema)) {}
  NfrRelation(Schema schema, std::vector<NfrTuple> tuples);

  /// Promotes a 1NF relation to an all-singleton NFR.
  static NfrRelation FromFlat(const FlatRelation& flat);

  const Schema& schema() const { return schema_; }
  size_t degree() const { return schema_.degree(); }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<NfrTuple>& tuples() const { return tuples_; }
  const NfrTuple& tuple(size_t i) const;

  /// Adds a tuple (no disjointness check — callers that need the
  /// invariant use Validate()). Fatal on degree mismatch or empty
  /// component.
  void Add(NfrTuple t);

  /// Removes the tuple at `index` by swapping the last tuple into its
  /// place (O(1); relations are sets, so order is not meaningful —
  /// printing and comparison sort independently). Index-maintaining
  /// callers rely on exactly this move pattern.
  void RemoveAt(size_t index);

  /// Removes the first tuple equal to `t`; returns false if absent.
  bool Remove(const NfrTuple& t);

  /// Index of the first tuple equal to `t`, or size() when absent.
  size_t IndexOf(const NfrTuple& t) const;

  /// The unique 1NF relation R* this NFR denotes (Theorem 1).
  FlatRelation Expand() const;

  /// Number of simple tuples in R* assuming tuple disjointness.
  uint64_t ExpandedSize() const;

  /// True when some tuple's expansion contains `flat`.
  bool ExpansionContains(const FlatTuple& flat) const;

  /// Index of the unique tuple whose expansion contains `flat`, or
  /// size() when none does. (The paper's `searcht`.)
  size_t FindContaining(const FlatTuple& flat) const;

  /// Verifies well-formedness: all tuples match the schema, have
  /// non-empty components, and have pairwise disjoint expansions (so R*
  /// is duplicate-free and partitioned by the NFR tuples).
  Status Validate() const;

  /// Set-equality as *sets of NFR tuples* (order-insensitive).
  bool EqualsAsSet(const NfrRelation& other) const;

  /// True when both denote the same 1NF relation (R* equality) —
  /// "information equivalence" in the paper's sense.
  bool EquivalentTo(const NfrRelation& other) const;

  /// Sorts tuples into canonical (lexicographic) order, for printing and
  /// deterministic iteration.
  void SortTuples();

  /// Paper-style listing, one tuple per line.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<NfrTuple> tuples_;
};

std::ostream& operator<<(std::ostream& os, const NfrRelation& rel);

/// Builds a FlatRelation over an all-string schema from string literals:
///   MakeStringRelation({"A","B"}, {{"a1","b1"},{"a2","b1"}});
FlatRelation MakeStringRelation(
    std::initializer_list<const char*> attr_names,
    std::initializer_list<std::initializer_list<const char*>> rows);

}  // namespace nf2

#endif  // NF2_CORE_RELATION_H_
