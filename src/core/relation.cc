#include "core/relation.h"

#include <algorithm>

#include "util/hash.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

FlatRelation::FlatRelation(Schema schema, std::vector<FlatTuple> tuples)
    : schema_(std::move(schema)), tuples_(std::move(tuples)) {
  for (const FlatTuple& t : tuples_) {
    NF2_CHECK(t.degree() == schema_.degree())
        << "Tuple degree " << t.degree() << " != schema degree "
        << schema_.degree();
  }
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
}

const FlatTuple& FlatRelation::tuple(size_t i) const {
  NF2_CHECK(i < tuples_.size());
  return tuples_[i];
}

bool FlatRelation::Contains(const FlatTuple& t) const {
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

bool FlatRelation::Insert(FlatTuple t) {
  NF2_CHECK(t.degree() == schema_.degree())
      << "Tuple degree mismatch on insert";
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) {
    return false;
  }
  tuples_.insert(it, std::move(t));
  return true;
}

bool FlatRelation::Erase(const FlatTuple& t) {
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it == tuples_.end() || *it != t) {
    return false;
  }
  tuples_.erase(it);
  return true;
}

size_t FlatRelation::Hash() const {
  size_t seed = 0x1f1a7;
  for (const FlatTuple& t : tuples_) {
    seed = HashCombine(seed, t.Hash());
  }
  return seed;
}

std::string FlatRelation::ToString() const {
  std::string out = StrCat("FlatRelation", schema_.ToString(), " {",
                           tuples_.size(), " tuples}\n");
  for (const FlatTuple& t : tuples_) {
    out += StrCat("  ", t.ToString(), "\n");
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const FlatRelation& rel) {
  return os << rel.ToString();
}

NfrRelation::NfrRelation(Schema schema, std::vector<NfrTuple> tuples)
    : schema_(std::move(schema)), tuples_(std::move(tuples)) {
  for (const NfrTuple& t : tuples_) {
    NF2_CHECK(t.degree() == schema_.degree())
        << "NFR tuple degree mismatch";
    NF2_CHECK(t.IsWellFormed()) << "NFR tuple has empty component";
  }
}

NfrRelation NfrRelation::FromFlat(const FlatRelation& flat) {
  std::vector<NfrTuple> tuples;
  tuples.reserve(flat.size());
  for (const FlatTuple& t : flat.tuples()) {
    tuples.push_back(NfrTuple::FromFlat(t));
  }
  return NfrRelation(flat.schema(), std::move(tuples));
}

const NfrTuple& NfrRelation::tuple(size_t i) const {
  NF2_CHECK(i < tuples_.size());
  return tuples_[i];
}

void NfrRelation::Add(NfrTuple t) {
  NF2_CHECK(t.degree() == schema_.degree()) << "NFR tuple degree mismatch";
  NF2_CHECK(t.IsWellFormed()) << "NFR tuple has empty component";
  tuples_.push_back(std::move(t));
}

void NfrRelation::RemoveAt(size_t index) {
  NF2_CHECK(index < tuples_.size());
  if (index + 1 != tuples_.size()) {
    tuples_[index] = std::move(tuples_.back());
  }
  tuples_.pop_back();
}

bool NfrRelation::Remove(const NfrTuple& t) {
  size_t idx = IndexOf(t);
  if (idx == tuples_.size()) return false;
  RemoveAt(idx);
  return true;
}

size_t NfrRelation::IndexOf(const NfrTuple& t) const {
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (tuples_[i] == t) return i;
  }
  return tuples_.size();
}

FlatRelation NfrRelation::Expand() const {
  std::vector<FlatTuple> flat;
  for (const NfrTuple& t : tuples_) {
    std::vector<FlatTuple> expanded = t.Expand();
    flat.insert(flat.end(), expanded.begin(), expanded.end());
  }
  return FlatRelation(schema_, std::move(flat));
}

uint64_t NfrRelation::ExpandedSize() const {
  uint64_t total = 0;
  for (const NfrTuple& t : tuples_) {
    total += t.ExpandedCount();
  }
  return total;
}

bool NfrRelation::ExpansionContains(const FlatTuple& flat) const {
  return FindContaining(flat) != tuples_.size();
}

size_t NfrRelation::FindContaining(const FlatTuple& flat) const {
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (tuples_[i].ExpansionContains(flat)) return i;
  }
  return tuples_.size();
}

Status NfrRelation::Validate() const {
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (tuples_[i].degree() != schema_.degree()) {
      return Status::Corruption(
          StrCat("tuple ", i, " degree mismatch"));
    }
    if (!tuples_[i].IsWellFormed()) {
      return Status::Corruption(
          StrCat("tuple ", i, " has an empty component"));
    }
  }
  // Pairwise disjointness of expansions: two NFR tuples overlap iff
  // every pair of corresponding components intersects.
  for (size_t i = 0; i < tuples_.size(); ++i) {
    for (size_t j = i + 1; j < tuples_.size(); ++j) {
      bool overlap = true;
      for (size_t k = 0; k < schema_.degree(); ++k) {
        if (tuples_[i].at(k).IsDisjointFrom(tuples_[j].at(k))) {
          overlap = false;
          break;
        }
      }
      if (overlap) {
        return Status::Corruption(
            StrCat("tuples ", i, " and ", j,
                   " have overlapping expansions: ",
                   tuples_[i].ToString(schema_), " vs ",
                   tuples_[j].ToString(schema_)));
      }
    }
  }
  return Status::OK();
}

bool NfrRelation::EqualsAsSet(const NfrRelation& other) const {
  if (schema_ != other.schema_ || tuples_.size() != other.tuples_.size()) {
    return false;
  }
  std::vector<NfrTuple> a = tuples_;
  std::vector<NfrTuple> b = other.tuples_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

bool NfrRelation::EquivalentTo(const NfrRelation& other) const {
  return Expand() == other.Expand();
}

void NfrRelation::SortTuples() { std::sort(tuples_.begin(), tuples_.end()); }

std::string NfrRelation::ToString() const {
  std::string out = StrCat("NfrRelation", schema_.ToString(), " {",
                           tuples_.size(), " tuples}\n");
  std::vector<NfrTuple> sorted = tuples_;
  std::sort(sorted.begin(), sorted.end());
  for (const NfrTuple& t : sorted) {
    out += StrCat("  ", t.ToString(schema_), "\n");
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const NfrRelation& rel) {
  return os << rel.ToString();
}

FlatRelation MakeStringRelation(
    std::initializer_list<const char*> attr_names,
    std::initializer_list<std::initializer_list<const char*>> rows) {
  Schema schema = Schema::OfStrings(attr_names);
  std::vector<FlatTuple> tuples;
  for (const auto& row : rows) {
    std::vector<Value> values;
    values.reserve(row.size());
    for (const char* cell : row) {
      values.push_back(Value::String(cell));
    }
    NF2_CHECK(values.size() == schema.degree())
        << "Row width mismatch in MakeStringRelation";
    tuples.emplace_back(std::move(values));
  }
  return FlatRelation(std::move(schema), std::move(tuples));
}

}  // namespace nf2
