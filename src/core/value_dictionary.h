#ifndef NF2_CORE_VALUE_DICTIONARY_H_
#define NF2_CORE_VALUE_DICTIONARY_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/tuple.h"
#include "core/value.h"
#include "core/value_set.h"

namespace nf2 {

/// Dense handle for an interned atomic Value. Ids are assigned in
/// first-intern order and are stable for the lifetime of the owning
/// dictionary — stored IdSets are never invalidated by later interns.
using ValueId = uint32_t;

/// Interns atomic Values into dense ValueIds so the NFR hot paths
/// (candidate search, nest grouping, index postings) can run on integer
/// tokens instead of re-comparing and re-hashing variant payloads.
///
/// Order-preservation contract: raw ids carry NO order. The dictionary
/// instead exposes a dense *rank* per id with
///     Rank(a) < Rank(b)  <=>  value(a) < value(b)
/// so value-ordered iteration and lexicographic comparisons stay
/// available without decoding. Ranks are materialized lazily: interning
/// a value greater than every existing value extends the ranks in
/// place; an out-of-order intern only marks them dirty, and the next
/// Rank()/CompareIds() call re-sorts once (O(n log n) amortized over
/// the batch of new values). This re-encoding touches the rank table
/// only — ids, and therefore every IdSet held by callers, survive it.
class ValueDictionary {
 public:
  ValueDictionary() = default;

  /// Returns the id of `v`, interning it first if unseen.
  ValueId Intern(const Value& v);

  /// The id of `v` if it was interned before, nullopt otherwise.
  std::optional<ValueId> Find(const Value& v) const;

  /// The value behind `id` (fatal for out-of-range ids).
  const Value& value(ValueId id) const;

  /// Number of distinct values interned.
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Order-preserving dense rank of `id` (see class comment).
  uint32_t Rank(ValueId id) const;

  /// Three-way comparison of the underlying values via ranks.
  int CompareIds(ValueId a, ValueId b) const;

  /// All ids in ascending value order (materializes ranks).
  std::vector<ValueId> IdsInValueOrder() const;

  /// Forces the lazy rank table into its clean state now (idempotent,
  /// O(1) when already clean). Concurrency contract: Rank/CompareIds
  /// mutate the mutable rank cache when it is dirty, and interning is
  /// what dirties it — so the engine's writers call this before
  /// releasing the exclusive gate (engine/concurrency.h), leaving
  /// shared readers a genuinely read-only dictionary.
  void MaterializeRanks() const { EnsureRanks(); }

  static constexpr ValueId kMaxValues =
      std::numeric_limits<ValueId>::max() - 1;

 private:
  void EnsureRanks() const;

  std::vector<Value> values_;               // id -> value
  std::unordered_map<Value, ValueId> ids_;  // value -> id

  // Lazy rank table; valid only when !ranks_dirty_. max_value_id_ is
  // the id holding the greatest value (used to extend ranks in place on
  // monotone interns); meaningful only when !ranks_dirty_.
  mutable std::vector<uint32_t> ranks_;  // id -> rank
  mutable ValueId max_value_id_ = 0;
  mutable bool ranks_dirty_ = false;
};

/// A finite set of interned values: the IdSet fast path behind
/// ValueSet. Stored as a sorted, duplicate-free vector of raw ids, so
/// every set operation is a branch-light integer merge and Hash is a
/// cheap integer mix. Raw-id order is an arbitrary but consistent total
/// order, which is all set algebra needs; value-ordered output goes
/// through ValueDictionary ranks at decode time.
class IdSet {
 public:
  IdSet() = default;
  explicit IdSet(ValueId id) : ids_(1, id) {}
  explicit IdSet(std::vector<ValueId> ids);

  /// Trusted constructor: `ids` must already be sorted and unique.
  static IdSet FromSorted(std::vector<ValueId> ids);

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  bool IsSingleton() const { return ids_.size() == 1; }

  const std::vector<ValueId>& ids() const { return ids_; }
  ValueId operator[](size_t i) const { return ids_[i]; }

  /// The single element of a singleton set (fatal otherwise).
  ValueId single() const;

  /// Membership test (binary search on raw ids).
  bool Contains(ValueId id) const;

  /// Inserts `id`; returns false if it was already present.
  bool Insert(ValueId id);

  /// Removes `id`; returns false if it was absent.
  bool Erase(ValueId id);

  /// Set algebra — integer merges over the sorted id vectors. Each
  /// result agrees exactly with the corresponding ValueSet operation on
  /// the decoded sets.
  IdSet Union(const IdSet& other) const;
  IdSet Intersect(const IdSet& other) const;
  IdSet Difference(const IdSet& other) const;
  bool IsSubsetOf(const IdSet& other) const;
  bool IsDisjointFrom(const IdSet& other) const;

  bool operator==(const IdSet& other) const { return ids_ == other.ids_; }
  bool operator!=(const IdSet& other) const { return ids_ != other.ids_; }

  /// Hash consistent with operator== (and therefore with set equality
  /// of the decoded ValueSets, within one dictionary).
  size_t Hash() const;

 private:
  std::vector<ValueId> ids_;  // Sorted ascending by raw id, no duplicates.
};

/// One NFR tuple in interned form: an IdSet per attribute position.
using EncodedTuple = std::vector<IdSet>;

/// Encodes `s` into `dict`, interning unseen values.
IdSet InternValueSet(ValueDictionary* dict, const ValueSet& s);

/// Decodes `s` back to a ValueSet (elements in ascending value order;
/// lossless for every atom kind including kSet).
ValueSet DecodeIdSet(const ValueDictionary& dict, const IdSet& s);

/// Encodes / decodes a whole NFR tuple componentwise.
EncodedTuple InternTuple(ValueDictionary* dict, const NfrTuple& t);
NfrTuple DecodeTuple(const ValueDictionary& dict, const EncodedTuple& t);

/// Hash of all components except `skip_attr` (the NestOn grouping key);
/// pass degree() or larger to hash every component.
size_t HashEncodedTupleExcept(const EncodedTuple& t, size_t skip_attr);

}  // namespace nf2

#endif  // NF2_CORE_VALUE_DICTIONARY_H_
