#ifndef NF2_CORE_VALUE_H_
#define NF2_CORE_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace nf2 {

/// Type tags for atomic values. The paper restricts NFR domains to
/// *simple* domains (sets of atomic elements); these are the atom kinds
/// nf2db supports.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
  // An ATOMIC set value (§2's "power set" compoundness, e.g. the
  // prerequisite sets of CP[Course, Prerequisite]). Unlike an NFR
  // tuple component, a kSet value is indivisible: composition and
  // decomposition treat it as one element and never split it. Elements
  // are Values, so sets of sets nest arbitrarily.
  kSet = 5,
};

/// Returns a human-readable name for `type`, e.g. "INT".
const char* ValueTypeToString(ValueType type);

/// One atomic domain element.
///
/// Values are totally ordered (first by type tag, then by payload) so
/// that `ValueSet` can keep its elements in a canonical sorted order.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : payload_(std::monostate{}) {}

  /// Named constructors.
  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Double(double v) { return Value(Payload(v)); }
  static Value String(std::string v) { return Value(Payload(std::move(v))); }
  /// An atomic set value; elements are sorted and deduplicated.
  static Value SetOf(std::vector<Value> elements);

  /// The runtime type of this value.
  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; it is a fatal error to call the wrong one.
  bool AsBool() const;
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<Value>& AsSet() const;

  /// Three-way comparison: negative/zero/positive like strcmp.
  /// Values of different types order by type tag.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Hash consistent with operator==.
  size_t Hash() const;

  /// Unquoted rendering, e.g. `s1`, `42`, `3.5`, `true`, `null`.
  std::string ToString() const;

 private:
  using Payload = std::variant<std::monostate, bool, int64_t, double,
                               std::string, std::vector<Value>>;

  explicit Value(Payload payload) : payload_(std::move(payload)) {}

  Payload payload_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

/// Shorthand string-value constructor used pervasively in tests and
/// examples: V("s1") == Value::String("s1").
inline Value V(const char* s) { return Value::String(s); }
/// Shorthand int-value constructor: V(42) == Value::Int(42).
inline Value V(int64_t i) { return Value::Int(i); }

}  // namespace nf2

namespace std {
template <>
struct hash<nf2::Value> {
  size_t operator()(const nf2::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // NF2_CORE_VALUE_H_
