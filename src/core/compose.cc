#include "core/compose.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

bool ComposableOn(const NfrTuple& r, const NfrTuple& s, size_t c) {
  if (r.degree() != s.degree() || c >= r.degree()) return false;
  if (!r.AgreesExcept(s, c)) return false;
  // Composing a tuple with an identical one would be a no-op that
  // "merges" duplicates; well-formed NFRs have disjoint expansions, so
  // equal Ec-components mean the same tuple.
  return r.at(c) != s.at(c);
}

NfrTuple Compose(const NfrTuple& r, const NfrTuple& s, size_t c) {
  NF2_CHECK(ComposableOn(r, s, c)) << "Compose precondition violated";
  NfrTuple out = r;
  out.at(c) = r.at(c).Union(s.at(c));
  return out;
}

Result<Decomposition> Decompose(const NfrTuple& t, size_t d,
                                const Value& ex) {
  if (d >= t.degree()) {
    return Status::OutOfRange(
        StrCat("decompose position ", d, " out of range for degree ",
               t.degree()));
  }
  return DecomposeSubset(t, d, ValueSet(ex));
}

Result<Decomposition> DecomposeSubset(const NfrTuple& t, size_t d,
                                      const ValueSet& subset) {
  if (d >= t.degree()) {
    return Status::OutOfRange(
        StrCat("decompose position ", d, " out of range for degree ",
               t.degree()));
  }
  const ValueSet& component = t.at(d);
  if (subset.empty()) {
    return Status::InvalidArgument("cannot extract an empty subset");
  }
  if (!subset.IsSubsetOf(component)) {
    return Status::InvalidArgument(
        StrCat("subset {", subset.ToString(), "} not contained in component {",
               component.ToString(), "}"));
  }
  if (subset == component) {
    return Status::InvalidArgument(
        StrCat("extracting the whole component {", component.ToString(),
               "} would leave an empty remainder (Definition 2 requires a "
               "proper split)"));
  }
  Decomposition out;
  out.extracted = t;
  out.extracted.at(d) = subset;
  out.remainder = t;
  out.remainder.at(d) = component.Difference(subset);
  return out;
}

}  // namespace nf2
