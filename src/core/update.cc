#include "core/update.h"

#include <chrono>

#include "core/compose.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

namespace {
// Recursion bound for recons: Theorem A-4 bounds the work by a function
// of the degree only; anything past this indicates a broken invariant.
constexpr int kMaxReconsDepth = 100000;

/// Accumulates the elapsed wall time into `*sink` (and, when non-null,
/// into the registry counter `mirror`) on scope exit.
class ScopedNsTimer {
 public:
  explicit ScopedNsTimer(uint64_t* sink, Counter* mirror = nullptr)
      : sink_(sink),
        mirror_(mirror),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedNsTimer() {
    uint64_t elapsed = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    *sink_ += elapsed;
    if (mirror_ != nullptr) mirror_->Increment(elapsed);
  }
  ScopedNsTimer(const ScopedNsTimer&) = delete;
  ScopedNsTimer& operator=(const ScopedNsTimer&) = delete;

 private:
  uint64_t* sink_;
  Counter* mirror_;
  std::chrono::steady_clock::time_point start_;
};

/// ++counter plus the registry mirror, in one expression.
inline void BumpMirrored(uint64_t* field, Counter* mirror) {
  ++*field;
  if (mirror != nullptr) mirror->Increment();
}
}  // namespace

double UpdateStats::AvgFindCandidateNs() const {
  // FindCandidate runs exactly once per recons call.
  if (recons_calls == 0) return 0.0;
  return static_cast<double>(find_candidate_ns) /
         static_cast<double>(recons_calls);
}

double UpdateStats::AvgReconsNs() const {
  if (recons_calls == 0) return 0.0;
  return static_cast<double>(recons_ns) / static_cast<double>(recons_calls);
}

UpdateStats UpdateStats::operator-(const UpdateStats& other) const {
  UpdateStats out;
  out.compositions = compositions - other.compositions;
  out.decompositions = decompositions - other.decompositions;
  out.recons_calls = recons_calls - other.recons_calls;
  out.candidate_scans = candidate_scans - other.candidate_scans;
  out.find_candidate_ns = find_candidate_ns - other.find_candidate_ns;
  out.recons_ns = recons_ns - other.recons_ns;
  return out;
}

std::string UpdateStats::ToString() const {
  return StrCat("{compositions=", compositions,
                " decompositions=", decompositions,
                " recons_calls=", recons_calls,
                " candidate_scans=", candidate_scans,
                " recons_ns=", recons_ns, " (", AvgReconsNs(),
                "/call) find_candidate_ns=", find_candidate_ns, " (",
                AvgFindCandidateNs(), "/call)}");
}

CanonicalRelation::CanonicalRelation(Schema schema, Permutation order,
                                     SearchMode mode, Encoding encoding,
                                     std::shared_ptr<ValueDictionary> dict)
    : relation_(std::move(schema)),
      order_(std::move(order)),
      mode_(mode),
      encoding_(encoding) {
  NF2_CHECK(IsValidPermutation(order_, relation_.schema().degree()))
      << "CanonicalRelation: invalid nest order";
  if (encoding_ == Encoding::kInterned) {
    dict_ = dict != nullptr ? std::move(dict)
                            : std::make_shared<ValueDictionary>();
  } else {
    NF2_CHECK(dict == nullptr)
        << "a dictionary requires Encoding::kInterned";
  }
  if (mode_ == SearchMode::kIndexed) {
    if (encoding_ == Encoding::kInterned) {
      index_.emplace(relation_.schema().degree(), dict_);
    } else {
      index_.emplace(relation_.schema().degree());
    }
  }
}

Result<CanonicalRelation> CanonicalRelation::FromFlat(
    const FlatRelation& flat, Permutation order, SearchMode mode,
    Encoding encoding, std::shared_ptr<ValueDictionary> dict) {
  if (!IsValidPermutation(order, flat.degree())) {
    return Status::InvalidArgument(
        "nest order is not a permutation of the schema positions");
  }
  CanonicalRelation out(flat.schema(), std::move(order), mode, encoding,
                        std::move(dict));
  NfrRelation canonical = encoding == Encoding::kValue
                              ? CanonicalFormLegacy(flat, out.order_)
                              : CanonicalForm(flat, out.order_);
  for (const NfrTuple& t : canonical.tuples()) {
    out.AddTuple(t);
  }
  return out;
}

void CanonicalRelation::AddTuple(NfrTuple t) {
  if (dict_ != nullptr) {
    EncodedTuple encoded = InternTuple(dict_.get(), t);
    if (index_.has_value()) {
      index_->AddEncoded(relation_.size(), encoded);
    }
    encoded_.push_back(std::move(encoded));
  } else if (index_.has_value()) {
    index_->AddTuple(relation_.size(), t);
  }
  relation_.Add(std::move(t));
}

NfrTuple CanonicalRelation::TakeTupleAt(size_t index) {
  NfrTuple out = relation_.tuple(index);
  size_t last = relation_.size() - 1;
  if (dict_ != nullptr) {
    if (index_.has_value()) {
      index_->RemoveEncoded(index, encoded_[index]);
      // NfrRelation::RemoveAt swap-removes: the last tuple moves into
      // `index`.
      if (index != last) {
        index_->MoveEncoded(last, index, encoded_[last]);
      }
    }
    if (index != last) {
      encoded_[index] = std::move(encoded_[last]);
    }
    encoded_.pop_back();
  } else if (index_.has_value()) {
    index_->RemoveTuple(index, out);
    if (index != last) {
      index_->MoveTuple(last, index, relation_.tuple(last));
    }
  }
  relation_.RemoveAt(index);
  return out;
}

std::optional<EncodedTuple> CanonicalRelation::TryEncodeFlat(
    const FlatTuple& t) const {
  EncodedTuple encoded;
  encoded.reserve(t.degree());
  for (const Value& v : t.values()) {
    std::optional<ValueId> id = dict_->Find(v);
    if (!id.has_value()) return std::nullopt;
    encoded.push_back(IdSet(*id));
  }
  return encoded;
}

size_t CanonicalRelation::FindContainingTuple(const FlatTuple& t) const {
  if (dict_ != nullptr) {
    std::optional<EncodedTuple> probe = TryEncodeFlat(t);
    if (!probe.has_value()) return relation_.size();  // Unseen value.
    if (index_.has_value()) {
      std::vector<size_t> ids = index_->ContainingEncoded(*probe);
      NF2_DCHECK(ids.size() <= 1) << "disjoint-expansion invariant broken";
      return ids.empty() ? relation_.size() : ids.front();
    }
    // Scan over the encoded mirror: an NFR tuple contains the simple
    // tuple iff every component holds the corresponding id.
    for (size_t i = 0; i < encoded_.size(); ++i) {
      bool contains = true;
      for (size_t attr = 0; attr < t.degree(); ++attr) {
        if (!encoded_[i][attr].Contains((*probe)[attr].single())) {
          contains = false;
          break;
        }
      }
      if (contains) return i;
    }
    return relation_.size();
  }
  if (index_.has_value()) {
    std::vector<size_t> ids = index_->ContainingTuple(NfrTuple::FromFlat(t));
    NF2_DCHECK(ids.size() <= 1) << "disjoint-expansion invariant broken";
    return ids.empty() ? relation_.size() : ids.front();
  }
  return relation_.FindContaining(t);
}

NfrRelation CanonicalRelation::TuplesContaining(size_t attr,
                                                const Value& value) const {
  NF2_CHECK(attr < schema().degree()) << "attribute out of range";
  NfrRelation out(schema());
  if (index_.has_value()) {
    const std::vector<size_t>* ids = index_->Postings(attr, value);
    if (ids != nullptr) {
      for (size_t id : *ids) {
        out.Add(relation_.tuple(id));
      }
    }
    return out;
  }
  for (const NfrTuple& t : relation_.tuples()) {
    if (t.at(attr).Contains(value)) {
      out.Add(t);
    }
  }
  return out;
}

NfrRelation CanonicalRelation::TuplesInRange(size_t attr,
                                             const RangeBound& bound) const {
  NF2_CHECK(attr < schema().degree()) << "attribute out of range";
  NfrRelation out(schema());
  if (index_.has_value()) {
    for (size_t id : index_->ContainingInRange(attr, bound)) {
      out.Add(relation_.tuple(id));
    }
    return out;
  }
  for (const NfrTuple& t : relation_.tuples()) {
    for (const Value& v : t.at(attr).values()) {
      if (bound.Admits(v)) {
        out.Add(t);
        break;
      }
    }
  }
  return out;
}

NfrRelation CanonicalRelation::TuplesContainingId(size_t attr,
                                                  ValueId id) const {
  NF2_CHECK(attr < schema().degree()) << "attribute out of range";
  NF2_CHECK(encoding_ == Encoding::kInterned)
      << "TuplesContainingId requires an interned relation";
  NfrRelation out(schema());
  if (index_.has_value() && index_->interned()) {
    const std::vector<size_t>* ids = index_->PostingsById(attr, id);
    if (ids != nullptr) {
      for (size_t tuple_id : *ids) {
        out.Add(relation_.tuple(tuple_id));
      }
    }
    return out;
  }
  for (size_t i = 0; i < encoded_.size(); ++i) {
    if (encoded_[i].at(attr).Contains(id)) {
      out.Add(relation_.tuple(i));
    }
  }
  return out;
}

bool CanonicalRelation::Contains(const FlatTuple& t) const {
  if (t.degree() != schema().degree()) return false;
  return FindContainingTuple(t) != relation_.size();
}

Status CanonicalRelation::Insert(const FlatTuple& t) {
  if (t.degree() != schema().degree()) {
    return Status::InvalidArgument(
        StrCat("tuple degree ", t.degree(), " != schema degree ",
               schema().degree()));
  }
  if (Contains(t)) {
    return Status::AlreadyExists(
        StrCat("tuple ", t.ToString(), " already present"));
  }
  ScopedNsTimer timer(&stats_.recons_ns, metrics_.recons_ns);
  Recons(NfrTuple::FromFlat(t), /*depth=*/0);
  return Status::OK();
}

Status CanonicalRelation::Delete(const FlatTuple& t) {
  if (t.degree() != schema().degree()) {
    return Status::InvalidArgument(
        StrCat("tuple degree ", t.degree(), " != schema degree ",
               schema().degree()));
  }
  // The paper's searcht: the unique NFR tuple whose expansion holds t.
  size_t idx = FindContainingTuple(t);
  if (idx == relation_.size()) {
    return Status::NotFound(StrCat("tuple ", t.ToString(), " not present"));
  }
  NfrTuple q = TakeTupleAt(idx);
  // Unnest q on each attribute from the latest-nested down, extracting
  // t's value and re-inserting the remainder through recons (§4.3).
  for (size_t k = order_.size(); k-- > 0;) {
    size_t attr = order_[k];
    if (q.at(attr).IsSingleton()) continue;
    Result<Decomposition> split = Decompose(q, attr, t.at(attr));
    NF2_CHECK(split.ok()) << split.status().ToString();
    BumpMirrored(&stats_.decompositions, metrics_.decompositions);
    {
      ScopedNsTimer timer(&stats_.recons_ns, metrics_.recons_ns);
      Recons(std::move(split->remainder), /*depth=*/0);
    }
    q = std::move(split->extracted);
  }
  // q is now exactly the simple tuple t; it stays deleted.
  NF2_DCHECK(q.IsSimple());
  return Status::OK();
}

bool CanonicalRelation::IsCandidateAt(const NfrTuple& s, const NfrTuple& t,
                                      size_t m) const {
  const size_t n = order_.size();
  for (size_t k = 0; k < n; ++k) {
    size_t attr = order_[k];
    if (k < m) {
      // Earlier-nested attributes must agree exactly (they are the
      // components composition will require equal and that no further
      // unnesting may touch).
      if (s.at(attr) != t.at(attr)) return false;
    } else if (k == m) {
      // The composition attribute: t brings genuinely new values.
      if (!s.at(attr).IsDisjointFrom(t.at(attr))) return false;
    } else {
      // Later-nested attributes can be unnested down to t's values
      // (Lemma A-2), so coverage suffices.
      if (!t.at(attr).IsSubsetOf(s.at(attr))) return false;
    }
  }
  return true;
}

bool CanonicalRelation::IsCandidateAtEncoded(const EncodedTuple& s,
                                             const EncodedTuple& t,
                                             size_t m) const {
  const size_t n = order_.size();
  for (size_t k = 0; k < n; ++k) {
    size_t attr = order_[k];
    if (k < m) {
      if (s[attr] != t[attr]) return false;
    } else if (k == m) {
      if (!s[attr].IsDisjointFrom(t[attr])) return false;
    } else {
      if (!t[attr].IsSubsetOf(s[attr])) return false;
    }
  }
  return true;
}

std::optional<CanonicalRelation::Candidate> CanonicalRelation::FindCandidate(
    const NfrTuple& t) {
  ScopedNsTimer timer(&stats_.find_candidate_ns, metrics_.find_candidate_ns);
  const size_t n = order_.size();
  // In interned mode the probe is encoded once (interning any values it
  // introduces) and every comparison below is an integer merge against
  // the encoded mirror.
  EncodedTuple probe;
  if (dict_ != nullptr) {
    probe = InternTuple(dict_.get(), t);
  }
  auto is_candidate = [&](size_t i, size_t m) {
    BumpMirrored(&stats_.candidate_scans, metrics_.candidate_scans);
    return dict_ != nullptr ? IsCandidateAtEncoded(encoded_[i], probe, m)
                            : IsCandidateAt(relation_.tuple(i), t, m);
  };
  if (!index_.has_value()) {
    // Scan nest-order positions from the first-nested attribute; Lemma
    // A-1 gives at most one candidate per position, and the algorithm
    // wants the smallest such position.
    for (size_t m = 0; m < n; ++m) {
      for (size_t i = 0; i < relation_.size(); ++i) {
        if (is_candidate(i, m)) {
          return Candidate{i, m};
        }
      }
    }
    return std::nullopt;
  }
  // Indexed search. A candidate at position m must contain every value
  // of t on every attribute except order_[m] (exact equality and
  // disjointness are verified afterwards). Per-attribute containing
  // sets combine via prefix/suffix intersections so each position costs
  // one merge.
  std::vector<std::vector<size_t>> containing(n);
  for (size_t k = 0; k < n; ++k) {
    containing[k] =
        dict_ != nullptr
            ? index_->ContainingAllIds(order_[k], probe[order_[k]])
            : index_->ContainingAll(order_[k], t.at(order_[k]));
  }
  // prefix[k] = intersection of containing[0..k-1].
  std::vector<std::vector<size_t>> suffix(n + 1);
  suffix[n] = {};  // Unused sentinel.
  for (size_t k = n; k-- > 0;) {
    suffix[k] = (k == n - 1)
                    ? containing[k]
                    : IntersectSorted(containing[k], suffix[k + 1]);
  }
  std::vector<size_t> prefix;  // Intersection of containing[0..m-1].
  bool prefix_is_universe = true;
  for (size_t m = 0; m < n; ++m) {
    // Candidates at m: (∩_{k<m}) ∩ (∩_{k>m}).
    std::vector<size_t> ids;
    if (m + 1 < n) {
      ids = prefix_is_universe ? suffix[m + 1]
                               : IntersectSorted(prefix, suffix[m + 1]);
    } else {
      ids = prefix_is_universe ? std::vector<size_t>() : prefix;
      if (prefix_is_universe) {
        // Degenerate degree-1 relation: every tuple is a candidate
        // prospect.
        ids.resize(relation_.size());
        for (size_t i = 0; i < relation_.size(); ++i) ids[i] = i;
      }
    }
    for (size_t i : ids) {
      if (is_candidate(i, m)) {
        return Candidate{i, m};
      }
    }
    // Extend the prefix with containing[m] for the next position.
    prefix = prefix_is_universe ? containing[m]
                                : IntersectSorted(prefix, containing[m]);
    prefix_is_universe = false;
  }
  return std::nullopt;
}

void CanonicalRelation::Recons(NfrTuple t, int depth) {
  NF2_CHECK(depth < kMaxReconsDepth)
      << "recons recursion exceeded bound — canonical invariant broken";
  BumpMirrored(&stats_.recons_calls, metrics_.recons_calls);
  std::optional<Candidate> cand = FindCandidate(t);
  if (!cand.has_value()) {
    AddTuple(std::move(t));
    return;
  }
  NfrTuple p = TakeTupleAt(cand->tuple_index);
  const size_t n = order_.size();
  // Unnest p on later-nested attributes until it matches t there,
  // re-inserting each remainder recursively (§4.2 procedure recons).
  for (size_t k = n; k-- > cand->m_pos + 1;) {
    size_t attr = order_[k];
    if (p.at(attr) == t.at(attr)) continue;
    Result<Decomposition> split = DecomposeSubset(p, attr, t.at(attr));
    NF2_CHECK(split.ok()) << split.status().ToString();
    BumpMirrored(&stats_.decompositions, metrics_.decompositions);
    Recons(std::move(split->remainder), depth + 1);
    p = std::move(split->extracted);
  }
  // p now agrees with t everywhere except the composition attribute.
  size_t m_attr = order_[cand->m_pos];
  NF2_CHECK(ComposableOn(p, t, m_attr))
      << "candidate not composable after unnesting: p="
      << p.ToString(schema()) << " t=" << t.ToString(schema());
  NfrTuple w = Compose(p, t, m_attr);
  BumpMirrored(&stats_.compositions, metrics_.compositions);
  // The composed tuple may itself compose further (Lemma A-3).
  Recons(std::move(w), depth + 1);
}

NfrRelation RebuildCanonicalAfterInsert(const NfrRelation& r,
                                        const FlatTuple& t,
                                        const Permutation& order) {
  FlatRelation flat = r.Expand();
  flat.Insert(t);
  return CanonicalForm(flat, order);
}

NfrRelation RebuildCanonicalAfterDelete(const NfrRelation& r,
                                        const FlatTuple& t,
                                        const Permutation& order) {
  FlatRelation flat = r.Expand();
  flat.Erase(t);
  return CanonicalForm(flat, order);
}

}  // namespace nf2
