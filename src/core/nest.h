#ifndef NF2_CORE_NEST_H_
#define NF2_CORE_NEST_H_

#include <string>
#include <vector>

#include "core/relation.h"
#include "util/result.h"
#include "util/rng.h"

namespace nf2 {

/// A nest order over a schema: `perm[0]` is nested FIRST, `perm.back()`
/// LAST — we store the application order directly. (The paper's textual
/// abbreviation V_EiEj is ambiguous between the two reading directions;
/// its own worked Example 2 applies the written sequence left-to-right,
/// which is the convention adopted here and verified in nest_test.cc.)
using Permutation = std::vector<size_t>;

/// The identity application order (0, 1, ..., n-1): attribute 0 nested
/// first.
Permutation IdentityPermutation(size_t degree);

/// Builds a permutation from attribute names (first name nested first).
/// Errors if names are missing/duplicated or do not cover the schema.
Result<Permutation> PermutationFromNames(
    const Schema& schema, const std::vector<std::string>& names);

/// True when `perm` is a permutation of {0..degree-1}.
bool IsValidPermutation(const Permutation& perm, size_t degree);

/// All degree! permutations, in lexicographic order. Fatal for
/// degree > 8 (40320 permutations) to avoid accidental blowups.
std::vector<Permutation> AllPermutations(size_t degree);

/// Definition 4: the nest operation V_Ei — all possible compositions
/// over attribute position `attr`, applied exhaustively. By Theorem 2
/// the result is unique, and this implementation computes it directly by
/// grouping tuples on their remaining components (O(N) with hashing).
/// Runs on the interned representation: tuples are encoded against a
/// transient ValueDictionary so grouping keys hash and compare as dense
/// integers instead of variant payloads.
NfrRelation NestOn(const NfrRelation& r, size_t attr);

/// The pre-interning Value-path implementation of NestOn, kept verbatim
/// as the comparison control for the perf-trajectory bench and as a
/// correctness oracle (NestOnLegacy == NestOn on every input).
NfrRelation NestOnLegacy(const NfrRelation& r, size_t attr);

/// Definition 4 implemented literally as successive pairwise
/// compositions in a random order. Exists to test Theorem 2: for every
/// seed, RandomizedNestOn == NestOn. Quadratic; test-sized inputs only.
NfrRelation RandomizedNestOn(const NfrRelation& r, size_t attr, Rng* rng);

/// Applies NestOn for each position of `perm` in order (perm[0] first).
/// The whole sequence runs in id space: tuples are encoded once, every
/// stage groups and unions dense ids, and the result decodes once.
NfrRelation NestSequence(const NfrRelation& r, const Permutation& perm);

/// Definition 5: the canonical form V_P(R) of a 1NF relation. Encodes
/// the flat tuples straight into id space (no intermediate singleton
/// NFR) and nests there.
NfrRelation CanonicalForm(const FlatRelation& r, const Permutation& perm);

/// Value-path controls mirroring NestSequence / CanonicalForm (see
/// NestOnLegacy).
NfrRelation NestSequenceLegacy(const NfrRelation& r, const Permutation& perm);
NfrRelation CanonicalFormLegacy(const FlatRelation& r,
                                const Permutation& perm);

/// Algebraic unnest on one attribute: splits every tuple's `attr`
/// component into singletons (the inverse of NestOn up to re-nesting).
NfrRelation UnnestOn(const NfrRelation& r, size_t attr);

/// Full unnest: the underlying 1NF relation R* (same as r.Expand()).
FlatRelation UnnestAll(const NfrRelation& r);

}  // namespace nf2

#endif  // NF2_CORE_NEST_H_
