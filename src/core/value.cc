#include "core/value.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/hash.h"
#include "util/logging.h"

namespace nf2 {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kSet:
      return "SET";
  }
  return "?";
}

ValueType Value::type() const {
  return static_cast<ValueType>(payload_.index());
}

bool Value::AsBool() const {
  NF2_CHECK(type() == ValueType::kBool) << "Value is not BOOL";
  return std::get<bool>(payload_);
}

int64_t Value::AsInt() const {
  NF2_CHECK(type() == ValueType::kInt) << "Value is not INT";
  return std::get<int64_t>(payload_);
}

double Value::AsDouble() const {
  NF2_CHECK(type() == ValueType::kDouble) << "Value is not DOUBLE";
  return std::get<double>(payload_);
}

const std::string& Value::AsString() const {
  NF2_CHECK(type() == ValueType::kString) << "Value is not STRING";
  return std::get<std::string>(payload_);
}

Value Value::SetOf(std::vector<Value> elements) {
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  return Value(Payload(std::move(elements)));
}

const std::vector<Value>& Value::AsSet() const {
  NF2_CHECK(type() == ValueType::kSet) << "Value is not SET";
  return std::get<std::vector<Value>>(payload_);
}

namespace {
template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}
}  // namespace

int Value::Compare(const Value& other) const {
  if (payload_.index() != other.payload_.index()) {
    return payload_.index() < other.payload_.index() ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return Cmp(std::get<bool>(payload_), std::get<bool>(other.payload_));
    case ValueType::kInt:
      return Cmp(std::get<int64_t>(payload_),
                 std::get<int64_t>(other.payload_));
    case ValueType::kDouble:
      return Cmp(std::get<double>(payload_),
                 std::get<double>(other.payload_));
    case ValueType::kString:
      return Cmp(std::get<std::string>(payload_),
                 std::get<std::string>(other.payload_));
    case ValueType::kSet: {
      const auto& a = std::get<std::vector<Value>>(payload_);
      const auto& b = std::get<std::vector<Value>>(other.payload_);
      for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      return Cmp(a.size(), b.size());
    }
  }
  return 0;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(payload_.index());
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      seed = HashCombine(seed, std::get<bool>(payload_) ? 1u : 0u);
      break;
    case ValueType::kInt:
      seed = HashCombine(
          seed, std::hash<int64_t>{}(std::get<int64_t>(payload_)));
      break;
    case ValueType::kDouble:
      seed =
          HashCombine(seed, std::hash<double>{}(std::get<double>(payload_)));
      break;
    case ValueType::kString:
      seed = HashCombine(
          seed, std::hash<std::string>{}(std::get<std::string>(payload_)));
      break;
    case ValueType::kSet:
      for (const Value& v : std::get<std::vector<Value>>(payload_)) {
        seed = HashCombine(seed, v.Hash());
      }
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream out;
      out << AsDouble();
      return out.str();
    }
    case ValueType::kString:
      return AsString();
    case ValueType::kSet: {
      std::string out = "{";
      const auto& elements = AsSet();
      for (size_t i = 0; i < elements.size(); ++i) {
        if (i > 0) out += ",";
        out += elements[i].ToString();
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace nf2
