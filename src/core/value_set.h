#ifndef NF2_CORE_VALUE_SET_H_
#define NF2_CORE_VALUE_SET_H_

#include <initializer_list>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/value.h"

namespace nf2 {

/// A finite set of atomic values — one tuple component of an NFR tuple
/// (the `Ei(ei1, ..., eiri)` pieces of the paper's notation, §3.1).
///
/// Logically a sorted, duplicate-free vector: NFR components are small
/// in practice, and the sorted representation makes set-equality (the
/// precondition of composition, Def. 1) a linear scan and keeps the
/// printed form canonical.
///
/// Physically copy-on-write: the element vector lives behind a
/// shared_ptr-to-const, so copying a ValueSet is a refcount bump and
/// copying an NFR tuple (or a whole relation, as the engine's snapshot
/// publish does) shares every component instead of deep-copying it.
/// A published rep is immutable forever — every mutating operation
/// builds a fresh vector and swaps the pointer — so concurrently
/// reading two ValueSets that share a rep is race-free by construction
/// (engine/snapshot.h relies on exactly this).
class ValueSet {
 public:
  /// Constructs the empty set (no allocation: the null rep is empty).
  ValueSet() = default;

  /// Constructs the singleton {v}.
  explicit ValueSet(Value v);

  /// Constructs from arbitrary values; duplicates are collapsed.
  ValueSet(std::initializer_list<Value> values);
  explicit ValueSet(std::vector<Value> values);

  /// Trusted constructor for callers that already hold the elements in
  /// ascending order without duplicates (the dictionary decode path) —
  /// skips the O(k log k) payload sort.
  static ValueSet FromSortedUnique(std::vector<Value> values);

  /// Number of elements.
  size_t size() const { return rep_ == nullptr ? 0 : rep_->size(); }
  bool empty() const { return rep_ == nullptr || rep_->empty(); }
  bool IsSingleton() const { return size() == 1; }

  /// Elements in ascending order. The reference is into the current
  /// rep: like the reference a vector would hand out, it is invalidated
  /// by the next mutation of THIS set (other sets sharing the rep keep
  /// it alive).
  const std::vector<Value>& values() const {
    return rep_ == nullptr ? EmptyRep() : *rep_;
  }
  const Value& operator[](size_t i) const { return values()[i]; }

  /// The single element of a singleton set (fatal otherwise).
  const Value& single() const;

  /// Membership test (binary search).
  bool Contains(const Value& v) const;

  /// Inserts `v`; returns false if it was already present.
  bool Insert(const Value& v);

  /// Removes `v`; returns false if it was absent.
  bool Erase(const Value& v);

  /// Set algebra. All return new sets.
  ValueSet Union(const ValueSet& other) const;
  ValueSet Intersect(const ValueSet& other) const;
  ValueSet Difference(const ValueSet& other) const;

  /// True when every element of this set is in `other`.
  bool IsSubsetOf(const ValueSet& other) const;

  /// True when the two sets share no element.
  bool IsDisjointFrom(const ValueSet& other) const;

  bool operator==(const ValueSet& other) const {
    // Shared-rep fast path: COW copies compare pointer-equal.
    return rep_ == other.rep_ || values() == other.values();
  }
  bool operator!=(const ValueSet& other) const { return !(*this == other); }
  /// Lexicographic order on the sorted element sequences.
  bool operator<(const ValueSet& other) const;

  /// Hash consistent with operator==.
  size_t Hash() const;

  /// Paper-style rendering: a bare value for singletons ("s1"), a
  /// comma-joined list for compound sets ("s2,s3").
  std::string ToString() const;

 private:
  static const std::vector<Value>& EmptyRep();

  /// Adopts `values` (already sorted-unique) as the new rep; an empty
  /// vector becomes the allocation-free null rep.
  void Adopt(std::vector<Value> values);

  /// Sorted ascending, no duplicates; null means empty. Immutable once
  /// set — mutations Adopt() a fresh vector.
  std::shared_ptr<const std::vector<Value>> rep_;
};

std::ostream& operator<<(std::ostream& os, const ValueSet& set);

}  // namespace nf2

namespace std {
template <>
struct hash<nf2::ValueSet> {
  size_t operator()(const nf2::ValueSet& s) const { return s.Hash(); }
};
}  // namespace std

#endif  // NF2_CORE_VALUE_SET_H_
