#ifndef NF2_CORE_FORMAT_H_
#define NF2_CORE_FORMAT_H_

#include <string>

#include "core/relation.h"

namespace nf2 {

/// Renders an NFR as the paper draws its figures: a boxed table with one
/// column per attribute and comma-joined value sets in the cells, e.g.
///
///   +---------+------------+------+
///   | Student | Course     | Club |
///   +---------+------------+------+
///   | s1      | c1, c2, c3 | b1   |
///   | s2      | c1, c2, c3 | b2   |
///   +---------+------------+------+
///
/// Tuples are printed in canonical (sorted) order so output is stable.
std::string RenderTable(const NfrRelation& rel, const std::string& title = "");

/// Same rendering for a 1NF relation.
std::string RenderTable(const FlatRelation& rel,
                        const std::string& title = "");

}  // namespace nf2

#endif  // NF2_CORE_FORMAT_H_
