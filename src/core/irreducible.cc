#include "core/irreducible.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "core/compose.h"
#include "core/nest.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

bool IsIrreducible(const NfrRelation& r) {
  for (size_t i = 0; i < r.size(); ++i) {
    for (size_t j = i + 1; j < r.size(); ++j) {
      for (size_t c = 0; c < r.degree(); ++c) {
        if (ComposableOn(r.tuple(i), r.tuple(j), c)) return false;
      }
    }
  }
  return true;
}

namespace {

/// One composition step: composes the first composable pair found by
/// `pick` and returns true, or returns false when irreducible.
bool ComposeStep(std::vector<NfrTuple>* tuples, Rng* rng) {
  struct Candidate {
    size_t i, j, c;
  };
  std::vector<Candidate> candidates;
  for (size_t i = 0; i < tuples->size(); ++i) {
    for (size_t j = i + 1; j < tuples->size(); ++j) {
      for (size_t c = 0; c < (*tuples)[i].degree(); ++c) {
        if (ComposableOn((*tuples)[i], (*tuples)[j], c)) {
          candidates.push_back({i, j, c});
          if (rng == nullptr) goto done;  // Deterministic: first found.
        }
      }
    }
  }
done:
  if (candidates.empty()) return false;
  const Candidate& pick =
      rng == nullptr ? candidates.front()
                     : candidates[rng->NextBelow(candidates.size())];
  (*tuples)[pick.i] = Compose((*tuples)[pick.i], (*tuples)[pick.j], pick.c);
  tuples->erase(tuples->begin() + static_cast<ptrdiff_t>(pick.j));
  return true;
}

}  // namespace

NfrRelation ReduceGreedy(const NfrRelation& r) {
  std::vector<NfrTuple> tuples = r.tuples();
  while (ComposeStep(&tuples, nullptr)) {
  }
  return NfrRelation(r.schema(), std::move(tuples));
}

NfrRelation ReduceRandomized(const NfrRelation& r, Rng* rng) {
  NF2_CHECK(rng != nullptr);
  std::vector<NfrTuple> tuples = r.tuples();
  rng->Shuffle(&tuples);
  while (ComposeStep(&tuples, rng)) {
  }
  return NfrRelation(r.schema(), std::move(tuples));
}

namespace {

/// A "box" is an NFR tuple whose expansion lies inside R*: component
/// sets S1 x ... x Sn ⊆ R*. Minimal irreducible forms are minimal
/// partitions of R* into boxes.
struct Box {
  NfrTuple tuple;
  uint64_t mask;  // Bit i set <=> flat tuple i is in the expansion.
};

/// Enumerates every box of `flat` (up to 64 tuples) by growing from
/// singletons: add one more value to one component at a time, keeping
/// only boxes fully contained in R*. Deduplicated by covered mask and
/// tuple identity.
std::vector<Box> EnumerateBoxes(const FlatRelation& flat) {
  const auto& tuples = flat.tuples();
  const size_t n = flat.degree();

  auto mask_of = [&](const NfrTuple& t) -> std::optional<uint64_t> {
    // The box is valid iff its expansion size equals the number of flat
    // tuples it contains.
    uint64_t mask = 0;
    uint64_t contained = 0;
    for (size_t i = 0; i < tuples.size(); ++i) {
      if (t.ExpansionContains(tuples[i])) {
        mask |= (1ULL << i);
        ++contained;
      }
    }
    if (contained != t.ExpandedCount()) return std::nullopt;
    return mask;
  };

  std::vector<Box> boxes;
  std::set<std::pair<uint64_t, size_t>> seen;  // (mask, tuple hash)
  std::vector<NfrTuple> frontier;
  for (const FlatTuple& t : tuples) {
    frontier.push_back(NfrTuple::FromFlat(t));
  }
  for (const NfrTuple& t : frontier) {
    auto m = mask_of(t);
    NF2_CHECK(m.has_value());
    if (seen.insert({*m, t.Hash()}).second) {
      boxes.push_back({t, *m});
    }
  }
  // Grow breadth-first.
  for (size_t head = 0; head < boxes.size(); ++head) {
    const Box box = boxes[head];  // Copy: boxes may reallocate.
    for (size_t attr = 0; attr < n; ++attr) {
      for (const FlatTuple& ft : tuples) {
        const Value& v = ft.at(attr);
        if (box.tuple.at(attr).Contains(v)) continue;
        NfrTuple grown = box.tuple;
        grown.at(attr).Insert(v);
        auto m = mask_of(grown);
        if (!m.has_value()) continue;
        if (seen.insert({*m, grown.Hash()}).second) {
          boxes.push_back({grown, *m});
        }
      }
    }
  }
  return boxes;
}

/// Exact-cover search: partition the full mask into disjoint boxes,
/// minimizing the number of boxes. Branch and bound on the first
/// uncovered tuple.
void SearchMinCover(const std::vector<Box>& boxes,
                    const std::vector<std::vector<size_t>>& boxes_by_tuple,
                    uint64_t full, uint64_t covered,
                    std::vector<size_t>* chosen,
                    std::vector<size_t>* best_choice, size_t* best_count) {
  if (covered == full) {
    if (chosen->size() < *best_count) {
      *best_count = chosen->size();
      *best_choice = *chosen;
    }
    return;
  }
  if (chosen->size() + 1 >= *best_count) return;  // Can't improve.
  // First uncovered tuple index.
  uint64_t remaining = full & ~covered;
  size_t first = static_cast<size_t>(__builtin_ctzll(remaining));
  for (size_t bi : boxes_by_tuple[first]) {
    const Box& box = boxes[bi];
    if ((box.mask & covered) != 0) continue;  // Must stay a partition.
    chosen->push_back(bi);
    SearchMinCover(boxes, boxes_by_tuple, full, covered | box.mask, chosen,
                   best_choice, best_count);
    chosen->pop_back();
  }
}

}  // namespace

Result<NfrRelation> MinimalIrreducible(const FlatRelation& flat,
                                       size_t max_tuples) {
  if (flat.size() > 64 || flat.size() > max_tuples) {
    return Status::FailedPrecondition(
        StrCat("MinimalIrreducible is exhaustive; relation has ", flat.size(),
               " tuples, limit is ", std::min<size_t>(max_tuples, 64)));
  }
  if (flat.empty()) {
    return NfrRelation(flat.schema());
  }
  std::vector<Box> boxes = EnumerateBoxes(flat);
  // Prefer bigger boxes first so good solutions are found early and the
  // bound prunes aggressively.
  std::sort(boxes.begin(), boxes.end(), [](const Box& a, const Box& b) {
    return __builtin_popcountll(a.mask) > __builtin_popcountll(b.mask);
  });
  std::vector<std::vector<size_t>> boxes_by_tuple(flat.size());
  for (size_t bi = 0; bi < boxes.size(); ++bi) {
    for (size_t t = 0; t < flat.size(); ++t) {
      if ((boxes[bi].mask >> t) & 1) {
        boxes_by_tuple[t].push_back(bi);
      }
    }
  }
  uint64_t full = flat.size() == 64 ? ~0ULL : ((1ULL << flat.size()) - 1);
  std::vector<size_t> chosen;
  std::vector<size_t> best_choice;
  size_t best_count = flat.size() + 1;
  SearchMinCover(boxes, boxes_by_tuple, full, 0, &chosen, &best_choice,
                 &best_count);
  NF2_CHECK(!best_choice.empty() || flat.empty());
  std::vector<NfrTuple> tuples;
  tuples.reserve(best_choice.size());
  for (size_t bi : best_choice) {
    tuples.push_back(boxes[bi].tuple);
  }
  NfrRelation out(flat.schema(), std::move(tuples));
  // A minimal box partition is necessarily irreducible: composing two
  // blocks would yield a smaller partition.
  NF2_DCHECK(IsIrreducible(out));
  return out;
}

size_t MinCanonicalSize(const FlatRelation& flat) {
  size_t best = flat.size();
  if (flat.empty()) return 0;
  for (const Permutation& perm : AllPermutations(flat.degree())) {
    best = std::min(best, CanonicalForm(flat, perm).size());
  }
  return best;
}

}  // namespace nf2
