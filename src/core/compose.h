#ifndef NF2_CORE_COMPOSE_H_
#define NF2_CORE_COMPOSE_H_

#include <utility>

#include "core/tuple.h"
#include "util/result.h"

namespace nf2 {

/// Definition 1 precondition: `r` and `s` can be composed over attribute
/// position `c` — they are set-theoretically equal on every other
/// component. Composing two copies of the same tuple is vacuous and
/// reported as not composable.
bool ComposableOn(const NfrTuple& r, const NfrTuple& s, size_t c);

/// Definition 1: the composition v_Ec(r, s) — a single tuple whose
/// Ec-component is the union of the two Ec-components and whose other
/// components are the (shared) originals. Fatal if !ComposableOn.
NfrTuple Compose(const NfrTuple& r, const NfrTuple& s, size_t c);

/// Result of a decomposition u_Ed(ex)(t) (Definition 2): `extracted`
/// carries Ed = {ex} (te in the paper) and `remainder` carries
/// Ed = t.Ed - {ex} (tr in the paper).
struct Decomposition {
  NfrTuple extracted;
  NfrTuple remainder;
};

/// Definition 2: splits `t` on attribute position `d`, extracting the
/// single value `ex` into its own tuple. Errors when `ex` is not in the
/// component or when the component is the singleton {ex} (the remainder
/// would be empty, which Definition 2 excludes — its tuple form keeps at
/// least one value on Ed).
Result<Decomposition> Decompose(const NfrTuple& t, size_t d, const Value& ex);

/// Generalized decomposition used by the update algorithms (§4): splits
/// `t` on position `d` into a part carrying exactly `subset` and a
/// remainder carrying the rest. Errors when `subset` is empty, not a
/// subset of the component, or equal to it (iterated Definition 2 always
/// leaves both sides non-empty).
Result<Decomposition> DecomposeSubset(const NfrTuple& t, size_t d,
                                      const ValueSet& subset);

}  // namespace nf2

#endif  // NF2_CORE_COMPOSE_H_
