#include "engine/snapshot.h"

#include <optional>
#include <utility>

#include "algebra/operators.h"
#include "util/string_util.h"

namespace nf2 {

void SnapshotTracker::BindGauges(Gauge* pinned, Gauge* oldest_age_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  pinned_ = pinned;
  oldest_age_ms_ = oldest_age_ms;
}

void SnapshotTracker::Register(uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.emplace(version, std::chrono::steady_clock::now());
}

void SnapshotTracker::Unregister(uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(version);
}

void SnapshotTracker::RefreshGauges() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pinned_ != nullptr) {
    pinned_->Set(static_cast<int64_t>(live_.size()));
  }
  if (oldest_age_ms_ != nullptr) {
    int64_t oldest_ms = 0;
    if (!live_.empty()) {
      // Versions are published in order, so the lowest live version is
      // the oldest publish.
      oldest_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() -
                      live_.begin()->second)
                      .count();
    }
    oldest_age_ms_->Set(oldest_ms);
  }
}

size_t SnapshotTracker::alive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

DatabaseSnapshot::DatabaseSnapshot(
    uint64_t version, uint64_t catalog_epoch, VersionMap relations,
    std::shared_ptr<const ValueDictionary> dictionary,
    std::shared_ptr<SnapshotTracker> tracker, uint64_t wal_epoch,
    uint64_t wal_lsn)
    : version_(version),
      catalog_epoch_(catalog_epoch),
      wal_epoch_(wal_epoch),
      wal_lsn_(wal_lsn),
      relations_(std::move(relations)),
      dictionary_(std::move(dictionary)),
      tracker_(std::move(tracker)) {
  if (tracker_ != nullptr) tracker_->Register(version_);
}

DatabaseSnapshot::~DatabaseSnapshot() {
  if (tracker_ != nullptr) tracker_->Unregister(version_);
}

Result<const DatabaseSnapshot::RelationVersion*> DatabaseSnapshot::Find(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  return it->second.get();
}

std::shared_ptr<const DatabaseSnapshot::RelationVersion>
DatabaseSnapshot::FindVersion(const std::string& name) const {
  auto it = relations_.find(name);
  return it == relations_.end() ? nullptr : it->second;
}

std::vector<std::string> DatabaseSnapshot::ListRelations() const {
  std::vector<std::string> names;
  names.reserve(relations_.size());
  for (const auto& [name, version] : relations_) {
    names.push_back(name);
  }
  return names;
}

Result<const RelationInfo*> DatabaseSnapshot::Info(
    const std::string& name) const {
  NF2_ASSIGN_OR_RETURN(const RelationVersion* version, Find(name));
  return &version->info;
}

Result<const NfrRelation*> DatabaseSnapshot::Relation(
    const std::string& name) const {
  NF2_ASSIGN_OR_RETURN(const RelationVersion* version, Find(name));
  return &version->relation->relation();
}

Result<FlatRelation> DatabaseSnapshot::Scan(const std::string& name) const {
  NF2_ASSIGN_OR_RETURN(const NfrRelation* rel, Relation(name));
  return rel->Expand();
}

Result<FlatRelation> DatabaseSnapshot::Query(const std::string& name,
                                             const Predicate& pred) const {
  NF2_ASSIGN_OR_RETURN(const RelationVersion* version, Find(name));
  const CanonicalRelation& rel = *version->relation;
  // Point-query fast path, id-space edition: resolve the literal
  // against the frozen dictionary (a value the snapshot has never seen
  // matches nothing), then walk the cloned index by ValueId. The live
  // dictionary is never consulted — it is being interned into by
  // concurrent writers.
  std::optional<std::pair<size_t, Value>> eq = pred.AsSingleEq();
  if (eq.has_value() && eq->first < rel.schema().degree()) {
    std::optional<ValueId> id = dictionary_->Find(eq->second);
    NfrRelation touched = id.has_value()
                              ? rel.TuplesContainingId(eq->first, *id)
                              : NfrRelation(rel.schema());
    return SelectNfrExact(touched, pred).Expand();
  }
  return SelectNfrExact(rel.relation(), pred).Expand();
}

Result<RelationStats> DatabaseSnapshot::Stats(const std::string& name) const {
  NF2_ASSIGN_OR_RETURN(const RelationVersion* version, Find(name));
  RelationStats stats = ComputeRelationStats(version->relation->relation());
  stats.name = name;
  stats.update_stats = version->relation->stats();
  stats.dict_values = dictionary_->size();
  return stats;
}

}  // namespace nf2
