#ifndef NF2_ENGINE_DATABASE_H_
#define NF2_ENGINE_DATABASE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "catalog/catalog.h"
#include "core/update.h"
#include "engine/snapshot.h"
#include "engine/statistics.h"
#include "obs/metrics.h"
#include "storage/checkpoint.h"
#include "storage/table.h"
#include "storage/wal.h"
#include "util/result.h"

namespace nf2 {

/// The nf2db engine: a directory of canonical NFR tables plus a shared
/// write-ahead log.
///
/// Durability protocol:
///  - CreateRelation/DropRelation are logged (fsync'd), then the table
///    and catalog files are replaced atomically — a crash between the
///    steps is recovered by replaying the log.
///  - Insert/Delete are logged to the WAL (fsync'd at each commit
///    point: every autocommit op, every Commit), then applied in
///    memory via the §4 algorithms. Table files are only rewritten at
///    Checkpoint, which then truncates the WAL.
///  - Checkpoint is incremental (DESIGN.md §12): it shadow-writes only
///    the changed pages of mutated relations, publishes the new
///    logical→physical page mapping by atomically replacing
///    MANIFEST.nf2, and truncates the WAL only after that — the
///    truncate is the commit point. A crash at any point leaves a
///    state WAL replay converges from: either the old manifest's page
///    versions plus the full log, or the new ones plus an idempotent
///    replay.
///  - Open removes stray temp files, loads the catalog and the
///    manifest, reads each table through its page mapping (flat when
///    no mapping applies), then replays the WAL through the same §4
///    algorithms — recovery reconstructs exactly the canonical form
///    (Theorem 2 uniqueness makes this well-defined).
class Database {
 public:
  struct Options {
    /// Insert/delete operations between automatic checkpoints
    /// (0 disables automatic checkpointing).
    size_t auto_checkpoint_every = 0;
    /// When true, Insert rejects tuples that would violate a relation's
    /// declared FDs (FailedPrecondition). Declared MVDs are never
    /// enforced: the paper's §2 lesson is precisely that updates must
    /// not assume MVDs continue to hold.
    bool enforce_fds = true;
    /// When true (the default) the WAL fdatasyncs at every commit
    /// point, so an acknowledged operation survives a crash. Turning
    /// it off trades that guarantee for speed (benchmarks, bulk
    /// loads): data is still consistent after a crash, just possibly
    /// stale.
    bool sync_wal = true;
  };

  /// Opens (creating if needed) a database in `dir`, running recovery.
  /// All file I/O goes through `env` (fault-injection tests pass a
  /// FaultInjectionEnv here).
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                Options options, Env* env);
  static Result<std::unique_ptr<Database>> Open(const std::string& dir,
                                                Options options) {
    return Open(dir, options, Env::Default());
  }
  static Result<std::unique_ptr<Database>> Open(const std::string& dir) {
    return Open(dir, Options{});
  }

  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates a relation. When `nest_order` is empty the §3.4 advisor
  /// derives it from the declared dependencies.
  Status CreateRelation(const std::string& name, Schema schema,
                        Permutation nest_order = {},
                        std::vector<Fd> fds = {},
                        std::vector<Mvd> mvds = {});

  /// Drops a relation and removes its table file.
  Status DropRelation(const std::string& name);

  /// Names of all relations, sorted.
  std::vector<std::string> ListRelations() const;

  /// The stored canonical NFR (by reference; valid until the next
  /// mutation of that relation).
  Result<const NfrRelation*> Relation(const std::string& name) const;

  /// The canonical-form container itself — what the query planner binds
  /// to reach the inverted index (same lifetime as Relation()).
  Result<const CanonicalRelation*> Canonical(const std::string& name) const;

  /// Catalog metadata for `name`.
  Result<const RelationInfo*> Info(const std::string& name) const;

  /// Inserts / deletes one simple tuple through the §4 algorithms.
  Status Insert(const std::string& name, const FlatTuple& tuple);
  Status Delete(const std::string& name, const FlatTuple& tuple);

  /// True when the simple tuple is in R*.
  Result<bool> Contains(const std::string& name,
                        const FlatTuple& tuple) const;

  /// R* of the stored relation.
  Result<FlatRelation> Scan(const std::string& name) const;

  /// sigma_pred(R*), evaluated against the NFR without full expansion
  /// of non-matching tuples.
  Result<FlatRelation> Query(const std::string& name,
                             const Predicate& pred) const;

  /// Starts a transaction: subsequent Insert/Delete calls become
  /// atomic — Commit makes them durable as a unit; Rollback (or a crash
  /// before Commit) undoes all of them. DDL (create/drop) and
  /// Checkpoint are rejected while a transaction is open. Error when a
  /// transaction is already active (no nesting).
  Status Begin();

  /// Commits the open transaction.
  Status Commit();

  /// Rolls back the open transaction by applying inverse operations in
  /// reverse order (delete for insert, insert for delete).
  Status Rollback();

  /// True between Begin and Commit/Rollback.
  bool in_transaction() const { return in_txn_; }

  /// Incremental checkpoint (DESIGN.md §12): writes only the pages of
  /// relations mutated since the last checkpoint (shadow-paged, diffed
  /// by CRC against the manifest), publishes the new manifest
  /// atomically, then truncates the WAL. FailedPrecondition while a
  /// transaction is open.
  Status Checkpoint();

  /// Size/maintenance statistics for one relation.
  Result<RelationStats> Stats(const std::string& name) const;

  /// Full integrity audit (what tools/nf2_check runs): every relation
  /// must be well-formed (disjoint expansions), exactly the canonical
  /// form for its nest order, and must satisfy its declared FDs.
  /// Returns the first violation found, OK when everything checks out.
  Status VerifyIntegrity() const;

  /// Number of data/DDL operations applied since the last checkpoint.
  /// Transaction markers and checkpoint records do not count — after
  /// recovery this equals the number of replayed, applied operations,
  /// so auto-checkpoint cadence is unchanged by a crash.
  uint64_t wal_records_since_checkpoint() const {
    return ops_since_checkpoint_;
  }

  /// The Env all storage I/O goes through.
  Env* env() const { return env_; }

  /// fdatasyncs issued by the WAL since open — observability for the
  /// group-commit batching benchmarks.
  uint64_t wal_sync_count() const { return wal_->sync_count(); }

  /// Path of the write-ahead log file inside dir().
  std::string wal_path() const;

  /// The write-ahead log itself — the replication streamer subscribes
  /// to its tail and reads its (epoch, lsn) position. Valid for the
  /// lifetime of the Database. Callers must not Append or Reset
  /// through it; mutations go through the Database API.
  WriteAheadLog* wal() { return wal_.get(); }

  /// When the last successful Checkpoint() of this process completed;
  /// nullopt before the first one since Open. Monitoring surfaces
  /// (`\shards`) render this as a checkpoint age; atomic because they
  /// read it without the engine gate.
  std::optional<std::chrono::steady_clock::time_point> last_checkpoint_time()
      const {
    int64_t ns = last_checkpoint_ns_.load(std::memory_order_relaxed);
    if (ns < 0) return std::nullopt;
    return std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(ns));
  }

  /// The database-wide value dictionary: every relation interns its
  /// atoms here, so one atomic value has one dense id across the whole
  /// database. Persisted at Checkpoint and reloaded (with identical id
  /// assignment) at Open.
  const std::shared_ptr<ValueDictionary>& dictionary() const {
    return dict_;
  }

  /// Pins the current published snapshot: one atomic shared_ptr load,
  /// no locks. The returned view is immutable and consistent — it
  /// reflects exactly the state as of the last commit boundary
  /// (autocommit op, COMMIT/ROLLBACK, DDL, or end of recovery) and is
  /// never affected by later writes. Readers may hold it for as long
  /// as they like (but not past the Database's destruction); dropping
  /// the last reference frees the version. Thread-safe against
  /// concurrent writers.
  std::shared_ptr<const DatabaseSnapshot> PinSnapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Monotone epoch bumped by every successful CREATE/DROP — the
  /// plan-reuse key for caches of parsed statements (a cached parse is
  /// valid only for the epoch it was built under). Thread-safe.
  uint64_t catalog_epoch() const {
    return catalog_epoch_.load(std::memory_order_acquire);
  }

  /// The engine-wide metrics registry — WAL, buffer pools, checkpoint /
  /// recovery timings, and §4 algebra counters all land here. Valid for
  /// the lifetime of the Database.
  MetricsRegistry* metrics() { return &metrics_; }

  /// A point-in-time copy of every registered metric (refreshes derived
  /// gauges like the dictionary size first).
  ::nf2::MetricsSnapshot MetricsSnapshot() const;

  /// Per-relation §4 operation counters without the (expensive) size
  /// statistics of Stats() — what PROFILE uses to delta around one
  /// statement.
  Result<UpdateStats> RelationUpdateStats(const std::string& name) const;

  /// Human-readable (`prometheus = false`) or Prometheus text-exposition
  /// dump of the registry — the shell's `\metrics` command.
  std::string MetricsText(bool prometheus) const;

  const std::string& dir() const { return dir_; }

 private:
  Database() = default;

  Status Recover();

  /// FailedPrecondition when inserting `tuple` into `name` would break
  /// one of its declared FDs (checked against the stored NFR without
  /// expansion).
  Status CheckFdsForInsert(const RelationInfo& info,
                           const CanonicalRelation& rel,
                           const FlatTuple& tuple) const;

  Status ApplyInsert(const std::string& name, const FlatTuple& tuple);
  Status ApplyDelete(const std::string& name, const FlatTuple& tuple);
  std::string TablePath(const RelationInfo& info) const;
  std::string CatalogPath() const;
  std::string DictionaryPath() const;
  std::string ManifestPath() const;
  Status SaveDictionary() const;
  Status LoadDictionary();
  /// A fresh interned CanonicalRelation wired to the shared dictionary.
  CanonicalRelation MakeRelation(const Schema& schema,
                                 const Permutation& order) const;
  Status MaybeAutoCheckpoint();

  /// Publishes the current state as a new immutable DatabaseSnapshot
  /// (DESIGN.md §9): materializes the dictionary rank table, freezes
  /// the dictionary if it grew, clones every dirty relation (clean
  /// ones share their version with the previous snapshot), then swaps
  /// the snapshot pointer — the single commit point readers observe.
  /// Called at every commit boundary; writer context only.
  void PublishSnapshot();

  /// Declared first so it is destroyed last: the WAL, tables, and
  /// relations all hold Counter*/Histogram* handles into it.
  mutable MetricsRegistry metrics_;
  std::string dir_;
  Options options_;
  Env* env_ = nullptr;
  Catalog catalog_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::shared_ptr<ValueDictionary> dict_;
  std::map<std::string, CanonicalRelation> relations_;
  uint64_t ops_since_checkpoint_ = 0;
  /// steady_clock nanos of the last successful checkpoint, -1 for none.
  std::atomic<int64_t> last_checkpoint_ns_{-1};

  // --- Incremental checkpoint state (DESIGN.md §12).
  /// In-memory copy of the durable MANIFEST.nf2; swapped only after
  /// SaveManifestAtomic + WAL truncate succeed.
  Manifest manifest_;
  /// Relations mutated since the last CHECKPOINT (distinct from
  /// dirty_relations_, which clears at every snapshot publish). A clean
  /// relation with a live manifest entry is skipped wholesale.
  std::set<std::string> ckpt_dirty_;
  /// Dictionary size covered by the on-disk dict.nf2; the dictionary is
  /// append-only, so an equal size means identical content and the
  /// save is skipped. SIZE_MAX forces the first save.
  size_t saved_dict_size_ = SIZE_MAX;

  // Registry handles cached at Open (stable for the Database lifetime).
  Counter* metric_checkpoints_ = nullptr;
  Counter* metric_recoveries_ = nullptr;
  Counter* metric_inserts_ = nullptr;
  Counter* metric_deletes_ = nullptr;
  Histogram* metric_checkpoint_ns_ = nullptr;
  Histogram* metric_recovery_ns_ = nullptr;
  Histogram* metric_insert_ns_ = nullptr;
  Histogram* metric_delete_ns_ = nullptr;
  Gauge* metric_dict_values_ = nullptr;
  Gauge* metric_relations_ = nullptr;
  Counter* metric_snapshots_published_ = nullptr;
  CheckpointMetrics ckpt_metrics_;

  // --- MVCC snapshot state (DESIGN.md §9). Written only by writer
  // paths; snapshot_ is the one reader-visible cell.
  /// The published snapshot, swapped atomically by PublishSnapshot().
  std::atomic<std::shared_ptr<const DatabaseSnapshot>> snapshot_;
  /// Live-version bookkeeping behind nf2_snapshot_{pinned,oldest_age_ms}.
  std::shared_ptr<SnapshotTracker> snapshot_tracker_;
  /// Frozen dictionary shared by snapshots; re-copied only when dict_
  /// grew since the last freeze (ids are append-only, so an equal size
  /// means an identical dictionary).
  std::shared_ptr<const ValueDictionary> frozen_dict_;
  size_t frozen_dict_size_ = 0;
  /// Relations mutated since the last publish — the ones the next
  /// publish must clone instead of share.
  std::set<std::string> dirty_relations_;
  std::atomic<uint64_t> catalog_epoch_{0};
  uint64_t published_version_ = 0;

  /// One undoable operation of the open transaction.
  struct UndoEntry {
    bool was_insert;
    std::string relation;
    FlatTuple tuple;
  };
  bool in_txn_ = false;
  /// Set once Recover() completes; the destructor refuses to checkpoint
  /// a partially-recovered database (see ~Database).
  bool recovered_ = false;
  std::vector<UndoEntry> undo_log_;
};

}  // namespace nf2

#endif  // NF2_ENGINE_DATABASE_H_
