#include "engine/concurrency.h"

#include <chrono>
#include <type_traits>
#include <variant>

namespace nf2 {

void EngineGate::AcquireShared() {
  std::unique_lock<std::mutex> lock(mu_);
  // Writer preference: a waiting writer bars new readers, so a steady
  // read stream cannot starve writes.
  reader_cv_.wait(lock,
                  [this] { return !writer_active_ && waiting_writers_ == 0; });
  ++active_readers_;
  if (metrics_.shared_acquires != nullptr) {
    metrics_.shared_acquires->Increment();
  }
}

void EngineGate::ReleaseShared() {
  std::unique_lock<std::mutex> lock(mu_);
  if (--active_readers_ == 0 && waiting_writers_ > 0) {
    lock.unlock();
    writer_cv_.notify_one();
  }
}

void EngineGate::AcquireExclusive() {
  const auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  ++waiting_writers_;
  writer_cv_.wait(lock,
                  [this] { return !writer_active_ && active_readers_ == 0; });
  --waiting_writers_;
  writer_active_ = true;
  if (metrics_.write_acquires != nullptr) {
    metrics_.write_acquires->Increment();
  }
  if (metrics_.write_wait_ns != nullptr) {
    metrics_.write_wait_ns->Observe(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
}

void EngineGate::ReleaseExclusive() {
  std::unique_lock<std::mutex> lock(mu_);
  writer_active_ = false;
  const bool writers_waiting = waiting_writers_ > 0;
  lock.unlock();
  if (writers_waiting) {
    writer_cv_.notify_one();
  } else {
    reader_cv_.notify_all();
  }
}

bool IsReadOnlyStatement(const Statement& stmt) {
  return std::visit(
      [](const auto& s) -> bool {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, SelectStatement> ||
                      std::is_same_v<T, ShowStatement> ||
                      std::is_same_v<T, DescribeStatement> ||
                      std::is_same_v<T, NestStatement> ||
                      std::is_same_v<T, ListStatement> ||
                      std::is_same_v<T, StatsStatement>) {
          return true;
        } else if constexpr (std::is_same_v<T, ExplainStatement>) {
          // EXPLAIN renders a plan without executing; PROFILE runs the
          // inner statement and inherits its classification.
          if (!s.profile) return true;
          return s.inner != nullptr && IsReadOnlyStatement(s.inner->stmt);
        } else {
          return false;
        }
      },
      stmt);
}

}  // namespace nf2
