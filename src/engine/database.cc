#include "engine/database.h"

#include <cctype>
#include <filesystem>
#include <string_view>

#include "algebra/operators.h"
#include "dependency/design.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

namespace {
constexpr char kCatalogFile[] = "catalog.nf2";
constexpr char kWalFile[] = "wal.log";
constexpr uint32_t kDictionaryMagic = 0x4e463244;  // "NF2D".

std::string SanitizedFileName(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out + ".tbl";
}
}  // namespace

Database::~Database() {
  // Best-effort durability on clean shutdown; an open transaction is
  // rolled back first (destruction is not a commit).
  if (in_txn_) {
    Status rb = Rollback();
    if (!rb.ok()) {
      NF2_LOG(Warning) << "rollback on close failed: " << rb;
    }
  }
  // Only checkpoint a fully-recovered database: after a failed Recover
  // the catalog may list relations that were never loaded, and writing
  // that state out would destroy the recoverable files.
  if (wal_ != nullptr && recovered_) {
    Status s = Checkpoint();
    if (!s.ok()) {
      NF2_LOG(Warning) << "checkpoint on close failed: " << s;
    }
  }
}

std::string Database::TablePath(const RelationInfo& info) const {
  return (std::filesystem::path(dir_) / info.table_file).string();
}

std::string Database::CatalogPath() const {
  return (std::filesystem::path(dir_) / kCatalogFile).string();
}

std::string Database::DictionaryPath() const {
  return (std::filesystem::path(dir_) / catalog_.dictionary_file()).string();
}

std::string Database::ManifestPath() const {
  return (std::filesystem::path(dir_) / catalog_.manifest_file()).string();
}

Status Database::SaveDictionary() const {
  BufferWriter out;
  out.PutU32(kDictionaryMagic);
  EncodeValueDictionary(*dict_, &out);
  out.PutU32(Crc32(out.data()));
  // Never truncate the live dictionary in place: every checkpointed
  // table encodes against it, so losing it to a mid-write crash would
  // orphan all of them.
  return env_->WriteFileAtomic(DictionaryPath(), out.data());
}

Status Database::LoadDictionary() {
  if (!env_->FileExists(DictionaryPath())) {
    return Status::NotFound(
        StrCat("dictionary not found at ", DictionaryPath()));
  }
  NF2_ASSIGN_OR_RETURN(std::string contents,
                       env_->ReadFileToString(DictionaryPath()));
  if (contents.size() < 12) {
    return Status::Corruption("dictionary file too small");
  }
  std::string_view body(contents.data(), contents.size() - 4);
  BufferReader crc_reader(
      std::string_view(contents.data() + contents.size() - 4, 4));
  NF2_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.GetU32());
  if (Crc32(body) != stored_crc) {
    return Status::Corruption("dictionary crc mismatch");
  }
  BufferReader in(body);
  NF2_ASSIGN_OR_RETURN(uint32_t magic, in.GetU32());
  if (magic != kDictionaryMagic) {
    return Status::Corruption("bad dictionary magic");
  }
  NF2_ASSIGN_OR_RETURN(dict_, DecodeValueDictionary(&in));
  return Status::OK();
}

CanonicalRelation Database::MakeRelation(const Schema& schema,
                                         const Permutation& order) const {
  CanonicalRelation rel(schema, order,
                        CanonicalRelation::SearchMode::kIndexed,
                        CanonicalRelation::Encoding::kInterned, dict_);
  // Mirror the relation's §4 counters into the engine-wide registry so
  // the database totals stay bit-identical to the per-relation sums.
  rel.set_metrics(UpdatePathMetrics::ForRegistry(&metrics_));
  return rel;
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& dir,
                                                 Options options, Env* env) {
  NF2_RETURN_IF_ERROR(env->CreateDirs(dir));
  std::unique_ptr<Database> db(new Database());
  db->dir_ = dir;
  db->options_ = options;
  db->env_ = env;
  db->dict_ = std::make_shared<ValueDictionary>();
  // Sweep leftovers of atomic writes cut by a crash: a "*.tmp" sibling
  // is never live state — the rename that would have published it
  // never happened.
  NF2_ASSIGN_OR_RETURN(std::vector<std::string> entries, env->ListDir(dir));
  for (const std::string& entry : entries) {
    if (entry.size() > 4 && entry.ends_with(".tmp")) {
      Status s = env->RemoveFile(
          (std::filesystem::path(dir) / entry).string());
      if (!s.ok()) {
        NF2_LOG(Warning) << "cannot remove stray temp file " << entry
                         << ": " << s;
      }
    }
  }
  // Register the engine-level metric handles once, up front — every
  // later increment is a relaxed atomic on a stable pointer.
  MetricsRegistry* reg = &db->metrics_;
  db->metric_checkpoints_ = reg->GetCounter(
      "nf2_checkpoints_total", "Checkpoints completed");
  db->metric_recoveries_ = reg->GetCounter(
      "nf2_recoveries_total", "Recovery runs completed at Open");
  db->metric_inserts_ = reg->GetCounter(
      "nf2_inserts_total", "Tuple inserts applied");
  db->metric_deletes_ = reg->GetCounter(
      "nf2_deletes_total", "Tuple deletes applied");
  db->metric_checkpoint_ns_ = reg->GetHistogram(
      "nf2_checkpoint_duration_ns", "Wall time per checkpoint (ns)");
  db->metric_recovery_ns_ = reg->GetHistogram(
      "nf2_recovery_duration_ns", "Wall time per recovery (ns)");
  db->metric_insert_ns_ = reg->GetHistogram(
      "nf2_insert_duration_ns", "Wall time per applied insert (ns)");
  db->metric_delete_ns_ = reg->GetHistogram(
      "nf2_delete_duration_ns", "Wall time per applied delete (ns)");
  db->metric_dict_values_ = reg->GetGauge(
      "nf2_dict_values", "Distinct atoms in the shared dictionary");
  db->metric_relations_ = reg->GetGauge(
      "nf2_relations", "Relations in the catalog");
  db->metric_snapshots_published_ = reg->GetCounter(
      "nf2_snapshot_published_total", "Snapshots published at commits");
  db->ckpt_metrics_ = CheckpointMetrics::ForRegistry(reg);
  db->snapshot_tracker_ = std::make_shared<SnapshotTracker>();
  db->snapshot_tracker_->BindGauges(
      reg->GetGauge("nf2_snapshot_pinned",
                    "Snapshot versions currently alive (pinned)"),
      reg->GetGauge("nf2_snapshot_oldest_age_ms",
                    "Age of the oldest live snapshot version (ms)"));
  WriteAheadLog::Options wal_options;
  wal_options.sync_on_commit = options.sync_wal;
  wal_options.metrics = reg;
  NF2_ASSIGN_OR_RETURN(
      db->wal_,
      WriteAheadLog::Open(env, (std::filesystem::path(dir) / kWalFile).string(),
                          wal_options));
  {
    TraceSpan span(nullptr, "recover", db->metric_recovery_ns_);
    NF2_RETURN_IF_ERROR(db->Recover());
  }
  db->metric_recoveries_->Increment();
  return db;
}

Status Database::Recover() {
  // 1. Catalog + shared dictionary + checkpointed tables. A missing
  // dictionary file is fine (pre-dictionary database or nothing
  // checkpointed yet): re-interning during table load rebuilds it.
  if (env_->FileExists(CatalogPath())) {
    NF2_ASSIGN_OR_RETURN(catalog_,
                         Catalog::LoadFromFile(env_, CatalogPath()));
  }
  if (env_->FileExists(DictionaryPath())) {
    NF2_RETURN_IF_ERROR(LoadDictionary());
    saved_dict_size_ = dict_->size();
  }
  // The page-version manifest (DESIGN.md §12). Missing is fine (fresh
  // or pre-manifest database: all files are flat); corrupt fails
  // closed — guessing a page mapping could silently mix page versions.
  {
    Result<Manifest> loaded = LoadManifest(env_, ManifestPath());
    if (loaded.ok()) {
      manifest_ = std::move(*loaded);
      // Fold the manifest's persisted WAL position into the reopened
      // log before the first Append: the truncate that committed this
      // checkpoint emptied the file, so the file alone cannot tell the
      // log how far the (epoch, lsn) sequence had advanced.
      wal_->AdoptDurablePosition(manifest_.wal_epoch,
                                 manifest_.wal_base_lsn);
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }
  for (const std::string& name : catalog_.Names()) {
    NF2_ASSIGN_OR_RETURN(const RelationInfo* info, catalog_.Get(name));
    CanonicalRelation rel = MakeRelation(info->schema, info->nest_order);
    if (env_->FileExists(TablePath(*info))) {
      // Prefer the manifest's logical->physical mapping (CRC-verified);
      // fall back to a flat read when the file's identity stamp says it
      // was wholesale-replaced after the manifest was written (a
      // post-manifest CREATE/DROP — the flat file is then authoritative).
      NfrRelation stored(info->schema);
      bool mapped = false;
      auto mit = manifest_.tables.find(info->table_file);
      if (mit != manifest_.tables.end() && !mit->second.pages.empty()) {
        uint64_t on_disk = ProbeTableFileId(env_, TablePath(*info));
        if (on_disk != 0 && on_disk == mit->second.file_id) {
          NF2_ASSIGN_OR_RETURN(
              MappedTable mt,
              ReadTableMapped(env_, TablePath(*info), mit->second));
          stored = std::move(mt.relation);
          mapped = true;
        }
      }
      if (!mapped) {
        NF2_ASSIGN_OR_RETURN(
            auto table,
            Table::Open(env_, TablePath(*info), /*pool_pages=*/64,
                        BufferPoolMetrics::ForRegistry(&metrics_)));
        NF2_ASSIGN_OR_RETURN(stored, table->ReadAll());
      }
      // Trust but verify: the stored form must be the canonical form of
      // its own expansion (cheap for the usual sizes; guards against
      // partial writes).
      NF2_ASSIGN_OR_RETURN(
          CanonicalRelation rebuilt,
          CanonicalRelation::FromFlat(
              stored.Expand(), info->nest_order,
              CanonicalRelation::SearchMode::kIndexed,
              CanonicalRelation::Encoding::kInterned, dict_));
      if (!rebuilt.relation().EqualsAsSet(stored)) {
        return Status::Corruption(
            StrCat("table for '", name, "' is not in canonical form"));
      }
      rel = std::move(rebuilt);
    }
    relations_.emplace(name, std::move(rel));
  }
  // 2. Replay the WAL through the §4 algorithms. The records were read
  // (and the torn tail cut) once, at WriteAheadLog::Open — no second
  // scan of the log file. Insert/delete records inside a transaction
  // are buffered and applied only when the commit record is seen;
  // aborted or crash-cut transactions are discarded.
  //
  // Only applied data and DDL operations count toward
  // ops_since_checkpoint_: transaction markers and checkpoint records
  // are bookkeeping, and counting them would make the auto-checkpoint
  // cadence drift after every recovery.
  const std::vector<WalRecord>& records = wal_->recovered_records();
  bool replay_in_txn = false;
  std::vector<WalRecord> pending;
  auto apply_data_record = [&](const WalRecord& record) -> Status {
    BufferReader reader(record.payload);
    NF2_ASSIGN_OR_RETURN(FlatTuple tuple, DecodeFlatTuple(&reader));
    if (record.type == WalOpType::kInsert) {
      Status s = ApplyInsert(record.relation, tuple);
      // AlreadyExists: the op landed in a checkpoint before the crash.
      // NotFound: the relation was dropped later in this same log (the
      // drop saved the catalog eagerly, superseding these records).
      if (!s.ok() && s.code() != StatusCode::kAlreadyExists &&
          s.code() != StatusCode::kNotFound) {
        return s;
      }
    } else {
      Status s = ApplyDelete(record.relation, tuple);
      if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
    }
    ++ops_since_checkpoint_;
    return Status::OK();
  };
  for (const WalRecord& record : records) {
    switch (record.type) {
      case WalOpType::kInsert:
      case WalOpType::kDelete: {
        if (replay_in_txn) {
          pending.push_back(record);
        } else {
          NF2_RETURN_IF_ERROR(apply_data_record(record));
        }
        break;
      }
      case WalOpType::kCreateRelation: {
        ++ops_since_checkpoint_;
        if (catalog_.Has(record.relation)) break;  // Already applied.
        BufferReader reader(record.payload);
        NF2_ASSIGN_OR_RETURN(RelationInfo info, DecodeRelationInfo(&reader));
        NF2_RETURN_IF_ERROR(catalog_.Add(info));
        relations_.emplace(info.name,
                           MakeRelation(info.schema, info.nest_order));
        break;
      }
      case WalOpType::kDropRelation: {
        ++ops_since_checkpoint_;
        if (!catalog_.Has(record.relation)) break;
        NF2_RETURN_IF_ERROR(catalog_.Remove(record.relation));
        relations_.erase(record.relation);
        break;
      }
      case WalOpType::kTxnBegin:
        replay_in_txn = true;
        pending.clear();
        break;
      case WalOpType::kTxnCommit:
        for (const WalRecord& buffered : pending) {
          NF2_RETURN_IF_ERROR(apply_data_record(buffered));
        }
        pending.clear();
        replay_in_txn = false;
        break;
      case WalOpType::kTxnAbort:
        pending.clear();
        replay_in_txn = false;
        break;
      case WalOpType::kCheckpoint:
        break;
    }
  }
  // A transaction cut off by a crash is implicitly aborted — but only
  // in RAM so far. The log still ends inside the unterminated region,
  // so post-restart autocommit appends would land between its kTxnBegin
  // and nothing, and a SECOND recovery would discard them as part of
  // the crash-cut transaction. Terminate the region durably now.
  if (replay_in_txn) {
    NF2_RETURN_IF_ERROR(
        wal_->Append({0, WalOpType::kTxnAbort, "", ""}).status());
  }
  // The recovered records were consumed above; a long-lived process
  // must not pin the whole pre-checkpoint log in RAM.
  wal_->ReleaseRecoveredRecords();
  // Publishing here (which also materializes the dictionary rank table)
  // makes the recovered state visible to snapshot readers before the
  // database is served.
  PublishSnapshot();
  recovered_ = true;
  return Status::OK();
}

void Database::PublishSnapshot() {
  // Writer-side obligation (engine/concurrency.h): force every lazily
  // materialized cache before the freeze, so the frozen copy — the
  // only dictionary snapshot readers touch — is genuinely immutable.
  dict_->MaterializeRanks();
  if (frozen_dict_ == nullptr || frozen_dict_size_ != dict_->size()) {
    frozen_dict_ = std::make_shared<const ValueDictionary>(*dict_);
    frozen_dict_size_ = dict_->size();
  }
  std::shared_ptr<const DatabaseSnapshot> prev =
      snapshot_.load(std::memory_order_relaxed);
  DatabaseSnapshot::VersionMap versions;
  for (const auto& [name, rel] : relations_) {
    // COW at relation granularity: share the previous version unless
    // this relation was mutated since the last publish.
    if (prev != nullptr && dirty_relations_.count(name) == 0) {
      if (auto reuse = prev->FindVersion(name)) {
        versions.emplace(name, std::move(reuse));
        continue;
      }
    }
    Result<const RelationInfo*> info = catalog_.Get(name);
    NF2_CHECK(info.ok()) << "relation '" << name << "' missing from catalog";
    versions.emplace(
        name, std::make_shared<const DatabaseSnapshot::RelationVersion>(
                  DatabaseSnapshot::RelationVersion{
                      **info, std::make_shared<const CanonicalRelation>(
                                  rel)}));
  }
  dirty_relations_.clear();
  ++published_version_;
  WalPosition wal_pos = wal_ != nullptr ? wal_->position() : WalPosition{};
  snapshot_.store(std::make_shared<const DatabaseSnapshot>(
                      published_version_, catalog_epoch(),
                      std::move(versions), frozen_dict_, snapshot_tracker_,
                      wal_pos.epoch, wal_pos.lsn),
                  std::memory_order_release);
  metric_snapshots_published_->Increment();
}

Status Database::Begin() {
  if (in_txn_) {
    return Status::FailedPrecondition("transaction already open");
  }
  NF2_RETURN_IF_ERROR(
      wal_->Append({0, WalOpType::kTxnBegin, "", ""}).status());
  in_txn_ = true;
  undo_log_.clear();
  return Status::OK();
}

Status Database::Commit() {
  if (!in_txn_) {
    return Status::FailedPrecondition("no open transaction");
  }
  NF2_RETURN_IF_ERROR(
      wal_->Append({0, WalOpType::kTxnCommit, "", ""}).status());
  in_txn_ = false;
  undo_log_.clear();
  // Commit is a publish boundary: the transaction's writes become
  // visible to snapshot readers here, atomically, and not before.
  PublishSnapshot();
  // The marker itself is not an operation; the transaction's data ops
  // were already counted as they ran.
  return MaybeAutoCheckpoint();
}

Status Database::Rollback() {
  if (!in_txn_) {
    return Status::FailedPrecondition("no open transaction");
  }
  // Undo in reverse order through the same §4 algorithms.
  for (size_t i = undo_log_.size(); i-- > 0;) {
    const UndoEntry& entry = undo_log_[i];
    Status s = entry.was_insert
                   ? ApplyDelete(entry.relation, entry.tuple)
                   : ApplyInsert(entry.relation, entry.tuple);
    NF2_CHECK(s.ok()) << "rollback failed to undo "
                      << entry.tuple.ToString() << ": " << s;
  }
  undo_log_.clear();
  in_txn_ = false;
  NF2_RETURN_IF_ERROR(
      wal_->Append({0, WalOpType::kTxnAbort, "", ""}).status());
  // Publish the restored state: the aborted transaction's relations
  // are in dirty_relations_ (marked as its ops ran), so their
  // pre-transaction content is re-cloned for readers.
  PublishSnapshot();
  return Status::OK();
}

Status Database::CreateRelation(const std::string& name, Schema schema,
                                Permutation nest_order, std::vector<Fd> fds,
                                std::vector<Mvd> mvds) {
  if (in_txn_) {
    return Status::FailedPrecondition(
        "DDL is not allowed inside a transaction");
  }
  if (catalog_.Has(name)) {
    return Status::AlreadyExists(StrCat("relation '", name, "' exists"));
  }
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  for (const Fd& fd : fds) {
    if (!fd.lhs.Union(fd.rhs).IsSubsetOf(AttrSet::All(schema.degree()))) {
      return Status::InvalidArgument("FD references unknown attributes");
    }
  }
  for (const Mvd& mvd : mvds) {
    if (!mvd.lhs.Union(mvd.rhs).IsSubsetOf(AttrSet::All(schema.degree()))) {
      return Status::InvalidArgument("MVD references unknown attributes");
    }
  }
  if (nest_order.empty()) {
    nest_order = AdvisePermutation(schema.degree(),
                                   FdSet(schema.degree(), fds),
                                   MvdSet(schema.degree(), mvds));
  }
  if (!IsValidPermutation(nest_order, schema.degree())) {
    return Status::InvalidArgument("nest order is not a permutation");
  }
  RelationInfo info;
  info.name = name;
  info.schema = std::move(schema);
  info.nest_order = std::move(nest_order);
  info.fds = std::move(fds);
  info.mvds = std::move(mvds);
  info.table_file = SanitizedFileName(name);

  BufferWriter payload;
  EncodeRelationInfo(info, &payload);
  // The WAL record (fsync'd — DDL is a commit point) goes first: once
  // it is durable, a crash anywhere below is repaired by replay, which
  // recreates whatever file or catalog entry is missing.
  NF2_RETURN_IF_ERROR(
      wal_->Append({0, WalOpType::kCreateRelation, name, payload.data()})
          .status());
  relations_.emplace(name, MakeRelation(info.schema, info.nest_order));
  // Publish the (empty) table file atomically, then the catalog.
  NF2_RETURN_IF_ERROR(WriteTableAtomic(env_, TablePath(info), info.schema,
                                       info.nest_order,
                                       NfrRelation(info.schema),
                                       BufferPoolMetrics::ForRegistry(
                                           &metrics_)));
  NF2_RETURN_IF_ERROR(catalog_.Add(std::move(info)));
  // The next checkpoint must build a manifest entry for the new file
  // (adopt-identity over the fresh flat file: a cheap read-only pass).
  ckpt_dirty_.insert(name);
  ++ops_since_checkpoint_;
  // DDL invalidates cached plans (the statement-cache epoch key) and
  // is itself a publish boundary.
  catalog_epoch_.fetch_add(1, std::memory_order_release);
  PublishSnapshot();
  return catalog_.SaveToFile(env_, CatalogPath());
}

Status Database::DropRelation(const std::string& name) {
  if (in_txn_) {
    return Status::FailedPrecondition(
        "DDL is not allowed inside a transaction");
  }
  NF2_ASSIGN_OR_RETURN(const RelationInfo* info, catalog_.Get(name));
  std::string table_path = TablePath(*info);
  std::string table_file = info->table_file;
  NF2_RETURN_IF_ERROR(
      wal_->Append({0, WalOpType::kDropRelation, name, ""}).status());
  NF2_RETURN_IF_ERROR(catalog_.Remove(name));
  relations_.erase(name);
  ckpt_dirty_.erase(name);
  // The in-memory manifest must not keep a mapping for the removed
  // file: a same-named CREATE would otherwise diff against it.
  manifest_.tables.erase(table_file);
  if (env_->FileExists(table_path)) {
    Status removed = env_->RemoveFile(table_path);  // Best effort.
    if (!removed.ok()) {
      NF2_LOG(Warning) << "cannot remove dropped table file " << table_path
                       << ": " << removed;
    }
  }
  ++ops_since_checkpoint_;
  catalog_epoch_.fetch_add(1, std::memory_order_release);
  PublishSnapshot();
  return catalog_.SaveToFile(env_, CatalogPath());
}

std::vector<std::string> Database::ListRelations() const {
  return catalog_.Names();
}

Result<const NfrRelation*> Database::Relation(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  return &it->second.relation();
}

Result<const CanonicalRelation*> Database::Canonical(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  return &it->second;
}

Result<const RelationInfo*> Database::Info(const std::string& name) const {
  return catalog_.Get(name);
}

Status Database::ApplyInsert(const std::string& name,
                             const FlatTuple& tuple) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  Status s = it->second.Insert(tuple);
  if (s.ok()) ckpt_dirty_.insert(name);
  return s;
}

Status Database::ApplyDelete(const std::string& name,
                             const FlatTuple& tuple) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  Status s = it->second.Delete(tuple);
  if (s.ok()) ckpt_dirty_.insert(name);
  return s;
}

Status Database::CheckFdsForInsert(const RelationInfo& info,
                                   const CanonicalRelation& rel,
                                   const FlatTuple& tuple) const {
  for (const Fd& fd : info.fds) {
    if (fd.IsTrivial()) continue;
    std::vector<size_t> lhs = fd.lhs.ToVector();
    std::vector<size_t> rhs = fd.rhs.Difference(fd.lhs).ToVector();
    // An existing NFR tuple whose components contain every LHS value of
    // `tuple` expands to some simple tuple agreeing with it on the LHS;
    // the FD then demands its RHS components be exactly the inserted
    // RHS values.
    for (const NfrTuple& s : rel.relation().tuples()) {
      bool shares_lhs = true;
      for (size_t a : lhs) {
        if (!s.at(a).Contains(tuple.at(a))) {
          shares_lhs = false;
          break;
        }
      }
      if (!shares_lhs) continue;
      for (size_t a : rhs) {
        if (!s.at(a).IsSingleton() || s.at(a).single() != tuple.at(a)) {
          return Status::FailedPrecondition(
              StrCat("inserting ", tuple.ToString(), " violates FD ",
                     fd.ToString(info.schema), " of relation '", info.name,
                     "'"));
        }
      }
    }
  }
  return Status::OK();
}

Status Database::Insert(const std::string& name, const FlatTuple& tuple) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  // Validate before logging so the WAL carries only applicable ops.
  if (tuple.degree() != it->second.schema().degree()) {
    return Status::InvalidArgument("tuple degree mismatch");
  }
  if (it->second.Contains(tuple)) {
    return Status::AlreadyExists(
        StrCat("tuple ", tuple.ToString(), " already present"));
  }
  if (options_.enforce_fds) {
    NF2_ASSIGN_OR_RETURN(const RelationInfo* info, catalog_.Get(name));
    NF2_RETURN_IF_ERROR(CheckFdsForInsert(*info, it->second, tuple));
  }
  BufferWriter payload;
  EncodeFlatTuple(tuple, &payload);
  {
    TraceSpan span(nullptr, "insert", metric_insert_ns_);
    NF2_RETURN_IF_ERROR(
        wal_->Append({0, WalOpType::kInsert, name, payload.data()})
            .status());
    NF2_RETURN_IF_ERROR(it->second.Insert(tuple));
  }
  metric_inserts_->Increment();
  if (in_txn_) {
    undo_log_.push_back(UndoEntry{true, name, tuple});
  }
  ++ops_since_checkpoint_;
  dirty_relations_.insert(name);
  ckpt_dirty_.insert(name);
  // Autocommit is a publish boundary; inside a transaction the write
  // stays invisible to snapshot readers until Commit.
  if (!in_txn_) PublishSnapshot();
  return MaybeAutoCheckpoint();
}

Status Database::Delete(const std::string& name, const FlatTuple& tuple) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  if (!it->second.Contains(tuple)) {
    return Status::NotFound(
        StrCat("tuple ", tuple.ToString(), " not present"));
  }
  BufferWriter payload;
  EncodeFlatTuple(tuple, &payload);
  {
    TraceSpan span(nullptr, "delete", metric_delete_ns_);
    NF2_RETURN_IF_ERROR(
        wal_->Append({0, WalOpType::kDelete, name, payload.data()})
            .status());
    NF2_RETURN_IF_ERROR(it->second.Delete(tuple));
  }
  metric_deletes_->Increment();
  if (in_txn_) {
    undo_log_.push_back(UndoEntry{false, name, tuple});
  }
  ++ops_since_checkpoint_;
  dirty_relations_.insert(name);
  ckpt_dirty_.insert(name);
  if (!in_txn_) PublishSnapshot();
  return MaybeAutoCheckpoint();
}

Result<bool> Database::Contains(const std::string& name,
                                const FlatTuple& tuple) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  return it->second.Contains(tuple);
}

Result<FlatRelation> Database::Scan(const std::string& name) const {
  NF2_ASSIGN_OR_RETURN(const NfrRelation* rel, Relation(name));
  return rel->Expand();
}

Result<FlatRelation> Database::Query(const std::string& name,
                                     const Predicate& pred) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  // Point-query fast path: a single `attr = value` predicate is
  // answered from the inverted index, expanding only the touched
  // tuples.
  std::optional<std::pair<size_t, Value>> eq = pred.AsSingleEq();
  if (eq.has_value() && eq->first < it->second.schema().degree()) {
    NfrRelation touched =
        it->second.TuplesContaining(eq->first, eq->second);
    return SelectNfrExact(touched, pred).Expand();
  }
  return SelectNfrExact(it->second.relation(), pred).Expand();
}

Status Database::Checkpoint() {
  if (in_txn_) {
    return Status::FailedPrecondition(
        "cannot checkpoint with an open transaction");
  }
  // Incremental, page-level checkpoint (DESIGN.md §12). Only relations
  // mutated since the last checkpoint are serialized, and of those only
  // the pages whose CRC changed are written — into physical slots the
  // DURABLE manifest does not reference (shadow paging), so every page
  // the old manifest maps stays intact until the new manifest lands.
  // The commit sequence is:
  //   1. dictionary (only if it grew — it is append-only, so tables on
  //      disk always encode against a superset),
  //   2. per-table page deltas, each fdatasync'd,
  //   3. catalog,
  //   4. SaveManifestAtomic — the rename that flips all page mappings
  //      at once,
  //   5. WAL truncate — the commit point.
  // A crash before 4 recovers from the old manifest plus a full
  // (idempotent) replay; a crash between 4 and 5 from the new manifest
  // plus the same replay, which converges because inserts ignore
  // AlreadyExists and deletes ignore NotFound.
  TraceSpan span(nullptr, "checkpoint", metric_checkpoint_ns_);
  Manifest next = manifest_;
  ++next.checkpoint_seq;
  if (dict_->size() != saved_dict_size_) {
    NF2_RETURN_IF_ERROR(SaveDictionary());
    saved_dict_size_ = dict_->size();
  }
  next.dict_size = dict_->size();
  CheckpointDeltaStats total;
  uint64_t tables_skipped = 0;
  std::set<std::string> live_files;
  for (const std::string& name : catalog_.Names()) {
    NF2_ASSIGN_OR_RETURN(const RelationInfo* info, catalog_.Get(name));
    auto it = relations_.find(name);
    NF2_CHECK(it != relations_.end());
    live_files.insert(info->table_file);
    TableManifest& entry = next.tables[info->table_file];
    if (ckpt_dirty_.count(name) == 0 && !entry.pages.empty()) {
      // Clean since the last checkpoint and already mapped: nothing to
      // diff, nothing to write.
      total.pages_skipped += entry.pages.size();
      ++tables_skipped;
      continue;
    }
    NF2_ASSIGN_OR_RETURN(
        CheckpointDeltaStats stats,
        CheckpointTableDelta(env_, TablePath(*info), info->schema,
                             info->nest_order, it->second.relation(),
                             &entry, next.checkpoint_seq));
    total += stats;
  }
  // Mappings for files no longer in the catalog (dropped relations)
  // must not survive into the durable manifest.
  for (auto mit = next.tables.begin(); mit != next.tables.end();) {
    if (live_files.count(mit->first) == 0) {
      mit = next.tables.erase(mit);
    } else {
      ++mit;
    }
  }
  NF2_RETURN_IF_ERROR(catalog_.SaveToFile(env_, CatalogPath()));
  // Persist the position the log will be at AFTER the truncate below:
  // Reset() bumps the epoch and keeps next_lsn_, so a recovery that
  // sees this manifest (crash after step 4, or any later reopen of the
  // truncated log) adopts exactly the position a crash-free run holds.
  next.wal_epoch = wal_->epoch() + 1;
  next.wal_base_lsn = wal_->next_lsn();
  NF2_RETURN_IF_ERROR(SaveManifestAtomic(env_, ManifestPath(), next));
  NF2_RETURN_IF_ERROR(wal_->Reset());
  manifest_ = std::move(next);
  ckpt_dirty_.clear();
  ops_since_checkpoint_ = 0;
  last_checkpoint_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now().time_since_epoch())
                                .count(),
                            std::memory_order_relaxed);
  metric_checkpoints_->Increment();
  if (ckpt_metrics_.pages_written != nullptr && total.pages_written > 0) {
    ckpt_metrics_.pages_written->Increment(total.pages_written);
  }
  if (ckpt_metrics_.pages_skipped != nullptr && total.pages_skipped > 0) {
    ckpt_metrics_.pages_skipped->Increment(total.pages_skipped);
  }
  if (ckpt_metrics_.bytes_written != nullptr && total.bytes_written > 0) {
    ckpt_metrics_.bytes_written->Increment(total.bytes_written);
  }
  if (ckpt_metrics_.tables_skipped != nullptr && tables_skipped > 0) {
    ckpt_metrics_.tables_skipped->Increment(tables_skipped);
  }
  return Status::OK();
}

Status Database::MaybeAutoCheckpoint() {
  if (in_txn_) return Status::OK();
  if (options_.auto_checkpoint_every > 0 &&
      ops_since_checkpoint_ >= options_.auto_checkpoint_every) {
    return Checkpoint();
  }
  return Status::OK();
}

std::string Database::wal_path() const {
  return (std::filesystem::path(dir_) / kWalFile).string();
}

Status Database::VerifyIntegrity() const {
  for (const auto& [name, rel] : relations_) {
    NF2_ASSIGN_OR_RETURN(const RelationInfo* info, catalog_.Get(name));
    NF2_RETURN_IF_ERROR(rel.relation().Validate());
    NfrRelation canonical =
        CanonicalForm(rel.relation().Expand(), info->nest_order);
    if (!rel.relation().EqualsAsSet(canonical)) {
      return Status::Corruption(
          StrCat("relation '", name, "' is not in canonical form"));
    }
    if (!info->fd_set().SatisfiedBy(rel.relation().Expand())) {
      return Status::FailedPrecondition(
          StrCat("relation '", name, "' violates a declared FD"));
    }
  }
  return Status::OK();
}

::nf2::MetricsSnapshot Database::MetricsSnapshot() const {
  // Derived gauges are refreshed lazily, at observation time — keeping
  // them current on every insert would put map lookups on the hot
  // path. They read the PUBLISHED snapshot, not the live maps, so
  // `\metrics` stays lock-free against concurrent writers (and reports
  // committed state, consistent with what snapshot readers see).
  std::shared_ptr<const DatabaseSnapshot> snap = PinSnapshot();
  if (snap != nullptr) {
    if (metric_dict_values_ != nullptr) {
      metric_dict_values_->Set(
          static_cast<int64_t>(snap->dictionary()->size()));
    }
    if (metric_relations_ != nullptr) {
      metric_relations_->Set(static_cast<int64_t>(snap->relation_count()));
    }
  }
  if (snapshot_tracker_ != nullptr) snapshot_tracker_->RefreshGauges();
  return metrics_.Snapshot();
}

Result<UpdateStats> Database::RelationUpdateStats(
    const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  return it->second.stats();
}

std::string Database::MetricsText(bool prometheus) const {
  std::shared_ptr<const DatabaseSnapshot> snap = PinSnapshot();
  if (snap != nullptr) {
    if (metric_dict_values_ != nullptr) {
      metric_dict_values_->Set(
          static_cast<int64_t>(snap->dictionary()->size()));
    }
    if (metric_relations_ != nullptr) {
      metric_relations_->Set(static_cast<int64_t>(snap->relation_count()));
    }
  }
  if (snapshot_tracker_ != nullptr) snapshot_tracker_->RefreshGauges();
  return prometheus ? metrics_.ToPrometheusText() : metrics_.ToString();
}

Result<RelationStats> Database::Stats(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not found"));
  }
  RelationStats stats = ComputeRelationStats(it->second.relation());
  stats.name = name;
  stats.update_stats = it->second.stats();
  if (it->second.dictionary() != nullptr) {
    stats.dict_values = it->second.dictionary()->size();
  }
  return stats;
}

}  // namespace nf2
