#ifndef NF2_ENGINE_CONCURRENCY_H_
#define NF2_ENGINE_CONCURRENCY_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "nfrql/ast.h"

namespace nf2 {

/// Reader/writer gate over one Database — the concurrency layer the
/// server (src/server/) drives, usable on its own by any embedder that
/// wants shared readers.
///
/// Locking discipline (DESIGN.md §8): statements classified read-only
/// by IsReadOnlyStatement run concurrently under shared locks; every
/// mutating statement — including BEGIN/COMMIT/ROLLBACK and CHECKPOINT
/// — serializes under the exclusive lock for the duration of that one
/// statement. Theorem A-4 is what makes the single writer lock viable:
/// the §4 composition count per insert/delete is bounded by a function
/// of the degree alone, independent of |R|, so writer critical sections
/// stay short no matter how large the relation grows.
///
/// The gate is writer-preferring, implemented by hand rather than on
/// std::shared_mutex: glibc's rwlock prefers readers by default, and a
/// steady stream of short reads then starves writers indefinitely —
/// exactly the torture-test workload. Here a waiting writer blocks new
/// readers from entering, so writes are admitted after at most the
/// readers already in flight.
///
/// Writer-side obligation: any lazily materialized, logically-const
/// cache a reader could touch must be forced while the exclusive lock
/// is still held. The dictionary rank table is the one such cache today
/// (ValueDictionary::MaterializeRanks); server::Session honors this
/// after every mutating statement, and Database::Recover() after
/// replay.
class EngineGate {
 public:
  EngineGate() = default;
  EngineGate(const EngineGate&) = delete;
  EngineGate& operator=(const EngineGate&) = delete;

  /// RAII guard for one reader; unlocks on destruction.
  class SharedLock {
   public:
    explicit SharedLock(EngineGate* gate) : gate_(gate) {
      gate_->AcquireShared();
    }
    ~SharedLock() {
      if (gate_ != nullptr) gate_->ReleaseShared();
    }
    SharedLock(SharedLock&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    SharedLock(const SharedLock&) = delete;
    SharedLock& operator=(const SharedLock&) = delete;
    SharedLock& operator=(SharedLock&&) = delete;

   private:
    EngineGate* gate_;
  };

  /// RAII guard for the writer; unlocks on destruction.
  class ExclusiveLock {
   public:
    explicit ExclusiveLock(EngineGate* gate) : gate_(gate) {
      gate_->AcquireExclusive();
    }
    ~ExclusiveLock() {
      if (gate_ != nullptr) gate_->ReleaseExclusive();
    }
    ExclusiveLock(ExclusiveLock&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    ExclusiveLock(const ExclusiveLock&) = delete;
    ExclusiveLock& operator=(const ExclusiveLock&) = delete;
    ExclusiveLock& operator=(ExclusiveLock&&) = delete;

   private:
    EngineGate* gate_;
  };

  /// Shared (reader) lock — held for the duration of one read-only
  /// statement.
  SharedLock LockShared() { return SharedLock(this); }

  /// Exclusive (writer) lock — held for the duration of one mutating
  /// statement.
  ExclusiveLock LockExclusive() { return ExclusiveLock(this); }

 private:
  void AcquireShared();
  void ReleaseShared();
  void AcquireExclusive();
  void ReleaseExclusive();

  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  // All guarded by mu_.
  uint64_t active_readers_ = 0;
  uint64_t waiting_writers_ = 0;
  bool writer_active_ = false;
};

/// True when executing `stmt` cannot mutate engine state, so it may run
/// under a shared lock: SELECT, SHOW, DESCRIBE, NEST/UNNEST views,
/// LIST, STATS, and EXPLAIN of anything (EXPLAIN never executes).
/// PROFILE executes its inner statement and classifies as that
/// statement does. Everything else — INSERT/DELETE/UPDATE, DDL,
/// CHECKPOINT, BEGIN/COMMIT/ROLLBACK — requires the exclusive lock.
bool IsReadOnlyStatement(const Statement& stmt);

}  // namespace nf2

#endif  // NF2_ENGINE_CONCURRENCY_H_
