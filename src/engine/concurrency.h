#ifndef NF2_ENGINE_CONCURRENCY_H_
#define NF2_ENGINE_CONCURRENCY_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "nfrql/ast.h"
#include "obs/metrics.h"

namespace nf2 {

/// Reader/writer gate over one Database — the writer-serialization
/// layer the server (src/server/) drives, usable on its own by any
/// embedder.
///
/// Locking discipline (DESIGN.md §8/§9): every mutating statement —
/// including BEGIN/COMMIT/ROLLBACK and CHECKPOINT — serializes under
/// the exclusive lock for the duration of that one statement. Theorem
/// A-4 is what makes the single writer lock viable: the §4 composition
/// count per insert/delete is bounded by a function of the degree
/// alone, independent of |R|, so writer critical sections stay short
/// no matter how large the relation grows.
///
/// Statements classified read-only by IsReadOnlyStatement do NOT come
/// here at all since the MVCC snapshot read path landed: they pin an
/// immutable DatabaseSnapshot (engine/snapshot.h) and execute with
/// zero gate traffic. The shared mode is retained for embedders that
/// want to freeze the live engine state briefly (the server's shutdown
/// sequence peeks at open transactions this way), so the gate keeps
/// its writer preference: a waiting writer bars new shared entrants,
/// bounding writer admission by the holders already in flight.
///
/// Writer-side obligation: any lazily materialized, logically-const
/// state a reader could observe must be forced before the new state is
/// published. Database::PublishSnapshot() materializes the dictionary
/// rank table and freezes the dictionary before the snapshot pointer
/// swap, so snapshot readers see only genuinely immutable data.
class EngineGate {
 public:
  EngineGate() = default;
  EngineGate(const EngineGate&) = delete;
  EngineGate& operator=(const EngineGate&) = delete;

  /// RAII guard for one reader; unlocks on destruction.
  class SharedLock {
   public:
    explicit SharedLock(EngineGate* gate) : gate_(gate) {
      gate_->AcquireShared();
    }
    ~SharedLock() {
      if (gate_ != nullptr) gate_->ReleaseShared();
    }
    SharedLock(SharedLock&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    SharedLock(const SharedLock&) = delete;
    SharedLock& operator=(const SharedLock&) = delete;
    SharedLock& operator=(SharedLock&&) = delete;

   private:
    EngineGate* gate_;
  };

  /// RAII guard for the writer; unlocks on destruction.
  class ExclusiveLock {
   public:
    explicit ExclusiveLock(EngineGate* gate) : gate_(gate) {
      gate_->AcquireExclusive();
    }
    ~ExclusiveLock() {
      if (gate_ != nullptr) gate_->ReleaseExclusive();
    }
    ExclusiveLock(ExclusiveLock&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    ExclusiveLock(const ExclusiveLock&) = delete;
    ExclusiveLock& operator=(const ExclusiveLock&) = delete;
    ExclusiveLock& operator=(ExclusiveLock&&) = delete;

   private:
    EngineGate* gate_;
  };

  /// Shared (reader) lock — held for the duration of one read-only
  /// statement.
  SharedLock LockShared() { return SharedLock(this); }

  /// Exclusive (writer) lock — held for the duration of one mutating
  /// statement.
  ExclusiveLock LockExclusive() { return ExclusiveLock(this); }

  /// Mirrors acquisitions (and writer wait time) into the given metric
  /// handles. Call before the gate sees traffic; an all-null set (the
  /// default) records nothing.
  void set_metrics(const GateMetrics& metrics) { metrics_ = metrics; }

 private:
  void AcquireShared();
  void ReleaseShared();
  void AcquireExclusive();
  void ReleaseExclusive();

  std::mutex mu_;
  std::condition_variable reader_cv_;
  std::condition_variable writer_cv_;
  // All guarded by mu_.
  uint64_t active_readers_ = 0;
  uint64_t waiting_writers_ = 0;
  bool writer_active_ = false;
  GateMetrics metrics_;  // Handles are themselves thread-safe.
};

/// True when executing `stmt` cannot mutate engine state, so it may run
/// under a shared lock: SELECT, SHOW, DESCRIBE, NEST/UNNEST views,
/// LIST, STATS, and EXPLAIN of anything (EXPLAIN never executes).
/// PROFILE executes its inner statement and classifies as that
/// statement does. Everything else — INSERT/DELETE/UPDATE, DDL,
/// CHECKPOINT, BEGIN/COMMIT/ROLLBACK — requires the exclusive lock.
bool IsReadOnlyStatement(const Statement& stmt);

}  // namespace nf2

#endif  // NF2_ENGINE_CONCURRENCY_H_
