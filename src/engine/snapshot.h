#ifndef NF2_ENGINE_SNAPSHOT_H_
#define NF2_ENGINE_SNAPSHOT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "catalog/catalog.h"
#include "core/update.h"
#include "engine/statistics.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace nf2 {

/// Bookkeeping shared by a Database and every snapshot it has
/// published: which snapshot versions are still alive (pinned by the
/// database itself or by in-flight readers) and when each was
/// published, surfaced as the nf2_snapshot_{pinned,oldest_age_ms}
/// gauges. Registration happens in DatabaseSnapshot's constructor /
/// destructor, so "alive" is exactly "some shared_ptr still holds it".
///
/// Thread-safe: publish runs on a writer while readers drop pins
/// concurrently. The mutex guards only this small map — never the data
/// path.
class SnapshotTracker {
 public:
  SnapshotTracker() = default;
  SnapshotTracker(const SnapshotTracker&) = delete;
  SnapshotTracker& operator=(const SnapshotTracker&) = delete;

  /// Binds the gauges the tracker refreshes; null handles are skipped.
  void BindGauges(Gauge* pinned, Gauge* oldest_age_ms);

  void Register(uint64_t version);
  void Unregister(uint64_t version);

  /// Recomputes both gauges from the live set — called at metrics
  /// observation time, not on the pin/unpin hot path.
  void RefreshGauges();

  /// Number of snapshot versions currently alive.
  size_t alive() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::chrono::steady_clock::time_point> live_;
  Gauge* pinned_ = nullptr;
  Gauge* oldest_age_ms_ = nullptr;
};

/// An immutable, consistent view of a whole Database at one publish
/// point — what read-only statements execute against (DESIGN.md §9).
///
/// Structure: relation name → shared RelationVersion (catalog info +
/// the canonical NFR as of the publish), plus the frozen dictionary
/// those relations' interned ids resolve through. Publishing is
/// copy-on-write at relation granularity: a relation untouched since
/// the previous snapshot shares its RelationVersion pointer; a rebuilt
/// one is cloned, and inside the clone every unmodified component set
/// is shared, not deep-copied (ValueSet's COW rep).
///
/// Concurrency contract: everything reachable from a snapshot is
/// immutable — the relations are clones the writer will never touch
/// again, the dictionary is a frozen copy (so even its lazy rank table
/// is private and pre-materialized), and point queries go through the
/// id-space index path (TuplesContainingId) rather than any live
/// structure. Pinning is one atomic shared_ptr load; dropping the last
/// pin frees the version. A snapshot must not outlive its Database
/// (it holds metric handles into the database's registry, like
/// Database::Relation() pointers always have).
class DatabaseSnapshot {
 public:
  /// One relation as of the publish point.
  struct RelationVersion {
    RelationInfo info;
    std::shared_ptr<const CanonicalRelation> relation;
  };
  using VersionMap =
      std::map<std::string, std::shared_ptr<const RelationVersion>>;

  DatabaseSnapshot(uint64_t version, uint64_t catalog_epoch,
                   VersionMap relations,
                   std::shared_ptr<const ValueDictionary> dictionary,
                   std::shared_ptr<SnapshotTracker> tracker,
                   uint64_t wal_epoch = 0, uint64_t wal_lsn = 0);
  ~DatabaseSnapshot();
  DatabaseSnapshot(const DatabaseSnapshot&) = delete;
  DatabaseSnapshot& operator=(const DatabaseSnapshot&) = delete;

  /// Monotone publish sequence number (1 = the snapshot Recover()
  /// publishes).
  uint64_t version() const { return version_; }

  /// The catalog epoch at publish — bumped by DDL, the statement
  /// cache's plan-reuse key.
  uint64_t catalog_epoch() const { return catalog_epoch_; }

  /// WAL position (epoch, last applied lsn) at publish — how far the
  /// durable log this snapshot reflects had advanced. A follower
  /// reports these as its replication position (`\replica`).
  uint64_t wal_epoch() const { return wal_epoch_; }
  uint64_t wal_lsn() const { return wal_lsn_; }

  /// The frozen dictionary (never null; may be empty).
  const std::shared_ptr<const ValueDictionary>& dictionary() const {
    return dictionary_;
  }

  // Read API mirroring Database, answered entirely from this snapshot.

  /// Names of all relations, sorted (map order).
  std::vector<std::string> ListRelations() const;

  /// Catalog metadata for `name`.
  Result<const RelationInfo*> Info(const std::string& name) const;

  /// The stored canonical NFR (valid for the snapshot's lifetime).
  Result<const NfrRelation*> Relation(const std::string& name) const;

  /// R* of the stored relation.
  Result<FlatRelation> Scan(const std::string& name) const;

  /// sigma_pred(R*) with the same point-query fast path as
  /// Database::Query, resolved against the frozen dictionary.
  Result<FlatRelation> Query(const std::string& name,
                             const Predicate& pred) const;

  /// Size/maintenance statistics as of the publish point.
  Result<RelationStats> Stats(const std::string& name) const;

  size_t relation_count() const { return relations_.size(); }

  /// The shared version entry for `name`, or null when absent — what
  /// Database::PublishSnapshot() reuses for relations untouched since
  /// this snapshot (the COW share).
  std::shared_ptr<const RelationVersion> FindVersion(
      const std::string& name) const;

 private:
  Result<const RelationVersion*> Find(const std::string& name) const;

  const uint64_t version_;
  const uint64_t catalog_epoch_;
  const uint64_t wal_epoch_;
  const uint64_t wal_lsn_;
  const VersionMap relations_;
  const std::shared_ptr<const ValueDictionary> dictionary_;
  const std::shared_ptr<SnapshotTracker> tracker_;
};

}  // namespace nf2

#endif  // NF2_ENGINE_SNAPSHOT_H_
