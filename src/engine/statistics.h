#ifndef NF2_ENGINE_STATISTICS_H_
#define NF2_ENGINE_STATISTICS_H_

#include <cstdint>
#include <string>

#include "core/relation.h"
#include "core/update.h"

namespace nf2 {

/// Size and maintenance statistics for one stored NFR — the numbers the
/// paper's §2 argument is about ("the reduction of the number of tuples
/// will contribute to the reduction of logical search space").
struct RelationStats {
  std::string name;
  size_t nfr_tuples = 0;       // Records actually stored.
  uint64_t flat_tuples = 0;    // |R*|: what 1NF storage would hold.
  size_t nfr_bytes = 0;        // Serialized NFR size.
  size_t flat_bytes = 0;       // Serialized 1NF size.
  size_t dict_values = 0;      // Distinct atoms in the value dictionary.
  UpdateStats update_stats;    // Cumulative §4 operation counters,
                               // including wall-time (ns) in the hot
                               // FindCandidate/Recons paths.

  /// flat_tuples / nfr_tuples (1.0 for empty relations).
  double TupleReduction() const;
  /// flat_bytes / nfr_bytes (1.0 for empty relations).
  double ByteReduction() const;

  std::string ToString() const;
};

/// Computes size statistics for `rel`. The NFR side is measured by
/// serializing it; the 1NF side is derived analytically from the
/// component cardinalities (Theorem 1) — R* itself is never
/// materialized, so STATS stays cheap even when the expansion is huge.
/// name/update_stats are filled by the caller.
RelationStats ComputeRelationStats(const NfrRelation& rel);

}  // namespace nf2

#endif  // NF2_ENGINE_STATISTICS_H_
