#include "engine/statistics.h"

#include "storage/serde.h"
#include "util/string_util.h"

namespace nf2 {

double RelationStats::TupleReduction() const {
  if (nfr_tuples == 0) return 1.0;
  return static_cast<double>(flat_tuples) / static_cast<double>(nfr_tuples);
}

double RelationStats::ByteReduction() const {
  if (nfr_bytes == 0) return 1.0;
  return static_cast<double>(flat_bytes) / static_cast<double>(nfr_bytes);
}

std::string RelationStats::ToString() const {
  return StrCat(name, ": ", nfr_tuples, " NFR tuples (", nfr_bytes,
                " bytes) vs ", flat_tuples, " 1NF tuples (", flat_bytes,
                " bytes); reduction x", TupleReduction(), " tuples, x",
                ByteReduction(), " bytes; dict ", dict_values,
                " values; updates ", update_stats.ToString());
}

RelationStats ComputeRelationStats(const NfrRelation& rel) {
  RelationStats stats;
  stats.nfr_tuples = rel.size();
  stats.flat_tuples = rel.ExpandedSize();
  BufferWriter nfr_writer;
  EncodeNfrRelation(rel, &nfr_writer);
  stats.nfr_bytes = nfr_writer.size();
  BufferWriter flat_writer;
  EncodeSchema(rel.schema(), &flat_writer);
  FlatRelation flat = rel.Expand();
  for (const FlatTuple& t : flat.tuples()) {
    EncodeFlatTuple(t, &flat_writer);
  }
  stats.flat_bytes = flat_writer.size();
  return stats;
}

}  // namespace nf2
