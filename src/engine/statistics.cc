#include "engine/statistics.h"

#include "storage/serde.h"
#include "util/string_util.h"

namespace nf2 {

double RelationStats::TupleReduction() const {
  if (nfr_tuples == 0) return 1.0;
  return static_cast<double>(flat_tuples) / static_cast<double>(nfr_tuples);
}

double RelationStats::ByteReduction() const {
  if (nfr_bytes == 0) return 1.0;
  return static_cast<double>(flat_bytes) / static_cast<double>(nfr_bytes);
}

std::string RelationStats::ToString() const {
  return StrCat(name, ": ", nfr_tuples, " NFR tuples (", nfr_bytes,
                " bytes) vs ", flat_tuples, " 1NF tuples (", flat_bytes,
                " bytes); reduction x", TupleReduction(), " tuples, x",
                ByteReduction(), " bytes; dict ", dict_values,
                " values; updates ", update_stats.ToString());
}

RelationStats ComputeRelationStats(const NfrRelation& rel) {
  RelationStats stats;
  stats.nfr_tuples = rel.size();
  stats.flat_tuples = rel.ExpandedSize();
  BufferWriter nfr_writer;
  EncodeNfrRelation(rel, &nfr_writer);
  stats.nfr_bytes = nfr_writer.size();
  // 1NF size WITHOUT materializing R* (whose tuple count is the product
  // of the component cardinalities — Theorem 1 — and can dwarf the NFR
  // by orders of magnitude). Each flat tuple encodes as a u32 degree
  // plus one value per attribute; an atom of component c_a appears in
  // exactly ExpandedCount / |c_a| of the tuple's expansions.
  BufferWriter schema_writer;
  EncodeSchema(rel.schema(), &schema_writer);
  uint64_t flat_bytes = schema_writer.size();
  BufferWriter atom_writer;
  for (const NfrTuple& t : rel.tuples()) {
    const uint64_t expansions = t.ExpandedCount();
    if (expansions == 0) continue;
    flat_bytes += expansions * sizeof(uint32_t);  // Degree prefix.
    for (const ValueSet& component : t.components()) {
      const uint64_t repeats = expansions / component.size();
      for (const Value& atom : component.values()) {
        size_t before = atom_writer.size();
        EncodeValue(atom, &atom_writer);
        flat_bytes += repeats * (atom_writer.size() - before);
      }
    }
  }
  stats.flat_bytes = flat_bytes;
  return stats;
}

}  // namespace nf2
