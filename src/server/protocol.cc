#include "server/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace nf2 {
namespace server {

namespace {

Status SendAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t sent = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrCat("send: ", std::strerror(errno)));
    }
    done += static_cast<size_t>(sent);
  }
  return Status::OK();
}

/// Reads exactly `n` bytes; `*eof_before_any` reports a clean EOF with
/// zero bytes read (only meaningful on error return).
Status RecvAll(int fd, char* out, size_t n, bool* eof_before_any) {
  *eof_before_any = false;
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::recv(fd, out + done, n - done, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrCat("recv: ", std::strerror(errno)));
    }
    if (got == 0) {
      *eof_before_any = done == 0;
      return Status::IOError("connection closed mid-frame");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrCat("frame payload of ", payload.size(), " bytes exceeds limit"));
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  std::string buf;
  buf.reserve(5 + payload.size());
  buf.push_back(static_cast<char>(len & 0xff));
  buf.push_back(static_cast<char>((len >> 8) & 0xff));
  buf.push_back(static_cast<char>((len >> 16) & 0xff));
  buf.push_back(static_cast<char>((len >> 24) & 0xff));
  buf.push_back(static_cast<char>(type));
  buf.append(payload);
  return SendAll(fd, buf.data(), buf.size());
}

Result<std::optional<Frame>> ReadFrame(int fd) {
  char header[5];
  bool eof = false;
  Status s = RecvAll(fd, header, sizeof(header), &eof);
  if (!s.ok()) {
    if (eof) return std::optional<Frame>(std::nullopt);
    return s;
  }
  const uint32_t len = static_cast<uint32_t>(
      static_cast<uint8_t>(header[0]) |
      (static_cast<uint8_t>(header[1]) << 8) |
      (static_cast<uint8_t>(header[2]) << 16) |
      (static_cast<uint8_t>(header[3]) << 24));
  if (len > kMaxFramePayload) {
    return Status::IOError(
        StrCat("frame announces ", len, " payload bytes (limit ",
               kMaxFramePayload, ")"));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(header[4]));
  frame.payload.resize(len);
  if (len > 0) {
    NF2_RETURN_IF_ERROR(RecvAll(fd, frame.payload.data(), len, &eof));
  }
  return std::optional<Frame>(std::move(frame));
}

std::string EncodeStatusPayload(const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  out.append(status.message());
  return out;
}

Status DecodeStatusPayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::Internal("malformed error frame (empty payload)");
  }
  const uint8_t raw = static_cast<uint8_t>(payload[0]);
  std::string message(payload.substr(1));
  if (raw > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Internal(
        StrCat("unknown status code ", raw, " in error frame: ", message));
  }
  return Status(static_cast<StatusCode>(raw), std::move(message));
}

}  // namespace server
}  // namespace nf2
