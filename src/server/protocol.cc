#include "server/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace nf2 {
namespace server {

namespace {

Status SendAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t sent = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrCat("send: ", std::strerror(errno)));
    }
    done += static_cast<size_t>(sent);
  }
  return Status::OK();
}

/// Reads exactly `n` bytes; `*eof_before_any` reports a clean EOF with
/// zero bytes read (only meaningful on error return).
Status RecvAll(int fd, char* out, size_t n, bool* eof_before_any) {
  *eof_before_any = false;
  size_t done = 0;
  while (done < n) {
    ssize_t got = ::recv(fd, out + done, n - done, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrCat("recv: ", std::strerror(errno)));
    }
    if (got == 0) {
      *eof_before_any = done == 0;
      return Status::IOError("connection closed mid-frame");
    }
    done += static_cast<size_t>(got);
  }
  return Status::OK();
}

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint8_t>(p[1]) << 8) |
                               (static_cast<uint8_t>(p[2]) << 16) |
                               (static_cast<uint8_t>(p[3]) << 24));
}

std::string HexByte(uint8_t b) {
  constexpr char kDigits[] = "0123456789abcdef";
  return std::string{'0', 'x', kDigits[b >> 4], kDigits[b & 0xf]};
}

}  // namespace

bool IsKnownFrameType(uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kQuery:
    case FrameType::kPing:
    case FrameType::kQuit:
    case FrameType::kBatch:
    case FrameType::kSubscribe:
    case FrameType::kWalAck:
    case FrameType::kOk:
    case FrameType::kError:
    case FrameType::kBusy:
    case FrameType::kPong:
    case FrameType::kBye:
    case FrameType::kBatchReply:
    case FrameType::kWalSegment:
      return true;
  }
  return false;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrCat("frame payload of ", payload.size(), " bytes exceeds limit"));
  }
  std::string buf;
  buf.reserve(5 + payload.size());
  AppendU32(&buf, static_cast<uint32_t>(payload.size()));
  buf.push_back(static_cast<char>(type));
  buf.append(payload);
  return SendAll(fd, buf.data(), buf.size());
}

Result<std::optional<Frame>> ReadFrame(int fd) {
  char header[5];
  bool eof = false;
  Status s = RecvAll(fd, header, sizeof(header), &eof);
  if (!s.ok()) {
    if (eof) return std::optional<Frame>(std::nullopt);
    return s;
  }
  const uint32_t len = ReadU32(header);
  if (len > kMaxFramePayload) {
    return Status::IOError(
        StrCat("frame announces ", len, " payload bytes (limit ",
               kMaxFramePayload, ")"));
  }
  const uint8_t raw_type = static_cast<uint8_t>(header[4]);
  if (!IsKnownFrameType(raw_type)) {
    // Fail before trusting the length: a peer speaking a different (or
    // corrupted) protocol must not make us read-and-discard its bytes.
    return Status::Corruption(StrCat("unknown frame type byte ",
                                     static_cast<int>(raw_type), " (",
                                     HexByte(raw_type), ")"));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(raw_type);
  frame.payload.resize(len);
  if (len > 0) {
    NF2_RETURN_IF_ERROR(RecvAll(fd, frame.payload.data(), len, &eof));
  }
  return std::optional<Frame>(std::move(frame));
}

std::string EncodeStatusPayload(const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  out.append(status.message());
  return out;
}

Status DecodeStatusPayload(std::string_view payload) {
  if (payload.empty()) {
    return Status::Internal("malformed error frame (empty payload)");
  }
  const uint8_t raw = static_cast<uint8_t>(payload[0]);
  std::string message(payload.substr(1));
  if (raw > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Internal(
        StrCat("unknown status code ", raw, " in error frame: ", message));
  }
  return Status(static_cast<StatusCode>(raw), std::move(message));
}

std::string EncodeBatchRequest(const std::vector<std::string>& statements) {
  std::string out;
  size_t total = 4;
  for (const std::string& s : statements) total += 4 + s.size();
  out.reserve(total);
  AppendU32(&out, static_cast<uint32_t>(statements.size()));
  for (const std::string& s : statements) {
    AppendU32(&out, static_cast<uint32_t>(s.size()));
    out.append(s);
  }
  return out;
}

namespace {

/// Shared cursor discipline of the two batch decoders: every read is
/// checked against the remaining payload, and the payload must be
/// consumed exactly.
class BatchCursor {
 public:
  explicit BatchCursor(std::string_view payload) : rest_(payload) {}

  Result<uint32_t> TakeU32(const char* what) {
    if (rest_.size() < 4) {
      return Status::Corruption(StrCat("batch payload truncated reading ",
                                       what, " (", rest_.size(),
                                       " bytes left)"));
    }
    uint32_t v = ReadU32(rest_.data());
    rest_.remove_prefix(4);
    return v;
  }

  Result<uint8_t> TakeU8(const char* what) {
    if (rest_.empty()) {
      return Status::Corruption(
          StrCat("batch payload truncated reading ", what));
    }
    uint8_t v = static_cast<uint8_t>(rest_.front());
    rest_.remove_prefix(1);
    return v;
  }

  Result<std::string_view> TakeBytes(uint32_t n, const char* what) {
    if (rest_.size() < n) {
      return Status::Corruption(StrCat("batch payload announces ", n,
                                       " bytes for ", what, " but only ",
                                       rest_.size(), " remain"));
    }
    std::string_view out = rest_.substr(0, n);
    rest_.remove_prefix(n);
    return out;
  }

  Status ExpectDone() const {
    if (!rest_.empty()) {
      return Status::Corruption(
          StrCat(rest_.size(), " trailing bytes after the last batch entry"));
    }
    return Status::OK();
  }

 private:
  std::string_view rest_;
};

Result<uint32_t> TakeBatchCount(BatchCursor* cursor) {
  NF2_ASSIGN_OR_RETURN(uint32_t count, cursor->TakeU32("entry count"));
  if (count > kMaxBatchStatements) {
    return Status::Corruption(StrCat("batch announces ", count,
                                     " entries (limit ", kMaxBatchStatements,
                                     ")"));
  }
  return count;
}

}  // namespace

Result<std::vector<std::string>> DecodeBatchRequest(std::string_view payload) {
  BatchCursor cursor(payload);
  NF2_ASSIGN_OR_RETURN(uint32_t count, TakeBatchCount(&cursor));
  std::vector<std::string> statements;
  statements.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NF2_ASSIGN_OR_RETURN(uint32_t len, cursor.TakeU32("statement length"));
    NF2_ASSIGN_OR_RETURN(std::string_view bytes,
                         cursor.TakeBytes(len, "statement"));
    statements.emplace_back(bytes);
  }
  NF2_RETURN_IF_ERROR(cursor.ExpectDone());
  return statements;
}

namespace {

// kBatchReply entry tags.
constexpr uint8_t kReplyOk = 0;
constexpr uint8_t kReplyError = 1;
constexpr uint8_t kReplyBusy = 2;

}  // namespace

std::string EncodeBatchReply(const std::vector<Result<std::string>>& results) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(results.size()));
  for (const Result<std::string>& r : results) {
    if (r.ok()) {
      out.push_back(static_cast<char>(kReplyOk));
      AppendU32(&out, static_cast<uint32_t>(r->size()));
      out.append(*r);
    } else if (r.status().code() == StatusCode::kUnavailable) {
      out.push_back(static_cast<char>(kReplyBusy));
      AppendU32(&out, static_cast<uint32_t>(r.status().message().size()));
      out.append(r.status().message());
    } else {
      out.push_back(static_cast<char>(kReplyError));
      std::string status = EncodeStatusPayload(r.status());
      AppendU32(&out, static_cast<uint32_t>(status.size()));
      out.append(status);
    }
  }
  return out;
}

Result<std::vector<Result<std::string>>> DecodeBatchReply(
    std::string_view payload) {
  BatchCursor cursor(payload);
  NF2_ASSIGN_OR_RETURN(uint32_t count, TakeBatchCount(&cursor));
  std::vector<Result<std::string>> results;
  results.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    NF2_ASSIGN_OR_RETURN(uint8_t tag, cursor.TakeU8("entry tag"));
    NF2_ASSIGN_OR_RETURN(uint32_t len, cursor.TakeU32("entry length"));
    NF2_ASSIGN_OR_RETURN(std::string_view bytes,
                         cursor.TakeBytes(len, "entry body"));
    switch (tag) {
      case kReplyOk:
        results.emplace_back(std::string(bytes));
        break;
      case kReplyError: {
        Status decoded = DecodeStatusPayload(bytes);
        if (decoded.ok()) {
          return Status::Corruption(
              "batch error entry carried an OK status");
        }
        results.emplace_back(std::move(decoded));
        break;
      }
      case kReplyBusy:
        results.emplace_back(Status::Unavailable(
            bytes.empty() ? "server busy" : std::string(bytes)));
        break;
      default:
        return Status::Corruption(StrCat("unknown batch entry tag ",
                                         static_cast<int>(tag), " (",
                                         HexByte(tag), ")"));
    }
  }
  NF2_RETURN_IF_ERROR(cursor.ExpectDone());
  return results;
}

}  // namespace server
}  // namespace nf2
