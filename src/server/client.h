#ifndef NF2_SERVER_CLIENT_H_
#define NF2_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "server/protocol.h"
#include "util/result.h"

namespace nf2 {
namespace server {

/// A blocking client for the nf2d wire protocol. One connection, strict
/// request→response lockstep — exactly the server's model. Move-only;
/// the destructor closes the socket. Not thread-safe: one Client per
/// thread (the bench and torture tests each give every client thread
/// its own connection).
class Client {
 public:
  /// Connects to host:port (IPv4 dotted quad) with TCP_NODELAY set.
  static Result<Client> Connect(const std::string& host, uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one statement; returns the rendered result text. A kError
  /// response decodes back into the server's typed Status; a kBusy
  /// response becomes kUnavailable (retryable).
  ///
  /// `remote_error`, when non-null, distinguishes the two failure
  /// classes an errored result can carry: true means the server
  /// answered (kError/kBusy — the connection is still usable), false
  /// means the transport itself failed (connect loss, protocol
  /// corruption — give up on this connection). Callers that exit with
  /// different codes per class (tools/nf2_client) need the bit; others
  /// pass nothing.
  Result<std::string> Execute(std::string_view statement,
                              bool* remote_error = nullptr);

  /// Sends `statements` as one kBatch frame (protocol v1) and returns
  /// the per-statement outcomes, in order. The outer Result fails on
  /// transport errors, a kError reply (e.g. a malformed batch payload),
  /// or a whole-batch kBusy (kUnavailable, retryable — nothing was
  /// executed); per-statement errors live in the inner Results.
  /// `remote_error` as in Execute, describing the outer failure.
  Result<std::vector<Result<std::string>>> ExecuteBatch(
      const std::vector<std::string>& statements,
      bool* remote_error = nullptr);

  /// Round-trips a kPing frame.
  Status Ping();

  /// Sends kQuit and waits for kBye; the connection is then unusable.
  Status Quit();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// Writes a request frame and reads the matching response frame.
  Result<Frame> RoundTrip(FrameType type, std::string_view payload);

  int fd_ = -1;
};

}  // namespace server
}  // namespace nf2

#endif  // NF2_SERVER_CLIENT_H_
