#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace nf2 {
namespace server {

Result<Client> Client::Connect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(StrCat("not an IPv4 address: ", host));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    Status s = Status::IOError(
        StrCat("connect ", host, ":", port, ": ", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<Frame> Client::RoundTrip(FrameType type, std::string_view payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client not connected");
  }
  NF2_RETURN_IF_ERROR(WriteFrame(fd_, type, payload));
  NF2_ASSIGN_OR_RETURN(std::optional<Frame> frame, ReadFrame(fd_));
  if (!frame.has_value()) {
    return Status::IOError("server closed the connection");
  }
  return *std::move(frame);
}

namespace {

void SetRemote(bool* remote_error, bool value) {
  if (remote_error != nullptr) *remote_error = value;
}

}  // namespace

Result<std::string> Client::Execute(std::string_view statement,
                                    bool* remote_error) {
  SetRemote(remote_error, false);
  NF2_ASSIGN_OR_RETURN(Frame resp, RoundTrip(FrameType::kQuery, statement));
  switch (resp.type) {
    case FrameType::kOk:
      return std::move(resp.payload);
    case FrameType::kError: {
      Status decoded = DecodeStatusPayload(resp.payload);
      if (decoded.ok()) {
        return Status::Internal("error frame carried an OK status");
      }
      SetRemote(remote_error, true);
      return decoded;
    }
    case FrameType::kBusy:
      SetRemote(remote_error, true);
      return Status::Unavailable(resp.payload.empty() ? "server busy"
                                                      : resp.payload);
    default:
      return Status::Internal(StrCat("unexpected response frame type ",
                                     static_cast<int>(resp.type)));
  }
}

Result<std::vector<Result<std::string>>> Client::ExecuteBatch(
    const std::vector<std::string>& statements, bool* remote_error) {
  SetRemote(remote_error, false);
  if (statements.size() > kMaxBatchStatements) {
    return Status::InvalidArgument(
        StrCat("batch of ", statements.size(), " statements exceeds limit ",
               kMaxBatchStatements));
  }
  NF2_ASSIGN_OR_RETURN(
      Frame resp, RoundTrip(FrameType::kBatch, EncodeBatchRequest(statements)));
  switch (resp.type) {
    case FrameType::kBatchReply: {
      Result<std::vector<Result<std::string>>> decoded =
          DecodeBatchReply(resp.payload);
      if (decoded.ok() && decoded->size() != statements.size()) {
        return Status::Internal(StrCat("batch reply carries ", decoded->size(),
                                       " results for ", statements.size(),
                                       " statements"));
      }
      return decoded;
    }
    case FrameType::kError: {
      Status decoded = DecodeStatusPayload(resp.payload);
      if (decoded.ok()) {
        return Status::Internal("error frame carried an OK status");
      }
      SetRemote(remote_error, true);
      return decoded;
    }
    case FrameType::kBusy:
      SetRemote(remote_error, true);
      return Status::Unavailable(resp.payload.empty() ? "server busy"
                                                      : resp.payload);
    default:
      return Status::Internal(StrCat("unexpected response frame type ",
                                     static_cast<int>(resp.type)));
  }
}

Status Client::Ping() {
  NF2_ASSIGN_OR_RETURN(Frame resp, RoundTrip(FrameType::kPing, ""));
  if (resp.type != FrameType::kPong) {
    return Status::Internal(StrCat("expected kPong, got frame type ",
                                   static_cast<int>(resp.type)));
  }
  return Status::OK();
}

Status Client::Quit() {
  NF2_ASSIGN_OR_RETURN(Frame resp, RoundTrip(FrameType::kQuit, ""));
  ::close(fd_);
  fd_ = -1;
  if (resp.type != FrameType::kBye) {
    return Status::Internal(StrCat("expected kBye, got frame type ",
                                   static_cast<int>(resp.type)));
  }
  return Status::OK();
}

}  // namespace server
}  // namespace nf2
