#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "server/replication.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace server {

namespace {

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Server::Server(Database* db, ServerOptions options)
    : options_(std::move(options)),
      owned_sessions_(std::make_unique<SessionManager>(
          db, options_.statement_cache_capacity)),
      provider_(owned_sessions_.get()) {
  RegisterMetrics();
}

Server::Server(SessionProvider* provider, ServerOptions options)
    : options_(std::move(options)), provider_(provider) {
  RegisterMetrics();
}

void Server::RegisterMetrics() {
  MetricsRegistry* reg = provider_->metrics_registry();
  metric_connections_total_ = reg->GetCounter("nf2_server_connections_total",
                                              "Connections ever accepted");
  metric_connections_active_ = reg->GetGauge("nf2_server_connections_active",
                                             "Connections currently open");
  metric_requests_total_ = reg->GetCounter("nf2_server_requests_total",
                                           "Query and batch frames received");
  metric_batches_total_ =
      reg->GetCounter("nf2_server_batches_total", "Batch frames received");
  metric_batch_statements_total_ =
      reg->GetCounter("nf2_server_batch_statements_total",
                      "Statements received inside batch frames");
  metric_busy_total_ = reg->GetCounter(
      "nf2_server_busy_total", "Requests rejected with kBusy (queue full "
                               "or transaction conflict)");
  metric_errors_total_ =
      reg->GetCounter("nf2_server_errors_total", "Requests answered kError");
  metric_request_ns_ = reg->GetHistogram(
      "nf2_server_request_ns",
      "End-to-end request latency: dequeue wait + execution (ns)");
  metric_queue_depth_ =
      reg->GetGauge("nf2_server_queue_depth", "Requests waiting for a worker");
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.workers < 1) {
    return Status::InvalidArgument("workers must be >= 1");
  }
  if (options_.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument(
        StrCat("not an IPv4 address: ", options_.host));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Status::IOError(StrCat("bind ", options_.host, ":",
                                      options_.port, ": ",
                                      std::strerror(errno)));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) < 0) {
    Status s = Status::IOError(StrCat("listen: ", std::strerror(errno)));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) < 0) {
    Status s = Status::IOError(StrCat("getsockname: ", std::strerror(errno)));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(bound.sin_port);

  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  NF2_LOG(Info) << "nf2d listening on " << options_.host << ":" << port_
                << " (" << options_.workers << " workers, queue "
                << options_.queue_capacity << ")";
  return Status::OK();
}

void Server::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;

  // 1. Stop accepting. shutdown() — not just close() — is what actually
  //    wakes a thread blocked in accept() on Linux (accept returns
  //    EINVAL); close() alone would leave it blocked forever.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;

  // 2. Half-close every connection. Readers see EOF after finishing
  //    their in-flight request (workers are still running, so the
  //    future they may be blocked on will resolve), roll back their
  //    session's transaction, and exit.
  {
    std::unique_lock<std::mutex> lock(conns_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conns_cv_.wait(lock, [this] { return active_readers_ == 0; });
  }

  // 3. Retire the workers: by now no reader can enqueue, so draining
  //    then exiting loses nothing.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // 4. Persist every acknowledged statement. The provider serializes
  //    against writers itself (pro forma — all request threads are
  //    gone) and skips engines holding an open transaction.
  provider_->ShutdownCheckpoint();
  NF2_LOG(Info) << "nf2d stopped";
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // ECONNABORTED and friends are transient; a closed listen fd
      // (EBADF/EINVAL during Stop) ends the loop.
      if (stopping_.load()) return;
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) {
        continue;
      }
      NF2_LOG(Warning) << "accept: " << std::strerror(errno);
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stopping_.load()) {
        // Lost the race with Stop(): it already swept conn_fds_.
        CloseFd(fd);
        continue;
      }
      conn_fds_.push_back(fd);
      ++active_readers_;
    }
    metric_connections_total_->Increment();
    metric_connections_active_->Add(1);
    std::thread([this, fd] { ServeConnection(fd); }).detach();
  }
}

void Server::ServeConnection(int fd) {
  std::unique_ptr<ClientSession> session = provider_->NewClientSession();
  for (;;) {
    Result<std::optional<Frame>> read = ReadFrame(fd);
    if (!read.ok()) {
      NF2_LOG(Debug) << "session " << session->id() << ": " << read.status();
      break;
    }
    if (!read->has_value()) break;  // Clean EOF.
    Frame& frame = **read;

    if (frame.type == FrameType::kPing) {
      if (!WriteFrame(fd, FrameType::kPong, "").ok()) break;
      continue;
    }
    if (frame.type == FrameType::kQuit) {
      (void)WriteFrame(fd, FrameType::kBye, "");
      break;
    }
    if (frame.type == FrameType::kSubscribe) {
      if (options_.replication == nullptr) {
        Status no_repl = Status::Unimplemented(
            "this server does not stream its WAL (no replication hub)");
        (void)WriteFrame(fd, FrameType::kError,
                         EncodeStatusPayload(no_repl));
        break;
      }
      // The connection stops being a query session and becomes a WAL
      // stream; ServeSubscriber blocks until the subscriber goes away.
      options_.replication->ServeSubscriber(fd, frame.payload);
      break;
    }
    if (frame.type != FrameType::kQuery && frame.type != FrameType::kBatch) {
      Status bad = Status::InvalidArgument(
          StrCat("unexpected frame type ", static_cast<int>(frame.type)));
      if (!WriteFrame(fd, FrameType::kError, EncodeStatusPayload(bad)).ok()) {
        break;
      }
      continue;
    }

    metric_requests_total_->Increment();
    const auto start = std::chrono::steady_clock::now();
    Request req;
    req.session = session.get();
    if (frame.type == FrameType::kBatch) {
      Result<std::vector<std::string>> decoded =
          DecodeBatchRequest(frame.payload);
      if (!decoded.ok()) {
        metric_errors_total_->Increment();
        if (!WriteFrame(fd, FrameType::kError,
                        EncodeStatusPayload(decoded.status()))
                 .ok()) {
          break;
        }
        continue;
      }
      req.batch = true;
      req.statements = *std::move(decoded);
      metric_batches_total_->Increment();
      metric_batch_statements_total_->Increment(req.statements.size());
    } else {
      req.statements.push_back(std::move(frame.payload));
    }
    const bool batch = req.batch;
    std::future<std::vector<Result<std::string>>> done = req.done.get_future();
    if (!TryEnqueue(std::move(req))) {
      metric_busy_total_->Increment();
      if (!WriteFrame(fd, FrameType::kBusy, "request queue full").ok()) break;
      continue;
    }
    // Lockstep: this connection has exactly one request in flight.
    std::vector<Result<std::string>> results = done.get();
    metric_request_ns_->Observe(ElapsedNs(start));

    Status write;
    if (batch) {
      for (const Result<std::string>& r : results) {
        if (r.ok()) continue;
        if (r.status().code() == StatusCode::kUnavailable) {
          metric_busy_total_->Increment();
        } else {
          metric_errors_total_->Increment();
        }
      }
      write = WriteFrame(fd, FrameType::kBatchReply, EncodeBatchReply(results));
    } else {
      const Result<std::string>& result = results.front();
      if (result.ok()) {
        write = WriteFrame(fd, FrameType::kOk, *result);
      } else if (result.status().code() == StatusCode::kUnavailable) {
        metric_busy_total_->Increment();
        write = WriteFrame(fd, FrameType::kBusy, result.status().message());
      } else {
        metric_errors_total_->Increment();
        write = WriteFrame(fd, FrameType::kError,
                           EncodeStatusPayload(result.status()));
      }
    }
    if (!write.ok()) break;
  }

  // Roll back before the peer could observe the connection as gone.
  session->Abort();
  session.reset();
  CloseFd(fd);
  metric_connections_active_->Add(-1);
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
    --active_readers_;
    // Notify under the lock: this detached thread may be the last thing
    // keeping Stop() (and so ~Server) from returning, so the cv must not
    // be touched after the mutex is released.
    conns_cv_.notify_all();
  }
}

bool Server::TryEnqueue(Request&& req) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_shutdown_ || queue_.size() >= options_.queue_capacity) {
      return false;
    }
    queue_.push_back(std::move(req));
    metric_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_one();
  return true;
}

void Server::WorkerLoop() {
  for (;;) {
    Request req;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return queue_shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // Shutdown with a drained queue.
      req = std::move(queue_.front());
      queue_.pop_front();
      metric_queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    if (req.batch) {
      req.done.set_value(req.session->ExecuteBatch(req.statements));
    } else {
      std::vector<Result<std::string>> results;
      results.push_back(req.session->Execute(req.statements.front()));
      req.done.set_value(std::move(results));
    }
  }
}

}  // namespace server
}  // namespace nf2
