#ifndef NF2_SERVER_SERVER_H_
#define NF2_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/protocol.h"
#include "server/session.h"
#include "util/result.h"

namespace nf2 {
namespace server {

class ReplicationHub;

struct ServerOptions {
  /// IPv4 address to bind; loopback by default (v0 has no auth).
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back
  /// from Server::port() after Start()).
  uint16_t port = 0;
  /// Fixed worker pool size executing statements.
  int workers = 4;
  /// Bound on queued-but-not-executing requests. A kQuery (or kBatch)
  /// arriving with the queue full is answered kBusy without executing.
  size_t queue_capacity = 64;
  /// Capacity of the shared parsed-statement cache (session.h); 0
  /// disables caching.
  size_t statement_cache_capacity = kDefaultStatementCacheCapacity;
  /// When set, kSubscribe frames hand the connection to this hub as a
  /// WAL-shipping subscriber (replication.h); null rejects kSubscribe.
  /// Must outlive the server.
  ReplicationHub* replication = nullptr;
};

/// The nf2d TCP server: one accept thread, one reader thread per
/// connection, and a fixed pool of worker threads draining a bounded
/// request queue.
///
/// Threading model (see DESIGN.md §8):
///   - Each connection runs strict request→response lockstep: its
///     reader parses one frame, hands kQuery/kBatch payloads to the
///     worker pool, and blocks on that request's future before reading
///     the next frame. A connection therefore has at most one request
///     in flight (a kBatch counts as one request, executed start to
///     finish on one worker), which is what lets Session skip internal
///     locking.
///   - Workers execute statements through Session::Execute, which takes
///     the engine gate (shared for read-only statements, exclusive for
///     mutations) — concurrency control lives there, not here.
///   - Backpressure is explicit: queue full → kBusy, never blocking the
///     reader on the queue.
///
/// Stop() is graceful and ordered to avoid deadlock: stop accepting,
/// shut down connection reads (readers drain their in-flight request —
/// workers are still alive to complete it — then roll back their
/// session's open transaction and exit), then retire the workers, then
/// checkpoint under the exclusive gate so the on-disk state reflects
/// every acknowledged statement.
class Server {
 public:
  /// Single-engine server: owns a SessionManager over `db`.
  Server(Database* db, ServerOptions options);

  /// Serves sessions from an external provider (e.g. a ShardRouter).
  /// `provider` must outlive the server; statement_cache_capacity in
  /// `options` is the provider's concern in this form.
  Server(SessionProvider* provider, ServerOptions options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread and worker pool.
  Status Start();

  /// Port actually bound (resolves options.port == 0). Valid after a
  /// successful Start().
  uint16_t port() const { return port_; }

  /// Graceful shutdown as described above. Idempotent; also run by the
  /// destructor.
  void Stop();

  /// The owned single-engine manager; nullptr when the server was built
  /// over an external SessionProvider.
  SessionManager* session_manager() { return owned_sessions_.get(); }

 private:
  /// One unit of worker-pool work: a single kQuery statement
  /// (batch == false, statements.size() == 1) or a whole kBatch
  /// (executed in order on one worker, one result per statement).
  struct Request {
    ClientSession* session = nullptr;
    bool batch = false;
    std::vector<std::string> statements;
    std::promise<std::vector<Result<std::string>>> done;
  };

  void RegisterMetrics();
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  /// Enqueues unless the queue is at capacity; false means kBusy.
  bool TryEnqueue(Request&& req);

  ServerOptions options_;
  std::unique_ptr<SessionManager> owned_sessions_;
  SessionProvider* provider_;  // owned_sessions_.get() or external.

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool queue_shutdown_ = false;  // Guarded by queue_mu_.

  std::mutex conns_mu_;
  std::condition_variable conns_cv_;
  std::vector<int> conn_fds_;  // Open connection fds, guarded by conns_mu_.
  int active_readers_ = 0;     // Guarded by conns_mu_.

  Counter* metric_connections_total_ = nullptr;
  Gauge* metric_connections_active_ = nullptr;
  Counter* metric_requests_total_ = nullptr;
  Counter* metric_batches_total_ = nullptr;
  Counter* metric_batch_statements_total_ = nullptr;
  Counter* metric_busy_total_ = nullptr;
  Counter* metric_errors_total_ = nullptr;
  Histogram* metric_request_ns_ = nullptr;
  Gauge* metric_queue_depth_ = nullptr;
};

}  // namespace server
}  // namespace nf2

#endif  // NF2_SERVER_SERVER_H_
