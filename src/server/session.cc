#include "server/session.h"

#include <chrono>
#include <thread>

#include "nfrql/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace server {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void Observe(Histogram* h, uint64_t ns) {
  if (h != nullptr) h->Observe(ns);
}

void Increment(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Increment(n);
}

/// PROFILE output grows one trailer line reporting whether the parse
/// was served from the statement cache — the per-request view of the
/// nf2_stmtcache_* counters.
Result<std::string> WithCacheNote(Result<std::string> out,
                                  const Statement& stmt, bool cache_hit) {
  if (!out.ok()) return out;
  const auto* explain = std::get_if<ExplainStatement>(&stmt);
  if (explain == nullptr || !explain->profile) return out;
  return StrCat(*out, "\nstatement cache: ", cache_hit ? "hit" : "miss");
}

}  // namespace

std::shared_ptr<const Statement> StatementCache::Lookup(
    const std::string& key, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    Increment(metrics_.misses);
    return nullptr;
  }
  if (it->second->epoch != epoch) {
    // Parsed under an older catalog epoch: a DDL happened since. Drop
    // the entry and report a miss — the caller re-parses and re-inserts
    // under the current epoch.
    lru_.erase(it->second);
    index_.erase(it);
    Increment(metrics_.invalidations);
    Increment(metrics_.misses);
    if (metrics_.entries != nullptr) {
      metrics_.entries->Set(static_cast<int64_t>(lru_.size()));
    }
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  Increment(metrics_.hits);
  return it->second->stmt;
}

void StatementCache::Insert(const std::string& key,
                            std::shared_ptr<const Statement> stmt,
                            uint64_t epoch) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->stmt = std::move(stmt);
    it->second->epoch = epoch;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(Entry{key, std::move(stmt), epoch});
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    Increment(metrics_.evictions);
  }
  if (metrics_.entries != nullptr) {
    metrics_.entries->Set(static_cast<int64_t>(lru_.size()));
  }
}

size_t StatementCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

SessionManager::SessionManager(Database* db, size_t statement_cache_capacity)
    : db_(db),
      stmt_cache_(statement_cache_capacity,
                  StatementCacheMetrics::ForRegistry(db->metrics())) {
  MetricsRegistry* reg = db_->metrics();
  gate_.set_metrics(GateMetrics::ForRegistry(reg));
  metric_sessions_total_ =
      reg->GetCounter("nf2_server_sessions_total", "Sessions ever opened");
  metric_sessions_active_ =
      reg->GetGauge("nf2_server_sessions_active", "Sessions currently open");
  metric_txn_conflicts_ = reg->GetCounter(
      "nf2_server_txn_conflicts_total",
      "Mutating statements rejected because another session's "
      "transaction was open");
  metric_read_stmt_ns_ = reg->GetHistogram(
      "nf2_server_read_stmt_ns",
      "Latency of read-only statements, including lock wait (ns)");
  metric_write_stmt_ns_ = reg->GetHistogram(
      "nf2_server_write_stmt_ns",
      "Latency of mutating statements, including lock wait (ns)");
}

std::unique_ptr<Session> SessionManager::NewSession() {
  uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  metric_sessions_total_->Increment();
  metric_sessions_active_->Add(1);
  return std::unique_ptr<Session>(new Session(id, this));
}

std::unique_ptr<ClientSession> SessionManager::NewClientSession() {
  return NewSession();
}

void SessionManager::ShutdownCheckpoint() {
  // Serialize against in-flight writers; an open transaction (whose
  // session died without COMMIT) must not be made durable.
  auto lock = gate_.LockExclusive();
  if (db_->in_transaction()) return;
  Status s = db_->Checkpoint();
  if (!s.ok()) {
    NF2_LOG(Warning) << "shutdown checkpoint failed: " << s;
  }
}

Session::Session(uint64_t id, SessionManager* manager)
    : id_(id), manager_(manager), db_(manager->db_), executor_(db_) {}

Session::~Session() {
  Abort();
  manager_->metric_sessions_active_->Add(-1);
}

Result<Session::ParsedStatement> Session::ParseCached(
    const std::string& trimmed) {
  const std::string key = StatementCacheKey(trimmed);
  StatementCache* cache = &manager_->stmt_cache_;
  const uint64_t epoch = db_->catalog_epoch();
  const bool cacheable = key.size() <= kMaxCachedStatementBytes;
  if (cacheable) {
    if (std::shared_ptr<const Statement> cached =
            cache->Lookup(key, epoch)) {
      return ParsedStatement{std::move(cached), /*cache_hit=*/true};
    }
  }
  NF2_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(trimmed));
  auto shared = std::make_shared<const Statement>(std::move(stmt));
  if (cacheable) cache->Insert(key, shared, epoch);
  return ParsedStatement{std::move(shared), /*cache_hit=*/false};
}

Result<std::string> Session::Execute(std::string_view statement) {
  const std::string trimmed = Trim(std::string(statement));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty statement");
  }
  if (trimmed[0] == '\\') {
    return ExecuteMeta(trimmed);
  }
  NF2_ASSIGN_OR_RETURN(ParsedStatement parsed, ParseCached(trimmed));
  if (IsReadOnlyStatement(*parsed.stmt)) {
    return ExecuteRead(parsed, db_->PinSnapshot());
  }
  return ExecuteWrite(parsed);
}

Result<std::string> Session::ExecuteParsed(const Statement& stmt) {
  // Non-owning view: the router keeps `stmt` alive for the call, and
  // nothing below retains the pointer past it.
  ParsedStatement parsed;
  parsed.stmt =
      std::shared_ptr<const Statement>(&stmt, [](const Statement*) {});
  if (IsReadOnlyStatement(stmt)) {
    return ExecuteRead(parsed, db_->PinSnapshot());
  }
  return ExecuteWrite(parsed);
}

Result<std::string> Session::ExecuteRead(
    const ParsedStatement& parsed,
    const std::shared_ptr<const DatabaseSnapshot>& snapshot) {
  const auto start = std::chrono::steady_clock::now();
  // Read-your-own-writes: the transaction owner's reads must see its
  // uncommitted operations, which no snapshot contains, so they go to
  // the live database. That is race-free without any lock because every
  // other session's writes are rejected while this transaction is open.
  // Everyone else executes against the pinned snapshot: zero gate
  // acquisitions, read-committed.
  const bool own_txn =
      manager_->txn_owner_.load(std::memory_order_acquire) == id_;
  if (!own_txn) executor_.BindSnapshot(snapshot);
  Result<std::string> out = executor_.Execute(*parsed.stmt);
  executor_.ClearSnapshot();
  Observe(manager_->metric_read_stmt_ns_, ElapsedNs(start));
  return WithCacheNote(std::move(out), *parsed.stmt, parsed.cache_hit);
}

Result<std::string> Session::ExecuteWrite(const ParsedStatement& parsed) {
  const Statement& stmt = *parsed.stmt;
  const auto start = std::chrono::steady_clock::now();
  auto lock = manager_->gate_.LockExclusive();
  const uint64_t owner =
      manager_->txn_owner_.load(std::memory_order_relaxed);
  if (owner != 0 && owner != id_) {
    manager_->metric_txn_conflicts_->Increment();
    return Status::Unavailable(
        StrCat("session ", owner,
               " holds the open transaction; retry after it commits"));
  }
  Result<std::string> out = executor_.Execute(stmt);
  // Track the transaction slot from engine truth rather than from the
  // statement kind: a failed op inside an open transaction leaves it
  // open, COMMIT/ROLLBACK (and only they) release it. The release
  // store pairs with the acquire load in ExecuteRead's
  // read-your-own-writes check.
  manager_->txn_owner_.store(db_->in_transaction() ? id_ : 0,
                             std::memory_order_release);
  Observe(manager_->metric_write_stmt_ns_, ElapsedNs(start));
  return WithCacheNote(std::move(out), stmt, parsed.cache_hit);
}

std::vector<Result<std::string>> Session::ExecuteBatch(
    const std::vector<std::string>& statements) {
  std::vector<Result<std::string>> results(
      statements.size(), Status::Internal("statement not executed"));

  // The pending run of consecutive read-only statements, flushed
  // against one pinned snapshot — every statement of the run observes
  // the same published version, so a whole-read batch is a consistent
  // point-in-time view no concurrent writer can tear.
  std::vector<ParsedStatement> run;
  std::vector<size_t> run_slots;
  auto flush_reads = [&] {
    if (run.empty()) return;
    const std::shared_ptr<const DatabaseSnapshot> snapshot =
        db_->PinSnapshot();
    for (size_t k = 0; k < run.size(); ++k) {
      results[run_slots[k]] = ExecuteRead(run[k], snapshot);
    }
    run.clear();
    run_slots.clear();
  };

  for (size_t i = 0; i < statements.size(); ++i) {
    const std::string trimmed = Trim(statements[i]);
    if (trimmed.empty()) {
      results[i] = Status::InvalidArgument("empty statement");
      continue;
    }
    if (trimmed[0] == '\\') {
      // Meta commands do their own locking; the read run must be done
      // first so in-order execution is preserved.
      flush_reads();
      results[i] = ExecuteMeta(trimmed);
      continue;
    }
    Result<ParsedStatement> parsed = ParseCached(trimmed);
    if (!parsed.ok()) {
      results[i] = parsed.status();
      continue;
    }
    if (IsReadOnlyStatement(*parsed->stmt)) {
      run.push_back(*std::move(parsed));
      run_slots.push_back(i);
      continue;
    }
    flush_reads();
    results[i] = ExecuteWrite(*parsed);
  }
  flush_reads();
  return results;
}

Result<std::string> Session::ExecuteMeta(const std::string& command) {
  const std::string lower = ToLower(command);
  if (lower == "\\metrics" || lower == "\\metrics prom") {
    // Lock-free: MetricsText sources its derived gauges (dictionary
    // size, relation count) from the published snapshot, so scraping
    // never contends with writers.
    const auto start = std::chrono::steady_clock::now();
    std::string text = db_->MetricsText(/*prometheus=*/lower.ends_with("prom"));
    Observe(manager_->metric_read_stmt_ns_, ElapsedNs(start));
    return text;
  }
  if (lower == "\\shards") {
    // Single-engine answer; the shard router overrides this with one
    // line per shard (shard/router.cc).
    return std::string(
        "single engine (no shards); start nf2d with --shards N");
  }
  if (lower.starts_with("\\sleep ") || lower == "\\sleep") {
    // Testing aid: occupy a worker for N ms (the server tests use it to
    // fill the request queue deterministically).
    const std::string arg =
        lower.size() > 7 ? Trim(lower.substr(7)) : std::string();
    if (arg.empty()) {
      // An absent argument must not silently mean "sleep 0" — reject it
      // so a typo'd test never reports a sleep that did not happen.
      return Status::InvalidArgument(
          "\\sleep takes milliseconds, e.g. \\sleep 50");
    }
    int ms = 0;
    for (char c : arg) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("\\sleep takes milliseconds");
      }
      ms = ms * 10 + (c - '0');
      if (ms > 10000) return Status::InvalidArgument("\\sleep capped at 10s");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return StrCat("slept ", ms, " ms");
  }
  return Status::InvalidArgument(
      StrCat("unknown meta command '", command, "'"));
}

void Session::Abort() {
  auto lock = manager_->gate_.LockExclusive();
  if (manager_->txn_owner_.load(std::memory_order_relaxed) != id_) return;
  if (db_->in_transaction()) {
    Status s = db_->Rollback();
    if (!s.ok()) {
      NF2_LOG(Warning) << "session " << id_
                       << ": rollback on abort failed: " << s;
    }
  }
  manager_->txn_owner_.store(0, std::memory_order_release);
}

}  // namespace server
}  // namespace nf2
