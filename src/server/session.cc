#include "server/session.h"

#include <chrono>
#include <thread>

#include "nfrql/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace server {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void Observe(Histogram* h, uint64_t ns) {
  if (h != nullptr) h->Observe(ns);
}

void Increment(Counter* c, uint64_t n = 1) {
  if (c != nullptr) c->Increment(n);
}

/// True when successfully executing `stmt` may change what statement
/// text means (DDL), so the shared statement cache must be dropped.
/// PROFILE'd DDL executes its inner statement and counts as that
/// statement does.
bool InvalidatesStatementCache(const Statement& stmt) {
  if (std::holds_alternative<CreateStatement>(stmt) ||
      std::holds_alternative<DropStatement>(stmt)) {
    return true;
  }
  if (const auto* explain = std::get_if<ExplainStatement>(&stmt)) {
    return explain->profile && explain->inner != nullptr &&
           InvalidatesStatementCache(explain->inner->stmt);
  }
  return false;
}

/// PROFILE output grows one trailer line reporting whether the parse
/// was served from the statement cache — the per-request view of the
/// nf2_stmtcache_* counters.
Result<std::string> WithCacheNote(Result<std::string> out,
                                  const Statement& stmt, bool cache_hit) {
  if (!out.ok()) return out;
  const auto* explain = std::get_if<ExplainStatement>(&stmt);
  if (explain == nullptr || !explain->profile) return out;
  return StrCat(*out, "\nstatement cache: ", cache_hit ? "hit" : "miss");
}

}  // namespace

std::shared_ptr<const Statement> StatementCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    Increment(metrics_.misses);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  Increment(metrics_.hits);
  return it->second->second;
}

void StatementCache::Insert(const std::string& key,
                            std::shared_ptr<const Statement> stmt) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(stmt);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(stmt));
  index_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    Increment(metrics_.evictions);
  }
  if (metrics_.entries != nullptr) {
    metrics_.entries->Set(static_cast<int64_t>(lru_.size()));
  }
}

void StatementCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!lru_.empty()) {
    lru_.clear();
    index_.clear();
  }
  Increment(metrics_.invalidations);
  if (metrics_.entries != nullptr) metrics_.entries->Set(0);
}

size_t StatementCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

SessionManager::SessionManager(Database* db, size_t statement_cache_capacity)
    : db_(db),
      stmt_cache_(statement_cache_capacity,
                  StatementCacheMetrics::ForRegistry(db->metrics())) {
  MetricsRegistry* reg = db_->metrics();
  metric_sessions_total_ =
      reg->GetCounter("nf2_server_sessions_total", "Sessions ever opened");
  metric_sessions_active_ =
      reg->GetGauge("nf2_server_sessions_active", "Sessions currently open");
  metric_txn_conflicts_ = reg->GetCounter(
      "nf2_server_txn_conflicts_total",
      "Mutating statements rejected because another session's "
      "transaction was open");
  metric_read_stmt_ns_ = reg->GetHistogram(
      "nf2_server_read_stmt_ns",
      "Latency of read-only statements, including lock wait (ns)");
  metric_write_stmt_ns_ = reg->GetHistogram(
      "nf2_server_write_stmt_ns",
      "Latency of mutating statements, including lock wait (ns)");
}

std::unique_ptr<Session> SessionManager::NewSession() {
  uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  metric_sessions_total_->Increment();
  metric_sessions_active_->Add(1);
  return std::unique_ptr<Session>(new Session(id, this));
}

Session::Session(uint64_t id, SessionManager* manager)
    : id_(id), manager_(manager), db_(manager->db_), executor_(db_) {}

Session::~Session() {
  Abort();
  manager_->metric_sessions_active_->Add(-1);
}

Result<Session::ParsedStatement> Session::ParseCached(
    const std::string& trimmed) {
  const std::string key = StatementCacheKey(trimmed);
  StatementCache* cache = &manager_->stmt_cache_;
  const bool cacheable = key.size() <= kMaxCachedStatementBytes;
  if (cacheable) {
    if (std::shared_ptr<const Statement> cached = cache->Lookup(key)) {
      return ParsedStatement{std::move(cached), /*cache_hit=*/true};
    }
  }
  NF2_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(trimmed));
  auto shared = std::make_shared<const Statement>(std::move(stmt));
  if (cacheable) cache->Insert(key, shared);
  return ParsedStatement{std::move(shared), /*cache_hit=*/false};
}

Result<std::string> Session::Execute(std::string_view statement) {
  const std::string trimmed = Trim(std::string(statement));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty statement");
  }
  if (trimmed[0] == '\\') {
    return ExecuteMeta(trimmed);
  }
  NF2_ASSIGN_OR_RETURN(ParsedStatement parsed, ParseCached(trimmed));
  if (IsReadOnlyStatement(*parsed.stmt)) {
    const auto start = std::chrono::steady_clock::now();
    auto lock = manager_->gate_.LockShared();
    Result<std::string> out = executor_.Execute(*parsed.stmt);
    Observe(manager_->metric_read_stmt_ns_, ElapsedNs(start));
    return WithCacheNote(std::move(out), *parsed.stmt, parsed.cache_hit);
  }
  return ExecuteWrite(parsed);
}

Result<std::string> Session::ExecuteWrite(const ParsedStatement& parsed) {
  const Statement& stmt = *parsed.stmt;
  const auto start = std::chrono::steady_clock::now();
  auto lock = manager_->gate_.LockExclusive();
  if (manager_->txn_owner_ != 0 && manager_->txn_owner_ != id_) {
    manager_->metric_txn_conflicts_->Increment();
    return Status::Unavailable(
        StrCat("session ", manager_->txn_owner_,
               " holds the open transaction; retry after it commits"));
  }
  Result<std::string> out = executor_.Execute(stmt);
  // Track the transaction slot from engine truth rather than from the
  // statement kind: a failed op inside an open transaction leaves it
  // open, COMMIT/ROLLBACK (and only they) release it.
  if (db_->in_transaction()) {
    if (manager_->txn_owner_ == 0) manager_->txn_owner_ = id_;
  } else {
    manager_->txn_owner_ = 0;
  }
  // Writer-side obligation of the gate (engine/concurrency.h): leave no
  // dirty lazily-materialized cache behind for shared readers to race
  // on. Cheap no-op when nothing was interned.
  db_->dictionary()->MaterializeRanks();
  // DDL that took effect makes cached parses suspect (DESIGN.md §8);
  // failed DDL changed nothing, so the cache stays warm.
  if (out.ok() && InvalidatesStatementCache(stmt)) {
    manager_->stmt_cache_.Invalidate();
  }
  Observe(manager_->metric_write_stmt_ns_, ElapsedNs(start));
  return WithCacheNote(std::move(out), stmt, parsed.cache_hit);
}

std::vector<Result<std::string>> Session::ExecuteBatch(
    const std::vector<std::string>& statements) {
  std::vector<Result<std::string>> results(
      statements.size(), Status::Internal("statement not executed"));

  // The pending run of consecutive read-only statements, flushed under
  // one shared-gate acquisition — the single-acquisition-per-read-run
  // contract that makes large read batches cheap.
  std::vector<ParsedStatement> run;
  std::vector<size_t> run_slots;
  auto flush_reads = [&] {
    if (run.empty()) return;
    auto lock = manager_->gate_.LockShared();
    for (size_t k = 0; k < run.size(); ++k) {
      const auto start = std::chrono::steady_clock::now();
      Result<std::string> out = executor_.Execute(*run[k].stmt);
      Observe(manager_->metric_read_stmt_ns_, ElapsedNs(start));
      results[run_slots[k]] =
          WithCacheNote(std::move(out), *run[k].stmt, run[k].cache_hit);
    }
    run.clear();
    run_slots.clear();
  };

  for (size_t i = 0; i < statements.size(); ++i) {
    const std::string trimmed = Trim(statements[i]);
    if (trimmed.empty()) {
      results[i] = Status::InvalidArgument("empty statement");
      continue;
    }
    if (trimmed[0] == '\\') {
      // Meta commands do their own locking; the read run must be done
      // first so in-order execution is preserved.
      flush_reads();
      results[i] = ExecuteMeta(trimmed);
      continue;
    }
    Result<ParsedStatement> parsed = ParseCached(trimmed);
    if (!parsed.ok()) {
      results[i] = parsed.status();
      continue;
    }
    if (IsReadOnlyStatement(*parsed->stmt)) {
      run.push_back(*std::move(parsed));
      run_slots.push_back(i);
      continue;
    }
    flush_reads();
    results[i] = ExecuteWrite(*parsed);
  }
  flush_reads();
  return results;
}

Result<std::string> Session::ExecuteMeta(const std::string& command) {
  const std::string lower = ToLower(command);
  if (lower == "\\metrics" || lower == "\\metrics prom") {
    const auto start = std::chrono::steady_clock::now();
    auto lock = manager_->gate_.LockShared();
    std::string text = db_->MetricsText(/*prometheus=*/lower.ends_with("prom"));
    Observe(manager_->metric_read_stmt_ns_, ElapsedNs(start));
    return text;
  }
  if (lower.starts_with("\\sleep ") || lower == "\\sleep") {
    // Testing aid: occupy a worker under the shared lock for N ms (the
    // server tests use it to fill the request queue deterministically).
    const std::string arg =
        lower.size() > 7 ? Trim(lower.substr(7)) : std::string();
    if (arg.empty()) {
      // An absent argument must not silently mean "sleep 0" — reject it
      // so a typo'd test never reports a sleep that did not happen.
      return Status::InvalidArgument(
          "\\sleep takes milliseconds, e.g. \\sleep 50");
    }
    int ms = 0;
    for (char c : arg) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("\\sleep takes milliseconds");
      }
      ms = ms * 10 + (c - '0');
      if (ms > 10000) return Status::InvalidArgument("\\sleep capped at 10s");
    }
    auto lock = manager_->gate_.LockShared();
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return StrCat("slept ", ms, " ms");
  }
  return Status::InvalidArgument(
      StrCat("unknown meta command '", command, "'"));
}

void Session::Abort() {
  auto lock = manager_->gate_.LockExclusive();
  if (manager_->txn_owner_ != id_) return;
  if (db_->in_transaction()) {
    Status s = db_->Rollback();
    if (!s.ok()) {
      NF2_LOG(Warning) << "session " << id_
                       << ": rollback on abort failed: " << s;
    }
  }
  manager_->txn_owner_ = 0;
}

}  // namespace server
}  // namespace nf2
