#include "server/session.h"

#include <chrono>
#include <thread>

#include "nfrql/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace server {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void Observe(Histogram* h, uint64_t ns) {
  if (h != nullptr) h->Observe(ns);
}

}  // namespace

SessionManager::SessionManager(Database* db) : db_(db) {
  MetricsRegistry* reg = db_->metrics();
  metric_sessions_total_ =
      reg->GetCounter("nf2_server_sessions_total", "Sessions ever opened");
  metric_sessions_active_ =
      reg->GetGauge("nf2_server_sessions_active", "Sessions currently open");
  metric_txn_conflicts_ = reg->GetCounter(
      "nf2_server_txn_conflicts_total",
      "Mutating statements rejected because another session's "
      "transaction was open");
  metric_read_stmt_ns_ = reg->GetHistogram(
      "nf2_server_read_stmt_ns",
      "Latency of read-only statements, including lock wait (ns)");
  metric_write_stmt_ns_ = reg->GetHistogram(
      "nf2_server_write_stmt_ns",
      "Latency of mutating statements, including lock wait (ns)");
}

std::unique_ptr<Session> SessionManager::NewSession() {
  uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  metric_sessions_total_->Increment();
  metric_sessions_active_->Add(1);
  return std::unique_ptr<Session>(new Session(id, this));
}

Session::Session(uint64_t id, SessionManager* manager)
    : id_(id), manager_(manager), db_(manager->db_), executor_(db_) {}

Session::~Session() {
  Abort();
  manager_->metric_sessions_active_->Add(-1);
}

Result<std::string> Session::Execute(std::string_view statement) {
  const std::string trimmed = Trim(std::string(statement));
  if (trimmed.empty()) {
    return Status::InvalidArgument("empty statement");
  }
  if (trimmed[0] == '\\') {
    return ExecuteMeta(trimmed);
  }
  NF2_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(trimmed));
  const auto start = std::chrono::steady_clock::now();
  if (IsReadOnlyStatement(stmt)) {
    auto lock = manager_->gate_.LockShared();
    Result<std::string> out = executor_.Execute(stmt);
    Observe(manager_->metric_read_stmt_ns_, ElapsedNs(start));
    return out;
  }
  auto lock = manager_->gate_.LockExclusive();
  if (manager_->txn_owner_ != 0 && manager_->txn_owner_ != id_) {
    manager_->metric_txn_conflicts_->Increment();
    return Status::Unavailable(
        StrCat("session ", manager_->txn_owner_,
               " holds the open transaction; retry after it commits"));
  }
  Result<std::string> out = executor_.Execute(stmt);
  // Track the transaction slot from engine truth rather than from the
  // statement kind: a failed op inside an open transaction leaves it
  // open, COMMIT/ROLLBACK (and only they) release it.
  if (db_->in_transaction()) {
    if (manager_->txn_owner_ == 0) manager_->txn_owner_ = id_;
  } else {
    manager_->txn_owner_ = 0;
  }
  // Writer-side obligation of the gate (engine/concurrency.h): leave no
  // dirty lazily-materialized cache behind for shared readers to race
  // on. Cheap no-op when nothing was interned.
  db_->dictionary()->MaterializeRanks();
  Observe(manager_->metric_write_stmt_ns_, ElapsedNs(start));
  return out;
}

Result<std::string> Session::ExecuteMeta(const std::string& command) {
  const std::string lower = ToLower(command);
  if (lower == "\\metrics" || lower == "\\metrics prom") {
    const auto start = std::chrono::steady_clock::now();
    auto lock = manager_->gate_.LockShared();
    std::string text = db_->MetricsText(/*prometheus=*/lower.ends_with("prom"));
    Observe(manager_->metric_read_stmt_ns_, ElapsedNs(start));
    return text;
  }
  if (lower.starts_with("\\sleep ")) {
    // Testing aid: occupy a worker under the shared lock for N ms (the
    // server tests use it to fill the request queue deterministically).
    int ms = 0;
    for (char c : lower.substr(7)) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("\\sleep takes milliseconds");
      }
      ms = ms * 10 + (c - '0');
      if (ms > 10000) return Status::InvalidArgument("\\sleep capped at 10s");
    }
    auto lock = manager_->gate_.LockShared();
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    return StrCat("slept ", ms, " ms");
  }
  return Status::InvalidArgument(
      StrCat("unknown meta command '", command, "'"));
}

void Session::Abort() {
  auto lock = manager_->gate_.LockExclusive();
  if (manager_->txn_owner_ != id_) return;
  if (db_->in_transaction()) {
    Status s = db_->Rollback();
    if (!s.ok()) {
      NF2_LOG(Warning) << "session " << id_
                       << ": rollback on abort failed: " << s;
    }
  }
  manager_->txn_owner_ = 0;
}

}  // namespace server
}  // namespace nf2
