#ifndef NF2_SERVER_SESSION_H_
#define NF2_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "engine/concurrency.h"
#include "engine/database.h"
#include "nfrql/executor.h"
#include "util/result.h"

namespace nf2 {
namespace server {

class Session;

/// Shared state of all sessions over one Database: the reader/writer
/// gate and the transaction owner. Create one per Database; hand it to
/// every Session (the TCP server owns one, tests can own their own and
/// drive Sessions directly without sockets).
class SessionManager {
 public:
  explicit SessionManager(Database* db);
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// A new session with a unique id. The session must not outlive the
  /// manager. Thread-safe.
  std::unique_ptr<Session> NewSession();

  Database* db() const { return db_; }
  EngineGate* gate() { return &gate_; }

 private:
  friend class Session;

  Database* db_;
  EngineGate gate_;
  std::atomic<uint64_t> next_session_id_{1};
  /// Id of the session holding the open transaction, 0 when none.
  /// Guarded by gate_'s exclusive lock: every path that reads or writes
  /// it (mutating statements, aborts) holds that lock.
  uint64_t txn_owner_ = 0;

  // Registered once; sessions share the handles.
  Counter* metric_sessions_total_ = nullptr;
  Gauge* metric_sessions_active_ = nullptr;
  Counter* metric_txn_conflicts_ = nullptr;
  Histogram* metric_read_stmt_ns_ = nullptr;
  Histogram* metric_write_stmt_ns_ = nullptr;
};

/// One client's execution context: its own NFRQL Executor (parse and
/// PROFILE state are per-session, which is what makes concurrent read
/// sessions reentrant) and its claim, if any, on the database's single
/// transaction slot.
///
/// Locking discipline per statement (see engine/concurrency.h):
/// read-only statements execute under the manager's shared lock,
/// everything else under the exclusive lock. While one session holds
/// the open transaction, other sessions' mutating statements are
/// rejected with kUnavailable — reads still proceed (v0 reads are
/// read-uncommitted with respect to the open transaction). A second
/// BEGIN on the owning session is rejected by the engine itself.
///
/// A Session instance is NOT internally synchronized: one statement at
/// a time per session (the server's request→response lockstep enforces
/// this for TCP clients).
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const { return id_; }

  /// Parses, classifies, and executes one statement (or one of the
  /// `\metrics [prom]` / `\sleep N` meta commands) under the
  /// appropriate lock, returning the rendered result text.
  Result<std::string> Execute(std::string_view statement);

  /// Rolls back this session's open transaction, if it holds one.
  /// Called on disconnect and on server shutdown; the destructor also
  /// calls it, so an abandoned session can never leak the transaction
  /// slot.
  void Abort();

 private:
  friend class SessionManager;
  Session(uint64_t id, SessionManager* manager);

  Result<std::string> ExecuteMeta(const std::string& command);

  uint64_t id_;
  SessionManager* manager_;
  Database* db_;
  Executor executor_;
};

}  // namespace server
}  // namespace nf2

#endif  // NF2_SERVER_SESSION_H_
