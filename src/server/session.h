#ifndef NF2_SERVER_SESSION_H_
#define NF2_SERVER_SESSION_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/concurrency.h"
#include "engine/database.h"
#include "nfrql/executor.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace nf2 {
namespace server {

class Session;

/// The server's view of one connected client: the statement surface
/// Server needs to serve a connection. Implemented by Session (single
/// engine) and by the shard router's fan-out session (shard/router.h),
/// so the TCP layer is indifferent to how many engines sit behind it.
class ClientSession {
 public:
  virtual ~ClientSession() = default;

  virtual uint64_t id() const = 0;

  /// Executes one statement (or meta command), returning the rendered
  /// result text.
  virtual Result<std::string> Execute(std::string_view statement) = 0;

  /// Executes `statements` in order, returning one result per statement
  /// (the kBatch contract, DESIGN.md §8): a failing statement reports
  /// its error in place and execution continues with the next one.
  virtual std::vector<Result<std::string>> ExecuteBatch(
      const std::vector<std::string>& statements) = 0;

  /// Rolls back this session's open transaction, if it holds one.
  virtual void Abort() = 0;
};

/// The factory behind Server: hands out ClientSessions and owns the
/// engine state they share. SessionManager provides single-engine
/// sessions; ShardRouter provides fan-out sessions over N shards.
class SessionProvider {
 public:
  virtual ~SessionProvider() = default;

  /// A new session with a unique id; it must not outlive the provider.
  /// Thread-safe.
  virtual std::unique_ptr<ClientSession> NewClientSession() = 0;

  /// Registry the server's nf2_server_* metrics are registered in.
  virtual MetricsRegistry* metrics_registry() = 0;

  /// Best-effort durability at server shutdown: checkpoint the
  /// engine(s), serialized against writers, skipping any engine with an
  /// open transaction.
  virtual void ShutdownCheckpoint() = 0;
};

/// Default capacity of the shared parsed-statement cache.
constexpr size_t kDefaultStatementCacheCapacity = 512;

/// Statements longer than this bypass the cache entirely (neither
/// looked up nor inserted): bulk INSERTs are one-shot, and caching them
/// would evict the short, hot statements the cache exists for.
constexpr size_t kMaxCachedStatementBytes = 4096;

/// A bounded, thread-safe LRU cache of parsed statements, keyed on the
/// canonical statement text (StatementCacheKey) and shared by every
/// session of one SessionManager. Entries are immutable parse trees
/// behind shared_ptr, so a hit handed to one worker stays valid even if
/// the entry is evicted mid-execution.
///
/// Staleness is handled per entry, not whole-cache: each entry records
/// the Database catalog epoch it was parsed under, and Lookup treats an
/// epoch mismatch as a miss (dropping the stale entry). DDL therefore
/// never takes a cache-wide lock or cold-starts unrelated statements —
/// it just bumps the epoch, and entries lazily re-validate on their
/// next use. Today's parser binds no names, so cached ASTs cannot
/// actually go stale; the epoch contract exists so the cache stays
/// correct the day parsing starts resolving against the catalog.
class StatementCache {
 public:
  StatementCache(size_t capacity, StatementCacheMetrics metrics)
      : capacity_(capacity), metrics_(metrics) {}
  StatementCache(const StatementCache&) = delete;
  StatementCache& operator=(const StatementCache&) = delete;

  /// The cached parse for `key` if it was inserted under `epoch`,
  /// refreshing its LRU position; nullptr on miss. An entry from an
  /// older epoch is erased (counted as one invalidation) and reported
  /// as a miss.
  std::shared_ptr<const Statement> Lookup(const std::string& key,
                                          uint64_t epoch);

  /// Caches `stmt` under `key` for `epoch`, evicting the
  /// least-recently-used entry beyond capacity. A key already present
  /// is refreshed (and re-stamped), not duplicated.
  void Insert(const std::string& key, std::shared_ptr<const Statement> stmt,
              uint64_t epoch);

  size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Statement> stmt;
    uint64_t epoch;
  };
  using LruList = std::list<Entry>;

  mutable std::mutex mu_;
  const size_t capacity_;
  LruList lru_;  // Most recently used first. Guarded by mu_.
  std::unordered_map<std::string, LruList::iterator> index_;  // Guarded by mu_.
  StatementCacheMetrics metrics_;
};

/// Shared state of all sessions over one Database: the writer gate,
/// the transaction owner, and the parsed-statement cache. Create one
/// per Database; hand it to every Session (the TCP server owns one,
/// tests can own their own and drive Sessions directly without
/// sockets).
///
/// Since the snapshot read path (DESIGN.md §9) the gate serializes
/// writers only — read-only statements pin a published snapshot and
/// never touch it.
class SessionManager : public SessionProvider {
 public:
  explicit SessionManager(
      Database* db,
      size_t statement_cache_capacity = kDefaultStatementCacheCapacity);
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// A new session with a unique id. The session must not outlive the
  /// manager. Thread-safe.
  std::unique_ptr<Session> NewSession();

  // SessionProvider:
  std::unique_ptr<ClientSession> NewClientSession() override;
  MetricsRegistry* metrics_registry() override { return db_->metrics(); }
  void ShutdownCheckpoint() override;

  Database* db() const { return db_; }
  EngineGate* gate() { return &gate_; }
  StatementCache* statement_cache() { return &stmt_cache_; }

 private:
  friend class Session;

  Database* db_;
  EngineGate gate_;
  StatementCache stmt_cache_;
  std::atomic<uint64_t> next_session_id_{1};
  /// Id of the session holding the open transaction, 0 when none.
  /// Written only under gate_'s exclusive lock (mutating statements,
  /// aborts); atomic because the lock-free read path loads it to decide
  /// between snapshot reads and read-your-own-writes live reads.
  std::atomic<uint64_t> txn_owner_{0};

  // Registered once; sessions share the handles.
  Counter* metric_sessions_total_ = nullptr;
  Gauge* metric_sessions_active_ = nullptr;
  Counter* metric_txn_conflicts_ = nullptr;
  Histogram* metric_read_stmt_ns_ = nullptr;
  Histogram* metric_write_stmt_ns_ = nullptr;
};

/// One client's execution context: its own NFRQL Executor (parse and
/// PROFILE state are per-session, which is what makes concurrent read
/// sessions reentrant) and its claim, if any, on the database's single
/// transaction slot.
///
/// Concurrency discipline per statement (DESIGN.md §9): read-only
/// statements pin the current published snapshot and execute against
/// it with zero engine-gate acquisitions — reads are read-committed
/// (they see exactly the last commit boundary, never another session's
/// in-flight transaction) and never block on, or are blocked by,
/// writers. Everything else runs under the gate's exclusive lock.
/// While one session holds the open transaction, other sessions'
/// mutating statements are rejected with kUnavailable; the owning
/// session's own reads go to the live database instead of a snapshot
/// (read-your-own-writes), which is race-free precisely because every
/// other session's writes bounce while the transaction is open. A
/// second BEGIN on the owning session is rejected by the engine
/// itself.
///
/// A Session instance is NOT internally synchronized: one statement (or
/// one batch) at a time per session (the server's request→response
/// lockstep enforces this for TCP clients).
class Session : public ClientSession {
 public:
  ~Session() override;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t id() const override { return id_; }

  /// Parses (through the shared statement cache), classifies, and
  /// executes one statement (or one of the `\metrics [prom]` /
  /// `\sleep N` meta commands) — reads against a pinned snapshot,
  /// writes under the exclusive gate — returning the rendered result
  /// text.
  Result<std::string> Execute(std::string_view statement) override;

  /// Executes `statements` in order, returning one result per
  /// statement (the kBatch contract, DESIGN.md §8). A failing
  /// statement reports its error in place and execution continues with
  /// the next one. Consecutive read-only statements share a single
  /// pinned snapshot (so they observe one consistent version);
  /// mutating statements lock individually, exactly as in Execute.
  std::vector<Result<std::string>> ExecuteBatch(
      const std::vector<std::string>& statements) override;

  /// Executes one already-parsed statement, bypassing statement text
  /// and the cache — the shard router's entry point for statements it
  /// has rewritten or split per shard. Dispatches to the snapshot-read
  /// or exclusive-write path exactly like Execute. `stmt` must outlive
  /// the call.
  Result<std::string> ExecuteParsed(const Statement& stmt);

  /// Rolls back this session's open transaction, if it holds one.
  /// Called on disconnect and on server shutdown; the destructor also
  /// calls it, so an abandoned session can never leak the transaction
  /// slot.
  void Abort() override;

 private:
  friend class SessionManager;
  Session(uint64_t id, SessionManager* manager);

  /// A statement with its provenance: parsed fresh or served from the
  /// shared cache.
  struct ParsedStatement {
    std::shared_ptr<const Statement> stmt;
    bool cache_hit = false;
  };

  /// Cache lookup, falling back to a full parse (which populates the
  /// cache). Oversized statements bypass the cache in both directions.
  Result<ParsedStatement> ParseCached(const std::string& trimmed);

  /// The exclusive-lock path shared by Execute and ExecuteBatch:
  /// transaction-slot arbitration and execution. Snapshot publication
  /// (and with it rank materialization and epoch bumping) happens
  /// inside the engine at each commit boundary.
  Result<std::string> ExecuteWrite(const ParsedStatement& parsed);

  /// Executes one read-only statement: against the live database when
  /// this session owns the open transaction (read-your-own-writes),
  /// otherwise against `snapshot`. Times it into the read histogram.
  Result<std::string> ExecuteRead(
      const ParsedStatement& parsed,
      const std::shared_ptr<const DatabaseSnapshot>& snapshot);

  Result<std::string> ExecuteMeta(const std::string& command);

  uint64_t id_;
  SessionManager* manager_;
  Database* db_;
  Executor executor_;
};

}  // namespace server
}  // namespace nf2

#endif  // NF2_SERVER_SESSION_H_
