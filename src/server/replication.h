#ifndef NF2_SERVER_REPLICATION_H_
#define NF2_SERVER_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/protocol.h"
#include "server/session.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "util/result.h"

namespace nf2 {
namespace server {

/// WAL shipping (DESIGN.md §14): a primary streams its per-shard
/// logical WALs to follower processes over the frame protocol, and a
/// follower applies them through the same §4 update algorithms — so by
/// Theorem 2 uniqueness its canonical forms are bit-identical to the
/// primary's at every applied position.
///
/// Conversation, all inside one TCP connection:
///   follower → primary   kSubscribe  [positions, one per shard]
///   primary  → follower  kWalSegment kHello {shard_count}
///   primary  → follower  kWalSegment kSnapshotBegin/Relation/End  (only
///                        when the follower's position predates the
///                        primary's retained log — checkpoint truncation
///                        discarded the records it would need)
///   primary  → follower  kWalSegment kRecords / kTruncate, forever
///   follower → primary   kWalAck     [positions durably applied]
/// The subscription deliberately abandons request→response lockstep:
/// segments flow whenever the primary commits, acks whenever the
/// follower persists.

// ---- Wire codecs ------------------------------------------------------

/// One shard's stream position, as carried by kSubscribe and kWalAck:
/// the last (epoch, lsn) the sender has durably applied. lsn 0 = the
/// shard has nothing (bootstrap me).
struct ShardPosition {
  uint32_t shard = 0;
  uint64_t epoch = 0;
  uint64_t lsn = 0;

  bool operator==(const ShardPosition&) const = default;
};

/// kSubscribe / kWalAck payload: [u32 n][n × (u32 shard, u64 epoch,
/// u64 lsn)].
std::string EncodeShardPositions(const std::vector<ShardPosition>& positions);
Result<std::vector<ShardPosition>> DecodeShardPositions(
    std::string_view payload);

/// One kWalSegment frame. The payload starts [u8 kind][u32 shard];
/// the rest is kind-specific (see Encode/DecodeWalSegment).
struct WalSegment {
  enum class Kind : uint8_t {
    kHello = 1,             // shard_count; first segment on every stream.
    kRecords = 2,           // epoch, head_lsn, send_unix_ms, records[].
    kSnapshotBegin = 3,     // epoch, lsn the snapshot is consistent at.
    kSnapshotRelation = 4,  // relation_payload = RelationInfo + NfrRelation.
    kSnapshotEnd = 5,       // epoch, lsn again; commit the bootstrap.
    kTruncate = 6,          // epoch (new), lsn = new epoch base.
  };
  Kind kind = Kind::kRecords;
  uint32_t shard = 0;
  uint32_t shard_count = 0;          // kHello.
  uint64_t epoch = 0;                // kRecords/kSnapshot*/kTruncate.
  uint64_t lsn = 0;                  // Head / snapshot / base lsn.
  uint64_t send_unix_ms = 0;         // kRecords: primary clock at send.
  std::vector<WalRecord> records;    // kRecords.
  std::string relation_payload;      // kSnapshotRelation.
};

std::string EncodeWalSegment(const WalSegment& segment);
Result<WalSegment> DecodeWalSegment(std::string_view payload);

// ---- Primary side -----------------------------------------------------

/// The primary's log-streaming service. The Server hands it every
/// connection that sends kSubscribe (ServeSubscriber runs on that
/// connection's reader thread until the subscriber disconnects or the
/// server shuts the socket down). Each subscriber gets one streamer
/// thread per shard: catch-up from the on-disk log (or a pinned MVCC
/// snapshot when checkpoint truncation discarded the records the
/// follower needs), then live tailing via WriteAheadLog::SubscribeTail.
class ReplicationHub {
 public:
  /// `shards` are the primary's engines in shard order (one entry for
  /// an unsharded server); they and `registry` must outlive the hub.
  ReplicationHub(std::vector<Database*> shards, MetricsRegistry* registry);
  ReplicationHub(const ReplicationHub&) = delete;
  ReplicationHub& operator=(const ReplicationHub&) = delete;

  /// Serves one subscriber until disconnect; blocks the calling thread.
  /// `subscribe_payload` is the kSubscribe frame's payload.
  void ServeSubscriber(int fd, std::string_view subscribe_payload);

  size_t shard_count() const { return shards_.size(); }

 private:
  struct Subscriber {
    int fd = -1;
    std::mutex write_mu;          // Serializes frames from shard streamers.
    std::atomic<bool> stop{false};
  };

  Status SendSegment(Subscriber* sub, const WalSegment& segment);
  /// Streams one shard to one subscriber: catch-up, then tail.
  void StreamShard(Subscriber* sub, size_t shard, uint64_t start_lsn);
  /// Brings `*last_sent` up to the shard's current head using the log
  /// file, falling back to a snapshot bootstrap when the retained log
  /// starts past `*last_sent + 1`. Loops until the read was not
  /// invalidated by a concurrent truncate.
  Status CatchUp(Subscriber* sub, size_t shard, uint64_t* last_sent);
  Status SendSnapshot(Subscriber* sub, size_t shard, uint64_t* last_sent);

  std::vector<Database*> shards_;
  Counter* metric_segments_ = nullptr;
  Counter* metric_subscribers_total_ = nullptr;
  Gauge* metric_subscribers_ = nullptr;
};

// ---- Follower side ----------------------------------------------------

/// The follower's replication client: connects to the primary,
/// subscribes from the last durable per-shard position (persisted in
/// REPL.nf2 under the follower's datadir), applies every segment
/// through the engines' public API, and acks applied positions.
/// Reconnects with exponential backoff forever — a follower outlives
/// primary restarts.
class Replicator {
 public:
  struct Options {
    std::string host;
    uint16_t port = 0;
    /// Follower datadir root (REPL.nf2 lives here).
    std::string dir;
    /// Reconnect backoff bounds.
    std::chrono::milliseconds backoff_min{100};
    std::chrono::milliseconds backoff_max{2000};
  };

  /// `shards` are the follower's engines in shard order — the same
  /// count the primary streams (kHello is cross-checked). They,
  /// `registry`, and `env` must outlive the Replicator. Only the
  /// Replicator may mutate these engines; read sessions pin snapshots.
  Replicator(Options options, std::vector<Database*> shards,
             MetricsRegistry* registry, Env* env);
  ~Replicator();
  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Loads REPL.nf2 (absent = bootstrap from zero) and spawns the
  /// replication thread.
  Status Start();

  /// Stops and joins the replication thread. Idempotent.
  void Stop();

  /// True when every shard's applied position has reached the head the
  /// primary last reported and the stream is connected.
  bool CaughtUp() const;

  /// Human-readable status for the `\replica` meta command.
  std::string StatusText() const;

  /// Per-shard applied positions — what a kWalAck would carry right
  /// now. Lets tests and tooling wait for "applied has reached lsn X"
  /// deterministically instead of racing CaughtUp() against a head
  /// report that may predate the writes being waited for.
  std::vector<ShardPosition> AppliedPositions() const {
    return SnapshotPositions();
  }

  /// Asks the primary at host:port how many shards it streams (one
  /// kSubscribe/kHello round trip on a throwaway connection) — how
  /// `nf2d --follow` sizes a fresh follower datadir before opening it.
  static Result<uint32_t> ProbeShardCount(const std::string& host,
                                          uint16_t port);

 private:
  struct ShardState {
    uint64_t applied_epoch = 0;
    uint64_t applied_lsn = 0;
    /// Last head position / send time the primary reported. head_known
    /// flips when the first kRecords segment of a connection lands —
    /// until then the shard's lag is unknowable and CaughtUp() must not
    /// report true (the primary always closes catch-up with a possibly
    /// empty head-carrying segment, so the latch flips promptly).
    bool head_known = false;
    uint64_t head_lsn = 0;
    uint64_t head_unix_ms = 0;
    /// Open primary transaction being buffered (applied at its commit).
    bool in_txn = false;
    std::vector<WalRecord> txn_buffer;
    /// Snapshot bootstrap in flight.
    bool bootstrapping = false;
    uint64_t bootstrap_epoch = 0;
    uint64_t bootstrap_lsn = 0;
    std::vector<std::string> bootstrap_received;
  };

  void Run();
  /// One connection lifetime: subscribe, stream, apply. Returns when
  /// the connection dies or Stop() was called.
  void RunConnection(int fd);
  Status ApplySegment(int fd, const WalSegment& segment);
  Status ApplyRecords(size_t shard, const WalSegment& segment);
  Status ApplySnapshotRelation(size_t shard, const WalSegment& segment);
  Status ApplySnapshotEnd(size_t shard, const WalSegment& segment);
  /// Applies one autocommit run: a single record directly, longer runs
  /// inside a local transaction (one follower fsync per run).
  Status ApplyRun(size_t shard, const std::vector<WalRecord>& run);
  Status ApplyDataRecord(size_t shard, const WalRecord& record);
  Status ApplyDdlRecord(size_t shard, const WalRecord& record);
  /// Persists every shard's applied position to REPL.nf2 and acks the
  /// shard that advanced.
  Status PersistAndAck(int fd, size_t shard);
  Status LoadPositions();
  std::vector<ShardPosition> SnapshotPositions() const;
  std::string PositionsPath() const;
  void RefreshLagMetrics();

  Options options_;
  std::vector<Database*> shards_;
  Env* env_;
  mutable std::mutex mu_;  // Guards states_ and connected_.
  std::vector<ShardState> states_;
  bool connected_ = false;  // Guarded by mu_.

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  /// fd of the live connection, for shutdown() from Stop(); -1 none.
  std::atomic<int> conn_fd_{-1};
  /// Wakes the backoff sleep on Stop().
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;

  Counter* metric_segments_ = nullptr;
  Counter* metric_reconnects_ = nullptr;
  Counter* metric_applied_records_ = nullptr;
  Gauge* metric_lag_records_ = nullptr;
  Gauge* metric_lag_ms_ = nullptr;
};

/// SessionProvider for a follower: wraps the real provider (a
/// SessionManager or ShardRouter) and serves only read-only statements
/// and meta commands. Mutations and BEGIN answer kUnavailable — the
/// follower's consistency contract is read-committed-at-a-lag, and the
/// only writer of a follower engine is its Replicator. Also answers
/// the `\replica` meta command. Shutdown stops the Replicator before
/// checkpointing, so the final checkpoint never races the applier.
class ReadOnlyProvider : public SessionProvider {
 public:
  /// `inner` and `replicator` must outlive the provider.
  ReadOnlyProvider(SessionProvider* inner, Replicator* replicator)
      : inner_(inner), replicator_(replicator) {}

  std::unique_ptr<ClientSession> NewClientSession() override;
  MetricsRegistry* metrics_registry() override {
    return inner_->metrics_registry();
  }
  void ShutdownCheckpoint() override {
    replicator_->Stop();
    inner_->ShutdownCheckpoint();
  }

 private:
  SessionProvider* inner_;
  Replicator* replicator_;
};

/// One follower connection: read-only statements delegate to the
/// wrapped session, everything mutating bounces with kUnavailable.
class FollowerSession : public ClientSession {
 public:
  FollowerSession(std::unique_ptr<ClientSession> inner,
                  Replicator* replicator)
      : inner_(std::move(inner)), replicator_(replicator) {}

  uint64_t id() const override { return inner_->id(); }
  Result<std::string> Execute(std::string_view statement) override;
  std::vector<Result<std::string>> ExecuteBatch(
      const std::vector<std::string>& statements) override;
  void Abort() override { inner_->Abort(); }

 private:
  std::unique_ptr<ClientSession> inner_;
  Replicator* replicator_;
};

}  // namespace server
}  // namespace nf2

#endif  // NF2_SERVER_REPLICATION_H_
