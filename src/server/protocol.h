#ifndef NF2_SERVER_PROTOCOL_H_
#define NF2_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/result.h"

namespace nf2 {
namespace server {

/// The nf2d wire protocol, v0: length-prefixed frames over TCP, one
/// statement per request, strict request→response lockstep per
/// connection (no auth, no multiplexing — see DESIGN.md §8).
///
/// Frame layout, all bytes on the wire:
///
///   [u32 payload length, little-endian][u8 frame type][payload bytes]
///
/// Requests carry NFRQL statement text (or a `\metrics [prom]` /
/// `\sleep N` meta command) in kQuery; responses echo exactly one frame
/// per request. kError payloads start with one byte of StatusCode
/// followed by the message, so clients recover the full typed Status.
/// kBusy is the backpressure response: the request was NOT executed
/// (queue full, or another session's transaction holds the database)
/// and may be retried.
enum class FrameType : uint8_t {
  // Requests.
  kQuery = 1,
  kPing = 2,
  kQuit = 3,
  // Responses.
  kOk = 0x80,
  kError = 0x81,
  kBusy = 0x82,
  kPong = 0x83,
  kBye = 0x84,
};

/// Upper bound on one frame's payload; a frame announcing more is a
/// protocol error (protects the server from hostile length prefixes).
constexpr uint32_t kMaxFramePayload = 64u << 20;

struct Frame {
  FrameType type = FrameType::kQuery;
  std::string payload;
};

/// Writes one frame to `fd` as a single buffer (header + payload — one
/// send keeps Nagle/delayed-ACK out of the request path). EINTR-safe;
/// uses MSG_NOSIGNAL so a dead peer surfaces as IOError, not SIGPIPE.
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame from `fd`. Returns nullopt on clean EOF (peer closed
/// between frames); IOError on a mid-frame EOF, oversized length
/// prefix, or any read failure.
Result<std::optional<Frame>> ReadFrame(int fd);

/// kError payload codec: one byte of StatusCode, then the message.
std::string EncodeStatusPayload(const Status& status);
Status DecodeStatusPayload(std::string_view payload);

}  // namespace server
}  // namespace nf2

#endif  // NF2_SERVER_PROTOCOL_H_
