#ifndef NF2_SERVER_PROTOCOL_H_
#define NF2_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace nf2 {
namespace server {

/// The nf2d wire protocol: length-prefixed frames over TCP with strict
/// request→response lockstep per connection (no auth, no multiplexing —
/// see DESIGN.md §8). v0 speaks one statement per request; v1 adds
/// pipelined batches (kBatch/kBatchReply) while every v0 frame keeps
/// its meaning, so v0 clients interoperate with a v1 server unchanged.
///
/// Frame layout, all bytes on the wire:
///
///   [u32 payload length, little-endian][u8 frame type][payload bytes]
///
/// Requests carry NFRQL statement text (or a `\metrics [prom]` /
/// `\sleep N` meta command) in kQuery; responses echo exactly one frame
/// per request. kError payloads start with one byte of StatusCode
/// followed by the message, so clients recover the full typed Status.
/// kBusy is the backpressure response: the request was NOT executed
/// (queue full, or another session's transaction holds the database)
/// and may be retried. kBatch carries N length-prefixed statements
/// executed in order on one worker; the matching kBatchReply carries N
/// per-statement outcomes (see EncodeBatchRequest/EncodeBatchReply for
/// the payload layouts).
enum class FrameType : uint8_t {
  // Requests.
  kQuery = 1,
  kPing = 2,
  kQuit = 3,
  kBatch = 4,
  // Replication (DESIGN.md §14). kSubscribe converts the connection
  // into a WAL stream: the server answers with kWalSegment frames
  // (hello, snapshot bootstrap, record batches, truncate notices) for
  // as long as the subscriber stays connected, and the subscriber
  // reports durably applied positions upstream with kWalAck frames —
  // the one deliberate departure from request→response lockstep.
  kSubscribe = 5,
  kWalAck = 6,
  // Responses.
  kOk = 0x80,
  kError = 0x81,
  kBusy = 0x82,
  kPong = 0x83,
  kBye = 0x84,
  kBatchReply = 0x85,
  kWalSegment = 0x86,
};

/// True for the type bytes the protocol defines (request or response).
/// ReadFrame rejects anything else before it reaches dispatch, so an
/// out-of-range enum value can never flow through a FrameType switch.
bool IsKnownFrameType(uint8_t raw);

/// Upper bound on one frame's payload; a frame announcing more is a
/// protocol error (protects the server from hostile length prefixes).
constexpr uint32_t kMaxFramePayload = 64u << 20;

/// Upper bound on statements per kBatch frame; a batch announcing more
/// is a protocol error (protects the server from hostile counts long
/// before any per-statement length is trusted).
constexpr uint32_t kMaxBatchStatements = 4096;

struct Frame {
  FrameType type = FrameType::kQuery;
  std::string payload;
};

/// Writes one frame to `fd` as a single buffer (header + payload — one
/// send keeps Nagle/delayed-ACK out of the request path). EINTR-safe;
/// uses MSG_NOSIGNAL so a dead peer surfaces as IOError, not SIGPIPE.
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame from `fd`. Returns nullopt on clean EOF (peer closed
/// between frames); IOError on a mid-frame EOF, oversized length
/// prefix, or any read failure; Corruption (naming the byte) on a type
/// byte that is not a known frame type.
Result<std::optional<Frame>> ReadFrame(int fd);

/// kError payload codec: one byte of StatusCode, then the message.
std::string EncodeStatusPayload(const Status& status);
Status DecodeStatusPayload(std::string_view payload);

/// kBatch payload codec:
///
///   [u32 count][count × ([u32 statement length][statement bytes])]
///
/// all integers little-endian. Decode validates the count against
/// kMaxBatchStatements, every inner length against the remaining
/// payload, and rejects trailing bytes, so a hostile payload cannot
/// announce more than it ships.
std::string EncodeBatchRequest(const std::vector<std::string>& statements);
Result<std::vector<std::string>> DecodeBatchRequest(std::string_view payload);

/// kBatchReply payload codec — one outcome per statement, in order:
///
///   [u32 count][count × ([u8 tag][u32 length][bytes])]
///
/// tag 0 = ok (bytes are the rendered result text), 1 = error (bytes
/// are a kError status payload), 2 = busy (bytes are the retryable
/// message, decoded as kUnavailable). Same bounds discipline as the
/// request codec.
std::string EncodeBatchReply(const std::vector<Result<std::string>>& results);
Result<std::vector<Result<std::string>>> DecodeBatchReply(
    std::string_view payload);

}  // namespace server
}  // namespace nf2

#endif  // NF2_SERVER_PROTOCOL_H_
