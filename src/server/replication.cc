#include "server/replication.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <set>

#include "catalog/catalog.h"
#include "engine/concurrency.h"
#include "nfrql/parser.h"
#include "storage/serde.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {
namespace server {

namespace {

constexpr uint32_t kPositionsMagic = 0x5052464e;  // "NFRP".
/// Records per kRecords segment — bounds frame size and the follower's
/// per-segment commit batch.
constexpr size_t kRecordsPerSegment = 512;

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrCat("socket: ", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrCat("not an IPv4 address: ", host));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Status::IOError(
        StrCat("connect ", host, ":", port, ": ", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

// ---- Wire codecs ------------------------------------------------------

std::string EncodeShardPositions(const std::vector<ShardPosition>& positions) {
  BufferWriter out;
  out.PutU32(static_cast<uint32_t>(positions.size()));
  for (const ShardPosition& p : positions) {
    out.PutU32(p.shard);
    out.PutU64(p.epoch);
    out.PutU64(p.lsn);
  }
  return out.data();
}

Result<std::vector<ShardPosition>> DecodeShardPositions(
    std::string_view payload) {
  BufferReader in(payload);
  NF2_ASSIGN_OR_RETURN(uint32_t n, in.GetU32());
  if (n > 4096) {
    return Status::Corruption(StrCat("position list announces ", n,
                                     " entries"));
  }
  std::vector<ShardPosition> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ShardPosition p;
    NF2_ASSIGN_OR_RETURN(p.shard, in.GetU32());
    NF2_ASSIGN_OR_RETURN(p.epoch, in.GetU64());
    NF2_ASSIGN_OR_RETURN(p.lsn, in.GetU64());
    out.push_back(p);
  }
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes after position list");
  }
  return out;
}

std::string EncodeWalSegment(const WalSegment& segment) {
  BufferWriter out;
  out.PutU8(static_cast<uint8_t>(segment.kind));
  out.PutU32(segment.shard);
  switch (segment.kind) {
    case WalSegment::Kind::kHello:
      out.PutU32(segment.shard_count);
      break;
    case WalSegment::Kind::kRecords:
      out.PutU64(segment.epoch);
      out.PutU64(segment.lsn);
      out.PutU64(segment.send_unix_ms);
      out.PutU32(static_cast<uint32_t>(segment.records.size()));
      for (const WalRecord& r : segment.records) {
        out.PutU64(r.lsn);
        out.PutU8(static_cast<uint8_t>(r.type));
        out.PutString(r.relation);
        out.PutString(r.payload);
      }
      break;
    case WalSegment::Kind::kSnapshotRelation:
      out.PutString(segment.relation_payload);
      break;
    case WalSegment::Kind::kSnapshotBegin:
    case WalSegment::Kind::kSnapshotEnd:
    case WalSegment::Kind::kTruncate:
      out.PutU64(segment.epoch);
      out.PutU64(segment.lsn);
      break;
  }
  return out.data();
}

Result<WalSegment> DecodeWalSegment(std::string_view payload) {
  BufferReader in(payload);
  WalSegment seg;
  NF2_ASSIGN_OR_RETURN(uint8_t kind, in.GetU8());
  if (kind < static_cast<uint8_t>(WalSegment::Kind::kHello) ||
      kind > static_cast<uint8_t>(WalSegment::Kind::kTruncate)) {
    return Status::Corruption(StrCat("unknown WAL segment kind ",
                                     static_cast<int>(kind)));
  }
  seg.kind = static_cast<WalSegment::Kind>(kind);
  NF2_ASSIGN_OR_RETURN(seg.shard, in.GetU32());
  switch (seg.kind) {
    case WalSegment::Kind::kHello: {
      NF2_ASSIGN_OR_RETURN(seg.shard_count, in.GetU32());
      break;
    }
    case WalSegment::Kind::kRecords: {
      NF2_ASSIGN_OR_RETURN(seg.epoch, in.GetU64());
      NF2_ASSIGN_OR_RETURN(seg.lsn, in.GetU64());
      NF2_ASSIGN_OR_RETURN(seg.send_unix_ms, in.GetU64());
      NF2_ASSIGN_OR_RETURN(uint32_t count, in.GetU32());
      if (count > kMaxBatchStatements) {
        return Status::Corruption(
            StrCat("record segment announces ", count, " records"));
      }
      seg.records.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        WalRecord r;
        NF2_ASSIGN_OR_RETURN(r.lsn, in.GetU64());
        NF2_ASSIGN_OR_RETURN(uint8_t type, in.GetU8());
        if (type < kMinWalOpType || type > kMaxWalOpType) {
          return Status::Corruption(
              StrCat("bad WAL op type ", static_cast<int>(type),
                     " in record segment"));
        }
        r.type = static_cast<WalOpType>(type);
        NF2_ASSIGN_OR_RETURN(r.relation, in.GetString());
        NF2_ASSIGN_OR_RETURN(r.payload, in.GetString());
        seg.records.push_back(std::move(r));
      }
      break;
    }
    case WalSegment::Kind::kSnapshotRelation: {
      NF2_ASSIGN_OR_RETURN(seg.relation_payload, in.GetString());
      break;
    }
    case WalSegment::Kind::kSnapshotBegin:
    case WalSegment::Kind::kSnapshotEnd:
    case WalSegment::Kind::kTruncate: {
      NF2_ASSIGN_OR_RETURN(seg.epoch, in.GetU64());
      NF2_ASSIGN_OR_RETURN(seg.lsn, in.GetU64());
      break;
    }
  }
  if (!in.AtEnd()) {
    return Status::Corruption("trailing bytes after WAL segment");
  }
  return seg;
}

// ---- ReplicationHub ---------------------------------------------------

ReplicationHub::ReplicationHub(std::vector<Database*> shards,
                               MetricsRegistry* registry)
    : shards_(std::move(shards)) {
  metric_segments_ = registry->GetCounter(
      "nf2_repl_segments_total", "WAL segments sent to subscribers");
  metric_subscribers_total_ = registry->GetCounter(
      "nf2_repl_subscribers_total", "Subscriptions ever accepted");
  metric_subscribers_ = registry->GetGauge(
      "nf2_repl_subscribers", "Live WAL subscribers");
}

Status ReplicationHub::SendSegment(Subscriber* sub,
                                   const WalSegment& segment) {
  std::string payload = EncodeWalSegment(segment);
  Status s;
  {
    std::lock_guard<std::mutex> lock(sub->write_mu);
    s = WriteFrame(sub->fd, FrameType::kWalSegment, payload);
  }
  if (!s.ok()) {
    sub->stop.store(true, std::memory_order_release);
    return s;
  }
  metric_segments_->Increment();
  return Status::OK();
}

Status ReplicationHub::SendSnapshot(Subscriber* sub, size_t shard,
                                    uint64_t* last_sent) {
  std::shared_ptr<const DatabaseSnapshot> snap =
      shards_[shard]->PinSnapshot();
  WalSegment begin;
  begin.kind = WalSegment::Kind::kSnapshotBegin;
  begin.shard = static_cast<uint32_t>(shard);
  begin.epoch = snap->wal_epoch();
  begin.lsn = snap->wal_lsn();
  NF2_RETURN_IF_ERROR(SendSegment(sub, begin));
  for (const std::string& name : snap->ListRelations()) {
    NF2_ASSIGN_OR_RETURN(const RelationInfo* info, snap->Info(name));
    NF2_ASSIGN_OR_RETURN(const NfrRelation* rel, snap->Relation(name));
    BufferWriter w;
    EncodeRelationInfo(*info, &w);
    EncodeNfrRelation(*rel, &w);
    WalSegment seg;
    seg.kind = WalSegment::Kind::kSnapshotRelation;
    seg.shard = static_cast<uint32_t>(shard);
    seg.relation_payload = w.data();
    NF2_RETURN_IF_ERROR(SendSegment(sub, seg));
  }
  WalSegment end = begin;
  end.kind = WalSegment::Kind::kSnapshotEnd;
  NF2_RETURN_IF_ERROR(SendSegment(sub, end));
  *last_sent = snap->wal_lsn();
  return Status::OK();
}

Status ReplicationHub::CatchUp(Subscriber* sub, size_t shard,
                               uint64_t* last_sent) {
  WriteAheadLog* wal = shards_[shard]->wal();
  // The loop handles a checkpoint truncating the log under us: a read
  // that raced a truncate is discarded and retried against the new
  // epoch base (possibly via a snapshot bootstrap).
  for (int attempt = 0; attempt < 16; ++attempt) {
    const uint64_t base = wal->epoch_base_lsn();
    const uint64_t epoch = wal->epoch();
    if (*last_sent + 1 < base) {
      // The records the subscriber needs were truncated away; only a
      // snapshot can bring it forward.
      NF2_RETURN_IF_ERROR(SendSnapshot(sub, shard, last_sent));
      continue;
    }
    NF2_ASSIGN_OR_RETURN(WalReadResult scan, wal->ReadAll());
    if (wal->epoch_base_lsn() != base) continue;  // Truncated mid-read.
    WalSegment seg;
    seg.kind = WalSegment::Kind::kRecords;
    seg.shard = static_cast<uint32_t>(shard);
    seg.epoch = epoch;
    for (const WalRecord& r : scan.records) {
      if (r.lsn <= *last_sent) continue;
      seg.records.push_back(r);
      *last_sent = r.lsn;
      if (seg.records.size() >= kRecordsPerSegment) {
        seg.lsn = wal->position().lsn;
        seg.send_unix_ms = NowUnixMs();
        NF2_RETURN_IF_ERROR(SendSegment(sub, seg));
        seg.records.clear();
      }
    }
    // Always send the trailing (possibly empty) segment: it carries the
    // head position, which is what lets the follower see itself as
    // caught up even on an idle primary.
    seg.lsn = wal->position().lsn;
    seg.send_unix_ms = NowUnixMs();
    return SendSegment(sub, seg);
  }
  return Status::IOError("log kept truncating during catch-up");
}

void ReplicationHub::StreamShard(Subscriber* sub, size_t shard,
                                 uint64_t start_lsn) {
  WriteAheadLog* wal = shards_[shard]->wal();
  // Subscribe BEFORE the catch-up read: every record is then either in
  // the file we read or in the feed (or both — the lsn filter dedups).
  std::shared_ptr<WalTailSubscription> tail = wal->SubscribeTail(8192);
  uint64_t last_sent = start_lsn;
  Status caught = CatchUp(sub, shard, &last_sent);
  if (!caught.ok()) {
    NF2_LOG(Warning) << "replication catch-up for shard " << shard
                     << " failed: " << caught;
    sub->stop.store(true, std::memory_order_release);
    return;
  }
  WalSegment batch;
  batch.kind = WalSegment::Kind::kRecords;
  batch.shard = static_cast<uint32_t>(shard);
  auto flush = [&]() -> Status {
    if (batch.records.empty()) return Status::OK();
    batch.lsn = wal->position().lsn;
    batch.send_unix_ms = NowUnixMs();
    Status s = SendSegment(sub, batch);
    batch.records.clear();
    return s;
  };
  while (!sub->stop.load(std::memory_order_acquire)) {
    std::vector<WalTailEvent> events =
        tail->Poll(std::chrono::milliseconds(100));
    if (tail->lost()) {
      // The feed dropped events; resynchronize from the log file (the
      // polled events are a subset of what CatchUp re-reads, so they
      // are simply superseded).
      tail->ClearLost();
      events.clear();
      if (!CatchUp(sub, shard, &last_sent).ok()) break;
      continue;
    }
    for (const WalTailEvent& e : events) {
      if (e.kind == WalTailEvent::Kind::kClosed) {
        // The engine is shutting down; the subscription is over.
        sub->stop.store(true, std::memory_order_release);
        break;
      }
      if (e.kind == WalTailEvent::Kind::kTruncate) {
        if (!flush().ok()) break;
        WalSegment trunc;
        trunc.kind = WalSegment::Kind::kTruncate;
        trunc.shard = static_cast<uint32_t>(shard);
        trunc.epoch = e.epoch;
        trunc.lsn = e.record.lsn;
        if (!SendSegment(sub, trunc).ok()) break;
        continue;
      }
      if (e.record.lsn <= last_sent) continue;  // Covered by catch-up.
      if (!batch.records.empty() && batch.epoch != e.epoch) {
        if (!flush().ok()) break;
      }
      batch.epoch = e.epoch;
      batch.records.push_back(e.record);
      last_sent = e.record.lsn;
      if (batch.records.size() >= kRecordsPerSegment) {
        if (!flush().ok()) break;
      }
    }
    if (!flush().ok()) break;
  }
}

void ReplicationHub::ServeSubscriber(int fd,
                                     std::string_view subscribe_payload) {
  Result<std::vector<ShardPosition>> decoded =
      DecodeShardPositions(subscribe_payload);
  if (!decoded.ok()) {
    (void)WriteFrame(fd, FrameType::kError,
                     EncodeStatusPayload(decoded.status()));
    return;
  }
  std::vector<uint64_t> start(shards_.size(), 0);
  for (const ShardPosition& p : *decoded) {
    if (p.shard < start.size()) start[p.shard] = p.lsn;
  }

  Subscriber sub;
  sub.fd = fd;
  WalSegment hello;
  hello.kind = WalSegment::Kind::kHello;
  hello.shard_count = static_cast<uint32_t>(shards_.size());
  if (!SendSegment(&sub, hello).ok()) return;

  metric_subscribers_total_->Increment();
  metric_subscribers_->Add(1);
  std::vector<std::thread> streamers;
  streamers.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    streamers.emplace_back(
        [this, &sub, i, s = start[i]] { StreamShard(&sub, i, s); });
  }

  // This (the connection's reader) thread consumes acks until the
  // subscriber goes away or the server shuts the socket down.
  for (;;) {
    Result<std::optional<Frame>> read = ReadFrame(fd);
    if (!read.ok() || !read->has_value()) break;
    const Frame& frame = **read;
    if (frame.type == FrameType::kWalAck) continue;  // Positions noted.
    if (frame.type == FrameType::kQuit) break;
    break;  // Anything else is a protocol violation; drop the stream.
  }
  sub.stop.store(true, std::memory_order_release);
  for (std::thread& t : streamers) t.join();
  metric_subscribers_->Add(-1);
}

// ---- Replicator -------------------------------------------------------

Replicator::Replicator(Options options, std::vector<Database*> shards,
                       MetricsRegistry* registry, Env* env)
    : options_(std::move(options)), shards_(std::move(shards)), env_(env) {
  metric_segments_ = registry->GetCounter(
      "nf2_repl_segments_total", "WAL segments received from the primary");
  metric_reconnects_ = registry->GetCounter(
      "nf2_repl_reconnects_total",
      "Reconnect attempts to the primary (after a failure or disconnect)");
  metric_applied_records_ = registry->GetCounter(
      "nf2_repl_applied_records_total", "WAL records applied locally");
  metric_lag_records_ = registry->GetGauge(
      "nf2_repl_lag_records",
      "Records between the primary head and the applied position, summed "
      "over shards");
  metric_lag_ms_ = registry->GetGauge(
      "nf2_repl_lag_ms",
      "Receive-to-apply delay of the last record segment (ms, primary "
      "clock)");
}

Replicator::~Replicator() { Stop(); }

std::string Replicator::PositionsPath() const {
  return (std::filesystem::path(options_.dir) / "REPL.nf2").string();
}

Status Replicator::LoadPositions() {
  const std::string path = PositionsPath();
  if (!env_->FileExists(path)) return Status::OK();
  NF2_ASSIGN_OR_RETURN(std::string bytes, env_->ReadFileToString(path));
  if (bytes.size() < 8) {
    return Status::Corruption("replication position file too short");
  }
  std::string_view body(bytes.data(), bytes.size() - 4);
  BufferReader crc_reader(
      std::string_view(bytes.data() + bytes.size() - 4, 4));
  NF2_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.GetU32());
  if (Crc32(body) != stored_crc) {
    return Status::Corruption("replication position file CRC mismatch");
  }
  BufferReader in(body);
  NF2_ASSIGN_OR_RETURN(uint32_t magic, in.GetU32());
  if (magic != kPositionsMagic) {
    return Status::Corruption("bad replication position magic");
  }
  NF2_ASSIGN_OR_RETURN(
      std::vector<ShardPosition> positions,
      DecodeShardPositions(
          std::string_view(body.data() + 4, body.size() - 4)));
  std::lock_guard<std::mutex> lock(mu_);
  for (const ShardPosition& p : positions) {
    if (p.shard >= states_.size()) continue;
    states_[p.shard].applied_epoch = p.epoch;
    states_[p.shard].applied_lsn = p.lsn;
  }
  return Status::OK();
}

std::vector<ShardPosition> Replicator::SnapshotPositions() const {
  std::vector<ShardPosition> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(states_.size());
  for (size_t i = 0; i < states_.size(); ++i) {
    out.push_back({static_cast<uint32_t>(i), states_[i].applied_epoch,
                   states_[i].applied_lsn});
  }
  return out;
}

Status Replicator::PersistAndAck(int fd, size_t shard) {
  std::vector<ShardPosition> positions = SnapshotPositions();
  BufferWriter body;
  body.PutU32(kPositionsMagic);
  body.PutRaw(EncodeShardPositions(positions));
  BufferWriter file;
  file.PutRaw(body.data());
  file.PutU32(Crc32(body.data()));
  NF2_RETURN_IF_ERROR(env_->WriteFileAtomic(PositionsPath(), file.data()));
  // A failed ack is not an apply failure: the read loop will notice the
  // dead connection on its own.
  Status acked = WriteFrame(fd, FrameType::kWalAck,
                            EncodeShardPositions({positions[shard]}));
  if (!acked.ok()) {
    NF2_LOG(Debug) << "replication ack failed: " << acked;
  }
  return Status::OK();
}

Status Replicator::ApplyDataRecord(size_t shard, const WalRecord& record) {
  Database* db = shards_[shard];
  BufferReader reader(record.payload);
  NF2_ASSIGN_OR_RETURN(FlatTuple tuple, DecodeFlatTuple(&reader));
  if (record.type == WalOpType::kInsert) {
    Status s = db->Insert(record.relation, tuple);
    // Idempotence across replays, mirroring recovery: AlreadyExists
    // means a previous apply (or a local checkpoint) already holds it;
    // NotFound means a later drop in the same stream supersedes it.
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists &&
        s.code() != StatusCode::kNotFound) {
      return s;
    }
  } else {
    Status s = db->Delete(record.relation, tuple);
    if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
  }
  metric_applied_records_->Increment();
  return Status::OK();
}

Status Replicator::ApplyDdlRecord(size_t shard, const WalRecord& record) {
  Database* db = shards_[shard];
  if (record.type == WalOpType::kCreateRelation) {
    BufferReader reader(record.payload);
    NF2_ASSIGN_OR_RETURN(RelationInfo info, DecodeRelationInfo(&reader));
    Status s = db->CreateRelation(info.name, info.schema, info.nest_order,
                                  info.fds, info.mvds);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
  } else {
    Status s = db->DropRelation(record.relation);
    if (!s.ok() && s.code() != StatusCode::kNotFound) return s;
  }
  metric_applied_records_->Increment();
  return Status::OK();
}

Status Replicator::ApplyRun(size_t shard, const std::vector<WalRecord>& run) {
  if (run.empty()) return Status::OK();
  Database* db = shards_[shard];
  // One follower fsync per run: a local transaction groups the
  // autocommit records' durability into the commit marker, and the
  // snapshot publishes once, at the commit boundary.
  if (run.size() > 1) NF2_RETURN_IF_ERROR(db->Begin());
  for (const WalRecord& r : run) {
    Status s = ApplyDataRecord(shard, r);
    if (!s.ok()) {
      if (run.size() > 1) (void)db->Rollback();
      return s;
    }
  }
  if (run.size() > 1) NF2_RETURN_IF_ERROR(db->Commit());
  return Status::OK();
}

Status Replicator::ApplyRecords(size_t shard, const WalSegment& segment) {
  Database* db = shards_[shard];
  ShardState& st = states_[shard];
  uint64_t applied;
  bool in_txn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    applied = st.applied_lsn;
    in_txn = st.in_txn;
  }
  auto advance = [&](uint64_t lsn, uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    st.applied_lsn = lsn;
    if (epoch > st.applied_epoch) st.applied_epoch = epoch;
    applied = lsn;
  };
  std::vector<WalRecord> run;
  auto flush_run = [&]() -> Status {
    if (run.empty()) return Status::OK();
    NF2_RETURN_IF_ERROR(ApplyRun(shard, run));
    advance(run.back().lsn, segment.epoch);
    run.clear();
    return Status::OK();
  };
  for (const WalRecord& rec : segment.records) {
    if (rec.lsn <= applied) continue;  // Replayed after a reconnect.
    switch (rec.type) {
      case WalOpType::kInsert:
      case WalOpType::kDelete:
        if (in_txn) {
          st.txn_buffer.push_back(rec);
        } else {
          run.push_back(rec);
          if (run.size() >= kRecordsPerSegment) {
            NF2_RETURN_IF_ERROR(flush_run());
          }
        }
        break;
      case WalOpType::kTxnBegin:
        NF2_RETURN_IF_ERROR(flush_run());
        in_txn = true;
        st.txn_buffer.clear();
        // The applied position does NOT advance until this transaction
        // commits or aborts: a crash here must replay it from the top.
        break;
      case WalOpType::kTxnCommit: {
        NF2_RETURN_IF_ERROR(flush_run());
        if (in_txn && !st.txn_buffer.empty()) {
          NF2_RETURN_IF_ERROR(db->Begin());
          for (const WalRecord& b : st.txn_buffer) {
            Status s = ApplyDataRecord(shard, b);
            if (!s.ok()) {
              (void)db->Rollback();
              return s;
            }
          }
          NF2_RETURN_IF_ERROR(db->Commit());
        }
        st.txn_buffer.clear();
        in_txn = false;
        advance(rec.lsn, segment.epoch);
        break;
      }
      case WalOpType::kTxnAbort:
        NF2_RETURN_IF_ERROR(flush_run());
        st.txn_buffer.clear();
        in_txn = false;
        advance(rec.lsn, segment.epoch);
        break;
      case WalOpType::kCreateRelation:
      case WalOpType::kDropRelation:
        NF2_RETURN_IF_ERROR(flush_run());
        NF2_RETURN_IF_ERROR(ApplyDdlRecord(shard, rec));
        advance(rec.lsn, segment.epoch);
        break;
      case WalOpType::kCheckpoint:
        NF2_RETURN_IF_ERROR(flush_run());
        advance(rec.lsn, segment.epoch);
        break;
    }
  }
  NF2_RETURN_IF_ERROR(flush_run());
  {
    std::lock_guard<std::mutex> lock(mu_);
    st.in_txn = in_txn;
  }
  return Status::OK();
}

Status Replicator::ApplySnapshotRelation(size_t shard,
                                         const WalSegment& segment) {
  Database* db = shards_[shard];
  BufferReader reader(segment.relation_payload);
  NF2_ASSIGN_OR_RETURN(RelationInfo info, DecodeRelationInfo(&reader));
  NF2_ASSIGN_OR_RETURN(NfrRelation relation, DecodeNfrRelation(&reader));
  // Replace wholesale: whatever local version exists predates the
  // snapshot (or diverged past a truncation) and is stale either way.
  if (db->Info(info.name).ok()) {
    NF2_RETURN_IF_ERROR(db->DropRelation(info.name));
  }
  NF2_RETURN_IF_ERROR(db->CreateRelation(info.name, info.schema,
                                         info.nest_order, info.fds,
                                         info.mvds));
  FlatRelation flat = relation.Expand();
  if (flat.size() > 1) NF2_RETURN_IF_ERROR(db->Begin());
  for (const FlatTuple& t : flat.tuples()) {
    Status s = db->Insert(info.name, t);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) {
      if (flat.size() > 1) (void)db->Rollback();
      return s;
    }
  }
  if (flat.size() > 1) NF2_RETURN_IF_ERROR(db->Commit());
  std::lock_guard<std::mutex> lock(mu_);
  states_[shard].bootstrap_received.push_back(info.name);
  return Status::OK();
}

Status Replicator::ApplySnapshotEnd(size_t shard, const WalSegment& segment) {
  Database* db = shards_[shard];
  std::set<std::string> received;
  {
    std::lock_guard<std::mutex> lock(mu_);
    received.insert(states_[shard].bootstrap_received.begin(),
                    states_[shard].bootstrap_received.end());
  }
  // Local relations absent from the snapshot were dropped on the
  // primary while this follower was away.
  for (const std::string& name : db->ListRelations()) {
    if (received.count(name) == 0) {
      NF2_RETURN_IF_ERROR(db->DropRelation(name));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& st = states_[shard];
  st.bootstrapping = false;
  st.bootstrap_received.clear();
  st.applied_epoch = segment.epoch;
  st.applied_lsn = segment.lsn;
  return Status::OK();
}

void Replicator::RefreshLagMetrics() {
  int64_t lag = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const ShardState& st : states_) {
    if (st.head_lsn > st.applied_lsn) {
      lag += static_cast<int64_t>(st.head_lsn - st.applied_lsn);
    }
  }
  metric_lag_records_->Set(lag);
}

Status Replicator::ApplySegment(int fd, const WalSegment& segment) {
  metric_segments_->Increment();
  if (segment.kind == WalSegment::Kind::kHello) {
    if (segment.shard_count != shards_.size()) {
      stop_.store(true, std::memory_order_release);
      return Status::FailedPrecondition(
          StrCat("primary streams ", segment.shard_count,
                 " shard(s) but this follower has ", shards_.size(),
                 " — follower datadirs are pinned to the primary's "
                 "shard layout"));
    }
    std::lock_guard<std::mutex> lock(mu_);
    connected_ = true;
    return Status::OK();
  }
  if (segment.shard >= shards_.size()) {
    return Status::Corruption(
        StrCat("segment for unknown shard ", segment.shard));
  }
  const size_t shard = segment.shard;
  switch (segment.kind) {
    case WalSegment::Kind::kRecords: {
      uint64_t before;
      {
        std::lock_guard<std::mutex> lock(mu_);
        before = states_[shard].applied_lsn;
      }
      NF2_RETURN_IF_ERROR(ApplyRecords(shard, segment));
      uint64_t after;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ShardState& st = states_[shard];
        st.head_known = true;
        st.head_lsn = segment.lsn;
        st.head_unix_ms = segment.send_unix_ms;
        after = st.applied_lsn;
      }
      if (!segment.records.empty()) {
        const uint64_t now = NowUnixMs();
        metric_lag_ms_->Set(now >= segment.send_unix_ms
                                ? static_cast<int64_t>(
                                      now - segment.send_unix_ms)
                                : 0);
      }
      RefreshLagMetrics();
      if (after != before) {
        NF2_RETURN_IF_ERROR(PersistAndAck(fd, shard));
      }
      return Status::OK();
    }
    case WalSegment::Kind::kTruncate: {
      // Nothing to apply — the follower's own log is independent. The
      // epoch note keeps the reported position aligned with the
      // primary's numbering.
      std::lock_guard<std::mutex> lock(mu_);
      ShardState& st = states_[shard];
      if (segment.epoch > st.applied_epoch &&
          st.applied_lsn + 1 >= segment.lsn) {
        st.applied_epoch = segment.epoch;
      }
      return Status::OK();
    }
    case WalSegment::Kind::kSnapshotBegin: {
      std::lock_guard<std::mutex> lock(mu_);
      ShardState& st = states_[shard];
      st.bootstrapping = true;
      st.bootstrap_received.clear();
      st.bootstrap_epoch = segment.epoch;
      st.bootstrap_lsn = segment.lsn;
      return Status::OK();
    }
    case WalSegment::Kind::kSnapshotRelation:
      return ApplySnapshotRelation(shard, segment);
    case WalSegment::Kind::kSnapshotEnd: {
      NF2_RETURN_IF_ERROR(ApplySnapshotEnd(shard, segment));
      RefreshLagMetrics();
      return PersistAndAck(fd, shard);
    }
    case WalSegment::Kind::kHello:
      break;  // Handled above.
  }
  return Status::OK();
}

void Replicator::RunConnection(int fd) {
  conn_fd_.store(fd, std::memory_order_release);
  Status sent = WriteFrame(fd, FrameType::kSubscribe,
                           EncodeShardPositions(SnapshotPositions()));
  if (!sent.ok()) return;
  while (!stop_.load(std::memory_order_acquire)) {
    Result<std::optional<Frame>> read = ReadFrame(fd);
    if (!read.ok() || !read->has_value()) return;
    const Frame& frame = **read;
    if (frame.type == FrameType::kError) {
      NF2_LOG(Warning) << "primary refused the subscription: "
                       << DecodeStatusPayload(frame.payload);
      return;
    }
    if (frame.type != FrameType::kWalSegment) continue;
    Result<WalSegment> segment = DecodeWalSegment(frame.payload);
    if (!segment.ok()) {
      NF2_LOG(Warning) << "bad WAL segment: " << segment.status();
      return;
    }
    Status applied = ApplySegment(fd, *segment);
    if (!applied.ok()) {
      NF2_LOG(Warning) << "applying WAL segment failed: " << applied;
      return;  // Reconnect restarts from the persisted position.
    }
  }
}

void Replicator::Run() {
  std::chrono::milliseconds backoff = options_.backoff_min;
  while (!stop_.load(std::memory_order_acquire)) {
    Result<int> fd = ConnectTcp(options_.host, options_.port);
    if (fd.ok()) {
      RunConnection(*fd);
      conn_fd_.store(-1, std::memory_order_release);
      ::close(*fd);
      bool was_connected;
      {
        std::lock_guard<std::mutex> lock(mu_);
        was_connected = connected_;
        connected_ = false;
        // A transaction cut by the disconnect replays from its begin.
        for (ShardState& st : states_) {
          st.in_txn = false;
          st.txn_buffer.clear();
          st.bootstrapping = false;
          st.bootstrap_received.clear();
          // The primary may have advanced while we were away; the head
          // is unknown again until the next connection reports it.
          st.head_known = false;
        }
      }
      if (was_connected) backoff = options_.backoff_min;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    metric_reconnects_->Increment();
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait_for(lock, backoff, [this] {
      return stop_.load(std::memory_order_acquire);
    });
    backoff = std::min(backoff * 2, options_.backoff_max);
  }
}

Status Replicator::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("replicator already started");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    states_.resize(shards_.size());
  }
  NF2_RETURN_IF_ERROR(LoadPositions());
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void Replicator::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  if (stop_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  int fd = conn_fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool Replicator::CaughtUp() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!connected_) return false;
  for (const ShardState& st : states_) {
    if (!st.head_known || st.bootstrapping || st.in_txn) return false;
    if (st.applied_lsn < st.head_lsn) return false;
  }
  return true;
}

std::string Replicator::StatusText() const {
  std::string out = StrCat("replica of ", options_.host, ":", options_.port,
                           "\n");
  std::lock_guard<std::mutex> lock(mu_);
  out += StrCat("  connected: ", connected_ ? "yes" : "no",
                "  reconnects: ", metric_reconnects_->value(), "\n");
  for (size_t i = 0; i < states_.size(); ++i) {
    const ShardState& st = states_[i];
    const uint64_t lag =
        st.head_lsn > st.applied_lsn ? st.head_lsn - st.applied_lsn : 0;
    out += StrCat("  shard ", i, ": applied ", st.applied_epoch, ":",
                  st.applied_lsn, "  head ", st.head_lsn, "  lag ", lag,
                  st.bootstrapping ? "  (bootstrapping)" : "", "\n");
  }
  return out;
}

Result<uint32_t> Replicator::ProbeShardCount(const std::string& host,
                                             uint16_t port) {
  NF2_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));
  Status sent = WriteFrame(fd, FrameType::kSubscribe,
                           EncodeShardPositions({}));
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  Result<std::optional<Frame>> read = ReadFrame(fd);
  ::close(fd);
  if (!read.ok()) return read.status();
  if (!read->has_value()) {
    return Status::IOError("primary closed the probe connection");
  }
  const Frame& frame = **read;
  if (frame.type == FrameType::kError) {
    Status decoded = DecodeStatusPayload(frame.payload);
    if (decoded.ok()) {
      return Status::Corruption("error frame carried an OK status");
    }
    return decoded;
  }
  if (frame.type != FrameType::kWalSegment) {
    return Status::Corruption("probe expected a kWalSegment hello");
  }
  NF2_ASSIGN_OR_RETURN(WalSegment seg, DecodeWalSegment(frame.payload));
  if (seg.kind != WalSegment::Kind::kHello) {
    return Status::Corruption("probe expected a hello segment");
  }
  return seg.shard_count;
}

// ---- Read-only follower sessions --------------------------------------

std::unique_ptr<ClientSession> ReadOnlyProvider::NewClientSession() {
  return std::make_unique<FollowerSession>(inner_->NewClientSession(),
                                           replicator_);
}

Result<std::string> FollowerSession::Execute(std::string_view statement) {
  const std::string trimmed = Trim(statement);
  if (!trimmed.empty() && trimmed.front() == '\\') {
    if (trimmed == "\\replica") return replicator_->StatusText();
    return inner_->Execute(statement);  // \metrics, \shards, ...
  }
  Result<Statement> parsed = ParseStatement(trimmed);
  if (!parsed.ok()) {
    // Let the wrapped session render the parse error exactly as the
    // primary would.
    return inner_->Execute(statement);
  }
  if (IsReadOnlyStatement(*parsed)) {
    return inner_->Execute(statement);
  }
  return Status::Unavailable(
      "follower is read-only; writes and transactions must go to the "
      "primary");
}

std::vector<Result<std::string>> FollowerSession::ExecuteBatch(
    const std::vector<std::string>& statements) {
  std::vector<Result<std::string>> results;
  results.reserve(statements.size());
  for (const std::string& s : statements) {
    results.push_back(Execute(s));
  }
  return results;
}

}  // namespace server
}  // namespace nf2
