#include "exec/planner.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace nf2 {

namespace {

/// Flattens the top-level AND chain of a WHERE tree — the conjuncts the
/// planner may independently route through the index.
void CollectConjuncts(const ConditionNode& node,
                      std::vector<const ConditionNode*>* out) {
  if (node.kind == ConditionNode::Kind::kAnd) {
    CollectConjuncts(*node.left, out);
    CollectConjuncts(*node.right, out);
    return;
  }
  out->push_back(&node);
}

std::string EqListLabel(const Schema& schema,
                        const std::vector<EqRestriction>& eqs) {
  std::vector<std::string> parts;
  parts.reserve(eqs.size());
  for (const EqRestriction& eq : eqs) {
    parts.push_back(StrCat(schema.attribute(eq.attr).name, " = ",
                           eq.value.ToString()));
  }
  return Join(parts, ", ");
}

bool IsRangeOp(const std::string& op) {
  return op == "<" || op == "<=" || op == ">" || op == ">=";
}

/// Folds one `attr <op> literal` comparison into `b`, keeping the
/// tightest interval (exclusive wins over inclusive at an equal bound).
void TightenBound(const std::string& op, const Value& v, RangeBound* b) {
  if (op == ">" || op == ">=") {
    const bool incl = op == ">=";
    if (!b->lower.has_value() || *b->lower < v) {
      b->lower = v;
      b->lower_inclusive = incl;
    } else if (!(v < *b->lower)) {
      b->lower_inclusive = b->lower_inclusive && incl;
    }
  } else {
    const bool incl = op == "<=";
    if (!b->upper.has_value() || v < *b->upper) {
      b->upper = v;
      b->upper_inclusive = incl;
    } else if (!(*b->upper < v)) {
      b->upper_inclusive = b->upper_inclusive && incl;
    }
  }
}

std::string RangeLabel(const Schema& schema, const RangeRestriction& range) {
  const std::string& name = schema.attribute(range.attr).name;
  std::vector<std::string> parts;
  if (range.bound.lower.has_value()) {
    parts.push_back(StrCat(name, range.bound.lower_inclusive ? " >= " : " > ",
                           range.bound.lower->ToString()));
  }
  if (range.bound.upper.has_value()) {
    parts.push_back(StrCat(name, range.bound.upper_inclusive ? " <= " : " < ",
                           range.bound.upper->ToString()));
  }
  return Join(parts, ", ");
}

std::string AggListLabel(const SelectStatement& stmt) {
  std::vector<std::string> parts;
  parts.reserve(stmt.aggregates.size());
  for (const AggSpec& spec : stmt.aggregates) {
    parts.push_back(spec.Label());
  }
  std::string aggs = Join(parts, ", ");
  return stmt.group_attr.empty() ? aggs
                                 : StrCat(stmt.group_attr, ": ", aggs);
}

/// Resolves the aggregate list against the schema its input rows (or
/// NFR tuples) carry; SUM is type-checked here so execution stays
/// infallible.
Result<std::vector<AggCompute>> ResolveAggregates(
    const std::vector<AggSpec>& specs, const Schema& schema) {
  std::vector<AggCompute> out;
  out.reserve(specs.size());
  for (const AggSpec& spec : specs) {
    AggCompute agg;
    agg.spec = spec;
    if (spec.func != AggSpec::Func::kCountStar) {
      NF2_ASSIGN_OR_RETURN(agg.attr, schema.RequireIndex(spec.attr));
      agg.type = schema.attribute(agg.attr).type;
      if (spec.func == AggSpec::Func::kSum &&
          agg.type != ValueType::kInt && agg.type != ValueType::kDouble) {
        return Status::InvalidArgument(
            StrCat("SUM requires a numeric attribute; ", spec.attr, " is ",
                   ValueTypeToString(agg.type)));
      }
    }
    out.push_back(std::move(agg));
  }
  return out;
}

/// Output schema of an aggregation: the group attribute (if any)
/// followed by one column per aggregate, named by its canonical label.
Schema AggregateOutputSchema(const Schema& input,
                             const std::optional<size_t>& group,
                             const std::vector<AggCompute>& aggs) {
  std::vector<Attribute> attrs;
  attrs.reserve((group.has_value() ? 1 : 0) + aggs.size());
  if (group.has_value()) attrs.push_back(input.attribute(*group));
  for (const AggCompute& agg : aggs) {
    ValueType type = ValueType::kInt;  // COUNT(*)/COUNT(a).
    if (agg.spec.func == AggSpec::Func::kSum ||
        agg.spec.func == AggSpec::Func::kMin ||
        agg.spec.func == AggSpec::Func::kMax) {
      type = agg.type;
    }
    attrs.push_back({agg.spec.Label(), type});
  }
  return Schema(std::move(attrs));
}

}  // namespace

Result<Predicate> ResolveCondition(const ConditionNode& node,
                                   const Schema& schema) {
  switch (node.kind) {
    case ConditionNode::Kind::kCompare: {
      NF2_ASSIGN_OR_RETURN(size_t attr, schema.RequireIndex(node.attribute));
      CompareOp op;
      if (node.op == "=") {
        op = CompareOp::kEq;
      } else if (node.op == "!=") {
        op = CompareOp::kNe;
      } else if (node.op == "<") {
        op = CompareOp::kLt;
      } else if (node.op == "<=") {
        op = CompareOp::kLe;
      } else if (node.op == ">") {
        op = CompareOp::kGt;
      } else if (node.op == ">=") {
        op = CompareOp::kGe;
      } else {
        return Status::InvalidArgument(
            StrCat("unknown comparison '", node.op, "'"));
      }
      return Predicate::Compare(attr, op, node.literal);
    }
    case ConditionNode::Kind::kAnd: {
      NF2_ASSIGN_OR_RETURN(Predicate left,
                           ResolveCondition(*node.left, schema));
      NF2_ASSIGN_OR_RETURN(Predicate right,
                           ResolveCondition(*node.right, schema));
      return Predicate::And(std::move(left), std::move(right));
    }
    case ConditionNode::Kind::kOr: {
      NF2_ASSIGN_OR_RETURN(Predicate left,
                           ResolveCondition(*node.left, schema));
      NF2_ASSIGN_OR_RETURN(Predicate right,
                           ResolveCondition(*node.right, schema));
      return Predicate::Or(std::move(left), std::move(right));
    }
    case ConditionNode::Kind::kNot: {
      NF2_ASSIGN_OR_RETURN(Predicate inner,
                           ResolveCondition(*node.left, schema));
      return Predicate::Not(std::move(inner));
    }
  }
  return Status::Internal("unhandled condition kind");
}

Result<SelectPlan> PlanSelect(const SelectStatement& stmt,
                              const CatalogView& catalog) {
  NF2_ASSIGN_OR_RETURN(BoundRelation base, catalog.Bind(stmt.name));
  const Schema& schema = base.info->schema;
  const ValueDictionary* frozen = catalog.frozen_dictionary();

  // Split the WHERE clause (single-relation case): top-level AND-ed
  // `attr = value` conjuncts become index restrictions, the rest a
  // residual filter. Joined queries resolve the whole clause against
  // the joined schema instead.
  std::vector<EqRestriction> eqs;
  std::optional<RangeRestriction> range;
  std::optional<Predicate> residual;
  if (stmt.where != nullptr && stmt.joins.empty()) {
    std::vector<const ConditionNode*> conjuncts;
    CollectConjuncts(*stmt.where, &conjuncts);
    // Range conjuncts become a bound-scan only when no equality conjunct
    // exists (point postings beat an interval walk) and the query is not
    // an aggregate (the factorized path evaluates residuals itself).
    bool any_eq = false;
    for (const ConditionNode* c : conjuncts) {
      any_eq = any_eq || (c->kind == ConditionNode::Kind::kCompare &&
                          c->op == "=");
    }
    const bool try_range = !any_eq && stmt.aggregates.empty();
    for (const ConditionNode* c : conjuncts) {
      if (c->kind == ConditionNode::Kind::kCompare && c->op == "=") {
        NF2_ASSIGN_OR_RETURN(size_t attr,
                             schema.RequireIndex(c->attribute));
        eqs.push_back({attr, c->literal});
        continue;
      }
      if (try_range && c->kind == ConditionNode::Kind::kCompare &&
          IsRangeOp(c->op)) {
        NF2_ASSIGN_OR_RETURN(size_t attr,
                             schema.RequireIndex(c->attribute));
        // All bounds on the first ranged attribute fold into one
        // interval; ranges on other attributes stay residual.
        if (!range.has_value()) range = RangeRestriction{attr, {}};
        if (range->attr == attr) {
          TightenBound(c->op, c->literal, &range->bound);
          continue;
        }
      }
      NF2_ASSIGN_OR_RETURN(Predicate p, ResolveCondition(*c, schema));
      residual = residual.has_value() ? Predicate::And(*residual, p) : p;
    }
  }

  // Base access path + joins + filter, as a row pipeline.
  auto make_row_source = [&]() -> Result<std::unique_ptr<PlanOp>> {
    std::unique_ptr<PlanOp> op;
    if (!eqs.empty()) {
      op = std::make_unique<IndexScanOp>(
          StrCat("index_scan(", stmt.name, ": ", EqListLabel(schema, eqs),
                 ")"),
          base.relation, frozen, eqs);
    } else if (range.has_value()) {
      op = std::make_unique<IndexRangeScanOp>(
          StrCat("index_range_scan(", stmt.name, ": ",
                 RangeLabel(schema, *range), ")"),
          base.relation, frozen, *range);
    } else {
      op = std::make_unique<SeqScanOp>(StrCat("scan(", stmt.name, ")"),
                                       &base.relation->relation());
    }
    if (residual.has_value()) {
      op = std::make_unique<FilterOp>(StrCat("filter(", stmt.name, ")"),
                                      std::move(op), *residual);
    }
    for (const std::string& join_name : stmt.joins) {
      NF2_ASSIGN_OR_RETURN(BoundRelation right, catalog.Bind(join_name));
      auto right_scan = std::make_unique<SeqScanOp>(
          StrCat("scan(", join_name, ")"), &right.relation->relation());
      op = std::make_unique<JoinOp>(StrCat("join(", join_name, ")"),
                                    std::move(op), std::move(right_scan));
    }
    if (stmt.where != nullptr && !stmt.joins.empty()) {
      NF2_ASSIGN_OR_RETURN(Predicate pred,
                           ResolveCondition(*stmt.where, op->schema()));
      op = std::make_unique<FilterOp>("filter", std::move(op), pred);
    }
    return op;
  };

  SelectPlan plan;
  std::unique_ptr<PlanOp> op;
  if (!stmt.aggregates.empty()) {
    // Factorized when nothing forces row-at-a-time evaluation: the
    // aggregate then runs straight over the NFR components and R* is
    // never expanded.
    const bool factorized = stmt.joins.empty() && !residual.has_value();
    if (factorized) {
      std::optional<size_t> group;
      if (!stmt.group_attr.empty()) {
        NF2_ASSIGN_OR_RETURN(size_t g, schema.RequireIndex(stmt.group_attr));
        group = g;
      }
      NF2_ASSIGN_OR_RETURN(std::vector<AggCompute> aggs,
                           ResolveAggregates(stmt.aggregates, schema));
      std::unique_ptr<NfrSourceOp> source;
      if (!eqs.empty()) {
        source = std::make_unique<NfrSourceOp>(
            StrCat("nfr_index_scan(", stmt.name, ": ",
                   EqListLabel(schema, eqs), ")"),
            base.relation, frozen, eqs);
      } else {
        source = std::make_unique<NfrSourceOp>(
            StrCat("nfr_scan(", stmt.name, ")"), &base.relation->relation());
      }
      Schema out_schema = AggregateOutputSchema(schema, group, aggs);
      op = std::make_unique<FactorizedAggregateOp>(
          StrCat("nfr_aggregate(", AggListLabel(stmt), ")"),
          std::move(source), group, std::move(aggs), std::move(out_schema));
      plan.grouped = group.has_value();
    } else {
      NF2_ASSIGN_OR_RETURN(std::unique_ptr<PlanOp> input, make_row_source());
      const Schema& in_schema = input->schema();
      std::optional<size_t> group;
      if (!stmt.group_attr.empty()) {
        NF2_ASSIGN_OR_RETURN(size_t g,
                             in_schema.RequireIndex(stmt.group_attr));
        group = g;
      }
      NF2_ASSIGN_OR_RETURN(std::vector<AggCompute> aggs,
                           ResolveAggregates(stmt.aggregates, in_schema));
      Schema out_schema = AggregateOutputSchema(in_schema, group, aggs);
      op = std::make_unique<AggregateOp>(
          StrCat("aggregate(", AggListLabel(stmt), ")"), std::move(input),
          group, std::move(aggs), std::move(out_schema));
      plan.grouped = group.has_value();
    }
    plan.aggregate = !plan.grouped;
  } else {
    NF2_ASSIGN_OR_RETURN(op, make_row_source());
    // ORDER BY may name a column the projection drops; sort below the
    // project in that case, while the key is still present. Projection
    // dedup streams in arrival order, so the sort survives it (the
    // first-seen row wins among projected duplicates).
    if (!stmt.order_attr.empty() && !stmt.columns.empty() &&
        std::find(stmt.columns.begin(), stmt.columns.end(),
                  stmt.order_attr) == stmt.columns.end()) {
      NF2_ASSIGN_OR_RETURN(size_t col,
                           op->schema().RequireIndex(stmt.order_attr));
      op = std::make_unique<SortOp>(
          StrCat("sort(", stmt.order_attr, stmt.order_desc ? " desc" : "",
                 ")"),
          std::move(op), col, stmt.order_desc);
      plan.ordered = true;
    }
    if (!stmt.columns.empty()) {
      std::vector<size_t> indices;
      indices.reserve(stmt.columns.size());
      for (const std::string& col : stmt.columns) {
        NF2_ASSIGN_OR_RETURN(size_t idx, op->schema().RequireIndex(col));
        indices.push_back(idx);
      }
      op = std::make_unique<ProjectOp>(
          StrCat("project(", Join(stmt.columns, ", "), ")"), std::move(op),
          std::move(indices));
    }
  }

  if (!stmt.order_attr.empty() && !plan.ordered) {
    // Aggregate output columns are named by their canonical labels, so
    // `ORDER BY COUNT(*)` resolves like any other column.
    NF2_ASSIGN_OR_RETURN(size_t col,
                         op->schema().RequireIndex(stmt.order_attr));
    op = std::make_unique<SortOp>(
        StrCat("sort(", stmt.order_attr, stmt.order_desc ? " desc" : "",
               ")"),
        std::move(op), col, stmt.order_desc);
    plan.ordered = true;
  }
  if (stmt.limit.has_value()) {
    op = std::make_unique<LimitOp>(StrCat("limit(", *stmt.limit, ")"),
                                   std::move(op), *stmt.limit);
  }
  plan.root = std::move(op);
  return plan;
}

std::optional<Value> EqualityConjunct(const ConditionNode* where,
                                      const std::string& attr) {
  if (where == nullptr) return std::nullopt;
  std::vector<const ConditionNode*> conjuncts;
  CollectConjuncts(*where, &conjuncts);
  for (const ConditionNode* c : conjuncts) {
    if (c->kind == ConditionNode::Kind::kCompare && c->op == "=" &&
        c->attribute == attr) {
      return c->literal;
    }
  }
  return std::nullopt;
}

}  // namespace nf2
