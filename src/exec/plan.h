#ifndef NF2_EXEC_PLAN_H_
#define NF2_EXEC_PLAN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "algebra/predicate.h"
#include "core/relation.h"
#include "core/update.h"
#include "nfrql/ast.h"

namespace nf2 {

/// One equality restriction an index-backed access path applies: the
/// component at position `attr` must contain `value`.
struct EqRestriction {
  size_t attr = 0;
  Value value;
};

/// One range restriction an index-backed access path applies: the
/// component at position `attr` must hold a value inside `bound`.
struct RangeRestriction {
  size_t attr = 0;
  RangeBound bound;
};

/// A Volcano-style plan operator: Open() once, Next() until it returns
/// false, Close(). Operators pull rows from their children; all fallible
/// work (name resolution, type checks) happens at plan time, so the
/// iteration surface is infallible.
///
/// Instrumentation: EnableTiming() (PROFILE only — untraced execution
/// pays no clock reads) accumulates per-operator wall time; rows_out()
/// and stats() are always maintained and become span attributes.
class PlanOp {
 public:
  virtual ~PlanOp() = default;
  PlanOp(const PlanOp&) = delete;
  PlanOp& operator=(const PlanOp&) = delete;

  const std::string& label() const { return label_; }
  const Schema& schema() const { return schema_; }
  const std::vector<std::unique_ptr<PlanOp>>& children() const {
    return children_;
  }

  /// Opens children first, then this operator (blocking operators
  /// consume their inputs here).
  void Open();

  /// Produces the next row into `*out`; false when exhausted.
  bool Next(FlatTuple* out);

  /// Closes this operator first, then its children. Per-execution state
  /// is released; counters and stats survive for span reporting.
  void Close();

  /// Turns on per-call wall-time accounting for this subtree.
  void EnableTiming();

  uint64_t rows_out() const { return rows_out_; }
  uint64_t elapsed_ns() const { return elapsed_ns_; }

  /// Extra per-operator span attributes (e.g. nfr_tuples, groups).
  const std::vector<std::pair<std::string, int64_t>>& stats() const {
    return stats_;
  }

 protected:
  PlanOp(std::string label, Schema schema)
      : label_(std::move(label)), schema_(std::move(schema)) {}

  virtual void OpenImpl() {}
  virtual bool NextImpl(FlatTuple* out) = 0;
  virtual void CloseImpl() {}

  /// Adopts `op` as the next child; returns the raw pointer for
  /// convenience.
  PlanOp* AddChild(std::unique_ptr<PlanOp> op);
  PlanOp* child(size_t i) const { return children_[i].get(); }

  /// Records (or overwrites) a named stat for span reporting.
  void SetStat(const std::string& key, int64_t value);

  /// Leaf operators that answer without emitting rows (the factorized
  /// aggregate's NFR source) report their logical output size here.
  void ReportRows(uint64_t rows) { rows_out_ = rows; }

 private:
  std::string label_;
  Schema schema_;
  std::vector<std::unique_ptr<PlanOp>> children_;
  std::vector<std::pair<std::string, int64_t>> stats_;
  bool timing_ = false;
  uint64_t rows_out_ = 0;
  uint64_t elapsed_ns_ = 0;
};

/// Shared scan machinery: walk the NFR tuples of a relation, expanding
/// each one lazily into its simple tuples. Subclasses choose the
/// relation in OpenImpl() and hand it to StartIteration().
class NfrExpandOpBase : public PlanOp {
 protected:
  using PlanOp::PlanOp;

  void StartIteration(const NfrRelation* rel);
  bool NextImpl(FlatTuple* out) final;
  void CloseImpl() override;

 private:
  const NfrRelation* rel_ = nullptr;
  size_t tuple_index_ = 0;
  std::vector<FlatTuple> buffer_;  // Expansion of the current NFR tuple.
  size_t buffer_pos_ = 0;
};

/// Full scan of a stored NFR: every tuple, expanded.
class SeqScanOp : public NfrExpandOpBase {
 public:
  SeqScanOp(std::string label, const NfrRelation* rel);

 protected:
  void OpenImpl() override;

 private:
  const NfrRelation* source_;
};

/// Computes the NFR tuples matching `eqs` against a canonical relation:
/// the first restriction is answered from the inverted index
/// (TuplesContaining / TuplesContainingId), the rest filter the
/// candidates, and every eq-restricted component is narrowed to the
/// singleton before expansion — R* is never materialized beyond the
/// matching fragment. `frozen_dict` non-null routes value resolution
/// through a snapshot's frozen dictionary.
NfrRelation IndexCandidates(const CanonicalRelation& rel,
                            const ValueDictionary* frozen_dict,
                            const std::vector<EqRestriction>& eqs);

/// Index-backed point selection: expands only the candidate fragment
/// computed by IndexCandidates.
class IndexScanOp : public NfrExpandOpBase {
 public:
  IndexScanOp(std::string label, const CanonicalRelation* rel,
              const ValueDictionary* frozen_dict,
              std::vector<EqRestriction> eqs);

 protected:
  void OpenImpl() override;
  void CloseImpl() override;

 private:
  const CanonicalRelation* source_;
  const ValueDictionary* frozen_dict_;
  std::vector<EqRestriction> eqs_;
  NfrRelation candidates_;
};

/// Computes the NFR tuples matching `range` against a canonical
/// relation via a bound-scan of the sorted index postings
/// (TuplesInRange), narrowing the ranged component to its in-bound
/// values before expansion. `frozen_dict` non-null marks a snapshot
/// read: the interned index orders ids through the LIVE dictionary,
/// which concurrent writers mutate, so that case scans the frozen
/// tuples directly instead.
NfrRelation RangeCandidates(const CanonicalRelation& rel,
                            const ValueDictionary* frozen_dict,
                            const RangeRestriction& range);

/// Index-backed range selection: expands only the candidate fragment
/// computed by RangeCandidates.
class IndexRangeScanOp : public NfrExpandOpBase {
 public:
  IndexRangeScanOp(std::string label, const CanonicalRelation* rel,
                   const ValueDictionary* frozen_dict, RangeRestriction range);

 protected:
  void OpenImpl() override;
  void CloseImpl() override;

 private:
  const CanonicalRelation* source_;
  const ValueDictionary* frozen_dict_;
  RangeRestriction range_;
  NfrRelation candidates_;
};

/// Drops rows failing `pred`.
class FilterOp : public PlanOp {
 public:
  FilterOp(std::string label, std::unique_ptr<PlanOp> input, Predicate pred);

 protected:
  bool NextImpl(FlatTuple* out) override;

 private:
  Predicate pred_;
};

/// Projects to the attributes at `indices`, deduplicating (set
/// semantics, like the algebra's ProjectByName).
class ProjectOp : public PlanOp {
 public:
  ProjectOp(std::string label, std::unique_ptr<PlanOp> input,
            std::vector<size_t> indices);

 protected:
  bool NextImpl(FlatTuple* out) override;
  void CloseImpl() override;

 private:
  std::vector<size_t> indices_;
  std::unordered_set<FlatTuple> seen_;
};

/// Natural hash join: materializes the right child into a hash table
/// keyed on the shared attributes at Open, then streams the left child.
/// Output schema: left attributes, then the right's non-shared ones.
class JoinOp : public PlanOp {
 public:
  JoinOp(std::string label, std::unique_ptr<PlanOp> left,
         std::unique_ptr<PlanOp> right);

 protected:
  void OpenImpl() override;
  bool NextImpl(FlatTuple* out) override;
  void CloseImpl() override;

 private:
  std::vector<size_t> left_key_;     // Shared attrs, left positions.
  std::vector<size_t> right_key_;    // Shared attrs, right positions.
  std::vector<size_t> right_extra_;  // Right positions appended to output.
  std::unordered_map<FlatTuple, std::vector<FlatTuple>> table_;
  FlatTuple left_row_;
  const std::vector<FlatTuple>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

/// One aggregate call resolved against an input schema.
struct AggCompute {
  AggSpec spec;
  size_t attr = 0;  // Input position; unused for COUNT(*).
  ValueType type = ValueType::kString;  // Input attribute type.
};

/// Accumulator shared by the row-based and factorized aggregates.
struct AggState {
  uint64_t count = 0;          // COUNT(*).
  std::set<Value> distinct;    // COUNT(attr) — distinct set semantics.
  int64_t isum = 0;            // SUM over kInt.
  double dsum = 0;             // SUM over kDouble.
  std::optional<Value> extreme;  // MIN/MAX.
};

/// Finalizes one aggregate's accumulator into its output value.
Value AggResult(const AggCompute& agg, const AggState& state);

/// Row-based aggregation (the fallback when residual predicates or
/// joins force full row streams): drains its child at Open, grouping by
/// `group_attr` when set.
class AggregateOp : public PlanOp {
 public:
  AggregateOp(std::string label, std::unique_ptr<PlanOp> input,
              std::optional<size_t> group_attr, std::vector<AggCompute> aggs,
              Schema output_schema);

 protected:
  void OpenImpl() override;
  bool NextImpl(FlatTuple* out) override;
  void CloseImpl() override;

 private:
  std::optional<size_t> group_;
  std::vector<AggCompute> aggs_;
  std::vector<FlatTuple> results_;
  size_t pos_ = 0;
};

/// Access-path leaf for the factorized aggregate: produces NFR tuples,
/// not rows — the parent reads them via nfr(). With eq restrictions it
/// materializes the index-selected candidate fragment; without, it
/// borrows the stored relation by reference (materialized=0 — the
/// aggregate runs over the factorized form with zero copying).
class NfrSourceOp : public PlanOp {
 public:
  /// Borrowing form (no restrictions).
  NfrSourceOp(std::string label, const NfrRelation* rel);

  /// Index-restricted form.
  NfrSourceOp(std::string label, const CanonicalRelation* rel,
              const ValueDictionary* frozen_dict,
              std::vector<EqRestriction> eqs);

  /// Valid between Open and Close.
  const NfrRelation* nfr() const { return nfr_; }

 protected:
  void OpenImpl() override;
  bool NextImpl(FlatTuple*) override { return false; }
  void CloseImpl() override;

 private:
  const NfrRelation* borrowed_ = nullptr;
  const CanonicalRelation* source_ = nullptr;
  const ValueDictionary* frozen_dict_ = nullptr;
  std::vector<EqRestriction> eqs_;
  NfrRelation candidates_;
  const NfrRelation* nfr_ = nullptr;
};

/// Factorized aggregation straight over the NFR (DESIGN.md §10): since
/// expansions of distinct tuples are pairwise disjoint, COUNT(*) is
/// Σ_t Π_j |D_j,t| and SUM(b) is Σ_t (Σ_{v∈D_b,t} v)·Π_{j≠b} |D_j,t| —
/// no simple tuple is ever materialized. Child 0 must be an
/// NfrSourceOp.
class FactorizedAggregateOp : public PlanOp {
 public:
  FactorizedAggregateOp(std::string label, std::unique_ptr<NfrSourceOp> source,
                        std::optional<size_t> group_attr,
                        std::vector<AggCompute> aggs, Schema output_schema);

 protected:
  void OpenImpl() override;
  bool NextImpl(FlatTuple* out) override;
  void CloseImpl() override;

 private:
  NfrSourceOp* source_;  // == children()[0].
  std::optional<size_t> group_;
  std::vector<AggCompute> aggs_;
  std::vector<FlatTuple> results_;
  size_t pos_ = 0;
};

/// ORDER BY one output column: drains its child at Open and
/// stable-sorts (ties keep pipeline order).
class SortOp : public PlanOp {
 public:
  SortOp(std::string label, std::unique_ptr<PlanOp> input, size_t col,
         bool desc);

 protected:
  void OpenImpl() override;
  bool NextImpl(FlatTuple* out) override;
  void CloseImpl() override;

 private:
  size_t col_;
  bool desc_;
  std::vector<FlatTuple> rows_;
  size_t pos_ = 0;
};

/// Emits at most `limit` rows.
class LimitOp : public PlanOp {
 public:
  LimitOp(std::string label, std::unique_ptr<PlanOp> input, uint64_t limit);

 protected:
  bool NextImpl(FlatTuple* out) override;
  void CloseImpl() override;

 private:
  uint64_t limit_;
  uint64_t emitted_ = 0;
};

}  // namespace nf2

#endif  // NF2_EXEC_PLAN_H_
