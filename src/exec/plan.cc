#include "exec/plan.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "util/logging.h"

namespace nf2 {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr size_t kNoSkip = std::numeric_limits<size_t>::max();

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a != 0 && b > std::numeric_limits<uint64_t>::max() / a) {
    return std::numeric_limits<uint64_t>::max();
  }
  return a * b;
}

/// Product of component sizes of `t`, skipping up to two positions —
/// the factorized multiplier for the attributes NOT being aggregated or
/// grouped (expansions of distinct NFR tuples are disjoint, so these
/// products sum exactly).
uint64_t ProductExcept(const NfrTuple& t, size_t skip_a, size_t skip_b) {
  uint64_t product = 1;
  for (size_t j = 0; j < t.degree(); ++j) {
    if (j == skip_a || j == skip_b) continue;
    product = SatMul(product, t.at(j).size());
  }
  return product;
}

/// Folds one row of input into the row-based accumulators.
void FoldRow(const FlatTuple& row, const std::vector<AggCompute>& aggs,
             std::vector<AggState>* states) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggCompute& agg = aggs[i];
    AggState& s = (*states)[i];
    switch (agg.spec.func) {
      case AggSpec::Func::kCountStar:
        ++s.count;
        break;
      case AggSpec::Func::kCount:
        s.distinct.insert(row.at(agg.attr));
        break;
      case AggSpec::Func::kSum:
        if (agg.type == ValueType::kInt) {
          s.isum += row.at(agg.attr).AsInt();
        } else {
          s.dsum += row.at(agg.attr).AsDouble();
        }
        break;
      case AggSpec::Func::kMin:
        if (!s.extreme.has_value() || row.at(agg.attr) < *s.extreme) {
          s.extreme = row.at(agg.attr);
        }
        break;
      case AggSpec::Func::kMax:
        if (!s.extreme.has_value() || row.at(agg.attr) > *s.extreme) {
          s.extreme = row.at(agg.attr);
        }
        break;
    }
  }
}

/// Folds one NFR tuple into the accumulators without expanding it.
/// With a group attribute, `group_value` is the group element being
/// accumulated (one call per element of the group component); without,
/// pass kNoSkip/nullptr.
void FoldFactorized(const NfrTuple& t, size_t group, const Value* group_value,
                    const std::vector<AggCompute>& aggs,
                    std::vector<AggState>* states) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    const AggCompute& agg = aggs[i];
    AggState& s = (*states)[i];
    const bool agg_is_group = group != kNoSkip && agg.attr == group &&
                              agg.spec.func != AggSpec::Func::kCountStar;
    switch (agg.spec.func) {
      case AggSpec::Func::kCountStar:
        s.count += ProductExcept(t, group, kNoSkip);
        break;
      case AggSpec::Func::kCount:
        if (agg_is_group) {
          s.distinct.insert(*group_value);
        } else {
          for (const Value& v : t.at(agg.attr).values()) {
            s.distinct.insert(v);
          }
        }
        break;
      case AggSpec::Func::kSum: {
        if (agg.type == ValueType::kInt) {
          int64_t base = 0;
          if (agg_is_group) {
            base = group_value->AsInt();
          } else {
            for (const Value& v : t.at(agg.attr).values()) base += v.AsInt();
          }
          s.isum += base * static_cast<int64_t>(ProductExcept(
                               t, group, agg_is_group ? kNoSkip : agg.attr));
        } else {
          double base = 0;
          if (agg_is_group) {
            base = group_value->AsDouble();
          } else {
            for (const Value& v : t.at(agg.attr).values()) {
              base += v.AsDouble();
            }
          }
          s.dsum += base * static_cast<double>(ProductExcept(
                               t, group, agg_is_group ? kNoSkip : agg.attr));
        }
        break;
      }
      case AggSpec::Func::kMin: {
        const Value& candidate =
            agg_is_group ? *group_value : t.at(agg.attr).values().front();
        if (!s.extreme.has_value() || candidate < *s.extreme) {
          s.extreme = candidate;
        }
        break;
      }
      case AggSpec::Func::kMax: {
        const Value& candidate =
            agg_is_group ? *group_value : t.at(agg.attr).values().back();
        if (!s.extreme.has_value() || candidate > *s.extreme) {
          s.extreme = candidate;
        }
        break;
      }
    }
  }
}

/// Builds the output rows from grouped (or global) accumulators.
std::vector<FlatTuple> FinalizeAggregates(
    const std::optional<size_t>& group, const std::vector<AggCompute>& aggs,
    const std::map<Value, std::vector<AggState>>& groups,
    const std::vector<AggState>& global) {
  std::vector<FlatTuple> out;
  if (group.has_value()) {
    out.reserve(groups.size());
    for (const auto& [key, states] : groups) {
      std::vector<Value> row;
      row.reserve(1 + aggs.size());
      row.push_back(key);
      for (size_t i = 0; i < aggs.size(); ++i) {
        row.push_back(AggResult(aggs[i], states[i]));
      }
      out.push_back(FlatTuple(std::move(row)));
    }
    return out;
  }
  std::vector<Value> row;
  row.reserve(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    row.push_back(AggResult(aggs[i], global[i]));
  }
  out.push_back(FlatTuple(std::move(row)));
  return out;
}

FlatTuple ExtractKey(const FlatTuple& row, const std::vector<size_t>& cols) {
  std::vector<Value> key;
  key.reserve(cols.size());
  for (size_t c : cols) key.push_back(row.at(c));
  return FlatTuple(std::move(key));
}

Schema JoinSchema(const Schema& left, const Schema& right) {
  std::vector<Attribute> attrs = left.attributes();
  for (const Attribute& a : right.attributes()) {
    if (!left.IndexOf(a.name).has_value()) attrs.push_back(a);
  }
  return Schema(std::move(attrs));
}

}  // namespace

// --- PlanOp ---------------------------------------------------------------

void PlanOp::Open() {
  for (auto& c : children_) c->Open();
  if (timing_) {
    const uint64_t start = NowNs();
    OpenImpl();
    elapsed_ns_ += NowNs() - start;
  } else {
    OpenImpl();
  }
}

bool PlanOp::Next(FlatTuple* out) {
  bool has_row;
  if (timing_) {
    const uint64_t start = NowNs();
    has_row = NextImpl(out);
    elapsed_ns_ += NowNs() - start;
  } else {
    has_row = NextImpl(out);
  }
  if (has_row) ++rows_out_;
  return has_row;
}

void PlanOp::Close() {
  CloseImpl();
  for (auto& c : children_) c->Close();
}

void PlanOp::EnableTiming() {
  timing_ = true;
  for (auto& c : children_) c->EnableTiming();
}

PlanOp* PlanOp::AddChild(std::unique_ptr<PlanOp> op) {
  children_.push_back(std::move(op));
  return children_.back().get();
}

void PlanOp::SetStat(const std::string& key, int64_t value) {
  for (auto& [k, v] : stats_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  stats_.emplace_back(key, value);
}

// --- Scans ----------------------------------------------------------------

void NfrExpandOpBase::StartIteration(const NfrRelation* rel) {
  rel_ = rel;
  tuple_index_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
}

bool NfrExpandOpBase::NextImpl(FlatTuple* out) {
  while (true) {
    if (buffer_pos_ < buffer_.size()) {
      *out = buffer_[buffer_pos_++];
      return true;
    }
    if (rel_ == nullptr || tuple_index_ >= rel_->size()) return false;
    buffer_ = rel_->tuple(tuple_index_++).Expand();
    buffer_pos_ = 0;
  }
}

void NfrExpandOpBase::CloseImpl() {
  rel_ = nullptr;
  tuple_index_ = 0;
  std::vector<FlatTuple>().swap(buffer_);
  buffer_pos_ = 0;
}

SeqScanOp::SeqScanOp(std::string label, const NfrRelation* rel)
    : NfrExpandOpBase(std::move(label), rel->schema()), source_(rel) {}

void SeqScanOp::OpenImpl() {
  SetStat("nfr_tuples", static_cast<int64_t>(source_->size()));
  StartIteration(source_);
}

NfrRelation IndexCandidates(const CanonicalRelation& rel,
                            const ValueDictionary* frozen_dict,
                            const std::vector<EqRestriction>& eqs) {
  NF2_CHECK(!eqs.empty());
  // The first restriction is answered from the postings; the rest
  // filter its candidates by membership.
  NfrRelation candidates;
  if (frozen_dict != nullptr) {
    std::optional<ValueId> id = frozen_dict->Find(eqs[0].value);
    candidates = id.has_value()
                     ? rel.TuplesContainingId(eqs[0].attr, *id)
                     : NfrRelation(rel.schema());
  } else {
    candidates = rel.TuplesContaining(eqs[0].attr, eqs[0].value);
  }
  NfrRelation out(rel.schema());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const NfrTuple& t = candidates.tuple(i);
    bool all = true;
    for (size_t j = 1; j < eqs.size() && all; ++j) {
      all = t.at(eqs[j].attr).Contains(eqs[j].value);
    }
    if (!all) continue;
    // Narrow every restricted component to the matched singleton: the
    // tuple's expansion is then exactly the selected fragment of R*.
    NfrTuple restricted = t;
    for (const EqRestriction& eq : eqs) {
      restricted.at(eq.attr) = ValueSet(eq.value);
    }
    out.Add(std::move(restricted));
  }
  return out;
}

IndexScanOp::IndexScanOp(std::string label, const CanonicalRelation* rel,
                         const ValueDictionary* frozen_dict,
                         std::vector<EqRestriction> eqs)
    : NfrExpandOpBase(std::move(label), rel->schema()),
      source_(rel),
      frozen_dict_(frozen_dict),
      eqs_(std::move(eqs)) {}

void IndexScanOp::OpenImpl() {
  candidates_ = IndexCandidates(*source_, frozen_dict_, eqs_);
  SetStat("nfr_tuples", static_cast<int64_t>(candidates_.size()));
  StartIteration(&candidates_);
}

void IndexScanOp::CloseImpl() {
  NfrExpandOpBase::CloseImpl();
  candidates_ = NfrRelation(source_->schema());
}

NfrRelation RangeCandidates(const CanonicalRelation& rel,
                            const ValueDictionary* frozen_dict,
                            const RangeRestriction& range) {
  NfrRelation matches(rel.schema());
  if (frozen_dict != nullptr && rel.dictionary() != nullptr) {
    // Snapshot read over an interned relation: the index's range scan
    // would order ids via the live dictionary, so scan the frozen
    // tuples instead.
    for (const NfrTuple& t : rel.relation().tuples()) {
      for (const Value& v : t.at(range.attr).values()) {
        if (range.bound.Admits(v)) {
          matches.Add(t);
          break;
        }
      }
    }
  } else {
    matches = rel.TuplesInRange(range.attr, range.bound);
  }
  // Narrow the ranged component to its in-bound values: the tuple's
  // expansion is then exactly the selected fragment of R*.
  NfrRelation out(rel.schema());
  for (size_t i = 0; i < matches.size(); ++i) {
    const NfrTuple& t = matches.tuple(i);
    std::vector<Value> keep;
    for (const Value& v : t.at(range.attr).values()) {
      if (range.bound.Admits(v)) keep.push_back(v);
    }
    if (keep.empty()) continue;
    NfrTuple restricted = t;
    restricted.at(range.attr) = ValueSet::FromSortedUnique(std::move(keep));
    out.Add(std::move(restricted));
  }
  return out;
}

IndexRangeScanOp::IndexRangeScanOp(std::string label,
                                   const CanonicalRelation* rel,
                                   const ValueDictionary* frozen_dict,
                                   RangeRestriction range)
    : NfrExpandOpBase(std::move(label), rel->schema()),
      source_(rel),
      frozen_dict_(frozen_dict),
      range_(std::move(range)) {}

void IndexRangeScanOp::OpenImpl() {
  candidates_ = RangeCandidates(*source_, frozen_dict_, range_);
  SetStat("nfr_tuples", static_cast<int64_t>(candidates_.size()));
  StartIteration(&candidates_);
}

void IndexRangeScanOp::CloseImpl() {
  NfrExpandOpBase::CloseImpl();
  candidates_ = NfrRelation(source_->schema());
}

// --- Row transforms -------------------------------------------------------

FilterOp::FilterOp(std::string label, std::unique_ptr<PlanOp> input,
                   Predicate pred)
    : PlanOp(std::move(label), input->schema()), pred_(std::move(pred)) {
  AddChild(std::move(input));
}

bool FilterOp::NextImpl(FlatTuple* out) {
  while (child(0)->Next(out)) {
    if (pred_.EvalFlat(*out)) return true;
  }
  return false;
}

ProjectOp::ProjectOp(std::string label, std::unique_ptr<PlanOp> input,
                     std::vector<size_t> indices)
    : PlanOp(std::move(label), input->schema().Project(indices)),
      indices_(std::move(indices)) {
  AddChild(std::move(input));
}

bool ProjectOp::NextImpl(FlatTuple* out) {
  FlatTuple row;
  while (child(0)->Next(&row)) {
    FlatTuple projected = ExtractKey(row, indices_);
    if (seen_.insert(projected).second) {
      *out = std::move(projected);
      return true;
    }
  }
  return false;
}

void ProjectOp::CloseImpl() { seen_.clear(); }

JoinOp::JoinOp(std::string label, std::unique_ptr<PlanOp> left,
               std::unique_ptr<PlanOp> right)
    : PlanOp(std::move(label),
             JoinSchema(left->schema(), right->schema())) {
  const Schema& ls = left->schema();
  const Schema& rs = right->schema();
  for (size_t j = 0; j < rs.degree(); ++j) {
    std::optional<size_t> li = ls.IndexOf(rs.attribute(j).name);
    if (li.has_value()) {
      left_key_.push_back(*li);
      right_key_.push_back(j);
    } else {
      right_extra_.push_back(j);
    }
  }
  AddChild(std::move(left));
  AddChild(std::move(right));
}

void JoinOp::OpenImpl() {
  FlatTuple row;
  while (child(1)->Next(&row)) {
    table_[ExtractKey(row, right_key_)].push_back(row);
  }
  SetStat("build_rows", static_cast<int64_t>(child(1)->rows_out()));
}

bool JoinOp::NextImpl(FlatTuple* out) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      const FlatTuple& right = (*matches_)[match_pos_++];
      std::vector<Value> values = left_row_.values();
      values.reserve(values.size() + right_extra_.size());
      for (size_t j : right_extra_) values.push_back(right.at(j));
      *out = FlatTuple(std::move(values));
      return true;
    }
    if (!child(0)->Next(&left_row_)) return false;
    auto it = table_.find(ExtractKey(left_row_, left_key_));
    matches_ = it == table_.end() ? nullptr : &it->second;
    match_pos_ = 0;
  }
}

void JoinOp::CloseImpl() {
  table_.clear();
  matches_ = nullptr;
  match_pos_ = 0;
}

// --- Aggregation ----------------------------------------------------------

Value AggResult(const AggCompute& agg, const AggState& state) {
  switch (agg.spec.func) {
    case AggSpec::Func::kCountStar:
      return Value::Int(static_cast<int64_t>(state.count));
    case AggSpec::Func::kCount:
      return Value::Int(static_cast<int64_t>(state.distinct.size()));
    case AggSpec::Func::kSum:
      return agg.type == ValueType::kInt ? Value::Int(state.isum)
                                         : Value::Double(state.dsum);
    case AggSpec::Func::kMin:
    case AggSpec::Func::kMax:
      return state.extreme.value_or(Value::Null());
  }
  return Value::Null();
}

AggregateOp::AggregateOp(std::string label, std::unique_ptr<PlanOp> input,
                         std::optional<size_t> group_attr,
                         std::vector<AggCompute> aggs, Schema output_schema)
    : PlanOp(std::move(label), std::move(output_schema)),
      group_(group_attr),
      aggs_(std::move(aggs)) {
  AddChild(std::move(input));
}

void AggregateOp::OpenImpl() {
  std::map<Value, std::vector<AggState>> groups;
  std::vector<AggState> global(aggs_.size());
  FlatTuple row;
  while (child(0)->Next(&row)) {
    if (group_.has_value()) {
      auto [it, inserted] = groups.try_emplace(row.at(*group_));
      if (inserted) it->second.resize(aggs_.size());
      FoldRow(row, aggs_, &it->second);
    } else {
      FoldRow(row, aggs_, &global);
    }
  }
  if (group_.has_value()) {
    SetStat("groups", static_cast<int64_t>(groups.size()));
  }
  results_ = FinalizeAggregates(group_, aggs_, groups, global);
  pos_ = 0;
}

bool AggregateOp::NextImpl(FlatTuple* out) {
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

void AggregateOp::CloseImpl() {
  std::vector<FlatTuple>().swap(results_);
  pos_ = 0;
}

NfrSourceOp::NfrSourceOp(std::string label, const NfrRelation* rel)
    : PlanOp(std::move(label), rel->schema()), borrowed_(rel) {}

NfrSourceOp::NfrSourceOp(std::string label, const CanonicalRelation* rel,
                         const ValueDictionary* frozen_dict,
                         std::vector<EqRestriction> eqs)
    : PlanOp(std::move(label), rel->schema()),
      source_(rel),
      frozen_dict_(frozen_dict),
      eqs_(std::move(eqs)) {}

void NfrSourceOp::OpenImpl() {
  if (borrowed_ != nullptr) {
    nfr_ = borrowed_;
    SetStat("materialized", 0);
  } else {
    candidates_ = IndexCandidates(*source_, frozen_dict_, eqs_);
    nfr_ = &candidates_;
    SetStat("materialized", 1);
  }
  ReportRows(nfr_->size());
}

void NfrSourceOp::CloseImpl() {
  nfr_ = nullptr;
  if (source_ != nullptr) candidates_ = NfrRelation(source_->schema());
}

FactorizedAggregateOp::FactorizedAggregateOp(
    std::string label, std::unique_ptr<NfrSourceOp> source,
    std::optional<size_t> group_attr, std::vector<AggCompute> aggs,
    Schema output_schema)
    : PlanOp(std::move(label), std::move(output_schema)),
      group_(group_attr),
      aggs_(std::move(aggs)) {
  source_ = static_cast<NfrSourceOp*>(AddChild(std::move(source)));
}

void FactorizedAggregateOp::OpenImpl() {
  const NfrRelation& rel = *source_->nfr();
  std::map<Value, std::vector<AggState>> groups;
  std::vector<AggState> global(aggs_.size());
  for (size_t i = 0; i < rel.size(); ++i) {
    const NfrTuple& t = rel.tuple(i);
    if (group_.has_value()) {
      for (const Value& gv : t.at(*group_).values()) {
        auto [it, inserted] = groups.try_emplace(gv);
        if (inserted) it->second.resize(aggs_.size());
        FoldFactorized(t, *group_, &gv, aggs_, &it->second);
      }
    } else {
      FoldFactorized(t, kNoSkip, nullptr, aggs_, &global);
    }
  }
  if (group_.has_value()) {
    SetStat("groups", static_cast<int64_t>(groups.size()));
  }
  results_ = FinalizeAggregates(group_, aggs_, groups, global);
  pos_ = 0;
}

bool FactorizedAggregateOp::NextImpl(FlatTuple* out) {
  if (pos_ >= results_.size()) return false;
  *out = results_[pos_++];
  return true;
}

void FactorizedAggregateOp::CloseImpl() {
  std::vector<FlatTuple>().swap(results_);
  pos_ = 0;
}

// --- Ordering -------------------------------------------------------------

SortOp::SortOp(std::string label, std::unique_ptr<PlanOp> input, size_t col,
               bool desc)
    : PlanOp(std::move(label), input->schema()), col_(col), desc_(desc) {
  AddChild(std::move(input));
}

void SortOp::OpenImpl() {
  FlatTuple row;
  while (child(0)->Next(&row)) rows_.push_back(std::move(row));
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const FlatTuple& a, const FlatTuple& b) {
                     return desc_ ? b.at(col_) < a.at(col_)
                                  : a.at(col_) < b.at(col_);
                   });
  pos_ = 0;
}

bool SortOp::NextImpl(FlatTuple* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

void SortOp::CloseImpl() {
  std::vector<FlatTuple>().swap(rows_);
  pos_ = 0;
}

LimitOp::LimitOp(std::string label, std::unique_ptr<PlanOp> input,
                 uint64_t limit)
    : PlanOp(std::move(label), input->schema()), limit_(limit) {
  AddChild(std::move(input));
}

bool LimitOp::NextImpl(FlatTuple* out) {
  if (emitted_ >= limit_) return false;
  if (!child(0)->Next(out)) return false;
  ++emitted_;
  return true;
}

void LimitOp::CloseImpl() { emitted_ = 0; }

}  // namespace nf2
