#ifndef NF2_EXEC_PLANNER_H_
#define NF2_EXEC_PLANNER_H_

#include <memory>
#include <optional>
#include <string>

#include "catalog/catalog.h"
#include "core/update.h"
#include "exec/plan.h"
#include "nfrql/ast.h"
#include "util/result.h"

namespace nf2 {

/// One relation resolved against a catalog: its metadata plus the
/// canonical-form container whose inverted index the planner consults.
struct BoundRelation {
  const RelationInfo* info = nullptr;
  const CanonicalRelation* relation = nullptr;
};

/// The planner's window onto a catalog — the live database or a pinned
/// snapshot. Pointers returned by Bind must stay valid for the plan's
/// lifetime (live: the engine's relation map is node-stable; snapshot:
/// the caller pins the snapshot while executing).
class CatalogView {
 public:
  virtual ~CatalogView() = default;

  virtual Result<BoundRelation> Bind(const std::string& name) const = 0;

  /// Non-null when point lookups must resolve literals against a
  /// frozen dictionary (snapshot reads) instead of the live one.
  virtual const ValueDictionary* frozen_dictionary() const = 0;
};

/// A compiled SELECT: the operator tree plus how its rows render.
struct SelectPlan {
  std::unique_ptr<PlanOp> root;
  bool grouped = false;    // GROUP BY: "g\tv..." lines + "N group(s)".
  bool aggregate = false;  // Ungrouped aggregates: one bare row.
  bool ordered = false;    // ORDER BY: keep pipeline row order.
};

/// Rule-based planning of a SELECT against `catalog` (DESIGN.md §10):
///  - top-level AND-ed `attr = value` conjuncts become an IndexScan
///    (posting lookup + component narrowing), the residual a Filter;
///  - aggregates with no joins and no residual run factorized over the
///    NFR (never expanding R*), otherwise over the row stream;
///  - joins hash-build their right side; ORDER BY/LIMIT cap the tree.
Result<SelectPlan> PlanSelect(const SelectStatement& stmt,
                              const CatalogView& catalog);

/// Resolves a parsed WHERE tree against `schema` into a Predicate.
Result<Predicate> ResolveCondition(const ConditionNode& node,
                                   const Schema& schema);

/// Partition-pruning hook: the literal of a top-level AND-ed
/// `attr = literal` conjunct in `where`, or nullopt when no such
/// conjunct exists (or `where` is null). A statement whose WHERE pins
/// the partition attribute this way can only match rows on the shard
/// that value hashes to — the shard router's point-routing test.
std::optional<Value> EqualityConjunct(const ConditionNode* where,
                                      const std::string& attr);

}  // namespace nf2

#endif  // NF2_EXEC_PLANNER_H_
