#include "catalog/catalog.h"

#include "util/string_util.h"

namespace nf2 {

FdSet RelationInfo::fd_set() const {
  return FdSet(schema.degree(), fds);
}

MvdSet RelationInfo::mvd_set() const {
  return MvdSet(schema.degree(), mvds);
}

void EncodeRelationInfo(const RelationInfo& info, BufferWriter* out) {
  out->PutString(info.name);
  EncodeSchema(info.schema, out);
  out->PutU32(static_cast<uint32_t>(info.nest_order.size()));
  for (size_t p : info.nest_order) out->PutU32(static_cast<uint32_t>(p));
  out->PutU32(static_cast<uint32_t>(info.fds.size()));
  for (const Fd& fd : info.fds) {
    out->PutU64(fd.lhs.mask());
    out->PutU64(fd.rhs.mask());
  }
  out->PutU32(static_cast<uint32_t>(info.mvds.size()));
  for (const Mvd& mvd : info.mvds) {
    out->PutU64(mvd.lhs.mask());
    out->PutU64(mvd.rhs.mask());
  }
  out->PutString(info.table_file);
}

namespace {
AttrSet AttrSetFromMask(uint64_t mask) {
  AttrSet out;
  for (size_t i = 0; i < AttrSet::kMaxAttrs; ++i) {
    if ((mask >> i) & 1) out.Add(i);
  }
  return out;
}
}  // namespace

Result<RelationInfo> DecodeRelationInfo(BufferReader* in) {
  RelationInfo info;
  NF2_ASSIGN_OR_RETURN(info.name, in->GetString());
  NF2_ASSIGN_OR_RETURN(info.schema, DecodeSchema(in));
  NF2_ASSIGN_OR_RETURN(uint32_t order_len, in->GetU32());
  if (order_len > AttrSet::kMaxAttrs) {
    return Status::Corruption("nest order too long");
  }
  for (uint32_t i = 0; i < order_len; ++i) {
    NF2_ASSIGN_OR_RETURN(uint32_t p, in->GetU32());
    info.nest_order.push_back(p);
  }
  if (!IsValidPermutation(info.nest_order, info.schema.degree())) {
    return Status::Corruption("stored nest order is not a permutation");
  }
  NF2_ASSIGN_OR_RETURN(uint32_t fd_count, in->GetU32());
  if (fd_count > in->remaining()) {
    return Status::Corruption("fd count exceeds buffer");
  }
  for (uint32_t i = 0; i < fd_count; ++i) {
    NF2_ASSIGN_OR_RETURN(uint64_t lhs, in->GetU64());
    NF2_ASSIGN_OR_RETURN(uint64_t rhs, in->GetU64());
    info.fds.push_back(Fd{AttrSetFromMask(lhs), AttrSetFromMask(rhs)});
  }
  NF2_ASSIGN_OR_RETURN(uint32_t mvd_count, in->GetU32());
  if (mvd_count > in->remaining()) {
    return Status::Corruption("mvd count exceeds buffer");
  }
  for (uint32_t i = 0; i < mvd_count; ++i) {
    NF2_ASSIGN_OR_RETURN(uint64_t lhs, in->GetU64());
    NF2_ASSIGN_OR_RETURN(uint64_t rhs, in->GetU64());
    info.mvds.push_back(Mvd{AttrSetFromMask(lhs), AttrSetFromMask(rhs)});
  }
  NF2_ASSIGN_OR_RETURN(info.table_file, in->GetString());
  return info;
}

bool Catalog::Has(const std::string& name) const {
  return relations_.count(name) > 0;
}

Result<const RelationInfo*> Catalog::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound(StrCat("relation '", name, "' not in catalog"));
  }
  return &it->second;
}

Status Catalog::Add(RelationInfo info) {
  if (relations_.count(info.name)) {
    return Status::AlreadyExists(
        StrCat("relation '", info.name, "' already exists"));
  }
  if (!IsValidPermutation(info.nest_order, info.schema.degree())) {
    return Status::InvalidArgument("nest order is not a permutation");
  }
  relations_.emplace(info.name, std::move(info));
  return Status::OK();
}

Status Catalog::Remove(const std::string& name) {
  if (relations_.erase(name) == 0) {
    return Status::NotFound(StrCat("relation '", name, "' not in catalog"));
  }
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, info] : relations_) {
    out.push_back(name);
  }
  return out;
}

Status Catalog::SaveToFile(Env* env, const std::string& path) const {
  BufferWriter out;
  out.PutU32(0x4e463243);  // "NF2C".
  out.PutU32(static_cast<uint32_t>(relations_.size()));
  for (const auto& [name, info] : relations_) {
    EncodeRelationInfo(info, &out);
  }
  out.PutU32(Crc32(out.data()));
  // Never truncate the live catalog in place: a crash between truncate
  // and write would lose every relation.
  return env->WriteFileAtomic(path, out.data());
}

Result<Catalog> Catalog::LoadFromFile(Env* env, const std::string& path) {
  if (!env->FileExists(path)) {
    return Status::NotFound(StrCat("catalog not found at ", path));
  }
  NF2_ASSIGN_OR_RETURN(std::string contents, env->ReadFileToString(path));
  if (contents.size() < 12) {
    return Status::Corruption("catalog too small");
  }
  std::string_view body(contents.data(), contents.size() - 4);
  BufferReader crc_reader(
      std::string_view(contents.data() + contents.size() - 4, 4));
  NF2_ASSIGN_OR_RETURN(uint32_t stored_crc, crc_reader.GetU32());
  if (Crc32(body) != stored_crc) {
    return Status::Corruption("catalog crc mismatch");
  }
  BufferReader in(body);
  NF2_ASSIGN_OR_RETURN(uint32_t magic, in.GetU32());
  if (magic != 0x4e463243) {
    return Status::Corruption("bad catalog magic");
  }
  NF2_ASSIGN_OR_RETURN(uint32_t count, in.GetU32());
  Catalog catalog;
  for (uint32_t i = 0; i < count; ++i) {
    NF2_ASSIGN_OR_RETURN(RelationInfo info, DecodeRelationInfo(&in));
    NF2_RETURN_IF_ERROR(catalog.Add(std::move(info)));
  }
  return catalog;
}

}  // namespace nf2
