#ifndef NF2_CATALOG_CATALOG_H_
#define NF2_CATALOG_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "core/nest.h"
#include "core/schema.h"
#include "dependency/fd.h"
#include "dependency/mvd.h"
#include "storage/env.h"
#include "storage/serde.h"
#include "util/result.h"

namespace nf2 {

/// Everything the engine knows about one stored relation: its schema,
/// the nest order its canonical form is maintained under, the declared
/// dependencies (used by the §3.4 permutation advisor and by design
/// tooling), and the heap file holding its tuples.
struct RelationInfo {
  std::string name;
  Schema schema;
  Permutation nest_order;
  std::vector<Fd> fds;
  std::vector<Mvd> mvds;
  std::string table_file;  // File name relative to the database dir.

  /// The declared FDs as an FdSet (degree taken from the schema).
  FdSet fd_set() const;
  /// The declared MVDs as an MvdSet.
  MvdSet mvd_set() const;
};

void EncodeRelationInfo(const RelationInfo& info, BufferWriter* out);
Result<RelationInfo> DecodeRelationInfo(BufferReader* in);

/// The database catalog: named relation metadata, persisted as a single
/// serialized file. It also registers the database-wide value
/// dictionary: the file (relative to the database dir) whose contents
/// fix the Value → ValueId assignment every stored relation encodes
/// against.
class Catalog {
 public:
  Catalog() = default;

  /// File name of the shared value dictionary. Not per-relation: ids
  /// are database-global so encoded tuples compare across relations.
  const std::string& dictionary_file() const { return dictionary_file_; }

  /// File name of the checkpoint manifest (storage/checkpoint.h): the
  /// logical-page → physical-page mapping every table file is read
  /// through after an incremental checkpoint.
  const std::string& manifest_file() const { return manifest_file_; }

  bool Has(const std::string& name) const;
  Result<const RelationInfo*> Get(const std::string& name) const;
  Status Add(RelationInfo info);
  Status Remove(const std::string& name);

  /// Relation names in sorted order.
  std::vector<std::string> Names() const;
  size_t size() const { return relations_.size(); }

  /// Serialization to/from a catalog file. Saving replaces the file
  /// atomically (write temp → sync → rename → sync dir), so a crash
  /// mid-save leaves the previous catalog intact instead of a truncated
  /// hybrid.
  Status SaveToFile(Env* env, const std::string& path) const;
  Status SaveToFile(const std::string& path) const {
    return SaveToFile(Env::Default(), path);
  }
  static Result<Catalog> LoadFromFile(Env* env, const std::string& path);
  static Result<Catalog> LoadFromFile(const std::string& path) {
    return LoadFromFile(Env::Default(), path);
  }

 private:
  std::map<std::string, RelationInfo> relations_;
  std::string dictionary_file_ = "dict.nf2";
  std::string manifest_file_ = "MANIFEST.nf2";
};

}  // namespace nf2

#endif  // NF2_CATALOG_CATALOG_H_
