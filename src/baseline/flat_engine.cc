#include "baseline/flat_engine.h"

#include "algebra/operators.h"
#include "storage/serde.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

FlatBaseline::FlatBaseline(Schema schema, FdSet fds, MvdSet mvds, Mode mode)
    : schema_(std::move(schema)),
      fds_(std::move(fds)),
      mvds_(std::move(mvds)),
      mode_(mode),
      universal_(schema_) {
  NF2_CHECK(fds_.degree() == schema_.degree());
  NF2_CHECK(mvds_.degree() == schema_.degree());
  if (mode_ == Mode::kDecomposed4NF) {
    ComputeFragments();
  }
}

void FlatBaseline::ComputeFragments() {
  std::vector<size_t> all;
  for (size_t i = 0; i < schema_.degree(); ++i) all.push_back(i);
  SplitPositions(all);
}

void FlatBaseline::SplitPositions(const std::vector<size_t>& positions) {
  AttrSet present(positions);
  for (const Mvd& mvd : mvds_.mvds()) {
    if (!mvd.lhs.Union(mvd.rhs).IsSubsetOf(present)) continue;
    AttrSet rhs_here = mvd.rhs.Intersect(present).Difference(mvd.lhs);
    AttrSet z_here = present.Difference(mvd.lhs).Difference(rhs_here);
    if (rhs_here.empty() || z_here.empty()) continue;
    if (fds_.IsSuperkey(mvd.lhs)) continue;
    auto subset = [&](const AttrSet& target) {
      std::vector<size_t> out;
      for (size_t p : positions) {
        if (target.Contains(p)) out.push_back(p);
      }
      SplitPositions(out);
    };
    subset(mvd.lhs.Union(rhs_here));
    subset(mvd.lhs.Union(z_here));
    return;
  }
  Fragment fragment;
  fragment.positions = positions;
  fragment.relation = FlatRelation(schema_.Project(positions));
  fragments_.push_back(std::move(fragment));
}

Status FlatBaseline::Insert(const FlatTuple& tuple) {
  if (tuple.degree() != schema_.degree()) {
    return Status::InvalidArgument("tuple degree mismatch");
  }
  if (Contains(tuple)) {
    return Status::AlreadyExists(
        StrCat("tuple ", tuple.ToString(), " already present"));
  }
  if (mode_ == Mode::kSingleTable) {
    universal_.Insert(tuple);
    return Status::OK();
  }
  for (Fragment& fragment : fragments_) {
    std::vector<Value> values;
    values.reserve(fragment.positions.size());
    for (size_t p : fragment.positions) values.push_back(tuple.at(p));
    fragment.relation.Insert(FlatTuple(std::move(values)));
  }
  return Status::OK();
}

Status FlatBaseline::BulkLoad(const FlatRelation& rel) {
  if (rel.schema() != schema_) {
    return Status::InvalidArgument("bulk load schema mismatch");
  }
  if (mode_ == Mode::kSingleTable) {
    for (const FlatTuple& t : rel.tuples()) {
      universal_.Insert(t);
    }
    return Status::OK();
  }
  for (Fragment& fragment : fragments_) {
    for (const FlatTuple& t : rel.tuples()) {
      std::vector<Value> values;
      values.reserve(fragment.positions.size());
      for (size_t p : fragment.positions) values.push_back(t.at(p));
      fragment.relation.Insert(FlatTuple(std::move(values)));
    }
  }
  return Status::OK();
}

namespace {
/// Projects every tuple of `whole` onto `positions`.
FlatRelation ProjectOnto(const FlatRelation& whole, const Schema& schema,
                         const std::vector<size_t>& positions) {
  std::vector<FlatTuple> projected;
  projected.reserve(whole.size());
  for (const FlatTuple& t : whole.tuples()) {
    std::vector<Value> values;
    values.reserve(positions.size());
    for (size_t p : positions) values.push_back(t.at(p));
    projected.emplace_back(std::move(values));
  }
  return FlatRelation(schema.Project(positions), std::move(projected));
}
}  // namespace

Status FlatBaseline::Delete(const FlatTuple& tuple) {
  if (tuple.degree() != schema_.degree()) {
    return Status::InvalidArgument("tuple degree mismatch");
  }
  if (mode_ == Mode::kSingleTable) {
    if (!universal_.Erase(tuple)) {
      return Status::NotFound(
          StrCat("tuple ", tuple.ToString(), " not present"));
    }
    return Status::OK();
  }
  // Reconstruct, delete, re-project — then verify losslessness.
  FlatRelation whole = Scan();
  if (!whole.Erase(tuple)) {
    return Status::NotFound(
        StrCat("tuple ", tuple.ToString(), " not present"));
  }
  std::vector<FlatRelation> projected;
  projected.reserve(fragments_.size());
  for (const Fragment& fragment : fragments_) {
    projected.push_back(ProjectOnto(whole, schema_, fragment.positions));
  }
  // The deletion is representable iff re-joining the projections gives
  // exactly the post-delete relation.
  FlatRelation rejoined = projected[0];
  for (size_t i = 1; i < projected.size(); ++i) {
    rejoined = NaturalJoin(rejoined, projected[i]);
  }
  std::vector<std::string> names;
  for (const Attribute& attr : schema_.attributes()) {
    names.push_back(attr.name);
  }
  Result<FlatRelation> reordered = ProjectByName(rejoined, names);
  NF2_CHECK(reordered.ok());
  if (*reordered != whole) {
    return Status::FailedPrecondition(
        StrCat("deleting ", tuple.ToString(),
               " leaves data the 4NF decomposition cannot represent "
               "(deletion anomaly)"));
  }
  for (size_t i = 0; i < fragments_.size(); ++i) {
    fragments_[i].relation = std::move(projected[i]);
  }
  return Status::OK();
}

Result<size_t> FlatBaseline::DeleteWhere(const Predicate& pred) {
  FlatRelation whole = Scan();
  FlatRelation matching = Select(whole, pred);
  if (mode_ == Mode::kSingleTable) {
    for (const FlatTuple& t : matching.tuples()) {
      universal_.Erase(t);
    }
    return matching.size();
  }
  for (const FlatTuple& t : matching.tuples()) {
    whole.Erase(t);
  }
  std::vector<FlatRelation> projected;
  projected.reserve(fragments_.size());
  for (const Fragment& fragment : fragments_) {
    projected.push_back(ProjectOnto(whole, schema_, fragment.positions));
  }
  FlatRelation rejoined = projected[0];
  for (size_t i = 1; i < projected.size(); ++i) {
    rejoined = NaturalJoin(rejoined, projected[i]);
  }
  std::vector<std::string> names;
  for (const Attribute& attr : schema_.attributes()) {
    names.push_back(attr.name);
  }
  Result<FlatRelation> reordered = ProjectByName(rejoined, names);
  NF2_CHECK(reordered.ok());
  if (*reordered != whole) {
    return Status::FailedPrecondition(
        "bulk deletion not representable in the 4NF decomposition");
  }
  for (size_t i = 0; i < fragments_.size(); ++i) {
    fragments_[i].relation = std::move(projected[i]);
  }
  return matching.size();
}

bool FlatBaseline::Contains(const FlatTuple& tuple) const {
  if (mode_ == Mode::kSingleTable) {
    return universal_.Contains(tuple);
  }
  return Scan().Contains(tuple);
}

FlatRelation FlatBaseline::Scan() const {
  if (mode_ == Mode::kSingleTable) {
    return universal_;
  }
  NF2_CHECK(!fragments_.empty());
  FlatRelation joined = fragments_[0].relation;
  for (size_t i = 1; i < fragments_.size(); ++i) {
    joined = NaturalJoin(joined, fragments_[i].relation);
  }
  // Reorder columns to the universal schema.
  std::vector<std::string> names;
  for (const Attribute& attr : schema_.attributes()) {
    names.push_back(attr.name);
  }
  Result<FlatRelation> reordered = ProjectByName(joined, names);
  NF2_CHECK(reordered.ok()) << reordered.status();
  return *std::move(reordered);
}

FlatRelation FlatBaseline::Query(const Predicate& pred) const {
  return Select(Scan(), pred);
}

size_t FlatBaseline::TotalTuples() const {
  if (mode_ == Mode::kSingleTable) {
    return universal_.size();
  }
  size_t total = 0;
  for (const Fragment& fragment : fragments_) {
    total += fragment.relation.size();
  }
  return total;
}

size_t FlatBaseline::TotalBytes() const {
  BufferWriter out;
  if (mode_ == Mode::kSingleTable) {
    EncodeSchema(schema_, &out);
    for (const FlatTuple& t : universal_.tuples()) {
      EncodeFlatTuple(t, &out);
    }
    return out.size();
  }
  for (const Fragment& fragment : fragments_) {
    EncodeSchema(fragment.relation.schema(), &out);
    for (const FlatTuple& t : fragment.relation.tuples()) {
      EncodeFlatTuple(t, &out);
    }
  }
  return out.size();
}

}  // namespace nf2
