#ifndef NF2_BASELINE_FLAT_ENGINE_H_
#define NF2_BASELINE_FLAT_ENGINE_H_

#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "core/relation.h"
#include "dependency/fd.h"
#include "dependency/mvd.h"
#include "util/result.h"

namespace nf2 {

/// The 1NF comparator the paper argues against. Two storage modes:
///
///  - kSingleTable: the universal relation stored flat, one row per
///    simple tuple. What a pre-normalization system would hold.
///  - kDecomposed4NF: the schema split by Fagin's 4NF decomposition on
///    the declared dependencies; queries over the full attribute set
///    re-join the fragments. This is the design the paper says NFRs
///    make unnecessary ("NFR allows database users to take away such
///    decompositions of schema that are forced to occur MVDs, and to
///    discard join operations").
///
/// Deletion in kDecomposed4NF is implemented soundly but expensively
/// (reconstruct, delete, re-project) — the classic deletion anomaly the
/// benchmarks quantify.
class FlatBaseline {
 public:
  enum class Mode { kSingleTable, kDecomposed4NF };

  struct Fragment {
    std::vector<size_t> positions;  // Universal-schema positions.
    FlatRelation relation;
  };

  FlatBaseline(Schema schema, FdSet fds, MvdSet mvds, Mode mode);

  Mode mode() const { return mode_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Fragment>& fragments() const { return fragments_; }

  /// Inserts a universal tuple. AlreadyExists if present. In decomposed
  /// mode the membership pre-check re-joins the fragments — O(|R|) per
  /// insert; use BulkLoad for loading whole relations.
  Status Insert(const FlatTuple& tuple);

  /// Loads every tuple of `rel` without per-tuple membership checks
  /// (duplicates collapse via set semantics).
  Status BulkLoad(const FlatRelation& rel);

  /// Deletes a universal tuple. NotFound if absent. In decomposed mode
  /// the deletion is applied by re-projecting the fragments from the
  /// post-delete universal relation and then CHECKED for losslessness:
  /// when the result violates the MVD the fragmentation assumed, the
  /// join cannot represent it and FailedPrecondition is returned — the
  /// classic deletion anomaly, surfaced honestly instead of silently
  /// resurrecting the tuple.
  Status Delete(const FlatTuple& tuple);

  /// Deletes every universal tuple matching `pred`; returns the count.
  /// Group deletions (e.g. "student s1 drops course c1" = all clubs)
  /// keep the MVD intact and succeed in both modes — the §4.3/Fig. 2
  /// scenario.
  Result<size_t> DeleteWhere(const Predicate& pred);

  /// True when the universal relation contains `tuple`.
  bool Contains(const FlatTuple& tuple) const;

  /// The universal relation (joins fragments in decomposed mode).
  FlatRelation Scan() const;

  /// sigma_pred over the universal relation.
  FlatRelation Query(const Predicate& pred) const;

  /// Rows physically stored (sum over fragments in decomposed mode).
  size_t TotalTuples() const;

  /// Serialized size of the stored representation.
  size_t TotalBytes() const;

 private:
  /// Computes the 4NF fragmentation of the schema positions.
  void ComputeFragments();
  void SplitPositions(const std::vector<size_t>& positions);

  Schema schema_;
  FdSet fds_;
  MvdSet mvds_;
  Mode mode_;
  FlatRelation universal_;           // kSingleTable storage.
  std::vector<Fragment> fragments_;  // kDecomposed4NF storage.
};

}  // namespace nf2

#endif  // NF2_BASELINE_FLAT_ENGINE_H_
