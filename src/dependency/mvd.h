#ifndef NF2_DEPENDENCY_MVD_H_
#define NF2_DEPENDENCY_MVD_H_

#include <string>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"
#include "dependency/fd.h"

namespace nf2 {

/// A multivalued dependency X ->-> Y | Z (Fagin [2]); Z is implicitly
/// U - X - Y, so we store X (lhs) and Y (rhs). This is the dependency
/// driving the paper's §2 motivating example (Student ->-> Course |
/// Club in R1) and Theorem 4.
struct Mvd {
  AttrSet lhs;
  AttrSet rhs;

  bool operator==(const Mvd& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }

  /// The complement side Z = U - X - Y for a schema of `degree`.
  AttrSet Complement(size_t degree) const;

  /// An MVD is trivial when Y ⊆ X or X ∪ Y = U.
  bool IsTrivial(size_t degree) const;

  /// "{A}->->{B}|{C}" using names from `schema`.
  std::string ToString(const Schema& schema) const;
};

/// True when `rel` satisfies X ->-> Y: for any two tuples t, u agreeing
/// on X, the tuple taking Y-values from t and Z-values from u is also
/// in `rel` (Fagin's definition).
bool Satisfies(const FlatRelation& rel, const Mvd& mvd);

/// Every FD X -> Y is also the MVD X ->-> Y.
Mvd PromoteToMvd(const Fd& fd);

/// A set of declared MVDs over a schema of `degree` attributes.
class MvdSet {
 public:
  explicit MvdSet(size_t degree) : degree_(degree) {}
  MvdSet(size_t degree, std::vector<Mvd> mvds);

  size_t degree() const { return degree_; }
  const std::vector<Mvd>& mvds() const { return mvds_; }
  bool empty() const { return mvds_.empty(); }

  void Add(Mvd mvd);
  void Add(AttrSet lhs, AttrSet rhs) { Add(Mvd{lhs, rhs}); }

  /// True when `rel` satisfies every MVD in the set.
  bool SatisfiedBy(const FlatRelation& rel) const;

  std::string ToString(const Schema& schema) const;

 private:
  size_t degree_;
  std::vector<Mvd> mvds_;
};

}  // namespace nf2

#endif  // NF2_DEPENDENCY_MVD_H_
