#ifndef NF2_DEPENDENCY_NORMALIZE_H_
#define NF2_DEPENDENCY_NORMALIZE_H_

#include <string>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"
#include "dependency/fd.h"
#include "dependency/mvd.h"

namespace nf2 {

/// One relation scheme produced by normalization: a set of attribute
/// positions of the original universal schema, plus the FDs projected
/// onto it.
struct SubScheme {
  AttrSet attrs;
  std::vector<Fd> fds;

  std::string ToString(const Schema& schema) const;
};

/// Bernstein's 3NF synthesis [13] — the paper assumes its input schemas
/// are "in 3NF, which are mechanically obtained": take a minimal cover,
/// group FDs by left-hand side, emit one scheme per group, and add a
/// key scheme when no group contains a candidate key.
std::vector<SubScheme> Synthesize3NF(const FdSet& fds);

/// True when every non-trivial FD in `fds` has a superkey left-hand
/// side (BCNF condition for the whole schema).
bool IsBcnf(const FdSet& fds);

/// True when the schema with dependencies `fds` + `mvds` is in 4NF:
/// every non-trivial MVD (including promoted FDs) has a superkey LHS.
bool Is4NF(const FdSet& fds, const MvdSet& mvds);

/// Fagin's 4NF decomposition: splits `rel` on the first violating MVD
/// recursively, returning the projected relations. The 1NF baseline
/// stores this decomposition; the paper's point is that NFRs "may throw
/// away the 4NF concept" and keep one relation.
struct DecomposedRelation {
  std::vector<size_t> attrs;  // Positions in the original schema.
  FlatRelation relation;
};
std::vector<DecomposedRelation> Decompose4NF(const FlatRelation& rel,
                                             const FdSet& fds,
                                             const MvdSet& mvds);

}  // namespace nf2

#endif  // NF2_DEPENDENCY_NORMALIZE_H_
