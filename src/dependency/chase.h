#ifndef NF2_DEPENDENCY_CHASE_H_
#define NF2_DEPENDENCY_CHASE_H_

#include <vector>

#include "dependency/fd.h"
#include "dependency/mvd.h"
#include "util/result.h"

namespace nf2 {

/// The chase: the standard decision procedure for logical implication
/// of functional and multivalued dependencies (Beeri; surveyed in the
/// paper's reference [10]).
///
/// To decide Σ ⊨ σ with σ = X ->-> Y (or X -> Y), start a two-row
/// tableau agreeing exactly on X, and repeatedly apply the dependencies
/// of Σ:
///   - an FD V -> W whose LHS two rows share equates their W symbols,
///   - an MVD V ->-> W whose LHS two rows share adds the two swapped
///     rows (W from one, the rest from the other).
/// The chase terminates (row symbols come from a fixed two-symbol pool
/// per column, so at most 2^n distinct rows); σ is implied iff the goal
/// row/equality appears.
class Chase {
 public:
  /// Builds a chase engine for dependencies over `degree` attributes.
  /// Fatal for degree > 16 (tableaus have up to 2^degree rows).
  Chase(const FdSet& fds, const MvdSet& mvds);

  /// True when the FDs and MVDs together logically imply `fd`.
  bool Implies(const Fd& fd) const;

  /// True when the FDs and MVDs together logically imply `mvd`.
  bool Implies(const Mvd& mvd) const;

  /// The dependency basis of X: the coarsest partition of U - X such
  /// that X ->-> S is implied exactly for unions S of its blocks
  /// (plus subsets of X). Computed by probing single attributes and
  /// merging.
  std::vector<AttrSet> DependencyBasis(const AttrSet& x) const;

 private:
  size_t degree_;
  FdSet fds_;
  MvdSet mvds_;
};

}  // namespace nf2

#endif  // NF2_DEPENDENCY_CHASE_H_
