#include "dependency/normalize.h"

#include <algorithm>
#include <map>

#include "algebra/operators.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

std::string SubScheme::ToString(const Schema& schema) const {
  std::vector<std::string> fd_strings;
  for (const Fd& fd : fds) {
    fd_strings.push_back(fd.ToString(schema));
  }
  return StrCat(attrs.ToString(schema), " with ", Join(fd_strings, ", "));
}

std::vector<SubScheme> Synthesize3NF(const FdSet& fds) {
  FdSet cover = fds.MinimalCover();
  // Group by left-hand side.
  std::map<uint64_t, SubScheme> groups;
  for (const Fd& fd : cover.fds()) {
    SubScheme& scheme = groups[fd.lhs.mask()];
    scheme.attrs = scheme.attrs.Union(fd.lhs).Union(fd.rhs);
    scheme.fds.push_back(fd);
  }
  std::vector<SubScheme> out;
  for (auto& [mask, scheme] : groups) {
    out.push_back(std::move(scheme));
  }
  // Ensure some scheme contains a candidate key of the universal schema
  // (Bernstein's final step) so the decomposition is lossless.
  std::vector<AttrSet> keys = fds.CandidateKeys();
  bool key_covered = false;
  for (const SubScheme& scheme : out) {
    for (const AttrSet& key : keys) {
      if (key.IsSubsetOf(scheme.attrs)) {
        key_covered = true;
        break;
      }
    }
    if (key_covered) break;
  }
  if (!key_covered && !keys.empty()) {
    out.push_back(SubScheme{keys.front(), {}});
  }
  // Merge schemes subsumed by others: the subsuming scheme inherits the
  // subsumed scheme's FDs (dropping them would lose dependencies and
  // break Bernstein's preservation guarantee).
  std::vector<SubScheme> kept;
  std::vector<bool> absorbed(out.size(), false);
  for (size_t i = 0; i < out.size(); ++i) {
    if (absorbed[i]) continue;
    for (size_t j = 0; j < out.size(); ++j) {
      if (i == j || absorbed[j]) continue;
      if (out[j].attrs.IsSubsetOf(out[i].attrs) &&
          (out[j].attrs != out[i].attrs || i < j)) {
        out[i].fds.insert(out[i].fds.end(), out[j].fds.begin(),
                          out[j].fds.end());
        absorbed[j] = true;
      }
    }
  }
  for (size_t i = 0; i < out.size(); ++i) {
    if (!absorbed[i]) kept.push_back(std::move(out[i]));
  }
  return kept;
}

bool IsBcnf(const FdSet& fds) {
  for (const Fd& fd : fds.fds()) {
    if (fd.IsTrivial()) continue;
    if (!fds.IsSuperkey(fd.lhs)) return false;
  }
  return true;
}

bool Is4NF(const FdSet& fds, const MvdSet& mvds) {
  if (!IsBcnf(fds)) return false;
  for (const Mvd& mvd : mvds.mvds()) {
    if (mvd.IsTrivial(mvds.degree())) continue;
    if (!fds.IsSuperkey(mvd.lhs)) return false;
  }
  return true;
}

namespace {

void Decompose4NFImpl(const FlatRelation& rel,
                      const std::vector<size_t>& positions,
                      const FdSet& fds, const MvdSet& mvds,
                      std::vector<DecomposedRelation>* out) {
  const size_t degree = fds.degree();
  AttrSet present(positions);
  // Find a violating, applicable, non-trivial MVD whose attributes all
  // lie inside this fragment.
  for (const Mvd& mvd : mvds.mvds()) {
    if (!mvd.lhs.Union(mvd.rhs).IsSubsetOf(present)) continue;
    AttrSet rhs_here = mvd.rhs.Intersect(present).Difference(mvd.lhs);
    AttrSet z_here = present.Difference(mvd.lhs).Difference(rhs_here);
    if (rhs_here.empty() || z_here.empty()) continue;  // Trivial here.
    if (fds.IsSuperkey(mvd.lhs)) continue;             // No violation.
    // Split into (X ∪ Y) and (X ∪ Z).
    AttrSet xy = mvd.lhs.Union(rhs_here);
    AttrSet xz = mvd.lhs.Union(z_here);
    auto split = [&](const AttrSet& target) {
      std::vector<size_t> sub;
      std::vector<size_t> local;  // Indices into `positions`.
      for (size_t i = 0; i < positions.size(); ++i) {
        if (target.Contains(positions[i])) {
          sub.push_back(positions[i]);
          local.push_back(i);
        }
      }
      FlatRelation projected = ProjectRelation(rel, local);
      Decompose4NFImpl(projected, sub, fds, mvds, out);
    };
    split(xy);
    split(xz);
    return;
  }
  (void)degree;
  out->push_back(DecomposedRelation{positions, rel});
}

}  // namespace

std::vector<DecomposedRelation> Decompose4NF(const FlatRelation& rel,
                                             const FdSet& fds,
                                             const MvdSet& mvds) {
  std::vector<size_t> positions;
  for (size_t i = 0; i < rel.degree(); ++i) positions.push_back(i);
  std::vector<DecomposedRelation> out;
  Decompose4NFImpl(rel, positions, fds, mvds, &out);
  return out;
}

}  // namespace nf2
