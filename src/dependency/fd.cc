#include "dependency/fd.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

std::string Fd::ToString(const Schema& schema) const {
  return StrCat(lhs.ToString(schema), "->", rhs.ToString(schema));
}

FdSet::FdSet(size_t degree, std::vector<Fd> fds)
    : degree_(degree), fds_(std::move(fds)) {
  for (const Fd& fd : fds_) {
    NF2_CHECK(fd.lhs.Union(fd.rhs).IsSubsetOf(AttrSet::All(degree_)))
        << "FD references attributes outside the schema";
  }
}

void FdSet::Add(Fd fd) {
  NF2_CHECK(fd.lhs.Union(fd.rhs).IsSubsetOf(AttrSet::All(degree_)))
      << "FD references attributes outside the schema";
  fds_.push_back(fd);
}

AttrSet FdSet::Closure(const AttrSet& attrs) const {
  AttrSet closure = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds_) {
      if (fd.lhs.IsSubsetOf(closure) && !fd.rhs.IsSubsetOf(closure)) {
        closure = closure.Union(fd.rhs);
        changed = true;
      }
    }
  }
  return closure;
}

bool FdSet::Implies(const Fd& fd) const {
  return fd.rhs.IsSubsetOf(Closure(fd.lhs));
}

bool FdSet::IsSuperkey(const AttrSet& attrs) const {
  return AttrSet::All(degree_).IsSubsetOf(Closure(attrs));
}

std::vector<AttrSet> FdSet::CandidateKeys() const {
  NF2_CHECK(degree_ <= 16) << "CandidateKeys limited to degree 16";
  std::vector<uint64_t> masks;
  for (uint64_t m = 0; m < (1ULL << degree_); ++m) masks.push_back(m);
  std::sort(masks.begin(), masks.end(), [](uint64_t a, uint64_t b) {
    int pa = __builtin_popcountll(a), pb = __builtin_popcountll(b);
    return pa != pb ? pa < pb : a < b;
  });
  std::vector<AttrSet> keys;
  for (uint64_t m : masks) {
    AttrSet set;
    for (size_t i = 0; i < degree_; ++i) {
      if ((m >> i) & 1) set.Add(i);
    }
    bool has_key_subset = false;
    for (const AttrSet& k : keys) {
      if (k.IsSubsetOf(set)) {
        has_key_subset = true;
        break;
      }
    }
    if (!has_key_subset && IsSuperkey(set)) {
      keys.push_back(set);
    }
  }
  return keys;
}

FdSet FdSet::MinimalCover() const {
  // 1. Split right-hand sides into singletons.
  std::vector<Fd> work;
  for (const Fd& fd : fds_) {
    for (size_t a : fd.rhs.ToVector()) {
      if (fd.lhs.Contains(a)) continue;  // Drop trivial parts.
      work.push_back(Fd{fd.lhs, AttrSet{a}});
    }
  }
  // 2. Remove extraneous LHS attributes: X\{a} -> b still implied.
  FdSet all(degree_, work);
  for (Fd& fd : work) {
    bool shrunk = true;
    while (shrunk) {
      shrunk = false;
      for (size_t a : fd.lhs.ToVector()) {
        AttrSet smaller = fd.lhs;
        smaller.Remove(a);
        if (fd.rhs.IsSubsetOf(all.Closure(smaller))) {
          fd.lhs = smaller;
          shrunk = true;
          break;
        }
      }
    }
  }
  // 3. Remove redundant FDs: those implied by the rest.
  std::vector<Fd> kept;
  for (size_t i = 0; i < work.size(); ++i) {
    std::vector<Fd> rest;
    for (size_t j = 0; j < work.size(); ++j) {
      if (j == i) continue;
      // Skip FDs already discarded.
      if (j < i &&
          std::find(kept.begin(), kept.end(), work[j]) == kept.end()) {
        continue;
      }
      rest.push_back(work[j]);
    }
    FdSet rest_set(degree_, rest);
    if (!rest_set.Implies(work[i])) {
      kept.push_back(work[i]);
    }
  }
  // Deduplicate identical FDs.
  std::vector<Fd> unique;
  for (const Fd& fd : kept) {
    if (std::find(unique.begin(), unique.end(), fd) == unique.end()) {
      unique.push_back(fd);
    }
  }
  return FdSet(degree_, std::move(unique));
}

bool FdSet::SatisfiedBy(const FlatRelation& rel) const {
  for (const Fd& fd : fds_) {
    if (!Satisfies(rel, fd)) return false;
  }
  return true;
}

std::string FdSet::ToString(const Schema& schema) const {
  std::vector<std::string> parts;
  for (const Fd& fd : fds_) {
    parts.push_back(fd.ToString(schema));
  }
  return StrCat("{", Join(parts, "; "), "}");
}

bool Satisfies(const FlatRelation& rel, const Fd& fd) {
  // Group tuples by their lhs projection; within a group all rhs
  // projections must coincide.
  std::map<std::vector<Value>, std::vector<Value>> seen;
  std::vector<size_t> lhs = fd.lhs.ToVector();
  std::vector<size_t> rhs = fd.rhs.ToVector();
  for (const FlatTuple& t : rel.tuples()) {
    std::vector<Value> key, value;
    for (size_t a : lhs) key.push_back(t.at(a));
    for (size_t a : rhs) value.push_back(t.at(a));
    auto [it, inserted] = seen.emplace(std::move(key), value);
    if (!inserted && it->second != value) {
      return false;
    }
  }
  return true;
}

}  // namespace nf2
