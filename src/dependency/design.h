#ifndef NF2_DEPENDENCY_DESIGN_H_
#define NF2_DEPENDENCY_DESIGN_H_

#include <string>
#include <vector>

#include "core/nest.h"
#include "core/relation.h"
#include "dependency/fd.h"
#include "dependency/mvd.h"
#include "util/result.h"

namespace nf2 {

/// §3.4's design strategy: "nesting on leftside attributes of FDs or
/// MVDs allows us to get to 'better' NFR" — i.e. choose the permutation
/// so the canonical form is *fixed on* the dependency left-hand sides
/// (Theorems 3–5). Concretely we nest the dependent attributes first
/// and the determining (key-like) attributes last; the first-nested
/// attribute's complement carries the fixedness (Theorem 5), so every
/// LHS attribute stays out front.
///
/// Returns the nest application order (see Permutation in core/nest.h).
Permutation AdvisePermutation(size_t degree, const FdSet& fds,
                              const MvdSet& mvds);

/// Scores a permutation on actual data: the canonical form's tuple
/// count (smaller is better).
size_t PermutationScore(const FlatRelation& rel, const Permutation& perm);

/// Exhaustively finds the permutation whose canonical form has the
/// fewest tuples (ties broken by lexicographic order). Fatal for
/// degree > 8; use AdvisePermutation for larger schemas.
Permutation BestPermutationBySize(const FlatRelation& rel);

/// A report describing a design decision, printable in examples/tools.
struct DesignReport {
  Permutation advised;
  std::vector<AttrSet> fixed_on;    // Minimal fixed sets of the result.
  size_t canonical_tuples = 0;      // |V_P(R)| on the sample data.
  size_t flat_tuples = 0;           // |R*|.
  std::string ToString(const Schema& schema) const;
};

/// Runs the §3.4 pipeline on sample data: advise a permutation from the
/// dependencies, build the canonical form, and report fixedness and
/// compression.
DesignReport AnalyzeDesign(const FlatRelation& rel, const FdSet& fds,
                           const MvdSet& mvds);

}  // namespace nf2

#endif  // NF2_DEPENDENCY_DESIGN_H_
