#include "dependency/chase.h"

#include <algorithm>
#include <set>

#include "util/logging.h"



namespace nf2 {

namespace {

/// A tableau row: one symbol per column. 0 is the distinguished
/// ("a") symbol; 1 the second initial symbol ("b"). FD applications
/// collapse a column's b into a.
using Row = std::vector<uint8_t>;

/// Explicit element-wise comparator: sidesteps the libstdc++ memcmp
/// three-way path that trips a spurious -Wstringop-overread under GCC
/// 12 -O3.
struct RowLess {
  bool operator()(const Row& a, const Row& b) const {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return a[i] < b[i];
    }
    return a.size() < b.size();
  }
};

struct Tableau {
  size_t degree;
  std::set<Row, RowLess> rows;
  Row row_b;  // Current image of the second initial row.

  explicit Tableau(size_t n, const AttrSet& x) : degree(n) {
    Row row_a(n, 0);
    row_b.assign(n, 1);
    for (size_t c = 0; c < n; ++c) {
      if (x.Contains(c)) row_b[c] = 0;
    }
    rows.insert(row_a);
    rows.insert(row_b);
  }

  /// Collapses column `c` (b becomes a everywhere). Returns true when
  /// anything changed.
  bool CollapseColumn(size_t c) {
    bool changed = false;
    std::set<Row, RowLess> next;
    for (Row row : rows) {
      if (row[c] != 0) {
        row[c] = 0;
        changed = true;
      }
      next.insert(std::move(row));
    }
    rows = std::move(next);
    if (row_b[c] != 0) {
      row_b[c] = 0;
      changed = true;
    }
    return changed;
  }

  static bool AgreeOn(const Row& r, const Row& s, const AttrSet& attrs) {
    for (size_t c : attrs.ToVector()) {
      if (r[c] != s[c]) return false;
    }
    return true;
  }

  /// Runs the chase with `fds` and `mvds` to fixpoint.
  void Run(const FdSet& fds, const MvdSet& mvds) {
    bool changed = true;
    while (changed) {
      changed = false;
      // FD rule: rows agreeing on V force their W columns equal; with a
      // two-symbol alphabet that means collapsing the column.
      for (const Fd& fd : fds.fds()) {
        std::vector<Row> snapshot(rows.begin(), rows.end());
        for (size_t i = 0; i < snapshot.size(); ++i) {
          for (size_t j = i + 1; j < snapshot.size(); ++j) {
            if (!AgreeOn(snapshot[i], snapshot[j], fd.lhs)) continue;
            for (size_t c : fd.rhs.ToVector()) {
              if (snapshot[i][c] != snapshot[j][c]) {
                changed |= CollapseColumn(c);
              }
            }
          }
        }
      }
      // MVD rule: rows agreeing on V spawn the two W-swapped rows.
      for (const Mvd& mvd : mvds.mvds()) {
        std::vector<Row> snapshot(rows.begin(), rows.end());
        for (size_t i = 0; i < snapshot.size(); ++i) {
          for (size_t j = 0; j < snapshot.size(); ++j) {
            if (i == j) continue;
            if (!AgreeOn(snapshot[i], snapshot[j], mvd.lhs)) continue;
            Row spawned = snapshot[j];
            for (size_t c : mvd.rhs.ToVector()) {
              spawned[c] = snapshot[i][c];
            }
            if (rows.insert(std::move(spawned)).second) {
              changed = true;
            }
          }
        }
      }
    }
  }

  /// True when some row matches the goal of X ->-> Y: distinguished on
  /// X ∪ Y, second-row symbols elsewhere.
  bool HasMvdGoalRow(const AttrSet& x, const AttrSet& y) const {
    Row goal = row_b;
    for (size_t c = 0; c < degree; ++c) {
      if (x.Contains(c) || y.Contains(c)) goal[c] = 0;
    }
    return rows.count(goal) > 0;
  }
};

}  // namespace

Chase::Chase(const FdSet& fds, const MvdSet& mvds)
    : degree_(fds.degree()), fds_(fds), mvds_(mvds) {
  NF2_CHECK(fds.degree() == mvds.degree())
      << "FD and MVD sets disagree on schema degree";
  NF2_CHECK(degree_ <= 16) << "Chase limited to degree 16";
}

bool Chase::Implies(const Fd& fd) const {
  Tableau tableau(degree_, fd.lhs);
  tableau.Run(fds_, mvds_);
  // Implied iff every RHS column collapsed (the two initial rows were
  // forced to agree there).
  for (size_t c : fd.rhs.ToVector()) {
    if (tableau.row_b[c] != 0) return false;
  }
  return true;
}

bool Chase::Implies(const Mvd& mvd) const {
  if (mvd.IsTrivial(degree_)) return true;
  Tableau tableau(degree_, mvd.lhs);
  tableau.Run(fds_, mvds_);
  return tableau.HasMvdGoalRow(mvd.lhs, mvd.rhs);
}

std::vector<AttrSet> Chase::DependencyBasis(const AttrSet& x) const {
  // Beeri's refinement algorithm: start with the single block U - X and
  // split a block B by a dependency V ->-> W (FDs promoted) whenever W
  // cuts B properly and V avoids B; iterate to fixpoint. The resulting
  // partition is the dependency basis: X ->-> S is implied exactly for
  // unions S of blocks (tests cross-check this against Implies()).
  AttrSet rest = AttrSet::All(degree_).Difference(x);
  std::vector<AttrSet> partition;
  if (!rest.empty()) partition.push_back(rest);

  std::vector<Mvd> refiners = mvds_.mvds();
  for (const Fd& fd : fds_.fds()) {
    refiners.push_back(PromoteToMvd(fd));
  }
  // FD-determined attributes form singleton blocks: X ->-> {a} is
  // implied for every a in closure(X) - X.
  for (size_t a : fds_.Closure(x).Difference(x).ToVector()) {
    refiners.push_back(Mvd{x, AttrSet{a}});
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Mvd& mvd : refiners) {
      std::vector<AttrSet> next;
      for (const AttrSet& block : partition) {
        AttrSet inside = block.Intersect(mvd.rhs);
        AttrSet outside = block.Difference(mvd.rhs);
        if (!inside.empty() && !outside.empty() &&
            mvd.lhs.Intersect(block).empty()) {
          next.push_back(inside);
          next.push_back(outside);
          changed = true;
        } else {
          next.push_back(block);
        }
      }
      partition = std::move(next);
    }
  }
  std::sort(partition.begin(), partition.end());
  return partition;
}

}  // namespace nf2
