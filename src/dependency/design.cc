#include "dependency/design.h"

#include <algorithm>

#include "core/fixedness.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

Permutation AdvisePermutation(size_t degree, const FdSet& fds,
                              const MvdSet& mvds) {
  // Attributes appearing on dependency left-hand sides should be nested
  // LAST (the canonical form is fixed on the complement of the
  // first-nested attribute, so putting non-LHS attributes first keeps
  // all LHS attributes inside the fixedness set). Attributes on
  // right-hand sides only are nested FIRST.
  std::vector<int> lhs_weight(degree, 0);
  std::vector<int> rhs_weight(degree, 0);
  for (const Fd& fd : fds.fds()) {
    for (size_t a : fd.lhs.ToVector()) lhs_weight[a] += 2;
    for (size_t a : fd.rhs.Difference(fd.lhs).ToVector()) rhs_weight[a] += 1;
  }
  for (const Mvd& mvd : mvds.mvds()) {
    for (size_t a : mvd.lhs.ToVector()) lhs_weight[a] += 2;
    for (size_t a : mvd.rhs.Difference(mvd.lhs).ToVector()) {
      rhs_weight[a] += 1;
    }
  }
  Permutation perm = IdentityPermutation(degree);
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    // Primary: low LHS weight first (pure dependents nested first).
    if (lhs_weight[a] != lhs_weight[b]) {
      return lhs_weight[a] < lhs_weight[b];
    }
    // Secondary: heavier RHS involvement earlier (they benefit most
    // from grouping).
    if (rhs_weight[a] != rhs_weight[b]) {
      return rhs_weight[a] > rhs_weight[b];
    }
    return a < b;
  });
  return perm;
}

size_t PermutationScore(const FlatRelation& rel, const Permutation& perm) {
  return CanonicalForm(rel, perm).size();
}

Permutation BestPermutationBySize(const FlatRelation& rel) {
  Permutation best;
  size_t best_score = 0;
  bool first = true;
  for (const Permutation& perm : AllPermutations(rel.degree())) {
    size_t score = PermutationScore(rel, perm);
    if (first || score < best_score) {
      best = perm;
      best_score = score;
      first = false;
    }
  }
  return best;
}

std::string DesignReport::ToString(const Schema& schema) const {
  std::vector<std::string> order_names;
  for (size_t a : advised) {
    order_names.push_back(schema.attribute(a).name);
  }
  std::vector<std::string> fixed_names;
  for (const AttrSet& f : fixed_on) {
    fixed_names.push_back(f.ToString(schema));
  }
  return StrCat("nest order: ", Join(order_names, " then "),
                "\nminimal fixed sets: ", Join(fixed_names, ", "),
                "\ntuples: ", canonical_tuples, " NFR vs ", flat_tuples,
                " 1NF (",
                flat_tuples == 0
                    ? 0.0
                    : static_cast<double>(flat_tuples) /
                          static_cast<double>(std::max<size_t>(
                              canonical_tuples, 1)),
                "x reduction)");
}

DesignReport AnalyzeDesign(const FlatRelation& rel, const FdSet& fds,
                           const MvdSet& mvds) {
  DesignReport report;
  report.advised = AdvisePermutation(rel.degree(), fds, mvds);
  NfrRelation canonical = CanonicalForm(rel, report.advised);
  report.canonical_tuples = canonical.size();
  report.flat_tuples = rel.size();
  if (rel.degree() <= 16) {
    report.fixed_on = MinimalFixedSets(canonical);
  }
  return report;
}

}  // namespace nf2
