#ifndef NF2_DEPENDENCY_FD_H_
#define NF2_DEPENDENCY_FD_H_

#include <string>
#include <vector>

#include "core/relation.h"
#include "core/schema.h"

namespace nf2 {

/// A functional dependency F1,...,Fk -> E1,...,Em over attribute
/// positions of some schema (§3.4 uses FDs to pick good nest
/// permutations; Theorem 3 ties them to fixedness).
struct Fd {
  AttrSet lhs;
  AttrSet rhs;

  bool operator==(const Fd& other) const {
    return lhs == other.lhs && rhs == other.rhs;
  }

  /// True when rhs ⊆ lhs (always satisfied).
  bool IsTrivial() const { return rhs.IsSubsetOf(lhs); }

  /// "{A,B}->{C}" using names from `schema`.
  std::string ToString(const Schema& schema) const;
};

/// A set of FDs over a schema of `degree` attributes, with the standard
/// inference machinery (attribute-set closure, implication, candidate
/// keys, minimal cover).
class FdSet {
 public:
  explicit FdSet(size_t degree) : degree_(degree) {}
  FdSet(size_t degree, std::vector<Fd> fds);

  size_t degree() const { return degree_; }
  const std::vector<Fd>& fds() const { return fds_; }
  bool empty() const { return fds_.empty(); }

  /// Adds an FD (no deduplication).
  void Add(Fd fd);
  void Add(AttrSet lhs, AttrSet rhs) { Add(Fd{lhs, rhs}); }

  /// The closure X+ of attribute set `attrs` under these FDs
  /// (fixed-point of one-step FD application).
  AttrSet Closure(const AttrSet& attrs) const;

  /// True when these FDs logically imply `fd` (rhs ⊆ Closure(lhs)).
  bool Implies(const Fd& fd) const;

  /// True when `attrs` determines every attribute.
  bool IsSuperkey(const AttrSet& attrs) const;

  /// All candidate keys (minimal superkeys), ascending by mask.
  /// Exponential; fatal for degree > 16.
  std::vector<AttrSet> CandidateKeys() const;

  /// A minimal (canonical) cover: singleton right-hand sides, no
  /// extraneous LHS attributes, no redundant FDs.
  FdSet MinimalCover() const;

  /// True when `rel` satisfies every FD in the set.
  bool SatisfiedBy(const FlatRelation& rel) const;

  std::string ToString(const Schema& schema) const;

 private:
  size_t degree_;
  std::vector<Fd> fds_;
};

/// True when `rel` satisfies `fd`: no two tuples agree on lhs but
/// differ on rhs.
bool Satisfies(const FlatRelation& rel, const Fd& fd);

}  // namespace nf2

#endif  // NF2_DEPENDENCY_FD_H_
