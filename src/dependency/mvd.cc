#include "dependency/mvd.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

AttrSet Mvd::Complement(size_t degree) const {
  return AttrSet::All(degree).Difference(lhs).Difference(rhs);
}

bool Mvd::IsTrivial(size_t degree) const {
  if (rhs.IsSubsetOf(lhs)) return true;
  return lhs.Union(rhs) == AttrSet::All(degree);
}

std::string Mvd::ToString(const Schema& schema) const {
  AttrSet z = Complement(schema.degree());
  return StrCat(lhs.ToString(schema), "->->", rhs.ToString(schema), "|",
                z.ToString(schema));
}

bool Satisfies(const FlatRelation& rel, const Mvd& mvd) {
  const size_t degree = rel.degree();
  std::vector<size_t> x = mvd.lhs.ToVector();
  std::vector<size_t> y = mvd.rhs.Difference(mvd.lhs).ToVector();
  std::vector<size_t> z = mvd.Complement(degree).ToVector();
  // Group by X; collect distinct Y-projections and Z-projections; the
  // MVD holds iff within each group the set of (Y,Z) pairs is exactly
  // the cross product of the Y-set and the Z-set.
  struct Group {
    std::vector<std::vector<Value>> ys;
    std::vector<std::vector<Value>> zs;
    size_t pairs = 0;
  };
  auto project = [](const FlatTuple& t, const std::vector<size_t>& attrs) {
    std::vector<Value> out;
    out.reserve(attrs.size());
    for (size_t a : attrs) out.push_back(t.at(a));
    return out;
  };
  std::map<std::vector<Value>, Group> groups;
  for (const FlatTuple& t : rel.tuples()) {
    Group& g = groups[project(t, x)];
    std::vector<Value> yv = project(t, y);
    std::vector<Value> zv = project(t, z);
    if (std::find(g.ys.begin(), g.ys.end(), yv) == g.ys.end()) {
      g.ys.push_back(yv);
    }
    if (std::find(g.zs.begin(), g.zs.end(), zv) == g.zs.end()) {
      g.zs.push_back(zv);
    }
    ++g.pairs;
  }
  for (const auto& [key, g] : groups) {
    if (g.pairs != g.ys.size() * g.zs.size()) {
      return false;
    }
  }
  return true;
}

Mvd PromoteToMvd(const Fd& fd) { return Mvd{fd.lhs, fd.rhs}; }

MvdSet::MvdSet(size_t degree, std::vector<Mvd> mvds)
    : degree_(degree), mvds_(std::move(mvds)) {
  for (const Mvd& mvd : mvds_) {
    NF2_CHECK(mvd.lhs.Union(mvd.rhs).IsSubsetOf(AttrSet::All(degree_)))
        << "MVD references attributes outside the schema";
  }
}

void MvdSet::Add(Mvd mvd) {
  NF2_CHECK(mvd.lhs.Union(mvd.rhs).IsSubsetOf(AttrSet::All(degree_)))
      << "MVD references attributes outside the schema";
  mvds_.push_back(mvd);
}

bool MvdSet::SatisfiedBy(const FlatRelation& rel) const {
  for (const Mvd& mvd : mvds_) {
    if (!Satisfies(rel, mvd)) return false;
  }
  return true;
}

std::string MvdSet::ToString(const Schema& schema) const {
  std::vector<std::string> parts;
  for (const Mvd& mvd : mvds_) {
    parts.push_back(mvd.ToString(schema));
  }
  return StrCat("{", Join(parts, "; "), "}");
}

}  // namespace nf2
