#include "algebra/operators.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>

#include "core/value_dictionary.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

FlatRelation Select(const FlatRelation& rel, const Predicate& pred) {
  std::vector<FlatTuple> out;
  for (const FlatTuple& t : rel.tuples()) {
    if (pred.EvalFlat(t)) out.push_back(t);
  }
  return FlatRelation(rel.schema(), std::move(out));
}

FlatRelation ProjectRelation(const FlatRelation& rel,
                             const std::vector<size_t>& attrs) {
  Schema projected = rel.schema().Project(attrs);
  std::vector<FlatTuple> tuples;
  tuples.reserve(rel.size());
  for (const FlatTuple& t : rel.tuples()) {
    std::vector<Value> values;
    values.reserve(attrs.size());
    for (size_t a : attrs) values.push_back(t.at(a));
    tuples.emplace_back(std::move(values));
  }
  return FlatRelation(std::move(projected), std::move(tuples));
}

Result<FlatRelation> ProjectByName(const FlatRelation& rel,
                                   const std::vector<std::string>& names) {
  std::vector<size_t> attrs;
  attrs.reserve(names.size());
  for (const std::string& name : names) {
    NF2_ASSIGN_OR_RETURN(size_t idx, rel.schema().RequireIndex(name));
    attrs.push_back(idx);
  }
  return ProjectRelation(rel, attrs);
}

namespace {
Status RequireSameSchema(const FlatRelation& a, const FlatRelation& b) {
  if (a.schema() != b.schema()) {
    return Status::InvalidArgument(
        StrCat("schema mismatch: ", a.schema().ToString(), " vs ",
               b.schema().ToString()));
  }
  return Status::OK();
}
}  // namespace

Result<FlatRelation> Union(const FlatRelation& a, const FlatRelation& b) {
  NF2_RETURN_IF_ERROR(RequireSameSchema(a, b));
  std::vector<FlatTuple> tuples = a.tuples();
  tuples.insert(tuples.end(), b.tuples().begin(), b.tuples().end());
  return FlatRelation(a.schema(), std::move(tuples));
}

Result<FlatRelation> Difference(const FlatRelation& a,
                                const FlatRelation& b) {
  NF2_RETURN_IF_ERROR(RequireSameSchema(a, b));
  std::vector<FlatTuple> tuples;
  for (const FlatTuple& t : a.tuples()) {
    if (!b.Contains(t)) tuples.push_back(t);
  }
  return FlatRelation(a.schema(), std::move(tuples));
}

Result<FlatRelation> Intersect(const FlatRelation& a,
                               const FlatRelation& b) {
  NF2_RETURN_IF_ERROR(RequireSameSchema(a, b));
  std::vector<FlatTuple> tuples;
  for (const FlatTuple& t : a.tuples()) {
    if (b.Contains(t)) tuples.push_back(t);
  }
  return FlatRelation(a.schema(), std::move(tuples));
}

Result<FlatRelation> CartesianProduct(const FlatRelation& a,
                                      const FlatRelation& b) {
  std::vector<Attribute> attrs = a.schema().attributes();
  for (const Attribute& attr : b.schema().attributes()) {
    if (a.schema().IndexOf(attr.name).has_value()) {
      return Status::InvalidArgument(
          StrCat("attribute name collision in product: ", attr.name));
    }
    attrs.push_back(attr);
  }
  Schema schema(std::move(attrs));
  std::vector<FlatTuple> tuples;
  tuples.reserve(a.size() * b.size());
  for (const FlatTuple& ta : a.tuples()) {
    for (const FlatTuple& tb : b.tuples()) {
      std::vector<Value> values = ta.values();
      values.insert(values.end(), tb.values().begin(), tb.values().end());
      tuples.emplace_back(std::move(values));
    }
  }
  return FlatRelation(std::move(schema), std::move(tuples));
}

FlatRelation NaturalJoin(const FlatRelation& left,
                         const FlatRelation& right) {
  std::vector<std::pair<size_t, size_t>> shared;  // (left idx, right idx)
  std::vector<size_t> right_only;
  for (size_t j = 0; j < right.degree(); ++j) {
    std::optional<size_t> li =
        left.schema().IndexOf(right.schema().attribute(j).name);
    if (li.has_value()) {
      shared.emplace_back(*li, j);
    } else {
      right_only.push_back(j);
    }
  }
  std::vector<Attribute> attrs = left.schema().attributes();
  for (size_t j : right_only) {
    attrs.push_back(right.schema().attribute(j));
  }
  Schema joined_schema(std::move(attrs));

  std::map<std::vector<Value>, std::vector<const FlatTuple*>> index;
  for (const FlatTuple& rt : right.tuples()) {
    std::vector<Value> key;
    key.reserve(shared.size());
    for (const auto& [li, rj] : shared) key.push_back(rt.at(rj));
    index[std::move(key)].push_back(&rt);
  }
  std::vector<FlatTuple> out;
  for (const FlatTuple& lt : left.tuples()) {
    std::vector<Value> key;
    key.reserve(shared.size());
    for (const auto& [li, rj] : shared) key.push_back(lt.at(li));
    auto it = index.find(key);
    if (it == index.end()) continue;
    for (const FlatTuple* rt : it->second) {
      std::vector<Value> values = lt.values();
      for (size_t j : right_only) values.push_back(rt->at(j));
      out.emplace_back(std::move(values));
    }
  }
  return FlatRelation(std::move(joined_schema), std::move(out));
}

Result<FlatRelation> Rename(const FlatRelation& rel, const std::string& from,
                            const std::string& to) {
  NF2_ASSIGN_OR_RETURN(size_t idx, rel.schema().RequireIndex(from));
  if (rel.schema().IndexOf(to).has_value()) {
    return Status::AlreadyExists(
        StrCat("attribute '", to, "' already exists"));
  }
  std::vector<Attribute> attrs = rel.schema().attributes();
  attrs[idx].name = to;
  return FlatRelation(Schema(std::move(attrs)), rel.tuples());
}

NfrRelation SelectNfrTuples(const NfrRelation& rel, const Predicate& pred) {
  std::vector<NfrTuple> out;
  for (const NfrTuple& t : rel.tuples()) {
    if (pred.EvalNfrAny(t)) out.push_back(t);
  }
  return NfrRelation(rel.schema(), std::move(out));
}

NfrRelation SelectNfrExact(const NfrRelation& rel, const Predicate& pred) {
  std::vector<NfrTuple> out;
  for (const NfrTuple& t : rel.tuples()) {
    if (!pred.EvalNfrAny(t)) continue;  // Cheap pre-filter.
    for (const FlatTuple& flat : t.Expand()) {
      if (pred.EvalFlat(flat)) {
        out.push_back(NfrTuple::FromFlat(flat));
      }
    }
  }
  return NfrRelation(rel.schema(), std::move(out));
}

Result<std::vector<GroupCount>> GroupedDistinctCounts(
    const NfrRelation& rel, size_t group_attr, size_t counted_attr) {
  if (group_attr >= rel.degree() || counted_attr >= rel.degree()) {
    return Status::OutOfRange("aggregate attribute out of range");
  }
  if (group_attr == counted_attr) {
    return Status::InvalidArgument(
        "GROUP BY attribute equals the counted attribute");
  }
  // Distinct counted values per group value. NFR tuples contribute
  // their counted component once per contained group value; sets union
  // across tuples (a group value may appear in several tuples). The
  // accumulation runs interned: group and counted values intern once per
  // tuple, the per-group unions are integer merges, and the dictionary's
  // rank order recovers the sorted-by-group output contract.
  ValueDictionary dict;
  std::unordered_map<ValueId, IdSet> per_group;
  for (const NfrTuple& t : rel.tuples()) {
    IdSet groups = InternValueSet(&dict, t.at(group_attr));
    IdSet counted = InternValueSet(&dict, t.at(counted_attr));
    for (ValueId g : groups.ids()) {
      IdSet& acc = per_group[g];
      acc = acc.Union(counted);
    }
  }
  std::vector<ValueId> group_ids;
  group_ids.reserve(per_group.size());
  for (const auto& [g, counted] : per_group) group_ids.push_back(g);
  std::sort(group_ids.begin(), group_ids.end(),
            [&dict](ValueId a, ValueId b) { return dict.CompareIds(a, b) < 0; });
  std::vector<GroupCount> out;
  out.reserve(group_ids.size());
  for (ValueId g : group_ids) {
    out.push_back(GroupCount{dict.value(g), per_group[g].size()});
  }
  return out;
}

NfrRelation ProjectNfr(const NfrRelation& rel,
                       const std::vector<size_t>& attrs) {
  Schema projected = rel.schema().Project(attrs);
  std::vector<NfrTuple> out;
  out.reserve(rel.size());
  for (const NfrTuple& t : rel.tuples()) {
    std::vector<ValueSet> components;
    components.reserve(attrs.size());
    for (size_t a : attrs) components.push_back(t.at(a));
    NfrTuple projected_tuple(std::move(components));
    if (std::find(out.begin(), out.end(), projected_tuple) == out.end()) {
      out.push_back(std::move(projected_tuple));
    }
  }
  return NfrRelation(std::move(projected), std::move(out));
}

}  // namespace nf2
