#ifndef NF2_ALGEBRA_PREDICATE_H_
#define NF2_ALGEBRA_PREDICATE_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/schema.h"
#include "core/tuple.h"

namespace nf2 {

/// Comparison operators for predicate leaves.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// A boolean expression tree over tuples: comparisons of one attribute
/// against a constant, combined with AND/OR/NOT.
///
/// Evaluation has two semantics:
///  - EvalFlat: ordinary 1NF evaluation.
///  - EvalNfrAny: true when SOME simple tuple in the NFR tuple's
///    expansion satisfies the predicate. This is exact for predicates
///    whose leaves touch pairwise-distinct attributes combined with
///    AND/OR (the expansion is a cross product, so per-attribute
///    existence is independent), and for any predicate under NOT-free
///    single-attribute use. For arbitrary predicates use
///    MatchesExpansion, which tests the expansion exactly.
class Predicate {
 public:
  /// Leaf: attribute `attr` compared against `value`.
  static Predicate Compare(size_t attr, CompareOp op, Value value);
  static Predicate Eq(size_t attr, Value value) {
    return Compare(attr, CompareOp::kEq, std::move(value));
  }
  static Predicate Ne(size_t attr, Value value) {
    return Compare(attr, CompareOp::kNe, std::move(value));
  }
  static Predicate Lt(size_t attr, Value value) {
    return Compare(attr, CompareOp::kLt, std::move(value));
  }
  static Predicate Le(size_t attr, Value value) {
    return Compare(attr, CompareOp::kLe, std::move(value));
  }
  static Predicate Gt(size_t attr, Value value) {
    return Compare(attr, CompareOp::kGt, std::move(value));
  }
  static Predicate Ge(size_t attr, Value value) {
    return Compare(attr, CompareOp::kGe, std::move(value));
  }

  /// Connectives.
  static Predicate And(Predicate a, Predicate b);
  static Predicate Or(Predicate a, Predicate b);
  static Predicate Not(Predicate a);

  /// The always-true predicate (selects everything).
  static Predicate True();

  /// 1NF evaluation.
  bool EvalFlat(const FlatTuple& t) const;

  /// Existential NFR evaluation (see class comment for exactness).
  bool EvalNfrAny(const NfrTuple& t) const;

  /// Exact existential check by expanding `t`. Exponential in the
  /// number of compound components; components of NFR tuples are small
  /// in practice.
  bool MatchesExpansion(const NfrTuple& t) const;

  /// Largest attribute index referenced (0 when none).
  size_t MaxAttr() const;

  /// When this predicate is exactly one `attr = value` comparison,
  /// returns (attr, value); otherwise nullopt. Lets executors route
  /// point queries through value indexes.
  std::optional<std::pair<size_t, Value>> AsSingleEq() const;

  /// "(A = s1 AND B < 4)"-style rendering.
  std::string ToString(const Schema& schema) const;

 private:
  struct Node;
  explicit Predicate(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace nf2

#endif  // NF2_ALGEBRA_PREDICATE_H_
