#include "algebra/predicate.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {
enum class NodeKind { kTrue, kCompare, kAnd, kOr, kNot };

bool ApplyOp(CompareOp op, const Value& lhs, const Value& rhs) {
  int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}
}  // namespace

struct Predicate::Node {
  NodeKind kind = NodeKind::kTrue;
  // kCompare:
  size_t attr = 0;
  CompareOp op = CompareOp::kEq;
  Value value;
  // kAnd/kOr/kNot:
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;
};

Predicate Predicate::Compare(size_t attr, CompareOp op, Value value) {
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kCompare;
  node->attr = attr;
  node->op = op;
  node->value = std::move(value);
  return Predicate(std::move(node));
}

Predicate Predicate::And(Predicate a, Predicate b) {
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kAnd;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return Predicate(std::move(node));
}

Predicate Predicate::Or(Predicate a, Predicate b) {
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kOr;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return Predicate(std::move(node));
}

Predicate Predicate::Not(Predicate a) {
  auto node = std::make_shared<Node>();
  node->kind = NodeKind::kNot;
  node->left = std::move(a.node_);
  return Predicate(std::move(node));
}

Predicate Predicate::True() { return Predicate(std::make_shared<Node>()); }

bool Predicate::EvalFlat(const FlatTuple& t) const {
  struct Impl {
    static bool Eval(const Node* node, const FlatTuple& t) {
      switch (node->kind) {
        case NodeKind::kTrue:
          return true;
        case NodeKind::kCompare:
          NF2_CHECK(node->attr < t.degree())
              << "predicate attribute out of range";
          return ApplyOp(node->op, t.at(node->attr), node->value);
        case NodeKind::kAnd:
          return Eval(node->left.get(), t) && Eval(node->right.get(), t);
        case NodeKind::kOr:
          return Eval(node->left.get(), t) || Eval(node->right.get(), t);
        case NodeKind::kNot:
          return !Eval(node->left.get(), t);
      }
      return false;
    }
  };
  return Impl::Eval(node_.get(), t);
}

bool Predicate::EvalNfrAny(const NfrTuple& t) const {
  struct Impl {
    static bool Eval(const Node* node, const NfrTuple& t) {
      switch (node->kind) {
        case NodeKind::kTrue:
          return true;
        case NodeKind::kCompare: {
          NF2_CHECK(node->attr < t.degree())
              << "predicate attribute out of range";
          for (const Value& v : t.at(node->attr).values()) {
            if (ApplyOp(node->op, v, node->value)) return true;
          }
          return false;
        }
        case NodeKind::kAnd:
          return Eval(node->left.get(), t) && Eval(node->right.get(), t);
        case NodeKind::kOr:
          return Eval(node->left.get(), t) || Eval(node->right.get(), t);
        case NodeKind::kNot:
          return !Eval(node->left.get(), t);
      }
      return false;
    }
  };
  return Impl::Eval(node_.get(), t);
}

bool Predicate::MatchesExpansion(const NfrTuple& t) const {
  for (const FlatTuple& flat : t.Expand()) {
    if (EvalFlat(flat)) return true;
  }
  return false;
}

std::optional<std::pair<size_t, Value>> Predicate::AsSingleEq() const {
  if (node_->kind == NodeKind::kCompare && node_->op == CompareOp::kEq) {
    return std::make_pair(node_->attr, node_->value);
  }
  return std::nullopt;
}

size_t Predicate::MaxAttr() const {
  struct Impl {
    static size_t Max(const Node* node) {
      switch (node->kind) {
        case NodeKind::kTrue:
          return 0;
        case NodeKind::kCompare:
          return node->attr;
        case NodeKind::kAnd:
        case NodeKind::kOr:
          return std::max(Max(node->left.get()), Max(node->right.get()));
        case NodeKind::kNot:
          return Max(node->left.get());
      }
      return 0;
    }
  };
  return Impl::Max(node_.get());
}

std::string Predicate::ToString(const Schema& schema) const {
  struct Impl {
    static std::string Str(const Node* node, const Schema& schema) {
      switch (node->kind) {
        case NodeKind::kTrue:
          return "TRUE";
        case NodeKind::kCompare: {
          std::string name = node->attr < schema.degree()
                                 ? schema.attribute(node->attr).name
                                 : StrCat("#", node->attr);
          return StrCat(name, " ", CompareOpToString(node->op), " ",
                        node->value.ToString());
        }
        case NodeKind::kAnd:
          return StrCat("(", Str(node->left.get(), schema), " AND ",
                        Str(node->right.get(), schema), ")");
        case NodeKind::kOr:
          return StrCat("(", Str(node->left.get(), schema), " OR ",
                        Str(node->right.get(), schema), ")");
        case NodeKind::kNot:
          return StrCat("NOT ", Str(node->left.get(), schema));
      }
      return "?";
    }
  };
  return Impl::Str(node_.get(), schema);
}

}  // namespace nf2
