#include "algebra/nest_unnest.h"

namespace nf2 {

Result<NfrRelation> NestByName(const NfrRelation& rel,
                               const std::string& name) {
  NF2_ASSIGN_OR_RETURN(size_t idx, rel.schema().RequireIndex(name));
  return NestOn(rel, idx);
}

Result<NfrRelation> UnnestByName(const NfrRelation& rel,
                                 const std::string& name) {
  NF2_ASSIGN_OR_RETURN(size_t idx, rel.schema().RequireIndex(name));
  return UnnestOn(rel, idx);
}

Result<NfrRelation> NestSequenceByName(
    const NfrRelation& rel, const std::vector<std::string>& names) {
  NfrRelation out = rel;
  for (const std::string& name : names) {
    NF2_ASSIGN_OR_RETURN(size_t idx, out.schema().RequireIndex(name));
    out = NestOn(out, idx);
  }
  return out;
}

Result<NfrRelation> CanonicalFormByName(
    const FlatRelation& rel, const std::vector<std::string>& names) {
  NF2_ASSIGN_OR_RETURN(Permutation perm,
                       PermutationFromNames(rel.schema(), names));
  return CanonicalForm(rel, perm);
}

}  // namespace nf2
