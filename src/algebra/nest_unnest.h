#ifndef NF2_ALGEBRA_NEST_UNNEST_H_
#define NF2_ALGEBRA_NEST_UNNEST_H_

#include <string>
#include <vector>

#include "core/nest.h"
#include "core/relation.h"
#include "util/result.h"

namespace nf2 {

/// Name-based wrappers around the core nest/unnest operations, the form
/// queries and the NFRQL language use.

/// V_A(R): nest over the attribute named `name`.
Result<NfrRelation> NestByName(const NfrRelation& rel,
                               const std::string& name);

/// Unnest over the attribute named `name` (splits its components into
/// singletons).
Result<NfrRelation> UnnestByName(const NfrRelation& rel,
                                 const std::string& name);

/// Applies V over a sequence of attribute names, left-to-right (the
/// convention of core/nest.h).
Result<NfrRelation> NestSequenceByName(const NfrRelation& rel,
                                       const std::vector<std::string>& names);

/// The canonical form of a 1NF relation for a named permutation.
Result<NfrRelation> CanonicalFormByName(const FlatRelation& rel,
                                        const std::vector<std::string>& names);

}  // namespace nf2

#endif  // NF2_ALGEBRA_NEST_UNNEST_H_
