#ifndef NF2_ALGEBRA_OPERATORS_H_
#define NF2_ALGEBRA_OPERATORS_H_

#include <string>
#include <vector>

#include "algebra/predicate.h"
#include "core/relation.h"
#include "util/result.h"

namespace nf2 {

// ---------------------------------------------------------------------
// 1NF relational algebra (the substrate the paper extends).
// ---------------------------------------------------------------------

/// sigma_p(R): tuples of `rel` satisfying `pred`.
FlatRelation Select(const FlatRelation& rel, const Predicate& pred);

/// pi_attrs(R): projection onto attribute positions (duplicates
/// collapse, as always in set semantics).
FlatRelation ProjectRelation(const FlatRelation& rel,
                             const std::vector<size_t>& attrs);

/// Projection by attribute names.
Result<FlatRelation> ProjectByName(const FlatRelation& rel,
                                   const std::vector<std::string>& names);

/// R ∪ S, R - S, R ∩ S. Error when schemas differ.
Result<FlatRelation> Union(const FlatRelation& a, const FlatRelation& b);
Result<FlatRelation> Difference(const FlatRelation& a,
                                const FlatRelation& b);
Result<FlatRelation> Intersect(const FlatRelation& a, const FlatRelation& b);

/// R × S. Error when attribute names collide.
Result<FlatRelation> CartesianProduct(const FlatRelation& a,
                                      const FlatRelation& b);

/// Natural join on shared attribute names (equi-join; when no names are
/// shared this degenerates to the cartesian product).
FlatRelation NaturalJoin(const FlatRelation& left, const FlatRelation& right);

/// Renames attribute `from` to `to`. Error when `from` is missing or
/// `to` already exists.
Result<FlatRelation> Rename(const FlatRelation& rel, const std::string& from,
                            const std::string& to);

// ---------------------------------------------------------------------
// NFR-level operators (Jaeschke–Schek style, the algebra the paper's
// reference [7] defines and the paper builds on).
// ---------------------------------------------------------------------

/// Tuple-level selection: keeps the NFR tuples whose expansion contains
/// at least one simple tuple satisfying `pred` (exact via per-attribute
/// existence for single-attribute leaves, see Predicate::EvalNfrAny).
NfrRelation SelectNfrTuples(const NfrRelation& rel, const Predicate& pred);

/// Exact selection: the NFR denoting sigma_p(R*). Components are
/// restricted/split as needed; the result is returned as singleton
/// tuples of the matching expansion (re-nest with CanonicalForm for a
/// compact result).
NfrRelation SelectNfrExact(const NfrRelation& rel, const Predicate& pred);

/// One GROUP BY result row: a grouping value and the number of
/// distinct counted values associated with it.
struct GroupCount {
  Value group;
  uint64_t count = 0;
  bool operator==(const GroupCount&) const = default;
};

/// SELECT g, COUNT(DISTINCT c) ... GROUP BY g, evaluated on the NFR:
/// the relation is projected to {group_attr, counted_attr} and re-nested
/// on the counted attribute, after which each count is just a component
/// size — no expansion of the relation (the paper's "reduced logical
/// search space" applied to aggregation). Results are sorted by group
/// value.
Result<std::vector<GroupCount>> GroupedDistinctCounts(
    const NfrRelation& rel, size_t group_attr, size_t counted_attr);

/// Syntactic projection of NFR tuples onto `attrs`. NOTE: after
/// projection the expansions of distinct result tuples may overlap
/// (the disjointness invariant does not survive projection); the result
/// still denotes exactly pi_attrs(R*).
NfrRelation ProjectNfr(const NfrRelation& rel,
                       const std::vector<size_t>& attrs);

}  // namespace nf2

#endif  // NF2_ALGEBRA_OPERATORS_H_
