#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

#include "util/string_util.h"

namespace nf2 {

uint64_t Histogram::BucketUpperBound(size_t i) {
  if (i + 1 >= kBuckets) return std::numeric_limits<uint64_t>::max();
  return uint64_t{1} << (i + 1);
}

size_t Histogram::BucketIndex(uint64_t ns) {
  if (ns < 2) return 0;
  size_t index = std::bit_width(ns) - 1;
  return std::min(index, kBuckets - 1);
}

double MetricsSnapshot::HistogramValue::Mean() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t MetricsSnapshot::HistogramValue::ApproxQuantile(double q) const {
  if (count == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
  if (rank >= count) rank = count - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen > rank) return bounds[i];
  }
  return bounds.empty() ? 0 : bounds.back();
}

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

int64_t MetricsSnapshot::gauge(std::string_view name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, CounterEntry{help, std::make_unique<Counter>()})
             .first;
  }
  return it->second.metric.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, GaugeEntry{help, std::make_unique<Gauge>()})
             .first;
  }
  return it->second.metric.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      HistogramEntry{help, std::make_unique<Histogram>()})
             .first;
  }
  return it->second.metric.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, entry] : counters_) {
    out.counters.push_back({name, entry.metric->value()});
  }
  for (const auto& [name, entry] : gauges_) {
    out.gauges.push_back({name, entry.metric->value()});
  }
  for (const auto& [name, entry] : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.count = entry.metric->count();
    h.sum = entry.metric->sum();
    // Keep only the populated prefix structure: empty buckets between
    // populated ones are retained (cumulative rendering needs them),
    // the empty tail is dropped.
    size_t last = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (entry.metric->bucket(i) > 0) last = i + 1;
    }
    for (size_t i = 0; i < last; ++i) {
      h.buckets.push_back(entry.metric->bucket(i));
      h.bounds.push_back(Histogram::BucketUpperBound(i));
    }
    out.histograms.push_back(std::move(h));
  }
  return out;
}

namespace {

std::string Fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

/// 1234567 ns -> "1.23ms"; keeps raw ns for small values.
std::string HumanNs(double ns) {
  if (ns >= 1e9) return StrCat(Fixed(ns / 1e9, 2), "s");
  if (ns >= 1e6) return StrCat(Fixed(ns / 1e6, 2), "ms");
  if (ns >= 1e3) return StrCat(Fixed(ns / 1e3, 2), "us");
  return StrCat(Fixed(ns, 0), "ns");
}

/// Histograms named *_ns hold nanoseconds; everything else (batch
/// sizes, counts) renders as a plain number.
std::string HumanHistValue(const std::string& name, double v) {
  if (name.ends_with("_ns")) return HumanNs(v);
  return Fixed(v, v == static_cast<double>(static_cast<int64_t>(v)) ? 0 : 2);
}

}  // namespace

std::string MetricsRegistry::ToString() const {
  MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& c : snap.counters) {
    out += StrCat(c.name, " ", c.value, "\n");
  }
  for (const auto& g : snap.gauges) {
    out += StrCat(g.name, " ", g.value, "\n");
  }
  for (const auto& h : snap.histograms) {
    out += StrCat(
        h.name, " count=", h.count, " mean=", HumanHistValue(h.name, h.Mean()),
        " p50<=",
        HumanHistValue(h.name, static_cast<double>(h.ApproxQuantile(0.5))),
        " p99<=",
        HumanHistValue(h.name, static_cast<double>(h.ApproxQuantile(0.99))),
        "\n");
  }
  return out;
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : counters_) {
    if (!entry.help.empty()) {
      out += StrCat("# HELP ", name, " ", entry.help, "\n");
    }
    out += StrCat("# TYPE ", name, " counter\n");
    out += StrCat(name, " ", entry.metric->value(), "\n");
  }
  for (const auto& [name, entry] : gauges_) {
    if (!entry.help.empty()) {
      out += StrCat("# HELP ", name, " ", entry.help, "\n");
    }
    out += StrCat("# TYPE ", name, " gauge\n");
    out += StrCat(name, " ", entry.metric->value(), "\n");
  }
  for (const auto& [name, entry] : histograms_) {
    if (!entry.help.empty()) {
      out += StrCat("# HELP ", name, " ", entry.help, "\n");
    }
    out += StrCat("# TYPE ", name, " histogram\n");
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t in_bucket = entry.metric->bucket(i);
      cumulative += in_bucket;
      // Emit a sparse ladder: bucket boundaries that hold observations
      // (plus the mandatory +Inf), skipping long empty runs.
      if (in_bucket == 0 && i + 1 < Histogram::kBuckets) continue;
      if (i + 1 < Histogram::kBuckets) {
        out += StrCat(name, "_bucket{le=\"", Histogram::BucketUpperBound(i),
                      "\"} ", cumulative, "\n");
      }
    }
    out += StrCat(name, "_bucket{le=\"+Inf\"} ", entry.metric->count(), "\n");
    out += StrCat(name, "_sum ", entry.metric->sum(), "\n");
    out += StrCat(name, "_count ", entry.metric->count(), "\n");
  }
  return out;
}

BufferPoolMetrics BufferPoolMetrics::ForRegistry(MetricsRegistry* registry) {
  BufferPoolMetrics out;
  if (registry == nullptr) return out;
  out.hits = registry->GetCounter("nf2_pool_hits_total",
                                  "buffer pool page hits");
  out.misses = registry->GetCounter("nf2_pool_misses_total",
                                    "buffer pool page misses (disk reads)");
  out.evictions = registry->GetCounter("nf2_pool_evictions_total",
                                       "buffer pool frame evictions");
  out.writebacks = registry->GetCounter(
      "nf2_pool_writebacks_total", "dirty pages written back to disk");
  return out;
}

CheckpointMetrics CheckpointMetrics::ForRegistry(MetricsRegistry* registry) {
  CheckpointMetrics out;
  if (registry == nullptr) return out;
  out.pages_written = registry->GetCounter(
      "nf2_checkpoint_pages_written_total",
      "pages written by incremental checkpoints");
  out.pages_skipped = registry->GetCounter(
      "nf2_checkpoint_pages_skipped_total",
      "pages skipped by incremental checkpoints (CRC unchanged)");
  out.bytes_written = registry->GetCounter(
      "nf2_checkpoint_bytes_total",
      "bytes written to table files by incremental checkpoints");
  out.tables_skipped = registry->GetCounter(
      "nf2_checkpoint_tables_skipped_total",
      "clean tables skipped wholesale by incremental checkpoints");
  return out;
}

StatementCacheMetrics StatementCacheMetrics::ForRegistry(
    MetricsRegistry* registry) {
  StatementCacheMetrics out;
  if (registry == nullptr) return out;
  out.hits = registry->GetCounter("nf2_stmtcache_hits_total",
                                  "statement-cache hits (parse skipped)");
  out.misses = registry->GetCounter("nf2_stmtcache_misses_total",
                                    "statement-cache misses (full parse)");
  out.evictions = registry->GetCounter(
      "nf2_stmtcache_evictions_total",
      "statement-cache entries evicted by the LRU capacity bound");
  out.invalidations = registry->GetCounter(
      "nf2_stmtcache_invalidations_total",
      "whole-cache invalidations triggered by DDL");
  out.entries = registry->GetGauge("nf2_stmtcache_entries",
                                   "statements currently cached");
  return out;
}

GateMetrics GateMetrics::ForRegistry(MetricsRegistry* registry) {
  GateMetrics out;
  if (registry == nullptr) return out;
  out.shared_acquires = registry->GetCounter(
      "nf2_gate_shared_acquires_total",
      "shared (reader) acquisitions of the engine gate");
  out.write_acquires = registry->GetCounter(
      "nf2_gate_write_acquires_total",
      "exclusive (writer) acquisitions of the engine gate");
  out.write_wait_ns = registry->GetHistogram(
      "nf2_gate_write_wait_ns",
      "time a writer waited to acquire the exclusive gate (ns)");
  return out;
}

UpdatePathMetrics UpdatePathMetrics::ForRegistry(MetricsRegistry* registry) {
  UpdatePathMetrics out;
  if (registry == nullptr) return out;
  out.compositions = registry->GetCounter(
      "nf2_compo_total", "compo() applications (paper Def. 1)");
  out.decompositions = registry->GetCounter(
      "nf2_unnest_total", "unnest() applications (paper Def. 2)");
  out.recons_calls = registry->GetCounter(
      "nf2_recons_total", "invocations of the paper's procedure recons");
  out.candidate_scans = registry->GetCounter(
      "nf2_candt_scans_total", "tuples examined while searching candt");
  out.find_candidate_ns = registry->GetCounter(
      "nf2_candt_ns_total", "wall time inside FindCandidate (ns)");
  out.recons_ns = registry->GetCounter(
      "nf2_recons_ns_total", "wall time inside top-level Recons (ns)");
  return out;
}

}  // namespace nf2
