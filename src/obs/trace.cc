#include "obs/trace.h"

#include <cstdio>

#include "util/logging.h"
#include "util/string_util.h"

namespace nf2 {

SpanNode* SpanNode::AddChild(std::string child_name) {
  children.push_back(std::make_unique<SpanNode>());
  children.back()->name = std::move(child_name);
  return children.back().get();
}

void SpanNode::AddAttr(std::string key, int64_t value) {
  attrs.emplace_back(std::move(key), value);
}

namespace {

std::string HumanNs(uint64_t ns) {
  char buf[64];
  double v = static_cast<double>(ns);
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fs", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

void RenderNode(const SpanNode& node, const std::string& prefix,
                bool is_last, bool is_root, TraceRender mode,
                std::string* out) {
  if (!is_root) {
    *out += prefix;
    *out += is_last ? "└─ " : "├─ ";
  }
  *out += node.name;
  if (mode == TraceRender::kWithTimes) {
    *out += StrCat(" [", HumanNs(node.duration_ns), "]");
  }
  for (const auto& [key, value] : node.attrs) {
    *out += StrCat(" ", key, "=", value);
  }
  *out += "\n";
  std::string child_prefix =
      is_root ? prefix : StrCat(prefix, is_last ? "   " : "│  ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    RenderNode(*node.children[i], child_prefix,
               i + 1 == node.children.size(), /*is_root=*/false, mode, out);
  }
}

}  // namespace

std::string RenderSpanTree(const SpanNode& node, TraceRender mode) {
  std::string out;
  RenderNode(node, "", /*is_last=*/true, /*is_root=*/true, mode, &out);
  return out;
}

std::string Trace::Render(TraceRender mode) const {
  std::string out;
  for (const auto& child : root_->children) {
    // Each top-level span prints flush-left as its own tree.
    RenderNode(*child, "", /*is_last=*/true, /*is_root=*/true, mode, &out);
  }
  return out;
}

TraceSpan::TraceSpan(Trace* trace, std::string name, Histogram* histogram)
    : trace_(trace),
      histogram_(histogram),
      start_(std::chrono::steady_clock::now()) {
  if (trace_ != nullptr) {
    NF2_CHECK(!trace_->stack_.empty());
    node_ = trace_->stack_.back()->AddChild(std::move(name));
    trace_->stack_.push_back(node_);
  }
}

TraceSpan::~TraceSpan() {
  uint64_t elapsed = ElapsedNs();
  if (node_ != nullptr) {
    node_->duration_ns = elapsed;
    NF2_CHECK(trace_->stack_.back() == node_)
        << "TraceSpan destruction out of stack order";
    trace_->stack_.pop_back();
  }
  if (histogram_ != nullptr) {
    histogram_->Observe(elapsed);
  }
}

void TraceSpan::AddAttr(std::string key, int64_t value) {
  if (node_ != nullptr) {
    node_->AddAttr(std::move(key), value);
  }
}

uint64_t TraceSpan::ElapsedNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

}  // namespace nf2
