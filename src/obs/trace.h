#ifndef NF2_OBS_TRACE_H_
#define NF2_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace nf2 {

/// One node of a span tree: a named, timed region with integer
/// attributes (rows in/out, composition counts) and child spans.
struct SpanNode {
  std::string name;
  uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, int64_t>> attrs;
  std::vector<std::unique_ptr<SpanNode>> children;

  SpanNode* AddChild(std::string child_name);
  void AddAttr(std::string key, int64_t value);
};

/// How a span tree is rendered. PROFILE output includes wall times;
/// EXPLAIN output (a plan tree built from the same nodes, never timed)
/// suppresses them so the text is deterministic and golden-testable.
enum class TraceRender { kWithTimes, kPlanOnly };

/// Collects a tree of TraceSpans for one traced request (a PROFILE'd
/// statement). Single-threaded by design: spans open and close in
/// stack order on the executing thread.
class Trace {
 public:
  Trace() : root_(std::make_unique<SpanNode>()) {
    root_->name = "(root)";
    stack_.push_back(root_.get());
  }
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// The synthetic root; its children are the top-level spans.
  const SpanNode& root() const { return *root_; }
  SpanNode* mutable_root() { return root_.get(); }

  /// Box-drawing tree of all top-level spans.
  std::string Render(TraceRender mode = TraceRender::kWithTimes) const;

 private:
  friend class TraceSpan;
  std::unique_ptr<SpanNode> root_;
  std::vector<SpanNode*> stack_;  // Innermost open span last.
};

/// Renders the subtree under `node` (excluding the node itself when it
/// is a synthetic root is the caller's choice — this renders `node` as
/// the top line).
std::string RenderSpanTree(const SpanNode& node, TraceRender mode);

/// A scoped timer that opens a span on construction and closes it on
/// destruction, recording the elapsed wall time into the span and,
/// optionally, into a registry histogram. A null `trace` (with or
/// without a histogram) makes the span a pure histogram probe; null
/// both is a no-op — instrumented code never needs an if around it.
class TraceSpan {
 public:
  explicit TraceSpan(Trace* trace, std::string name,
                     Histogram* histogram = nullptr);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches an attribute to the open span (ignored when untraced).
  void AddAttr(std::string key, int64_t value);

  /// The underlying span node (null when untraced) — lets callers that
  /// build subtree structure out of band (the query pipeline attaches
  /// per-operator nodes after execution) hang children off this span.
  SpanNode* node() const { return node_; }

  /// Nanoseconds elapsed since construction.
  uint64_t ElapsedNs() const;

 private:
  Trace* trace_;
  SpanNode* node_ = nullptr;  // Null when trace_ is null.
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nf2

#endif  // NF2_OBS_TRACE_H_
