#ifndef NF2_OBS_METRICS_H_
#define NF2_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nf2 {

/// A monotonically increasing counter. Increment is a relaxed atomic
/// add — safe under concurrent writers, never allocating, never
/// locking. Relaxed ordering is deliberate: metrics are statistical
/// observations, not synchronization points.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A gauge: a value that can go up and down (resident pages, dictionary
/// size). Set/Add are relaxed atomics like Counter.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency histogram over nanosecond observations.
/// Buckets are powers of two: bucket i counts observations in
/// [2^i, 2^(i+1)) ns, with the first bucket absorbing [0, 2) and the
/// last absorbing everything >= 2^(kBuckets-1) (~34 s). Observe is a
/// handful of relaxed atomic adds — no locks, no allocation.
class Histogram {
 public:
  static constexpr size_t kBuckets = 36;

  void Observe(uint64_t ns) {
    buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket `i` (UINT64_MAX for the last).
  static uint64_t BucketUpperBound(size_t i);
  /// Index of the bucket an observation of `ns` lands in.
  static size_t BucketIndex(uint64_t ns);

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// A point-in-time copy of every metric in a registry, with by-name
/// lookup — what `Database::MetricsSnapshot()` hands to benchmarks and
/// what the text renderers are generated from.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    std::vector<uint64_t> buckets;  // Non-empty buckets only: see bounds.
    std::vector<uint64_t> bounds;   // Upper bound per retained bucket.

    /// sum / count (0 when empty).
    double Mean() const;
    /// Upper bound of the bucket containing quantile q in [0, 1].
    uint64_t ApproxQuantile(double q) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a counter by name; 0 when absent.
  uint64_t counter(std::string_view name) const;
  /// Value of a gauge by name; 0 when absent.
  int64_t gauge(std::string_view name) const;
  /// Histogram by name; nullptr when absent.
  const HistogramValue* histogram(std::string_view name) const;
};

/// A registry of named metrics. Registration (GetCounter & co.) takes a
/// mutex and may allocate; it is meant to run once at wiring time, with
/// the returned pointer cached by the instrumented component — the
/// pointers are stable for the registry's lifetime, and the hot-path
/// operations on them are lock-free and allocation-free.
///
/// Names follow the Prometheus convention: `nf2_<area>_<what>[_total]`,
/// snake_case, with `_ns` marking nanosecond-valued metrics (see
/// DESIGN.md §7 for the catalog and the text-exposition caveats).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first
  /// use. `help` is kept from the first registration.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// A consistent-enough copy of every metric (each value is read
  /// atomically; the set is not a global atomic snapshot).
  MetricsSnapshot Snapshot() const;

  /// Human-readable dump, one metric per line, histograms with
  /// count/mean/p50/p99.
  std::string ToString() const;

  /// Prometheus text exposition format (version 0.0.4): HELP/TYPE
  /// headers, cumulative `_bucket{le=...}` series for histograms.
  std::string ToPrometheusText() const;

 private:
  struct CounterEntry {
    std::string help;
    std::unique_ptr<Counter> metric;
  };
  struct GaugeEntry {
    std::string help;
    std::unique_ptr<Gauge> metric;
  };
  struct HistogramEntry {
    std::string help;
    std::unique_ptr<Histogram> metric;
  };

  mutable std::mutex mu_;
  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, HistogramEntry> histograms_;
};

/// Pre-resolved counter handles for a BufferPool. Any pointer may be
/// null (that metric is simply not recorded) — a default-constructed
/// struct is a no-op set, so un-instrumented pools cost nothing.
struct BufferPoolMetrics {
  Counter* hits = nullptr;
  Counter* misses = nullptr;
  Counter* evictions = nullptr;
  Counter* writebacks = nullptr;

  /// Handles bound to the canonical nf2_pool_* names in `registry`.
  static BufferPoolMetrics ForRegistry(MetricsRegistry* registry);
};

/// Pre-resolved counter handles for the incremental checkpoint path
/// (storage/checkpoint.h). Null pointers are skipped, so the delta
/// writer can run without a registry (unit tests).
struct CheckpointMetrics {
  Counter* pages_written = nullptr;   // nf2_checkpoint_pages_written_total
  Counter* pages_skipped = nullptr;   // nf2_checkpoint_pages_skipped_total
  Counter* bytes_written = nullptr;   // nf2_checkpoint_bytes_total
  Counter* tables_skipped = nullptr;  // nf2_checkpoint_tables_skipped_total

  /// Handles bound to the canonical nf2_checkpoint_* names in `registry`.
  static CheckpointMetrics ForRegistry(MetricsRegistry* registry);
};

/// Pre-resolved handles for the server's parsed-statement cache
/// (server/session.h). Null pointers are skipped, so a cache built
/// without a registry (unit tests) records nothing.
struct StatementCacheMetrics {
  Counter* hits = nullptr;           // nf2_stmtcache_hits_total
  Counter* misses = nullptr;         // nf2_stmtcache_misses_total
  Counter* evictions = nullptr;      // nf2_stmtcache_evictions_total
  Counter* invalidations = nullptr;  // nf2_stmtcache_invalidations_total
  Gauge* entries = nullptr;          // nf2_stmtcache_entries

  /// Handles bound to the canonical nf2_stmtcache_* names in `registry`.
  static StatementCacheMetrics ForRegistry(MetricsRegistry* registry);
};

/// Pre-resolved handles for the EngineGate (engine/concurrency.h).
/// Null pointers are skipped, so a gate built without a registry
/// (tests, embedders) records nothing. Since the snapshot read path
/// landed, read-only statements acquire NO gate mode at all — these
/// counters are how tests assert that (a read-only batch leaves both
/// acquire counters unchanged).
struct GateMetrics {
  Counter* shared_acquires = nullptr;  // nf2_gate_shared_acquires_total
  Counter* write_acquires = nullptr;   // nf2_gate_write_acquires_total
  Histogram* write_wait_ns = nullptr;  // nf2_gate_write_wait_ns

  /// Handles bound to the canonical nf2_gate_* names in `registry`.
  static GateMetrics ForRegistry(MetricsRegistry* registry);
};

/// Pre-resolved counter handles for the §4 update hot paths
/// (CanonicalRelation). Null pointers are skipped, so a relation
/// without a registry (unit tests, ad-hoc algebra) pays one branch.
struct UpdatePathMetrics {
  Counter* compositions = nullptr;     // nf2_compo_total
  Counter* decompositions = nullptr;   // nf2_unnest_total
  Counter* recons_calls = nullptr;     // nf2_recons_total
  Counter* candidate_scans = nullptr;  // nf2_candt_scans_total
  Counter* find_candidate_ns = nullptr;  // nf2_candt_ns_total
  Counter* recons_ns = nullptr;          // nf2_recons_ns_total

  /// Handles bound to the canonical §4 metric names in `registry`.
  static UpdatePathMetrics ForRegistry(MetricsRegistry* registry);
};

}  // namespace nf2

#endif  // NF2_OBS_METRICS_H_
