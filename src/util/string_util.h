#ifndef NF2_UTIL_STRING_UTIL_H_
#define NF2_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace nf2 {

/// Joins the elements of `parts` with `sep` between them.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Joins arbitrary streamable elements with `sep` between them.
template <typename Container>
std::string JoinStreamable(const Container& items, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << sep;
    first = false;
    out << item;
  }
  return out.str();
}

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// ASCII lower-casing.
std::string ToLower(std::string_view text);

/// ASCII upper-casing.
std::string ToUpper(std::string_view text);

/// True when `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Concatenates streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

}  // namespace nf2

#endif  // NF2_UTIL_STRING_UTIL_H_
