#ifndef NF2_UTIL_RNG_H_
#define NF2_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nf2 {

/// Deterministic 64-bit PRNG (xoshiro256**, seeded via splitmix64).
///
/// Used by tests and workload generators so experiments are exactly
/// reproducible across runs and machines.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability `p`.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace nf2

#endif  // NF2_UTIL_RNG_H_
