#ifndef NF2_UTIL_RESULT_H_
#define NF2_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace nf2 {

/// A value-or-error outcome: either holds a `T` or a non-OK `Status`.
///
/// Typical use:
///
///   Result<int> Parse(const std::string& s);
///
///   Result<int> r = Parse("42");
///   if (!r.ok()) return r.status();
///   Use(*r);
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    NF2_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is held.
  bool ok() const { return status_.ok(); }

  /// The status; OK when a value is held.
  const Status& status() const { return status_; }

  /// Accessors for the held value. It is a fatal error to dereference an
  /// errored result.
  T& operator*() & {
    NF2_CHECK(ok()) << "Dereferencing errored Result: " << status_.ToString();
    return *value_;
  }
  const T& operator*() const& {
    NF2_CHECK(ok()) << "Dereferencing errored Result: " << status_.ToString();
    return *value_;
  }
  T&& operator*() && {
    NF2_CHECK(ok()) << "Dereferencing errored Result: " << status_.ToString();
    return std::move(*value_);
  }
  T* operator->() {
    NF2_CHECK(ok()) << "Dereferencing errored Result: " << status_.ToString();
    return &*value_;
  }
  const T* operator->() const {
    NF2_CHECK(ok()) << "Dereferencing errored Result: " << status_.ToString();
    return &*value_;
  }

  /// Returns the held value, or dies with the error message.
  const T& ValueOrDie() const& { return **this; }
  T&& ValueOrDie() && { return *std::move(*this); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace nf2

/// Evaluates `expr` (a Result<T>); on error returns the status to the
/// caller, otherwise assigns the value to `lhs`.
#define NF2_ASSIGN_OR_RETURN(lhs, expr)            \
  NF2_ASSIGN_OR_RETURN_IMPL(                       \
      NF2_MACRO_CONCAT(nf2_result_, __LINE__), lhs, expr)

#define NF2_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) {                                \
    return tmp.status();                          \
  }                                               \
  lhs = *std::move(tmp)

#define NF2_MACRO_CONCAT_INNER(a, b) a##b
#define NF2_MACRO_CONCAT(a, b) NF2_MACRO_CONCAT_INNER(a, b)

#endif  // NF2_UTIL_RESULT_H_
