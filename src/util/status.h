#ifndef NF2_UTIL_STATUS_H_
#define NF2_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace nf2 {

/// Canonical error codes used throughout nf2db. Modeled after the
/// Google/Arrow convention: functions that can fail return a `Status`
/// (or a `Result<T>`, see result.h) instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kCorruption = 6,
  kIOError = 7,
  kUnimplemented = 8,
  kInternal = 9,
  /// The operation cannot run right now but may succeed if retried —
  /// the server maps queue-full backpressure and another session's open
  /// transaction to this code.
  kUnavailable = 10,
};

/// Returns a human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. A default-constructed Status is OK.
///
/// Typical use:
///
///   Status DoThing() {
///     if (bad) return Status::InvalidArgument("bad thing");
///     return Status::OK();
///   }
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Two statuses are equal when both code and message match.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace nf2

/// Propagates a non-OK Status to the caller.
#define NF2_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::nf2::Status nf2_status_macro_ = (expr);    \
    if (!nf2_status_macro_.ok()) {               \
      return nf2_status_macro_;                  \
    }                                            \
  } while (false)

#endif  // NF2_UTIL_STATUS_H_
