#ifndef NF2_UTIL_HASH_H_
#define NF2_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace nf2 {

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hashes a range of hashable elements into one value.
template <typename Iterator>
size_t HashRange(Iterator begin, Iterator end) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (Iterator it = begin; it != end; ++it) {
    using T = std::decay_t<decltype(*it)>;
    seed = HashCombine(seed, std::hash<T>{}(*it));
  }
  return seed;
}

}  // namespace nf2

#endif  // NF2_UTIL_HASH_H_
