#include "util/rng.h"

#include "util/logging.h"

namespace nf2 {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  NF2_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  NF2_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

}  // namespace nf2
