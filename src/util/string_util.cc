#include "util/string_util.h"

#include <algorithm>
#include <cctype>

namespace nf2 {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace nf2
