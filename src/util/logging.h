#ifndef NF2_UTIL_LOGGING_H_
#define NF2_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace nf2 {

/// Severity levels for NF2_LOG.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns/sets the minimum level that is actually emitted (default: Info).
LogLevel GetLogThreshold();
void SetLogThreshold(LogLevel level);

namespace internal {

/// Stream-style log message builder. Emits on destruction; aborts the
/// process for kFatal messages (used by NF2_CHECK).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a check passes.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed LogMessage expression into void so it can sit on
/// one arm of a ternary (glog's "voidify" trick). operator& binds more
/// loosely than operator<<, so the whole message chain is consumed.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace nf2

#define NF2_LOG(level)                                            \
  ::nf2::internal::LogMessage(::nf2::LogLevel::k##level, __FILE__, __LINE__)

/// Fatal assertion: always enabled, aborts with a message on failure.
/// Additional context can be streamed: NF2_CHECK(ok) << "details".
#define NF2_CHECK(cond)                                                 \
  (cond) ? (void)0                                                      \
         : ::nf2::internal::LogMessageVoidify() &                       \
               (::nf2::internal::LogMessage(::nf2::LogLevel::kFatal,    \
                                            __FILE__, __LINE__)         \
                << "Check failed: " #cond " ")

/// Debug-only assertion.
#ifdef NDEBUG
#define NF2_DCHECK(cond) \
  while (false) NF2_CHECK(cond)
#else
#define NF2_DCHECK(cond) NF2_CHECK(cond)
#endif

#endif  // NF2_UTIL_LOGGING_H_
