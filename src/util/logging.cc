#include "util/logging.h"

#include <cstdlib>
#include <iostream>

namespace nf2 {

namespace {
LogLevel g_threshold = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetLogThreshold() { return g_threshold; }
void SetLogThreshold(LogLevel level) { g_threshold = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ >= g_threshold || level_ == LogLevel::kFatal) {
    std::cerr << "[" << LevelName(level_) << " " << file_ << ":" << line_
              << "] " << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace nf2
